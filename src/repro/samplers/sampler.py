"""Averaging (oblivious) samplers — paper Section 3.2.1, Definition 2.

A sampler is a function ``H : [r] -> [s]^d`` assigning a multiset of size
``d`` over ``[s]`` to every input in ``[r]``.  ``H`` is a (theta, delta)
sampler if for every bad set ``S`` of elements, at most a ``delta``
fraction of inputs ``x`` have ``|H(x) ∩ S| / d > |S|/s + theta``.

Lemma 2 of the paper proves such samplers exist by the probabilistic
method whenever ``2*log2(e)*d*theta^2*delta > s/r + 1 - delta`` — i.e. a
uniformly random assignment works with positive probability — and the
paper assumes each processor either holds a copy or constructs one in
exponential time.  We follow the paper's own existence proof: construct
the assignment uniformly at random from a *seeded* RNG (so every processor
deterministically derives the same sampler), and provide an empirical
quality checker in :mod:`repro.samplers.quality`.

The paper's canonical instantiation is a (1/log n, 1/log n) sampler with
degree ``d = O((s/r + 1) * log^3 n)``.  :func:`paper_sampler_degree`
computes that degree.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple


class SamplerError(ValueError):
    """Raised on invalid sampler parameters."""


def sampler_existence_bound(
    r: int, s: int, d: int, theta: float, delta: float
) -> bool:
    """Lemma 2's sufficient condition: 2*log2(e)*d*theta^2*delta > s/r + 1 - delta."""
    return 2 * math.log2(math.e) * d * theta * theta * delta > s / r + 1 - delta


def paper_sampler_degree(r: int, s: int, n: int, constant: float = 1.0) -> int:
    """The paper's degree choice d = O((s/r + 1) log^3 n), at least 1."""
    log_n = max(math.log2(max(n, 2)), 1.0)
    return max(1, math.ceil(constant * (s / max(r, 1) + 1) * log_n**3))


@dataclass(frozen=True)
class Sampler:
    """A concrete sampler: an explicit table of multisets.

    Attributes:
        r: number of inputs (e.g. nodes needing committees).
        s: size of the ground set (e.g. number of processors).
        d: multiset size assigned to each input.
        assignments: ``assignments[x]`` is the size-``d`` multiset (as a
            sorted tuple) assigned to input ``x``.
    """

    r: int
    s: int
    d: int
    assignments: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if self.r < 1 or self.s < 1 or self.d < 1:
            raise SamplerError("sampler dimensions must be positive")
        if len(self.assignments) != self.r:
            raise SamplerError("assignment table has wrong number of rows")
        for row in self.assignments:
            if len(row) != self.d:
                raise SamplerError("assignment row has wrong degree")
            for element in row:
                if not 0 <= element < self.s:
                    raise SamplerError("assignment element out of range")

    # -- construction ------------------------------------------------------------

    @classmethod
    def random(
        cls, r: int, s: int, d: int, rng: random.Random, with_replacement: bool = False
    ) -> "Sampler":
        """Uniformly random sampler — the probabilistic-method construction.

        By default samples *without* replacement within a row when d <= s
        (committee membership wants distinct processors); set
        ``with_replacement=True`` for the literal multiset model of
        Definition 2.
        """
        rows: List[Tuple[int, ...]] = []
        for _x in range(r):
            if with_replacement or d > s:
                row = tuple(sorted(rng.randrange(s) for _ in range(d)))
            else:
                row = tuple(sorted(rng.sample(range(s), d)))
            rows.append(row)
        return cls(r=r, s=s, d=d, assignments=tuple(rows))

    @classmethod
    def complete(cls, r: int, s: int) -> "Sampler":
        """The trivial sampler assigning the whole ground set to every input.

        Used for the root node of the tree, which contains all processors.
        """
        row = tuple(range(s))
        return cls(r=r, s=s, d=s, assignments=tuple(row for _ in range(r)))

    # -- queries -----------------------------------------------------------------

    def assign(self, x: int) -> Tuple[int, ...]:
        """The multiset H(x)."""
        return self.assignments[x]

    def intersection_fraction(self, x: int, bad: Set[int]) -> float:
        """|H(x) ∩ S| / d for a bad set S (multiset intersection per Def. 2)."""
        row = self.assignments[x]
        return sum(1 for element in row if element in bad) / self.d

    def degrees(self) -> Dict[int, int]:
        """deg(s') = number of inputs whose multiset contains s'."""
        degree: Dict[int, int] = {}
        for row in self.assignments:
            for element in set(row):
                degree[element] = degree.get(element, 0) + 1
        return degree

    def max_degree(self) -> int:
        """Largest right-vertex degree in the assignment."""
        degs = self.degrees()
        return max(degs.values()) if degs else 0

    def inputs_containing(self, element: int) -> List[int]:
        """All inputs x with element in H(x)."""
        return [
            x for x, row in enumerate(self.assignments) if element in row
        ]


def bipartite_links(
    sources: Sequence[int],
    targets: Sequence[int],
    degree: int,
    rng: random.Random,
) -> Dict[int, Tuple[int, ...]]:
    """Sampler-style link assignment between two concrete ID sets.

    Assigns each source a size-``degree`` subset of ``targets`` (without
    replacement when possible).  Used for uplinks and ℓ-links where the two
    sides are processor IDs rather than abstract ranges.
    """
    if not targets:
        raise SamplerError("cannot link into an empty target set")
    links: Dict[int, Tuple[int, ...]] = {}
    target_list = list(targets)
    for source in sources:
        if degree >= len(target_list):
            links[source] = tuple(sorted(target_list))
        else:
            links[source] = tuple(sorted(rng.sample(target_list, degree)))
    return links
