"""Averaging samplers (paper Section 3.2.1, Lemma 2)."""

from .quality import (
    QualityReport,
    adversarial_bad_set,
    estimate_failure_fraction,
    fraction_of_bad_committees,
    measure_against_bad_set,
)
from .sampler import (
    Sampler,
    SamplerError,
    bipartite_links,
    paper_sampler_degree,
    sampler_existence_bound,
)

__all__ = [
    "QualityReport",
    "adversarial_bad_set",
    "estimate_failure_fraction",
    "fraction_of_bad_committees",
    "measure_against_bad_set",
    "Sampler",
    "SamplerError",
    "bipartite_links",
    "paper_sampler_degree",
    "sampler_existence_bound",
]
