"""Empirical sampler-quality measurement (validates Lemma 2 constructions).

Definition 2 quantifies over *every* bad set S, which is exponentially
expensive to check exactly.  For validation we do two things:

* :func:`measure_against_bad_set` — exact check of the delta fraction for
  one given bad set (this is what the protocol actually cares about: the
  adversary's corrupted set is a single bad set).
* :func:`estimate_failure_fraction` — Monte-Carlo over random bad sets of a
  given size, reporting the worst observed delta.

Benchmarks E8 sweep (r, s, d) and show the measured failure fraction
falling with degree exactly as Lemma 2's bound predicts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Set

from .sampler import Sampler


@dataclass(frozen=True)
class QualityReport:
    """Outcome of checking a sampler against one or more bad sets."""

    theta: float
    bad_fraction: float
    worst_input_fraction: float
    failing_inputs: int
    total_inputs: int

    @property
    def delta_measured(self) -> float:
        """Fraction of inputs exceeding the theta margin."""
        return self.failing_inputs / self.total_inputs


def measure_against_bad_set(
    sampler: Sampler, bad: Set[int], theta: float
) -> QualityReport:
    """Exact Definition-2 check for one bad set S."""
    bad_fraction = len(bad) / sampler.s
    failing = 0
    worst = 0.0
    for x in range(sampler.r):
        fraction = sampler.intersection_fraction(x, bad)
        worst = max(worst, fraction)
        if fraction > bad_fraction + theta:
            failing += 1
    return QualityReport(
        theta=theta,
        bad_fraction=bad_fraction,
        worst_input_fraction=worst,
        failing_inputs=failing,
        total_inputs=sampler.r,
    )


def estimate_failure_fraction(
    sampler: Sampler,
    bad_set_size: int,
    theta: float,
    trials: int,
    rng: random.Random,
) -> float:
    """Worst delta observed over ``trials`` random bad sets of a given size."""
    worst_delta = 0.0
    ground = list(range(sampler.s))
    for _ in range(trials):
        bad = set(rng.sample(ground, min(bad_set_size, sampler.s)))
        report = measure_against_bad_set(sampler, bad, theta)
        worst_delta = max(worst_delta, report.delta_measured)
    return worst_delta


def adversarial_bad_set(
    sampler: Sampler, bad_set_size: int
) -> Set[int]:
    """A greedy adversarial bad set: corrupt the highest-degree elements.

    The adaptive adversary corrupting processors that appear in the most
    committees is the natural attack on a sampler-built tree; benchmarks
    compare random vs greedy bad sets.
    """
    degrees = sampler.degrees()
    ranked = sorted(range(sampler.s), key=lambda e: -degrees.get(e, 0))
    return set(ranked[:bad_set_size])


def fraction_of_bad_committees(
    sampler: Sampler, bad: Set[int], good_threshold: float
) -> float:
    """Fraction of inputs whose committee has less than ``good_threshold`` good.

    Matches the paper's "fewer than a 1/log n fraction of the nodes on any
    level contain less than a 2/3 + eps/2 fraction of good processors".
    """
    bad_committees = 0
    for x in range(sampler.r):
        good_fraction = 1.0 - sampler.intersection_fraction(x, bad)
        if good_fraction < good_threshold:
            bad_committees += 1
    return bad_committees / sampler.r
