"""King-Saia DISC'09 almost-everywhere-to-everywhere — the predecessor.

Reference [16]: "From almost-everywhere to everywhere: Byzantine
agreement in O~(n^{3/2}) bits", for a NON-adaptive adversary and without
private channels.  Its core move: every knowledgeable processor sends M
to Theta(sqrt n log n) fixed pseudo-random targets, and every processor
decides by majority over what it hears — total O~(n^{3/2}) bits, i.e.
O~(sqrt n) per processor, but the *fixed* communication pattern is
exactly what an adaptive adversary destroys (it corrupts the senders
assigned to a victim before they speak).

Benchmark E4's companion ablation runs both amplifiers against an
adaptive targeting adversary: this one collapses, Algorithm 3 survives —
the delta between [16] and Section 4 of the paper, measured.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from typing import Dict, List, Optional, Sequence, Set

from ..net.messages import Message
from ..net.rng import child_rng
from ..net.simulator import (
    Adversary,
    AdversaryView,
    NullAdversary,
    ProcessorProtocol,
    SyncNetwork,
)


def disc09_fanout(n: int, a: float = 4.0) -> int:
    """Senders per receiver: a * sqrt(n) * log n / sqrt(n) ~ a log n each,
    arranged so every receiver hears Theta(a log n) knowledgeable senders."""
    log_n = max(2.0, math.log2(max(n, 2)))
    return max(1, int(round(a * log_n)))


def assignment(n: int, seed: int, fanout: int) -> Dict[int, List[int]]:
    """The FIXED public sender->receivers map (common knowledge).

    Each processor p is assigned ``fanout`` receivers pseudo-randomly;
    being public and fixed is what makes the scheme cheap — and what the
    adaptive adversary reads to choose its corruptions.
    """
    rng = child_rng(seed, "disc09")
    table: Dict[int, List[int]] = {}
    for p in range(n):
        table[p] = [rng.randrange(n) for _ in range(fanout)]
    return table


class Disc09Processor(ProcessorProtocol):
    """One good processor: send M along the fixed assignment, decide by
    majority of received copies."""

    def __init__(
        self,
        pid: int,
        n: int,
        knowledgeable: bool,
        message: Optional[int],
        receivers: List[int],
        threshold: int,
    ) -> None:
        super().__init__(pid)
        self.n = n
        self.knowledgeable = knowledgeable
        self.message = message
        self.receivers = receivers
        self.threshold = threshold
        self.decided: Optional[int] = message if knowledgeable else None

    def on_round(self, round_no: int, inbox: List[Message]) -> List[Message]:
        if round_no == 1:
            if self.decided is None:
                return []
            return [
                Message(self.pid, r, "d09", self.decided)
                for r in self.receivers
                if r != self.pid
            ]
        if round_no == 2 and self.decided is None:
            tally = Counter(
                m.payload
                for m in inbox
                if m.tag == "d09" and isinstance(m.payload, int)
            )
            if tally:
                value, count = max(
                    tally.items(), key=lambda kv: (kv[1], -kv[0])
                )
                if count >= self.threshold:
                    self.decided = value
        return []

    def output(self) -> Optional[int]:
        return self.decided


class AssignmentTargetingAdversary(Adversary):
    """The adaptive kill: corrupt exactly the knowledgeable senders
    assigned to a chosen victim set, before round 1 — possible because
    the assignment is public and fixed."""

    def __init__(
        self,
        n: int,
        budget: int,
        table: Dict[int, List[int]],
        knowledgeable: Set[int],
        victims: Sequence[int],
        fake_message: int,
    ) -> None:
        super().__init__(n, budget)
        self.table = table
        self.knowledgeable = knowledgeable
        self.victims = list(victims)
        self.fake_message = fake_message

    def select_corruptions(self, round_no: int) -> Set[int]:
        if round_no != 1:
            return set()
        chosen: Set[int] = set()
        for victim in self.victims:
            for sender in range(self.n):
                if sender in self.knowledgeable and victim in self.table[sender]:
                    chosen.add(sender)
                    if len(chosen) >= self.budget:
                        return chosen
        return chosen

    def act(self, view: AdversaryView) -> List[Message]:
        if view.round_no != 1:
            return []
        messages = []
        for sender in sorted(view.corrupted):
            for receiver in self.table.get(sender, []):
                messages.append(
                    Message(sender, receiver, "d09", self.fake_message)
                )
        return messages


def run_disc09_ae2e(
    n: int,
    knowledgeable: Set[int],
    message: int,
    adversary: Optional[Adversary] = None,
    seed: int = 0,
    a: float = 6.0,
):
    """One round of the DISC'09 amplifier.

    Returns the :class:`~repro.net.simulator.RunResult`; decided values
    are the processors' outputs.
    """
    fanout = disc09_fanout(n, a)
    table = assignment(n, seed, fanout)
    # Expected knowledgeable copies per receiver.
    expected = fanout * len(knowledgeable) / n
    threshold = max(1, int(round(expected / 2 + 1)))
    if adversary is None:
        adversary = NullAdversary(n)
    protocols = [
        Disc09Processor(
            pid=p,
            n=n,
            knowledgeable=(p in knowledgeable),
            message=message if p in knowledgeable else None,
            receivers=table[p],
            threshold=threshold,
        )
        for p in range(n)
    ]
    network = SyncNetwork(protocols, adversary)
    return network.run(max_rounds=3)
