"""Phase King — the classic deterministic O(n^2)-message baseline.

Berman, Garay and Perry's algorithm (the textbook version): f+1 phases of
two all-to-all rounds each, tolerating f < n/4 Byzantine processors.  Its
per-processor cost is Theta(n * f) bits — the quadratic wall the paper's
introduction quotes systems researchers complaining about, and the
comparator for benchmark E12.

Phase p (king = processor p-1):

* Round 1: everyone sends its current value to everyone; each processor
  computes the majority value ``maj`` and its multiplicity ``mult``.
* Round 2: the king broadcasts its ``maj``; every processor keeps its own
  ``maj`` if ``mult > n/2 + f``, otherwise adopts the king's value.

With f+1 phases some phase has a good king, after which all good
processors agree and the ``mult`` guard keeps them agreed.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Dict, List, Optional, Sequence

from ..net.messages import Message
from ..net.simulator import (
    Adversary,
    NullAdversary,
    ProcessorProtocol,
    RunResult,
    SyncNetwork,
)


def phase_king_fault_bound(n: int) -> int:
    """Maximum tolerated faults: f < n/4."""
    return max(0, (n - 1) // 4)


class PhaseKingProcessor(ProcessorProtocol):
    """One good processor running Phase King.

    The simulator round ``2p-1`` is phase p's value exchange and round
    ``2p`` is its king round.
    """

    def __init__(self, pid: int, n: int, input_bit: int, num_phases: int) -> None:
        super().__init__(pid)
        self.n = n
        self.value = int(input_bit)
        self.num_phases = num_phases
        self.fault_bound = phase_king_fault_bound(n)
        self._maj = self.value
        self._mult = 0
        self._decided: Optional[int] = None

    def on_round(self, round_no: int, inbox: List[Message]) -> List[Message]:
        phase = (round_no + 1) // 2
        if phase > self.num_phases:
            if self._decided is None:
                self._decided = self.value
            return []
        if round_no % 2 == 1:
            # Finish the previous king round first.
            self._absorb_king(inbox, phase - 1)
            return [
                Message(self.pid, other, "vote", self.value)
                for other in range(self.n)
                if other != self.pid
            ]
        self._absorb_votes(inbox)
        king = (phase - 1) % self.n
        if self.pid == king:
            return [
                Message(self.pid, other, "king", self._maj)
                for other in range(self.n)
                if other != self.pid
            ]
        return []

    def _absorb_votes(self, inbox: List[Message]) -> None:
        votes = [self.value]
        seen = {self.pid}
        for m in inbox:
            if m.tag == "vote" and m.sender not in seen:
                seen.add(m.sender)
                if isinstance(m.payload, int):
                    votes.append(m.payload)
        tally = Counter(votes)
        self._maj = max(tally, key=lambda v: (tally[v], v))
        self._mult = tally[self._maj]

    def _absorb_king(self, inbox: List[Message], phase: int) -> None:
        if phase < 1:
            return
        king = (phase - 1) % self.n
        king_value: Optional[int] = None
        if king == self.pid:
            king_value = self._maj
        else:
            for m in inbox:
                if m.tag == "king" and m.sender == king:
                    if isinstance(m.payload, int):
                        king_value = m.payload
                    break
        if self._mult > self.n // 2 + self.fault_bound:
            self.value = self._maj
        elif king_value is not None:
            self.value = king_value
        else:
            self.value = self._maj

    def output(self) -> Optional[int]:
        return self._decided


def run_phase_king(
    n: int,
    inputs: Sequence[int],
    adversary: Optional[Adversary] = None,
    num_phases: Optional[int] = None,
) -> RunResult:
    """Run Phase King to completion and return the simulator result.

    ``num_phases`` defaults to f+1 with f = floor((n-1)/4), the bound the
    algorithm tolerates.
    """
    if len(inputs) != n:
        raise ValueError("inputs length must equal n")
    if num_phases is None:
        num_phases = phase_king_fault_bound(n) + 1
    if adversary is None:
        adversary = NullAdversary(n)
    protocols = [
        PhaseKingProcessor(pid, n, inputs[pid], num_phases)
        for pid in range(n)
    ]
    network = SyncNetwork(protocols, adversary)
    return network.run(max_rounds=2 * num_phases + 1)
