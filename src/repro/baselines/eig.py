"""Exponential Information Gathering (EIG) Byzantine agreement.

The oldest deterministic BA family (Pease-Shostak-Lamport lineage):
t+1 rounds of full relaying, each processor maintaining a tree of "who
said that who said ...".  Tolerates t < n/3 — optimal resilience — but
each round multiplies traffic by n: total message volume Theta(n^{t+1}).

It is included as the extreme point of benchmark E12's cost spectrum:
EIG shows why early BA was hopeless at scale, Phase King why O(n^2) was
celebrated, and the paper why O~(sqrt n) changes the game.  Only tiny
(n, t) are simulatable, which is exactly the point.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..net.messages import Message
from ..net.simulator import (
    Adversary,
    NullAdversary,
    ProcessorProtocol,
    RunResult,
    SyncNetwork,
)

#: An EIG tree node: the path of relayers, e.g. (3, 1) = "1 said that 3
#: said".  The root path is ().
Path = Tuple[int, ...]


def eig_fault_bound(n: int) -> int:
    """Maximum tolerated faults: t < n/3."""
    return max(0, (n - 1) // 3)


class EIGProcessor(ProcessorProtocol):
    """One good processor running EIG for ``t + 1`` rounds.

    Round r broadcasts every depth-(r-1) tree value with its path; the
    resolve step then folds the tree bottom-up by majority.
    """

    def __init__(self, pid: int, n: int, input_bit: int, t: int) -> None:
        super().__init__(pid)
        self.n = n
        self.t = t
        self.tree: Dict[Path, int] = {(): int(input_bit)}
        self._decided: Optional[int] = None
        self._child_index: Optional[Dict[Path, List[Path]]] = None

    def on_round(self, round_no: int, inbox: List[Message]) -> List[Message]:
        if round_no > 1:
            self._absorb(round_no - 1, inbox)
        if round_no > self.t + 1:
            if self._decided is None:
                self._decided = self._resolve((), 0)
            return []
        # Broadcast all values whose path has depth round_no - 1; paths
        # never repeat a relayer (standard EIG pruning applies at the
        # sender: one does not relay one's own relays).
        messages: List[Message] = []
        depth = round_no - 1
        own_relays: List[Tuple[Path, int]] = []
        for path, value in self.tree.items():
            if len(path) != depth or self.pid in path:
                continue
            own_relays.append((path, value))
            for other in range(self.n):
                if other == self.pid:
                    continue
                messages.append(
                    Message(
                        self.pid, other, "eig",
                        (list(path), value),
                    )
                )
        # A processor hears its own relays: keeps every tree identical
        # across good processors (ties at the fold are broken the same
        # way everywhere).
        for path, value in own_relays:
            self.tree[path + (self.pid,)] = value
        return messages

    def _absorb(self, algo_round: int, inbox: List[Message]) -> None:
        for m in inbox:
            if m.tag != "eig":
                continue
            payload = m.payload
            if (
                not isinstance(payload, (list, tuple))
                or len(payload) != 2
            ):
                continue
            raw_path, value = payload
            path = tuple(raw_path)
            if len(path) != algo_round - 1:
                continue
            if m.sender in path or not isinstance(value, int):
                continue
            self.tree[path + (m.sender,)] = value & 1

    def _resolve(self, path: Path, depth: int) -> int:
        """Fold the subtree at ``path`` by recursive majority."""
        if self._child_index is None:
            # Build the parent -> children index once: scanning the whole
            # tree per node made resolution quadratic in tree size, which
            # at n = 16 (a ~36k-node tree per processor) turned the fold
            # into minutes of work.
            index: Dict[Path, List[Path]] = {}
            for p in self.tree:
                if p:
                    index.setdefault(p[:-1], []).append(p)
            self._child_index = index
        children = self._child_index.get(path, [])
        if depth == self.t + 1 or not children:
            return self.tree.get(path, 0)
        votes = [
            self._resolve(child, depth + 1) for child in children
        ]
        tally = Counter(votes)
        return max(tally, key=lambda v: (tally[v], v))

    def output(self) -> Optional[int]:
        return self._decided


def run_eig(
    n: int,
    inputs: Sequence[int],
    adversary: Optional[Adversary] = None,
    t: Optional[int] = None,
) -> RunResult:
    """Run EIG to completion (t + 2 simulator rounds)."""
    if len(inputs) != n:
        raise ValueError("inputs length must equal n")
    if t is None:
        t = eig_fault_bound(n)
    if adversary is None:
        adversary = NullAdversary(n)
    protocols = [
        EIGProcessor(pid, n, inputs[pid], t) for pid in range(n)
    ]
    network = SyncNetwork(protocols, adversary)
    return network.run(max_rounds=t + 2)
