"""Ben-Or style randomized agreement with *local* coins.

The historical contrast case: no shared coin, so convergence relies on
all good processors flipping the same way by luck — exponential expected
time at Theta(n) faults, polynomial only for t = O(sqrt(n)).  Included as
the "what the global coin buys you" baseline; benchmark E12 shows its
round count exploding where Rabin's and the paper's protocols stay flat.

Synchronous phase (tolerates t < n/5 with these simple thresholds):

1. Broadcast current vote; collect.
2. If > (n + t) / 2 votes for v: propose v, else propose None.
3. Broadcast proposal; if >= t + 1 proposals for v: vote <- v (and decide
   on >= 3t + 1 proposals); else vote <- private coin flip.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Dict, List, Optional, Sequence

from ..net.messages import Message
from ..net.simulator import (
    Adversary,
    NullAdversary,
    ProcessorProtocol,
    RunResult,
    SyncNetwork,
)


def benor_fault_bound(n: int) -> int:
    """Maximum tolerated faults: t < n/5."""
    return max(0, (n - 1) // 5)


class BenOrProcessor(ProcessorProtocol):
    """One good processor running synchronous Ben-Or."""

    def __init__(
        self,
        pid: int,
        n: int,
        input_bit: int,
        rng: random.Random,
        max_phases: int,
    ) -> None:
        super().__init__(pid)
        self.n = n
        self.vote = int(input_bit)
        self.rng = rng
        self.max_phases = max_phases
        self.fault_bound = benor_fault_bound(n)
        self._decided: Optional[int] = None
        self._proposal: Optional[int] = None

    def on_round(self, round_no: int, inbox: List[Message]) -> List[Message]:
        phase = (round_no + 1) // 2
        if phase > self.max_phases or self._decided is not None:
            if self._decided is None:
                self._decided = self.vote
            return []
        if round_no % 2 == 1:
            if round_no > 1:
                self._absorb_proposals(inbox)
            if self._decided is not None:
                return []
            return [
                Message(self.pid, other, "vote", self.vote)
                for other in range(self.n)
                if other != self.pid
            ]
        self._absorb_votes(inbox)
        payload = self._proposal if self._proposal is not None else -1
        return [
            Message(self.pid, other, "propose", payload)
            for other in range(self.n)
            if other != self.pid
        ]

    def _absorb_votes(self, inbox: List[Message]) -> None:
        votes = [self.vote]
        seen = {self.pid}
        for m in inbox:
            if m.tag == "vote" and m.sender not in seen:
                seen.add(m.sender)
                if isinstance(m.payload, int):
                    votes.append(m.payload)
        tally = Counter(votes)
        majority = max(tally, key=lambda v: (tally[v], v))
        threshold = (self.n + self.fault_bound) / 2
        self._proposal = majority if tally[majority] > threshold else None

    def _absorb_proposals(self, inbox: List[Message]) -> None:
        proposals = []
        if self._proposal is not None:
            proposals.append(self._proposal)
        seen = {self.pid}
        for m in inbox:
            if m.tag == "propose" and m.sender not in seen:
                seen.add(m.sender)
                if isinstance(m.payload, int) and m.payload >= 0:
                    proposals.append(m.payload)
        tally = Counter(proposals)
        if tally:
            top = max(tally, key=lambda v: (tally[v], v))
            if tally[top] >= 3 * self.fault_bound + 1:
                self._decided = top
                self.vote = top
                return
            if tally[top] >= self.fault_bound + 1:
                self.vote = top
                return
        self.vote = self.rng.randrange(2)

    def output(self) -> Optional[int]:
        return self._decided


def run_benor(
    n: int,
    inputs: Sequence[int],
    adversary: Optional[Adversary] = None,
    max_phases: int = 64,
    seed: int = 0,
) -> RunResult:
    """Run Ben-Or until decision or the phase cap."""
    if len(inputs) != n:
        raise ValueError("inputs length must equal n")
    if adversary is None:
        adversary = NullAdversary(n)
    protocols = [
        BenOrProcessor(
            pid, n, inputs[pid],
            rng=random.Random((seed << 16) | pid),
            max_phases=max_phases,
        )
        for pid in range(n)
    ]
    network = SyncNetwork(protocols, adversary)
    return network.run(max_rounds=2 * max_phases + 2)
