"""Certified Propagation (CPA): almost-everywhere broadcast on sparse graphs.

Section 2 of the paper situates its work against almost-everywhere
agreement in sparse networks, "studied since 1986", and notes the
structural fact the whole a.e.-to-everywhere machinery exists to fix:

    "It is easy to see that everywhere agreement is impossible in a
    sparse network where the number of faulty processors t is
    sufficient to surround a good processor."

This module makes that sentence executable.  The Certified Propagation
Algorithm (Koo 2004) is the canonical dealer-broadcast protocol that
uses only local information on a sparse graph:

* the dealer sends its value to its neighbors, who accept it directly;
* every other processor accepts value ``v`` once ``t_local + 1``
  distinct neighbors have relayed ``v`` (at most ``t_local`` corrupt
  neighbors per node, so the (t_local+1)-th voice must be honest);
* upon accepting, a processor relays ``v`` to all its neighbors once.

On a well-connected (k log n-regular) graph with random corruption, CPA
reaches all but a vanishing fraction of good processors — the a.e.
broadcast the 1986 line of work provides.  Against an adversary that
*surrounds* a victim (corrupts its whole neighborhood), the victim is
permanently cut off no matter how the rest of the network behaves —
the impossibility the paper's Algorithm 3 escapes only because its
model lets every processor exchange a few messages with *uniformly
random* other processors, which a sparse static topology cannot offer.
"""

from __future__ import annotations

import random
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..net.messages import Message
from ..net.simulator import (
    Adversary,
    AdversaryView,
    NullAdversary,
    ProcessorProtocol,
    RunResult,
    SyncNetwork,
)
from ..topology.sparse_graph import random_regular_graph, theorem5_degree


class CPAProcessor(ProcessorProtocol):
    """One good processor running certified propagation."""

    def __init__(
        self,
        pid: int,
        neighbors: Set[int],
        dealer: int,
        value: Optional[int],
        local_fault_bound: int,
    ) -> None:
        super().__init__(pid)
        self.neighbors = set(neighbors)
        self.dealer = dealer
        self.value = value
        self.local_fault_bound = local_fault_bound
        self.accepted: Optional[int] = None
        self._relayed = False
        self._votes: Dict[int, Set[int]] = defaultdict(set)

    def on_round(self, round_no: int, inbox: List[Message]) -> List[Message]:
        if round_no == 1:
            if self.pid == self.dealer:
                if self.value is None:
                    raise ValueError("dealer needs a value")
                self.accepted = self.value
                self._relayed = True
                return [
                    Message(self.pid, peer, "cpa", self.value)
                    for peer in self.neighbors
                ]
            return []
        for m in inbox:
            if m.tag != "cpa" or not isinstance(m.payload, int):
                continue
            if m.sender not in self.neighbors:
                continue  # non-neighbor traffic is ignored (sparse model)
            if m.sender == self.dealer:
                # Direct word from the dealer is accepted outright.
                if self.accepted is None:
                    self.accepted = m.payload
            else:
                self._votes[m.payload].add(m.sender)
        if self.accepted is None:
            for candidate, voters in self._votes.items():
                if len(voters) >= self.local_fault_bound + 1:
                    self.accepted = candidate
                    break
        if self.accepted is not None and not self._relayed:
            self._relayed = True
            return [
                Message(self.pid, peer, "cpa", self.accepted)
                for peer in self.neighbors
            ]
        return []

    def output(self) -> Optional[int]:
        return self.accepted


class RandomLiarAdversary(Adversary):
    """Random static corruption; corrupted nodes relay the flipped value."""

    def __init__(
        self,
        adjacency: Dict[int, Set[int]],
        budget: int,
        lie_value: int,
        seed: int = 0,
        protected: Optional[Set[int]] = None,
    ) -> None:
        n = len(adjacency)
        super().__init__(n, budget)
        self.adjacency = adjacency
        self.lie_value = int(lie_value)
        rng = random.Random(seed)
        candidates = [
            pid for pid in range(n)
            if protected is None or pid not in protected
        ]
        self._initial = set(rng.sample(candidates, min(budget, len(candidates))))
        self._lied = False

    def select_corruptions(self, round_no: int) -> Set[int]:
        return self._initial if round_no == 1 else set()

    def act(self, view: AdversaryView) -> List[Message]:
        if self._lied:
            return []
        self._lied = True
        out = []
        for bad in sorted(self.corrupted):
            for peer in self.adjacency[bad]:
                if peer not in self.corrupted:
                    out.append(Message(bad, peer, "cpa", self.lie_value))
        return out


class SurroundAdversary(Adversary):
    """The Section 2 impossibility: corrupt the victim's whole neighborhood.

    Corrupted neighbors tell the victim the flipped value (with more
    than t_local distinct voices, which certifies the lie) and behave
    honestly toward everyone else, so only the victim is affected.
    """

    def __init__(
        self,
        adjacency: Dict[int, Set[int]],
        victim: int,
        true_value: int,
        lie_value: int,
    ) -> None:
        n = len(adjacency)
        neighborhood = set(adjacency[victim])
        super().__init__(n, budget=len(neighborhood))
        self.adjacency = adjacency
        self.victim = victim
        self.true_value = int(true_value)
        self.lie_value = int(lie_value)
        self._neighborhood = neighborhood
        self._acted = False

    def select_corruptions(self, round_no: int) -> Set[int]:
        return self._neighborhood if round_no == 1 else set()

    def act(self, view: AdversaryView) -> List[Message]:
        if self._acted:
            return []
        self._acted = True
        out = []
        for bad in sorted(self.corrupted):
            out.append(Message(bad, self.victim, "cpa", self.lie_value))
            for peer in self.adjacency[bad]:
                if peer != self.victim and peer not in self.corrupted:
                    out.append(Message(bad, peer, "cpa", self.true_value))
        return out


@dataclass
class CPAOutcome:
    """Result of one CPA broadcast."""

    n: int
    degree: int
    value: int
    corrupted: Set[int]
    accepted_correct: int
    accepted_wrong: int
    unreached: int

    @property
    def reached_fraction(self) -> float:
        """Fraction of good processors that accepted the correct value."""
        good = self.n - len(self.corrupted)
        return self.accepted_correct / good if good else 0.0


def run_cpa(
    n: int,
    dealer: int,
    value: int,
    degree: Optional[int] = None,
    local_fault_bound: Optional[int] = None,
    adversary_factory=None,
    seed: int = 0,
    rounds: Optional[int] = None,
) -> CPAOutcome:
    """Run one certified-propagation broadcast on a random regular graph.

    Args:
        adversary_factory: callable ``adjacency -> Adversary``; defaults
            to no adversary.
        local_fault_bound: per-neighborhood corruption allowance; the
            default degree/4 keeps certification sound for the random
            corruption rates the benches sweep.
    """
    rng = random.Random(seed)
    if degree is None:
        degree = theorem5_degree(n)
    adjacency = random_regular_graph(n, degree, rng)
    if local_fault_bound is None:
        local_fault_bound = max(1, degree // 4)
    adversary = (
        adversary_factory(adjacency)
        if adversary_factory is not None
        else NullAdversary(n)
    )
    protocols = [
        CPAProcessor(
            pid,
            adjacency[pid],
            dealer,
            value if pid == dealer else None,
            local_fault_bound,
        )
        for pid in range(n)
    ]
    network = SyncNetwork(protocols, adversary)
    result = network.run(max_rounds=rounds if rounds is not None else 3 * n)

    good_outputs = result.good_outputs()
    accepted_correct = sum(1 for v in good_outputs.values() if v == value)
    accepted_wrong = sum(
        1 for v in good_outputs.values() if v is not None and v != value
    )
    unreached = sum(1 for v in good_outputs.values() if v is None)
    return CPAOutcome(
        n=n,
        degree=degree,
        value=value,
        corrupted=set(result.corrupted),
        accepted_correct=accepted_correct,
        accepted_wrong=accepted_wrong,
        unreached=unreached,
    )
