"""Quadratic-cost Byzantine agreement baselines (benchmark E12).

* :mod:`~repro.baselines.phase_king` — deterministic, f < n/4, O(n*f)
  bits per processor.
* :mod:`~repro.baselines.rabin` — randomized with trusted shared coin
  [21], O(1) expected rounds, Theta(n) bits per processor per round.
* :mod:`~repro.baselines.benor` — randomized with local coins only;
  shows what a global coin buys.
"""

from .benor import BenOrProcessor, benor_fault_bound, run_benor
from .disc09_ae2e import (
    AssignmentTargetingAdversary,
    Disc09Processor,
    assignment,
    disc09_fanout,
    run_disc09_ae2e,
)
from .eig import EIGProcessor, eig_fault_bound, run_eig
from .phase_king import (
    PhaseKingProcessor,
    phase_king_fault_bound,
    run_phase_king,
)
from .rabin import RabinProcessor, run_rabin

__all__ = [
    "AssignmentTargetingAdversary",
    "Disc09Processor",
    "assignment",
    "disc09_fanout",
    "run_disc09_ae2e",
    "EIGProcessor",
    "eig_fault_bound",
    "run_eig",
    "BenOrProcessor",
    "benor_fault_bound",
    "run_benor",
    "PhaseKingProcessor",
    "phase_king_fault_bound",
    "run_phase_king",
    "RabinProcessor",
    "run_rabin",
]
