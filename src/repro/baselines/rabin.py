"""Rabin's randomized Byzantine agreement with a trusted global coin [21].

The paper runs a scalable variant of this algorithm on sparse graphs
(Algorithm 5).  This module is the *full-network* original: each round is
an all-to-all vote exchange followed by a shared coin flip, terminating in
O(1) expected rounds.  Per-processor cost is Theta(n) bits per round —
total Theta(n^2) per round, the baseline bit growth of E12.

Round structure (tolerates t < n/4 with these thresholds):

* send vote to all; tally.
* if some value has >= 2n/3 support: adopt it, and decide if support is
  overwhelming (>= 2n/3 for a second confirmation round);
* else adopt the global coin.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Callable, Dict, List, Optional, Sequence

from ..net.messages import Message
from ..net.simulator import (
    Adversary,
    NullAdversary,
    ProcessorProtocol,
    RunResult,
    SyncNetwork,
)


class RabinProcessor(ProcessorProtocol):
    """One good processor running Rabin's global-coin agreement."""

    def __init__(
        self,
        pid: int,
        n: int,
        input_bit: int,
        coin_of_round: Callable[[int], int],
        max_rounds: int,
    ) -> None:
        super().__init__(pid)
        self.n = n
        self.vote = int(input_bit)
        self.coin_of_round = coin_of_round
        self.max_rounds = max_rounds
        self._decided: Optional[int] = None
        self._decide_pending: Optional[int] = None

    def on_round(self, round_no: int, inbox: List[Message]) -> List[Message]:
        if round_no > 1:
            self._update(round_no - 1, inbox)
        if self._decided is not None or round_no > self.max_rounds:
            if self._decided is None:
                self._decided = self.vote
            return []
        return [
            Message(self.pid, other, "vote", self.vote)
            for other in range(self.n)
            if other != self.pid
        ]

    def _update(self, algo_round: int, inbox: List[Message]) -> None:
        votes = [self.vote]
        seen = {self.pid}
        for m in inbox:
            if m.tag == "vote" and m.sender not in seen:
                seen.add(m.sender)
                if isinstance(m.payload, int):
                    votes.append(m.payload)
        tally = Counter(votes)
        majority = max(tally, key=lambda v: (tally[v], v))
        count = tally[majority]
        if self._decide_pending is not None:
            # Confirmation round passed: commit.
            if majority == self._decide_pending and count >= (2 * self.n) // 3:
                self._decided = self._decide_pending
                self.vote = self._decided
                return
            self._decide_pending = None
        if count >= (2 * self.n) // 3:
            self.vote = majority
            self._decide_pending = majority
        else:
            self.vote = self.coin_of_round(algo_round)

    def output(self) -> Optional[int]:
        return self._decided


def run_rabin(
    n: int,
    inputs: Sequence[int],
    adversary: Optional[Adversary] = None,
    max_rounds: int = 64,
    seed: int = 0,
) -> RunResult:
    """Run Rabin's agreement with a trusted shared coin oracle."""
    if len(inputs) != n:
        raise ValueError("inputs length must equal n")
    if adversary is None:
        adversary = NullAdversary(n)
    coin_rng = random.Random(seed)
    coins = [coin_rng.randrange(2) for _ in range(max_rounds + 1)]

    protocols = [
        RabinProcessor(
            pid, n, inputs[pid],
            coin_of_round=lambda r: coins[r % len(coins)],
            max_rounds=max_rounds,
        )
        for pid in range(n)
    ]
    network = SyncNetwork(protocols, adversary)
    return network.run(max_rounds=max_rounds + 2)
