"""The global coin subsequence problem (paper Sections 1.1, 3.5, Theorem 3).

An (s, t) global coin subsequence is a string of s words of which t are
uniform, independent random values agreed upon by (almost) all good
processors; the other s - t may be adversarial.  The tournament's root
contestants supply it (Section 3.5): each contestant's output block is
revealed with sendDown/sendOpen, and since >= 2/3 of the surviving arrays
are good (Lemma 6), >= 2s/3 of the words are genuinely random.

:class:`GlobalCoinSubsequence` wraps the revealed words with per-processor
views; helpers convert words into the [1..sqrt(n)] labels Algorithm 3
consumes and into the coin bits Algorithm 5 consumes.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple


@dataclass
class GlobalCoinSubsequence:
    """A revealed coin-word sequence with almost-everywhere views.

    Attributes:
        views: per processor, its view of each word (None = not learned).
        truth: the dealer-side word values (None for adversarial words,
            whose "truth" is whatever the adversary injected).
        corrupted: processors corrupted when the sequence was produced.
    """

    views: Dict[int, List[Optional[int]]]
    truth: List[Optional[int]]
    corrupted: Set[int]

    @property
    def length(self) -> int:
        """Sequence length s."""
        return len(self.truth)

    def good_indices(self) -> List[int]:
        """Word positions that are genuinely random (good contestant)."""
        return [i for i, t in enumerate(self.truth) if t is not None]

    def good_fraction(self) -> float:
        """Fraction of words that are genuinely random (t/s)."""
        return len(self.good_indices()) / self.length if self.length else 0.0

    def agreed_word(self, index: int) -> Optional[int]:
        """Modal view among good processors for one word."""
        votes = [
            views[index]
            for pid, views in self.views.items()
            if pid not in self.corrupted
            and index < len(views)
            and views[index] is not None
        ]
        if not votes:
            return None
        tally = Counter(votes)
        return max(tally, key=lambda w: (tally[w], -w))

    def agreement_fraction(self, index: int) -> float:
        """Fraction of good processors whose view matches the modal word."""
        agreed = self.agreed_word(index)
        good = [p for p in self.views if p not in self.corrupted]
        if agreed is None or not good:
            return 0.0
        matches = sum(
            1
            for p in good
            if index < len(self.views[p]) and self.views[p][index] == agreed
        )
        return matches / len(good)

    def k_sequence(self, sqrt_n: int) -> List[int]:
        """Algorithm 3 labels: each agreed word mapped into [1..sqrt_n]."""
        ks: List[int] = []
        for index in range(self.length):
            word = self.agreed_word(index)
            ks.append(1 + (word % sqrt_n) if word is not None else 1)
        return ks

    def bit_sequence(self) -> List[int]:
        """Algorithm 5 coins: the agreed words' low bits."""
        bits: List[int] = []
        for index in range(self.length):
            word = self.agreed_word(index)
            bits.append((word & 1) if word is not None else 0)
        return bits


def synthetic_subsequence(
    n: int,
    length: int,
    good_indices: Sequence[int],
    rng: random.Random,
    confused_fraction: float = 0.0,
    adversary_word: int = 0,
    word_range: int = 1 << 30,
) -> GlobalCoinSubsequence:
    """A synthetic (s, t) sequence for standalone benchmarks/tests.

    Good positions carry a fresh random word seen by all but a
    ``confused_fraction`` of processors; other positions carry
    ``adversary_word`` (known to the adversary in advance).
    """
    good_set = set(good_indices)
    truth: List[Optional[int]] = []
    views: Dict[int, List[Optional[int]]] = {p: [] for p in range(n)}
    for index in range(length):
        if index in good_set:
            word = rng.randrange(word_range)
            truth.append(word)
            confused = set(
                rng.sample(range(n), int(confused_fraction * n))
            )
            for p in range(n):
                views[p].append(None if p in confused else word)
        else:
            truth.append(None)
            for p in range(n):
                views[p].append(adversary_word)
    return GlobalCoinSubsequence(views=views, truth=truth, corrupted=set())
