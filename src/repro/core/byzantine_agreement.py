"""Everywhere Byzantine agreement — paper Section 5, Algorithm 4, Theorem 1.

The composition:

1. Run the almost-everywhere tournament (Algorithm 2) on the input bits,
   extended (Section 3.5) to also output a global coin subsequence.
2. Repeatedly run almost-everywhere-to-everywhere (Algorithm 3), each
   iteration keyed by the next number of the coin subsequence, until every
   good processor has decided.

Per Theorem 1 this yields agreement everywhere w.h.p. in polylogarithmic
rounds with O~(sqrt(n)) bits per processor — the Algorithm 3 phase
dominates the per-processor cost.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set

from ..adversary.adaptive import TournamentAdversary
from ..net.simulator import Adversary, NullAdversary
from .ae_to_everywhere import (
    AEToEResult,
    FakeResponderAdversary,
    run_ae_to_everywhere,
)
from .almost_everywhere import Tournament, TournamentResult
from .global_coin import GlobalCoinSubsequence
from .parameters import ProtocolParameters


@dataclass
class EverywhereBAResult:
    """Outcome of the full Theorem 1 protocol."""

    bit: int
    ae_result: TournamentResult
    ae2e_result: AEToEResult
    coin: GlobalCoinSubsequence
    bits_per_processor: Dict[int, int]

    @property
    def corrupted(self) -> Set[int]:
        """Processors the adversary controlled by the end of the run."""
        return self.ae_result.corrupted

    def success(self) -> bool:
        """Every good processor decided the agreed bit."""
        return all(
            value == self.bit
            for pid, value in self.ae2e_result.decided.items()
            if pid not in self.corrupted
        )

    def is_valid(self) -> bool:
        """The agreed bit was the input of at least one good processor."""
        return any(
            self.ae_result.inputs[p] == self.bit
            for p in self.ae_result.inputs
            if p not in self.corrupted
        )

    def max_bits_per_processor(self) -> int:
        """Largest bit total any good processor sent, both phases combined."""
        good = [
            p for p in self.bits_per_processor if p not in self.corrupted
        ]
        return max((self.bits_per_processor[p] for p in good), default=0)

    def total_rounds(self) -> int:
        """Rounds of both phases combined."""
        return self.ae_result.ledger.rounds + self.ae2e_result.rounds


class EverywhereBAExecution:
    """Phase-stepped Theorem 1 execution (Algorithm 2 then Algorithm 3).

    :meth:`phases` is a generator of consumed round counts, one entry
    per tournament phase plus one for the almost-everywhere-to-
    everywhere push.  Lock-step drivers (the engine's batch backend via
    :mod:`repro.core.tournament_net`) burn that many simulator rounds
    between resumptions, so many full Theorem 1 runs interleave over one
    round loop; draining the generator in place is exactly
    :func:`run_everywhere_ba`.  The final phase leaves :attr:`result`
    set.
    """

    def __init__(
        self,
        n: int,
        inputs: Sequence[int],
        tournament_adversary: Optional[TournamentAdversary] = None,
        ae2e_adversary: Optional[Adversary] = None,
        params: Optional[ProtocolParameters] = None,
        seed: int = 0,
        coin_words: int = 2,
        forge_fake_responses: bool = True,
    ) -> None:
        if params is None:
            params = ProtocolParameters.simulation(n)
        if tournament_adversary is None:
            tournament_adversary = TournamentAdversary(n, budget=0)
        self.n = n
        self.inputs = inputs
        self.params = params
        self.seed = seed
        self.ae2e_adversary = ae2e_adversary
        self.forge_fake_responses = forge_fake_responses
        self.tournament = Tournament(
            params,
            inputs,
            tournament_adversary,
            seed=seed,
            output_words=coin_words,
        )
        self.result: Optional[EverywhereBAResult] = None

    def phases(self):
        """Generator of per-phase round counts; sets :attr:`result` at the end."""
        # Phase 1: almost-everywhere agreement + coin subsequence.
        yield from self.tournament.run_stepwise()
        ae_result = self.tournament.result
        assert ae_result is not None
        n, params, seed = self.n, self.params, self.seed
        bit = ae_result.agreed_bit()

        coin = GlobalCoinSubsequence(
            views=ae_result.output_views,
            truth=ae_result.output_truth,
            corrupted=ae_result.corrupted,
        )
        k_sequence = coin.k_sequence(params.sqrt_n())
        if not k_sequence:
            k_sequence = [1]

        # Knowledgeable = good processors holding the almost-everywhere bit.
        knowledgeable = {
            p
            for p, vote in ae_result.votes.items()
            if p not in ae_result.corrupted and vote == bit
        }

        # Phase 2: push the bit everywhere.
        ae2e_adversary = self.ae2e_adversary
        if ae2e_adversary is None:
            if self.forge_fake_responses and ae_result.corrupted:
                ae2e_adversary = FakeResponderAdversary(
                    n,
                    targets=sorted(ae_result.corrupted),
                    fake_message=1 - bit,
                    seed=seed,
                )
            else:
                ae2e_adversary = NullAdversary(n)
        ae2e_result = run_ae_to_everywhere(
            params,
            knowledgeable=knowledgeable,
            message=bit,
            k_sequence=k_sequence,
            adversary=ae2e_adversary,
            seed=seed,
        )

        bits_per_processor = {
            p: ae_result.ledger.sent_bits.get(p, 0)
            + ae2e_result.sent_bits.get(p, 0)
            for p in range(n)
        }
        self.result = EverywhereBAResult(
            bit=bit,
            ae_result=ae_result,
            ae2e_result=ae2e_result,
            coin=coin,
            bits_per_processor=bits_per_processor,
        )
        yield ae2e_result.rounds


def run_everywhere_ba(
    n: int,
    inputs: Sequence[int],
    tournament_adversary: Optional[TournamentAdversary] = None,
    ae2e_adversary: Optional[Adversary] = None,
    params: Optional[ProtocolParameters] = None,
    seed: int = 0,
    coin_words: int = 2,
    forge_fake_responses: bool = True,
) -> EverywhereBAResult:
    """Algorithm 4 end to end.

    Args:
        n: processors.
        inputs: BA input bit per processor.
        tournament_adversary: adversary for the tournament phase; its
            corrupted set carries over into the Algorithm 3 phase.
        ae2e_adversary: explicit Algorithm 3 adversary; by default the
            tournament's corrupted set re-attacks as
            :class:`FakeResponderAdversary` when
            ``forge_fake_responses`` is set.
        coin_words: output words revealed per root contestant (the coin
            subsequence length is contestants x coin_words).

    Implemented as a drain of :class:`EverywhereBAExecution` — the same
    phase sequence a stepped driver resumes — so monolithic and
    multiplexed executions are bit-identical by construction.
    """
    execution = EverywhereBAExecution(
        n,
        inputs,
        tournament_adversary=tournament_adversary,
        ae2e_adversary=ae2e_adversary,
        params=params,
        seed=seed,
        coin_words=coin_words,
        forge_fake_responses=forge_fake_responses,
    )
    for _ in execution.phases():
        pass
    assert execution.result is not None
    return execution.result
