"""Almost-everywhere Byzantine agreement — the tournament of Algorithm 2.

Processors' candidate *arrays* (blocks of bin choices and coin words,
Definition 4) are secret-shared into the leaf committees, climb the tree
via ``sendSecretUp`` as elections whittle them down (w winners per node),
and the survivors' coin words drive one final almost-everywhere agreement
at the root, where every processor participates.

The phases per level-l node C (Figure 1 right panel):

1. *Expose bin choices*: sendDown + sendOpen of every candidate's level-l
   bin-choice word.
2. *Agree on bin choices*: one AEBA-with-unreliable-coins instance per
   candidate (bitwise over the bin-choice word), coins carved out of the
   candidates' own level-l coin words.
3. *Elect*: Feige lightest bin over the agreed choices.
4. *Send shares of winners*: the winners' remaining blocks are re-shared
   up to C's parent and erased locally.

The adversary moves exactly where the paper grants it moves: it may
corrupt processors at any phase boundary (adaptively, e.g. the owners of
winning arrays — which gains it nothing, the point of electing arrays),
controls the contents of corrupted arrays, tampering of shares held by
corrupted processors, and anti-majority voting inside every agreement
instance.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..adversary.adaptive import TournamentAdversary
from ..crypto.field import DEFAULT_FIELD, PrimeField
from ..net.accounting import BitLedger
from ..net.rng import child_rng
from ..topology.links import LinkStructure
from ..topology.tree import NodeId, TreeTopology
from .blocks import CandidateArray, generate_adversarial_array, generate_array
from .communication import SecretKey, TreeCommunicator
from .election import ElectionResult, lightest_bin_election
from .parameters import ProtocolParameters
from .unreliable_coin_ba import run_aeba_dataflow, vote_threshold


@dataclass
class LevelStats:
    """Instrumentation per tree level (drives Lemma 6 / E6)."""

    level: int
    elections: int
    candidates: int
    good_candidates: int
    winners: int
    good_winners: int
    agreement_fraction_mean: float
    bad_nodes: int
    #: Lemma 3(1) audit: of the sampled still-secret words at this level,
    #: how many the adversary coalition could already reconstruct from
    #: the shares it holds (0 unless a path node went bad).
    secrets_compromised: int = 0
    secrets_audited: int = 0

    @property
    def good_candidate_fraction(self) -> float:
        """Fraction of this level's candidate arrays that are good."""
        return self.good_candidates / self.candidates if self.candidates else 0.0

    @property
    def good_winner_fraction(self) -> float:
        """Fraction of this level's winning arrays that are good."""
        return self.good_winners / self.winners if self.winners else 0.0


@dataclass
class TournamentResult:
    """Outcome of one tournament execution."""

    votes: Dict[int, int]
    corrupted: Set[int]
    level_stats: List[LevelStats]
    ledger: BitLedger
    root_contestants: List[int]
    good_coin_rounds: int
    coin_rounds: int
    output_views: Dict[int, List[Optional[int]]]
    output_truth: List[Optional[int]]
    inputs: Dict[int, int]

    def good_votes(self) -> Dict[int, int]:
        """Votes of uncorrupted processors."""
        return {p: v for p, v in self.votes.items() if p not in self.corrupted}

    def agreement_fraction(self) -> float:
        """Fraction of good processors holding the modal good vote."""
        good = self.good_votes()
        if not good:
            return 0.0
        tally = Counter(good.values())
        return max(tally.values()) / len(good)

    def agreed_bit(self) -> int:
        """The modal vote among good processors (ties break to 1)."""
        tally = Counter(self.good_votes().values())
        return max(tally, key=lambda b: (tally[b], b))

    def is_valid(self) -> bool:
        """Output equals some good processor's input (BA validity)."""
        bit = self.agreed_bit()
        return any(
            self.inputs[p] == bit
            for p in self.votes
            if p not in self.corrupted
        )


class Tournament:
    """One end-to-end execution of Algorithm 2 (plus Section 3.5 outputs).

    Args:
        params: protocol parameters (typically
            ``ProtocolParameters.simulation(n)``).
        inputs: each processor's Byzantine-agreement input bit.
        adversary: a :class:`TournamentAdversary` (hooks at every phase).
        seed: master seed; all topology/private coins derive from it.
        output_words: words per root contestant revealed for the global
            coin subsequence (Section 3.5); 0 disables.
    """

    def __init__(
        self,
        params: ProtocolParameters,
        inputs: Sequence[int],
        adversary: TournamentAdversary,
        seed: int = 0,
        output_words: int = 0,
        field: PrimeField = DEFAULT_FIELD,
    ) -> None:
        if len(inputs) != params.n:
            raise ValueError("inputs length must equal params.n")
        self.params = params
        self.inputs = [int(b) for b in inputs]
        self.adversary = adversary
        self.seed = seed
        self.output_words = output_words
        self.field = field

        self.ledger = BitLedger(params.n)
        self.tree = TreeTopology(
            n=params.n, q=params.q, k1=params.k1,
            rng=child_rng(seed, "tree"),
        )
        self.links = LinkStructure(
            self.tree,
            uplink_degree=params.uplink_degree,
            ell_link_degree=params.ell_link_degree,
            intra_degree=params.intra_degree,
            rng=child_rng(seed, "links"),
        )
        self.comm = TreeCommunicator(
            self.tree,
            self.links,
            field,
            self.ledger,
            rng=child_rng(seed, "comm"),
            threshold_fraction=params.share_threshold_fraction,
        )
        self.election_levels = list(range(2, self.tree.lstar))
        self.arrays: Dict[int, CandidateArray] = {}
        self._rounds = 0
        self.level_stats: List[LevelStats] = []
        #: Arrays whose owner was corrupted at *generation* time.  An
        #: array stays good even if its owner is corrupted later — the
        #: owner erased it after sharing, so adaptive takeovers of
        #: election winners gain the adversary nothing (the paper's key
        #: property).
        self.bad_arrays: Set[int] = set()
        self._layout_cache: Dict[int, Dict[str, object]] = {}
        #: Set by :meth:`run_stepwise` once the final phase completes.
        self.result: Optional[TournamentResult] = None

    # -- word layout -----------------------------------------------------------------

    def _tick(self, rounds: int) -> None:
        """Advance the synchronous-round clock by ``rounds``.

        The orchestration executes whole phases at once; the clock
        records what a lock-step execution would need: one round per
        tree hop or per vote exchange (elections at the same level run
        in parallel, as in the paper).
        """
        self._rounds += rounds
        for _ in range(rounds):
            self.ledger.tick_round()

    def _array_keys(self, owner: int) -> Dict[str, object]:
        """Key layout of one array's words, in sendSecretUp order."""
        cached = self._layout_cache.get(owner)
        if cached is not None:
            return cached
        layout: Dict[str, object] = {"levels": {}}
        index = 0
        for level in self.election_levels:
            r = self.params.candidates_per_election(level)
            layout["levels"][level] = {
                "bin": (owner, index),
                "coins": [(owner, index + 1 + j) for j in range(r)],
            }
            index += 1 + r
        layout["final"] = [(owner, index + j) for j in range(2)]
        index += 2
        layout["output"] = [
            (owner, index + j) for j in range(self.output_words)
        ]
        self._layout_cache[owner] = layout
        return layout

    def _keys_from_level(self, owner: int, level: int) -> List[SecretKey]:
        """Keys for blocks at levels > ``level`` plus final/output blocks."""
        layout = self._array_keys(owner)
        keys: List[SecretKey] = []
        for lvl, entries in layout["levels"].items():
            if lvl > level:
                keys.append(entries["bin"])
                keys.extend(entries["coins"])
        keys.extend(layout["final"])
        keys.extend(layout["output"])
        return keys

    def _all_keys(self, owner: int) -> List[SecretKey]:
        return self._keys_from_level(owner, 0)

    # -- phases ----------------------------------------------------------------------

    def run(self) -> TournamentResult:
        """Execute the whole tournament; see the module docstring."""
        for _ in self.run_stepwise():
            pass
        assert self.result is not None
        return self.result

    def run_stepwise(self):
        """Phase-by-phase execution: a generator of consumed round counts.

        Each ``next()`` executes one whole tournament phase (array
        dealing, one level's elections, the root agreement) and yields
        the number of synchronous rounds that phase occupied on the
        clock.  Lock-step drivers — the engine's batch backend, via
        :mod:`repro.core.tournament_net` — burn that many simulator
        rounds before resuming, so many tournaments interleave over one
        round loop.  Draining the generator is exactly :meth:`run`
        (which is implemented as precisely that), so stepped and
        monolithic executions are bit-identical by construction.  The
        final phase leaves :attr:`result` set.
        """
        params = self.params
        adversary = self.adversary
        adversary.initial_corruptions()
        self.bad_arrays = set(adversary.corrupted)
        mark = self._rounds
        self._generate_and_share_arrays()
        yield self._rounds - mark

        # Candidates entering level 2: the leaf owners, one per leaf.
        winners_per_node: Dict[NodeId, List[int]] = {
            NodeId(1, i): [i] for i in range(params.n)
        }

        for level in self.election_levels:
            mark = self._rounds
            winners_per_node = self._run_level(level, winners_per_node)
            yield self._rounds - mark

        mark = self._rounds
        votes, contestants, good_coins, coin_rounds = self._root_agreement(
            winners_per_node
        )
        output_views, output_truth = self._reveal_outputs(contestants)

        self.result = TournamentResult(
            votes=votes,
            corrupted=set(adversary.corrupted),
            level_stats=self.level_stats,
            ledger=self.ledger,
            root_contestants=contestants,
            good_coin_rounds=good_coins,
            coin_rounds=coin_rounds,
            output_views=output_views,
            output_truth=output_truth,
            inputs={p: self.inputs[p] for p in range(params.n)},
        )
        yield self._rounds - mark

    def _generate_and_share_arrays(self) -> None:
        """Algorithm 2 step 1: arrays generated, shared, and sent to level 2."""
        params = self.params
        for owner in range(params.n):
            if owner in self.adversary.corrupted:
                array = generate_adversarial_array(
                    owner,
                    params,
                    self.election_levels,
                    bin_choice_fn=self.adversary.bad_bin_choice,
                    coin_word_fn=lambda level, o, i: self.adversary.bad_coin_word(
                        level, o, i
                    )
                    % self.field.modulus,
                    final_words=2,
                    output_words=self.output_words,
                )
            else:
                array = generate_array(
                    owner,
                    params,
                    self.election_levels,
                    self.field,
                    child_rng(self.seed, "array", owner),
                    final_words=2,
                    output_words=self.output_words,
                )
            self.arrays[owner] = array
            words = array.all_words()
            keys = self._all_keys(owner)
            self.comm.initial_share(
                owner, dict(zip(keys, words))
            )
        # Step 1b: leaf committees push the 1-shares up to level 2.
        self._tick(1)  # the initial dealing round
        if self.tree.lstar >= 2:
            self.ledger.set_phase("send_up_level_1")
            for leaf in self.tree.nodes_on_level(1):
                owner = leaf.index
                self.comm.send_secret_up(
                    leaf, self._all_keys(owner), self.adversary.corrupted
                )
            self._tick(1)

    def _run_level(
        self,
        level: int,
        winners_below: Dict[NodeId, List[int]],
    ) -> Dict[NodeId, List[int]]:
        """Algorithm 2 step 2 for one level: elections at every level node."""
        params = self.params
        stats = LevelStats(
            level=level,
            elections=0,
            candidates=0,
            good_candidates=0,
            winners=0,
            good_winners=0,
            agreement_fraction_mean=0.0,
            bad_nodes=0,
        )
        agreement_fractions: List[float] = []
        winners_here: Dict[NodeId, List[int]] = {}
        threshold = params.good_node_threshold

        for node in self.tree.nodes_on_level(level):
            candidates: List[int] = []
            for child in self.tree.children(node):
                candidates.extend(winners_below.get(child, []))
            if not candidates:
                winners_here[node] = []
                continue

            if not self.tree.is_good_node(
                node, self.adversary.corrupted, threshold
            ):
                stats.bad_nodes += 1

            # Lemma 3(1) audit: just before the reveal, can the coalition
            # already read the candidates' bin words?  (Sampled to keep
            # the audit cheap.)
            for owner in candidates[:2]:
                key = self._array_keys(owner)["levels"][level]["bin"]
                stats.secrets_audited += 1
                if self.comm.adversary_can_reconstruct(
                    key, self.adversary.corrupted
                ):
                    stats.secrets_compromised += 1

            result, agreement_fraction = self._node_election(
                node, level, candidates
            )
            agreement_fractions.append(agreement_fraction)
            winner_owners = [candidates[j] for j in result.winners]
            winners_here[node] = winner_owners

            stats.elections += 1
            stats.candidates += len(candidates)
            stats.good_candidates += sum(
                1 for c in candidates if c not in self.bad_arrays
            )
            stats.winners += len(winner_owners)
            stats.good_winners += sum(
                1 for c in winner_owners if c not in self.bad_arrays
            )

            # The adaptive adversary's signature move: corrupt the winners
            # (now that it knows who won).  Arrays already committed their
            # randomness, so this is too late to help — which is the
            # paper's point.
            newly = self.adversary.corrupt_after_election(
                level, winner_owners, self.tree.members(node)
            )

            # Winners' remaining blocks climb to the parent.
            if node.level < self.tree.lstar:
                self.ledger.set_phase(f"send_up_level_{level}")
                for owner in winner_owners:
                    self.comm.send_secret_up(
                        node,
                        self._keys_from_level(owner, level),
                        self.adversary.corrupted,
                    )

        stats.agreement_fraction_mean = (
            sum(agreement_fractions) / len(agreement_fractions)
            if agreement_fractions
            else 1.0
        )
        self.level_stats.append(stats)
        # Round accounting for this level (all same-level elections run
        # in parallel): reveal cascade down (level-1 hops) + leaf
        # exchange + sendOpen, the per-bit agreement rounds, and the
        # winners' send-up hop.
        params = self.params
        num_bits = max(1, (params.num_bins(level) - 1).bit_length())
        self._tick((level - 1) + 2 + num_bits * params.ba_rounds + 1)
        return winners_here

    def _node_election(
        self,
        node: NodeId,
        level: int,
        candidates: List[int],
    ) -> Tuple[ElectionResult, float]:
        """Phases 1-3 at one node: expose, agree, elect."""
        params = self.params
        corrupted = self.adversary.corrupted
        num_bins = params.num_bins(level)
        members = sorted(self.tree.members(node))

        # Phase 1: expose bin choices (and this level's coin words — the
        # coins are consumed round by round below, but their values were
        # committed before the reveal began).
        self.ledger.set_phase(f"expose_level_{level}")
        bin_keys = [
            self._array_keys(owner)["levels"][level]["bin"]
            for owner in candidates
        ]
        coin_keys: List[SecretKey] = []
        for owner in candidates:
            coin_keys.extend(
                self._array_keys(owner)["levels"][level]["coins"]
            )
        outcome = self.comm.reveal(
            node, bin_keys + coin_keys, corrupted
        )

        # Phase 2: agree on every candidate's bin choice via AEBA with the
        # revealed coin words.
        self.ledger.set_phase(f"agree_level_{level}")
        commit_threshold = vote_threshold(params.epsilon, params.epsilon0)
        num_bits = max(1, (num_bins - 1).bit_length())
        neighbors = {
            m: self.links.intra_neighbors(node, m) for m in members
        }
        agreed_choices: List[int] = []
        fractions: List[float] = []
        good_members = [m for m in members if m not in corrupted]
        for ci, owner in enumerate(candidates):
            bin_key = bin_keys[ci]
            value_bits: List[int] = []
            for bit_index in range(num_bits):
                inputs = {}
                for m in good_members:
                    view = outcome.node_views.get(m, {}).get(bin_key)
                    word = view if view is not None else 0
                    inputs[m] = (word >> bit_index) & 1

                def coin_view(round_index: int, pid: int, ci=ci, bit_index=bit_index):
                    # Round j's coin comes from candidate j's word for
                    # this candidate (B_j(i) in Definition 4).
                    j = (bit_index * params.ba_rounds + round_index) % len(
                        candidates
                    )
                    key = self._array_keys(candidates[j])["levels"][level][
                        "coins"
                    ][ci]
                    word = outcome.node_views.get(pid, {}).get(key)
                    return (word & 1) if word is not None else 0

                votes = run_aeba_dataflow(
                    members=members,
                    inputs=inputs,
                    neighbors=neighbors,
                    coin_views=coin_view,
                    num_rounds=params.ba_rounds,
                    bad_members={m for m in members if m in corrupted},
                    bad_vote_fn=_anti_majority_vote,
                    threshold=commit_threshold,
                    on_traffic=lambda s, r, bits: self.ledger.record_abstract(
                        s, r, bits
                    ),
                    word_bits=1,
                )
                tally = Counter(votes.values())
                if tally:
                    modal_bit = max(tally, key=lambda b: (tally[b], b))
                    fractions.append(tally[modal_bit] / len(votes))
                else:
                    modal_bit = 0
                value_bits.append(modal_bit)
            value = sum(bit << i for i, bit in enumerate(value_bits))
            agreed_choices.append(value % num_bins)

        # Phase 3: Feige's lightest bin.
        result = lightest_bin_election(
            agreed_choices, num_bins, params.winners_per_election
        )
        mean_fraction = sum(fractions) / len(fractions) if fractions else 1.0
        return result, mean_fraction

    def _root_agreement(
        self,
        winners_below: Dict[NodeId, List[int]],
    ) -> Tuple[Dict[int, int], List[int], int, int]:
        """Algorithm 2 step 3: AEBA over everyone at the root."""
        params = self.params
        corrupted = self.adversary.corrupted
        root = self.tree.root()
        contestants: List[int] = []
        for child in self.tree.children(root):
            contestants.extend(winners_below.get(child, []))
        if not contestants:
            contestants = winners_below.get(root, []) or [0]

        self.ledger.set_phase("root_reveal")
        final_keys = [
            self._array_keys(owner)["final"][0] for owner in contestants
        ]
        outcome = self.comm.reveal(root, final_keys, corrupted)

        # Coin quality bookkeeping: a round is good when its contestant is
        # good and almost all good members learned the true word.
        good_rounds = 0
        members = sorted(self.tree.members(root))
        good_members = [m for m in members if m not in corrupted]
        for owner, key in zip(contestants, final_keys):
            if owner in self.bad_arrays:
                continue
            true_word = self.arrays[owner].final_block[0]
            learned = sum(
                1
                for m in good_members
                if outcome.node_views.get(m, {}).get(key) == true_word
            )
            if good_members and learned / len(good_members) >= 0.9:
                good_rounds += 1

        self.ledger.set_phase("root_agreement")
        commit_threshold = vote_threshold(params.epsilon, params.epsilon0)
        neighbors = {
            m: self.links.intra_neighbors(root, m) for m in members
        }
        inputs = {m: self.inputs[m] for m in good_members}
        rounds = max(len(contestants), params.ba_rounds)

        def coin_view(round_index: int, pid: int) -> int:
            key = final_keys[round_index % len(final_keys)]
            word = outcome.node_views.get(pid, {}).get(key)
            if word is None:
                return 0
            # Re-use the word's bits across repeat passes over contestants.
            shift = round_index // len(final_keys)
            return (word >> shift) & 1

        votes = run_aeba_dataflow(
            members=members,
            inputs=inputs,
            neighbors=neighbors,
            coin_views=coin_view,
            num_rounds=rounds,
            bad_members={m for m in members if m in corrupted},
            bad_vote_fn=_anti_majority_vote,
            threshold=commit_threshold,
            on_traffic=lambda s, r, bits: self.ledger.record_abstract(
                s, r, bits
            ),
            word_bits=1,
        )
        # Root reveal cascade + the agreement rounds.
        self._tick((self.tree.lstar - 1) + 2 + rounds)
        return dict(votes), contestants, good_rounds, rounds

    def _reveal_outputs(
        self, contestants: List[int]
    ) -> Tuple[Dict[int, List[Optional[int]]], List[Optional[int]]]:
        """Section 3.5: reveal the output blocks of the root contestants."""
        if self.output_words == 0:
            return {}, []
        corrupted = self.adversary.corrupted
        root = self.tree.root()
        self.ledger.set_phase("output_reveal")
        keys: List[SecretKey] = []
        truth: List[Optional[int]] = []
        for w in range(self.output_words):
            for owner in contestants:
                layout = self._array_keys(owner)
                if w < len(layout["output"]):
                    keys.append(layout["output"][w])
                    if owner in self.bad_arrays:
                        truth.append(None)
                    else:
                        truth.append(self.arrays[owner].output_block[w])
        outcome = self.comm.reveal(root, keys, corrupted)
        views: Dict[int, List[Optional[int]]] = {}
        for member in self.tree.members(root):
            member_views = outcome.node_views.get(member, {})
            views[member] = [member_views.get(key) for key in keys]
        return views, truth


def _anti_majority_vote(
    round_index: int, pid: int, good_votes: Dict[int, int]
) -> int:
    """Rushing bad member: vote against the current good majority."""
    tally = Counter(good_votes.values())
    if not tally:
        return pid % 2
    majority = max(tally, key=lambda b: (tally[b], b))
    return 1 - majority


def run_almost_everywhere_ba(
    n: int,
    inputs: Sequence[int],
    adversary: Optional[TournamentAdversary] = None,
    params: Optional[ProtocolParameters] = None,
    seed: int = 0,
    output_words: int = 0,
) -> TournamentResult:
    """Convenience wrapper: build parameters and run one tournament."""
    if params is None:
        params = ProtocolParameters.simulation(n)
    if adversary is None:
        adversary = TournamentAdversary(n, budget=0)
    tournament = Tournament(
        params, inputs, adversary, seed=seed, output_words=output_words
    )
    return tournament.run()
