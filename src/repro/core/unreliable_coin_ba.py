"""Almost-everywhere Byzantine agreement with unreliable global coins.

Paper Appendix A.2, Algorithm 5, analysed in Theorem 5 (and used as the
per-node agreement engine of the tournament; Theorem 3 is its statement
in the main text).  This is Rabin's randomized agreement run on a sparse
``k log n``-regular graph:

    each round:  send vote to neighbors; let maj/fraction be the majority
    bit and its fraction among received votes; get a global coin;
    if fraction >= (1 - eps0)(2/3 + eps/2): vote <- maj
    else: vote <- coin.

Two implementations share one pure round-update function:

* :class:`SparseAEBAProcessor` — actor protocol for the full
  message-level simulator (benchmarks E3/E11 run it against adaptive
  adversaries and flooding).
* :func:`run_aeba_dataflow` — a fast vectorised execution over explicit
  vote dictionaries, used inside the tournament where thousands of
  instances run (one per candidate bin choice per node).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..net.messages import Message
from ..net.simulator import (
    Adversary,
    NullAdversary,
    ProcessorProtocol,
    RunResult,
    SyncNetwork,
)
from ..topology.sparse_graph import random_regular_graph, theorem5_degree
from .coins import CoinSource


def vote_threshold(epsilon: float, epsilon0: float) -> float:
    """Algorithm 5's commit threshold (1 - eps0)(2/3 + eps/2)."""
    return (1 - epsilon0) * (2 / 3 + epsilon / 2)


def majority_and_fraction(votes: Sequence[int]) -> Tuple[int, float]:
    """The majority bit among votes and its fraction (ties -> bit 1).

    An empty vote list yields (0, 0.0), which always falls through to the
    coin branch — the safe behaviour for an isolated processor.
    """
    if not votes:
        return 0, 0.0
    tally = Counter(votes)
    majority = max(tally, key=lambda b: (tally[b], b))
    return majority, tally[majority] / len(votes)


def aeba_vote_update(
    current_vote: int,
    received_votes: Sequence[int],
    coin: int,
    threshold: float,
) -> int:
    """One processor's round update (Algorithm 5 steps 3-7)."""
    majority, fraction = majority_and_fraction(received_votes)
    if fraction >= threshold:
        return majority
    return 1 if coin else 0


class SparseAEBAProcessor(ProcessorProtocol):
    """Actor-model Algorithm 5 participant.

    Round ``j`` of the simulator carries the votes of algorithm round
    ``j``; the update happens when round ``j+1`` begins and the inbox
    holds round-``j`` votes.  After ``num_rounds`` algorithm rounds the
    processor commits its vote as output.
    """

    def __init__(
        self,
        pid: int,
        input_bit: int,
        neighbors: Sequence[int],
        coin_view: Callable[[int], int],
        num_rounds: int,
        threshold: float,
    ) -> None:
        super().__init__(pid)
        self.vote = int(input_bit)
        self.neighbors = list(neighbors)
        self.coin_view = coin_view
        self.num_rounds = num_rounds
        self.threshold = threshold
        self._committed: Optional[int] = None

    def on_round(self, round_no: int, inbox: List[Message]) -> List[Message]:
        if round_no > 1:
            # Finish algorithm round (round_no - 1).
            received = [
                int(m.payload)
                for m in inbox
                if m.tag == "vote" and m.sender in self.neighbors
                and isinstance(m.payload, (bool, int))
            ]
            coin = self.coin_view(round_no - 2)  # 0-based coin index
            self.vote = aeba_vote_update(
                self.vote, received, coin, self.threshold
            )
        if round_no > self.num_rounds:
            if self._committed is None:
                self._committed = self.vote
            return []
        return [
            Message(self.pid, neighbor, "vote", self.vote)
            for neighbor in self.neighbors
        ]

    def output(self) -> Optional[int]:
        return self._committed


@dataclass
class AEBAResult:
    """Outcome of one Algorithm 5 execution."""

    votes: Dict[int, int]
    corrupted: Set[int]
    rounds: int
    max_bits_per_processor: int
    total_bits: int

    def good_votes(self) -> Dict[int, int]:
        """Votes of uncorrupted processors."""
        return {
            p: v for p, v in self.votes.items() if p not in self.corrupted
        }

    def agreement_fraction(self) -> float:
        """Fraction of good processors holding the most common good vote."""
        good = self.good_votes()
        if not good:
            return 0.0
        tally = Counter(good.values())
        return max(tally.values()) / len(good)

    def agreed_bit(self) -> int:
        """The modal vote among good processors (ties break to 1)."""
        tally = Counter(self.good_votes().values())
        return max(tally, key=lambda b: (tally[b], b))


def run_unreliable_coin_ba(
    n: int,
    inputs: Sequence[int],
    coin_source: CoinSource,
    adversary: Optional[Adversary] = None,
    num_rounds: Optional[int] = None,
    degree: Optional[int] = None,
    epsilon: float = 1 / 12,
    epsilon0: float = 0.05,
    seed: int = 0,
) -> AEBAResult:
    """End-to-end Algorithm 5 on a fresh random regular graph.

    Args:
        n: processors.
        inputs: input bit per processor.
        coin_source: the GetGlobalCoin oracle (per-processor views).
        adversary: optional; its ``recipients_of`` is patched to the
            sparse graph's neighbor lists if unset, so corrupted
            processors speak only where the protocol listens.
        num_rounds: algorithm rounds (default: coin source length).
        degree: graph degree (default: Theorem 5's k log n).
    """
    if len(inputs) != n:
        raise ValueError("inputs length must equal n")
    rng = random.Random(seed)
    if degree is None:
        degree = theorem5_degree(n)
    graph = random_regular_graph(n, degree, rng)
    if num_rounds is None:
        num_rounds = coin_source.num_rounds
    threshold = vote_threshold(epsilon, epsilon0)

    protocols = [
        SparseAEBAProcessor(
            pid=p,
            input_bit=inputs[p],
            neighbors=sorted(graph[p]),
            coin_view=lambda idx, p=p: coin_source.view(idx, p),
            num_rounds=num_rounds,
            threshold=threshold,
        )
        for p in range(n)
    ]
    if adversary is None:
        adversary = NullAdversary(n)
    if getattr(adversary, "recipients_of", None) is None and hasattr(
        adversary, "recipients_of"
    ):
        adversary.recipients_of = {
            p: sorted(graph[p]) for p in range(n)
        }
    network = SyncNetwork(protocols, adversary)
    result = network.run(max_rounds=num_rounds + 2)

    votes = {
        p: protocols[p].vote for p in range(n)
    }
    good = [p for p in range(n) if p not in adversary.corrupted]
    return AEBAResult(
        votes=votes,
        corrupted=set(adversary.corrupted),
        rounds=result.rounds,
        max_bits_per_processor=result.ledger.max_bits_per_processor(
            include=good
        ),
        total_bits=result.ledger.total_bits(),
    )


def run_aeba_dataflow(
    members: Sequence[int],
    inputs: Dict[int, int],
    neighbors: Dict[int, Sequence[int]],
    coin_views: Callable[[int, int], int],
    num_rounds: int,
    bad_members: Set[int],
    bad_vote_fn: Callable[[int, int, Dict[int, int]], int],
    threshold: float,
    on_traffic: Optional[Callable[[int, int, int], None]] = None,
    word_bits: int = 1,
) -> Dict[int, int]:
    """Fast Algorithm 5 execution over explicit per-member state.

    Used by the tournament, which runs one instance per candidate per
    node: message objects are skipped but traffic is still accounted via
    ``on_traffic(sender, recipient, bits)``.

    Args:
        members: participating processor IDs.
        inputs: initial vote per member.
        neighbors: adjacency among members.
        coin_views: ``(round_index, pid) -> bit``.
        bad_members: corrupted members (their votes come from
            ``bad_vote_fn(round, pid, current_good_votes)`` — a rushing
            adversary: it sees this round's good votes first).
        threshold: commit threshold from :func:`vote_threshold`.

    Returns: final vote per good member.
    """
    votes: Dict[int, int] = {
        m: int(inputs.get(m, 0)) for m in members if m not in bad_members
    }
    for round_index in range(num_rounds):
        bad_votes: Dict[int, int] = {
            m: bad_vote_fn(round_index, m, votes)
            for m in members
            if m in bad_members
        }
        current = dict(votes)
        current.update(bad_votes)
        new_votes: Dict[int, int] = {}
        for m in votes:
            received = [
                current[u] for u in neighbors.get(m, ()) if u in current
            ]
            if on_traffic is not None:
                for u in neighbors.get(m, ()):
                    on_traffic(m, u, word_bits)
            coin = coin_views(round_index, m)
            new_votes[m] = aeba_vote_update(
                votes[m], received, coin, threshold
            )
        votes = new_votes
    return votes
