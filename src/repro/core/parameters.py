"""Protocol parameter derivation (paper Sections 3.2-3.6, Lemma 5).

The paper's asymptotic parameter choices only "fit" at astronomically
large n (e.g. leaf committees of log^3 n processors require n >> 2^10
before the tree has more than one level).  We therefore keep every
*structural* parameter but expose two presets:

* :meth:`ProtocolParameters.paper` — the literal asymptotic formulas,
  consumed by the closed-form cost model (:mod:`repro.analysis.costmodel`).
* :meth:`ProtocolParameters.simulation` — scaled-down constants chosen so
  the end-to-end protocol runs at simulation scale (n up to a few
  thousand) while preserving the shape of every phase.

See DESIGN.md Section 3 for the substitution rationale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional


class ParameterError(ValueError):
    """Raised for inconsistent protocol parameters."""


def log2n(n: int) -> float:
    """log2(n), floored at 2 so small-n formulas stay sane."""
    return max(2.0, math.log2(max(n, 2)))


@dataclass(frozen=True)
class ProtocolParameters:
    """Every tunable of the almost-everywhere tournament and its users.

    Attributes:
        n: number of processors.
        epsilon: the adversary tolerance slack; adversary corrupts at most
            (1/3 - epsilon) * n processors.
        q: tree arity (paper: log^delta n for delta > 4).
        k1: leaf committee size (paper: log^3 n).
        winners_per_election: w, the number of arrays surviving each
            election (paper: 5c log^3 n).
        uplink_degree: uplinks per processor to its parent node (paper:
            q log^3 n).
        ell_link_degree: leaf nodes each ancestor-node processor listens
            to (paper: O(log^3 n)).
        intra_degree: degree of the intra-node sparse graph for the
            agreement subprotocol (paper Theorem 5: k log n).
        ba_rounds: rounds of AEBA-with-coins per bin-choice agreement.
        epsilon0: the informed-processor margin of Algorithm 5.
        request_fanout_a: the 'a' of Algorithm 3 (a log n requests per
            label; paper: a = 32c/epsilon^2).
        word_bits: size of one protocol word on the wire.
    """

    n: int
    epsilon: float = 1 / 12
    q: int = 3
    k1: int = 6
    winners_per_election: int = 2
    uplink_degree: int = 4
    ell_link_degree: int = 3
    intra_degree: int = 6
    ba_rounds: int = 8
    epsilon0: float = 0.05
    request_fanout_a: float = 4.0
    word_bits: int = 31
    #: Reconstruction-threshold fraction t/n of each sharing.  The paper
    #: uses 1/2 and notes any value in [1/3, 2/3] works; 1/3 maximises
    #: Reed-Solomon error tolerance ((n - t)/2 wrong shares) which is the
    #: binding constraint at simulation-scale committee sizes, at the
    #: price of a thinner secrecy margin (benchmark E9 sweeps this).
    share_threshold_fraction: float = 1 / 3

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ParameterError("n must be positive")
        if not 0 < self.epsilon < 1 / 3:
            raise ParameterError("epsilon must lie in (0, 1/3)")
        if self.q < 2:
            raise ParameterError("q must be >= 2")
        if self.winners_per_election < 1:
            raise ParameterError("need at least one winner per election")

    # -- presets -----------------------------------------------------------------

    @classmethod
    def paper(cls, n: int, delta: float = 5.0, c: float = 1.0,
              epsilon: float = 1 / 12) -> "ProtocolParameters":
        """The paper's asymptotic choices (used by the cost model).

        q = (log n)^delta, k1 = log^3 n, w = 5c log^3 n,
        uplink degree q log^3 n, ell-link degree log^3 n.
        """
        ln = log2n(n)
        return cls(
            n=n,
            epsilon=epsilon,
            q=max(2, int(round(ln**delta))),
            k1=max(1, int(round(ln**3))),
            winners_per_election=max(1, int(round(5 * c * ln**3))),
            uplink_degree=max(1, int(round(ln**delta * ln**3))),
            ell_link_degree=max(1, int(round(ln**3))),
            intra_degree=max(2, int(round(4 * ln))),
            ba_rounds=max(2, int(round(ln))),
            request_fanout_a=32 * c / epsilon**2,
            share_threshold_fraction=0.5,
        )

    @classmethod
    def simulation(cls, n: int, epsilon: float = 1 / 12,
                   seed_scale: float = 1.0) -> "ProtocolParameters":
        """Scaled-down constants that keep every phase non-degenerate.

        Committee sizes and degrees grow slowly with n (logarithmically),
        so medium-n simulations finish in seconds while the tree still has
        multiple levels and elections still have real candidate pools.

        The arity follows the paper's shallow-and-wide regime: q =
        log^delta n keeps the tree depth l* ~ constant, which is what
        bounds the d^l share-replication growth (Lemma 5's dominant
        term).  We use q ~ n^(1/3), giving depth ~4 at any simulated n.
        """
        ln = log2n(n)
        k1 = max(5, int(round(ln)))
        return cls(
            n=n,
            epsilon=epsilon,
            q=max(3, math.ceil(n ** (1 / 3))),
            k1=k1,
            winners_per_election=2,
            uplink_degree=max(8, int(round(1.6 * ln * seed_scale))),
            ell_link_degree=max(5, int(round(ln))),
            intra_degree=max(4, int(round(2 * ln))),
            ba_rounds=max(4, int(round(ln))),
            epsilon0=0.05,
            request_fanout_a=4.0,
            share_threshold_fraction=1 / 3,
        )

    # -- derived quantities --------------------------------------------------------

    @property
    def corruption_budget(self) -> int:
        """floor((1/3 - epsilon) * n): the adaptive adversary's cap."""
        return int((1 / 3 - self.epsilon) * self.n)

    @property
    def good_node_threshold(self) -> float:
        """Definition 3: a good node has >= 2/3 + epsilon/2 good members."""
        return 2 / 3 + self.epsilon / 2

    def candidates_per_election(self, level: int) -> int:
        """r: arrays competing at a level-``level`` node.

        Level 2 receives one candidate per leaf child; higher levels
        receive w winners from each of q children.
        """
        if level < 2:
            raise ParameterError("elections happen at level >= 2")
        if level == 2:
            return self.q
        return self.q * self.winners_per_election

    def num_bins(self, level: int) -> int:
        """numBins = r / w (paper: r / (5c log^3 n)), at least 2.

        The lightest of ``num_bins`` bins has at most r/numBins = w
        candidates in expectation, producing w winners.
        """
        r = self.candidates_per_election(level)
        return max(2, r // self.winners_per_election)

    def block_words(self, level: int) -> int:
        """Words in one level-``level`` block: bin choice + r coin words."""
        return 1 + self.candidates_per_election(level)

    def sqrt_n(self) -> int:
        """ceil(sqrt(n)): the request-label range of Algorithm 3."""
        return max(1, math.isqrt(self.n - 1) + 1) if self.n > 1 else 1

    def request_fanout(self) -> int:
        """a log n: requests sent per label in Algorithm 3."""
        return max(1, int(round(self.request_fanout_a * log2n(self.n))))

    def overload_limit(self) -> int:
        """sqrt(n) log n: requests per label before a responder mutes."""
        return max(1, int(round(self.sqrt_n() * log2n(self.n))))

    def with_overrides(self, **kwargs) -> "ProtocolParameters":
        """A modified copy — handy for benchmark sweeps."""
        return replace(self, **kwargs)
