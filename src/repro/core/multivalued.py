"""Multi-valued Byzantine agreement on top of binary agreement.

The paper solves binary agreement; real deployments (replica sync,
checkpointing — the intro's motivations) agree on *values*.  Two
reductions are provided:

* :func:`turpin_coan_reduce` — the classic Turpin-Coan two-round
  reduction from multi-valued to binary agreement (full network,
  O(n * |v|) bits per processor for the reduction rounds; tolerates
  t < n/3).  Included as the textbook baseline.
* :func:`run_scalable_multivalued` — bitwise composition of the paper's
  everywhere BA: agree on each bit of the value with the scalable
  protocol, preserving O~(sqrt n) bits per processor per value bit.
  Validity is bitwise (if all good processors start with the same value,
  that exact value wins; under disagreement the outcome is a bit-blend,
  which is the standard price of bitwise composition and is resolved in
  practice by agreeing on a proposer's digest — see the docstring of
  :func:`run_scalable_multivalued`).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..adversary.adaptive import TournamentAdversary
from ..net.messages import Message
from ..net.simulator import (
    Adversary,
    NullAdversary,
    ProcessorProtocol,
    RunResult,
    SyncNetwork,
)
from .byzantine_agreement import run_everywhere_ba
from .parameters import ProtocolParameters


# -- Turpin-Coan baseline ---------------------------------------------------------------


class TurpinCoanProcessor(ProcessorProtocol):
    """Two pre-rounds that reduce multi-valued to binary agreement.

    Round 1: broadcast the input value; keep it only if > (n+t)/2 echoes.
    Round 2: broadcast the kept value (or ⊥); derive the binary input
    "my value survived AND it is the network's plurality candidate".
    After binary agreement (supplied by the harness), output the
    candidate on 1 and a default on 0.
    """

    BOTTOM = -1

    def __init__(self, pid: int, n: int, value: int, fault_bound: int) -> None:
        super().__init__(pid)
        self.n = n
        self.value = value
        self.fault_bound = fault_bound
        self.kept: Optional[int] = value
        self.candidate: Optional[int] = None
        self.binary_input = 0

    def on_round(self, round_no: int, inbox: List[Message]) -> List[Message]:
        if round_no == 1:
            return [
                Message(self.pid, other, "tc1", self.value)
                for other in range(self.n)
                if other != self.pid
            ]
        if round_no == 2:
            tally = Counter([self.value])
            seen = {self.pid}
            for m in inbox:
                if m.tag == "tc1" and m.sender not in seen:
                    seen.add(m.sender)
                    if isinstance(m.payload, int):
                        tally[m.payload] += 1
            top, count = max(
                tally.items(), key=lambda kv: (kv[1], -kv[0])
            )
            self.kept = top if count > (self.n + self.fault_bound) / 2 else None
            payload = self.kept if self.kept is not None else self.BOTTOM
            return [
                Message(self.pid, other, "tc2", payload)
                for other in range(self.n)
                if other != self.pid
            ]
        if round_no == 3:
            tally: Counter = Counter()
            if self.kept is not None:
                tally[self.kept] += 1
            seen = {self.pid}
            for m in inbox:
                if m.tag == "tc2" and m.sender not in seen:
                    seen.add(m.sender)
                    if isinstance(m.payload, int) and m.payload != self.BOTTOM:
                        tally[m.payload] += 1
            if tally:
                top, count = max(
                    tally.items(), key=lambda kv: (kv[1], -kv[0])
                )
                self.candidate = top
                self.binary_input = int(
                    count >= self.n - 2 * self.fault_bound
                    and self.kept == top
                )
            else:
                self.candidate = None
                self.binary_input = 0
        return []

    def output(self) -> Optional[int]:
        return self.candidate


@dataclass
class MultiValuedResult:
    """Outcome of a multi-valued agreement."""

    value: Optional[int]
    decided: Dict[int, Optional[int]]
    corrupted: Set[int]
    bits_per_processor_max: int

    def good_decided(self) -> Dict[int, Optional[int]]:
        """Decisions of uncorrupted processors."""
        return {
            p: v for p, v in self.decided.items() if p not in self.corrupted
        }

    def unanimous(self) -> bool:
        """Whether all good processors decided the same value."""
        values = set(self.good_decided().values())
        return len(values) == 1


def turpin_coan_reduce(
    n: int,
    values: Sequence[int],
    binary_agree,
    adversary: Optional[Adversary] = None,
    default: int = 0,
) -> MultiValuedResult:
    """Multi-valued agreement via Turpin-Coan + a supplied binary BA.

    Args:
        values: input value per processor (non-negative ints).
        binary_agree: callable taking the per-processor binary inputs
            (dict pid -> bit) and returning the agreed bit — any binary
            BA, e.g. a lambda over :func:`repro.baselines.run_phase_king`
            or the paper's everywhere BA.
        default: output when binary agreement lands on 0.
    """
    if len(values) != n:
        raise ValueError("values length must equal n")
    if any(v < 0 for v in values):
        raise ValueError("values must be non-negative (−1 is reserved)")
    if adversary is None:
        adversary = NullAdversary(n)
    fault_bound = max(0, (n - 1) // 3)
    protocols = [
        TurpinCoanProcessor(pid, n, values[pid], fault_bound)
        for pid in range(n)
    ]
    network = SyncNetwork(protocols, adversary)
    for round_no in (1, 2, 3):
        network.step(round_no)

    binary_inputs = {
        pid: protocols[pid].binary_input
        for pid in range(n)
        if pid not in adversary.corrupted
    }
    bit = binary_agree(binary_inputs)

    decided: Dict[int, Optional[int]] = {}
    candidates = []
    for pid in range(n):
        if pid in adversary.corrupted:
            decided[pid] = None
            continue
        candidate = protocols[pid].candidate
        if bit == 1 and candidate is not None:
            decided[pid] = candidate
            candidates.append(candidate)
        else:
            decided[pid] = default
    # With t < n/3 the Turpin-Coan invariant makes all surviving
    # candidates equal when the binary outcome is 1.
    value = (
        Counter(candidates).most_common(1)[0][0]
        if bit == 1 and candidates
        else default
    )
    good = [p for p in range(n) if p not in adversary.corrupted]
    return MultiValuedResult(
        value=value,
        decided=decided,
        corrupted=set(adversary.corrupted),
        bits_per_processor_max=network.ledger.max_bits_per_processor(
            include=good
        ),
    )


# -- Scalable bitwise composition ----------------------------------------------------------


def run_scalable_multivalued(
    n: int,
    values: Sequence[int],
    value_bits: int,
    adversary_factory=None,
    params: Optional[ProtocolParameters] = None,
    seed: int = 0,
) -> MultiValuedResult:
    """Agree on a ``value_bits``-bit value via per-bit everywhere BA.

    Each bit position runs one instance of the Theorem 1 protocol, so the
    total cost is value_bits x O~(sqrt n) per processor — still o(n) per
    processor for short values, where any baseline pays Theta(n).

    Validity caveat (inherent to bitwise composition): when good inputs
    *disagree*, each output bit is the input bit of some good processor
    but the assembled value may be a blend.  When all good processors
    start with the same value — the replicated-log case that motivates
    the paper — the exact value is agreed.

    Args:
        adversary_factory: optional ``(bit_index) -> TournamentAdversary``
            so each instance faces a fresh adversary.
    """
    if len(values) != n:
        raise ValueError("values length must equal n")
    if value_bits < 1:
        raise ValueError("value_bits must be positive")
    if params is None:
        params = ProtocolParameters.simulation(n)

    agreed = 0
    corrupted: Set[int] = set()
    bits_max = 0
    per_processor_value: Dict[int, int] = {p: 0 for p in range(n)}
    undecided: Set[int] = set()
    for bit_index in range(value_bits):
        inputs = [(v >> bit_index) & 1 for v in values]
        adversary = (
            adversary_factory(bit_index)
            if adversary_factory is not None
            else TournamentAdversary(n, budget=0)
        )
        result = run_everywhere_ba(
            n,
            inputs,
            tournament_adversary=adversary,
            params=params,
            seed=seed + 1000 * bit_index,
        )
        agreed |= result.bit << bit_index
        corrupted |= result.corrupted
        bits_max += result.max_bits_per_processor()
        for p in range(n):
            decided_bit = result.ae2e_result.decided.get(p)
            if decided_bit is None:
                undecided.add(p)
            else:
                per_processor_value[p] |= decided_bit << bit_index

    decided: Dict[int, Optional[int]] = {}
    for p in range(n):
        if p in corrupted:
            decided[p] = None
        elif p in undecided:
            decided[p] = None
        else:
            decided[p] = per_processor_value[p]
    return MultiValuedResult(
        value=agreed,
        decided=decided,
        corrupted=corrupted,
        bits_per_processor_max=bits_max,
    )
