"""Universe reduction — the abstract's companion result.

The abstract: "Our techniques also lead to solutions with O~(n^{1/2}) bit
complexity for universe reduction" — agreeing on a small *representative*
subset of processors (one whose bad fraction is close to the population's)
that can subsequently run expensive subprotocols on everyone's behalf.

Against an adaptive adversary the committee cannot be *elected* the way
[17] elects it (the adversary would corrupt the winners — the same trap
the tournament's array elections avoid).  What the techniques do give us:

1. the global coin subsequence (Section 3.5) — public random words agreed
   almost everywhere, generated from already-erased arrays; plus
2. the almost-everywhere-to-everywhere amplifier (Section 4) to hand the
   committee descriptor to every good processor.

Sampling the committee from the *public coin* after the fact means the
adversary only learns the committee when everyone does; it can then start
corrupting members adaptively, but (a) membership is uniform, so the
sampled bad fraction concentrates around the population's, and (b) any
protocol the committee runs can rotate committees per round faster than
the corruption budget drains.  This module implements the sampler, its
representativeness accounting, and the composition with the tournament.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from ..adversary.adaptive import TournamentAdversary
from .almost_everywhere import Tournament, TournamentResult
from .global_coin import GlobalCoinSubsequence
from .parameters import ProtocolParameters


class UniverseReductionError(RuntimeError):
    """Raised when the coin subsequence cannot support the reduction."""


@dataclass
class CommitteeResult:
    """A universe-reduction outcome.

    Attributes:
        committee: the agreed member list (ordered, no duplicates).
        coin_words_used: how many subsequence words were consumed.
        agreement_fraction: fraction of good processors whose coin views
            produce exactly this committee.
        bad_fraction_population: adversary fraction in the whole universe.
        bad_fraction_committee: adversary fraction within the committee.
    """

    committee: List[int]
    coin_words_used: int
    agreement_fraction: float
    bad_fraction_population: float
    bad_fraction_committee: float

    def representative(self, slack: float) -> bool:
        """Whether the committee's bad fraction is within ``slack`` of the
        population's — the universe-reduction guarantee."""
        return (
            self.bad_fraction_committee
            <= self.bad_fraction_population + slack
        )


def sample_committee_from_words(
    words: Sequence[int], n: int, committee_size: int
) -> List[int]:
    """Deterministically map public random words to a committee.

    Every processor applies the same map, so agreement on the words is
    agreement on the committee.  Words index processors directly
    (duplicates skipped, consuming more words as needed); the construction
    uses at most ``len(words)`` words and raises if they run out.
    """
    committee: List[int] = []
    seen: Set[int] = set()
    used = 0
    for word in words:
        used += 1
        candidate = word % n
        if candidate not in seen:
            seen.add(candidate)
            committee.append(candidate)
        if len(committee) >= committee_size:
            return committee
    raise UniverseReductionError(
        f"coin subsequence too short: needed {committee_size} distinct "
        f"members, got {len(committee)} from {used} words"
    )


def committee_size_for(n: int, c: float = 2.0) -> int:
    """Default committee size: c * log^2 n (polylog, as in [17])."""
    log_n = max(2.0, math.log2(max(n, 2)))
    return max(3, int(round(c * log_n**2)))


def reduce_universe(
    coin: GlobalCoinSubsequence,
    n: int,
    committee_size: int,
    corrupted: Optional[Set[int]] = None,
) -> CommitteeResult:
    """Run universe reduction on an existing coin subsequence.

    The committee is sampled from the *agreed* words; per-processor views
    are compared to measure how widely the exact committee is known
    (almost-everywhere agreement on the words gives almost-everywhere
    agreement on the committee; Algorithm 3 can then push the short
    member list to everyone in O~(sqrt n) bits).
    """
    corrupted = corrupted if corrupted is not None else coin.corrupted
    agreed_words = []
    for index in range(coin.length):
        word = coin.agreed_word(index)
        if word is not None:
            agreed_words.append(word)
    committee = sample_committee_from_words(agreed_words, n, committee_size)

    # How many good processors derive this exact committee from their own
    # views?
    good = [p for p in coin.views if p not in corrupted]
    matching = 0
    for p in good:
        views = [w for w in coin.views[p] if w is not None]
        try:
            local = sample_committee_from_words(views, n, committee_size)
        except UniverseReductionError:
            continue
        if local == committee:
            matching += 1
    agreement = matching / len(good) if good else 0.0

    bad_in_committee = sum(1 for m in committee if m in corrupted)
    return CommitteeResult(
        committee=committee,
        coin_words_used=len(agreed_words),
        agreement_fraction=agreement,
        bad_fraction_population=len(corrupted) / n if n else 0.0,
        bad_fraction_committee=bad_in_committee / len(committee),
    )


def run_universe_reduction(
    n: int,
    committee_size: Optional[int] = None,
    adversary: Optional[TournamentAdversary] = None,
    params: Optional[ProtocolParameters] = None,
    seed: int = 0,
) -> CommitteeResult:
    """End-to-end universe reduction: tournament -> coins -> committee."""
    if params is None:
        params = ProtocolParameters.simulation(n)
    if adversary is None:
        adversary = TournamentAdversary(n, budget=0)
    if committee_size is None:
        committee_size = committee_size_for(n)
    # Enough output words to cover duplicates with slack.
    words_needed = max(2, math.ceil(3 * committee_size / max(
        1, params.winners_per_election * params.q
    )))
    tournament = Tournament(
        params,
        [0] * n,
        adversary,
        seed=seed,
        output_words=words_needed,
    )
    result = tournament.run()
    coin = GlobalCoinSubsequence(
        views=result.output_views,
        truth=result.output_truth,
        corrupted=result.corrupted,
    )
    return reduce_universe(coin, n, committee_size)
