"""Global-coin sources (paper: GetGlobalCoin, Theorems 3 and 5).

Algorithm 5 consumes a sequence of coin flips; the guarantee of Theorem 5
only needs *some* rounds' calls to GetGlobalCoin to "succeed": the coin is
uniform, independent of the past, and seen identically by all but
O(n / log n) good processors.  In the full protocol the coins come from
elected candidate arrays (revealed via ``sendDown``/``sendOpen``); for the
standalone subprotocol and its benchmarks we model the coin source
directly, exactly as Theorem 3's statement does ("Let S be a sequence of
length s containing a subsequence of ... random coinflips of length t").

:class:`UnreliableCoinSource` produces, per round, a per-processor view of
the coin.  Good rounds give almost all processors the same fresh random
bit; bad rounds are adversary-controlled (we expose the worst case: the
adversary knows everything and splits views).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence


class CoinError(ValueError):
    """Raised for invalid coin-source configuration."""


@dataclass
class CoinRound:
    """One round's coin views.

    Attributes:
        good: whether this round's GetGlobalCoin call "succeeds".
        views: per-processor coin bit.
        true_bit: the underlying random bit for good rounds (None for bad).
    """

    good: bool
    views: Dict[int, int]
    true_bit: Optional[int]


class CoinSource:
    """Base: a callable (round, pid) -> bit with per-round bookkeeping."""

    def __init__(self, rounds: List[CoinRound]) -> None:
        self.rounds = rounds

    def view(self, round_index: int, pid: int) -> int:
        """The coin bit processor ``pid`` observes in ``round_index`` (0-based)."""
        coin_round = self.rounds[round_index % len(self.rounds)]
        return coin_round.views.get(pid, 0)

    def num_good_rounds(self) -> int:
        """How many rounds' GetGlobalCoin calls succeed."""
        return sum(1 for r in self.rounds if r.good)

    @property
    def num_rounds(self) -> int:
        """Total rounds in the sequence (s in the (s, t) problem)."""
        return len(self.rounds)


def perfect_coin_source(
    n: int, num_rounds: int, rng: random.Random
) -> CoinSource:
    """Every round succeeds and every processor sees the same bit."""
    rounds = []
    for _ in range(num_rounds):
        bit = rng.randrange(2)
        rounds.append(
            CoinRound(good=True, views={p: bit for p in range(n)}, true_bit=bit)
        )
    return CoinSource(rounds)


def unreliable_coin_source(
    n: int,
    num_rounds: int,
    good_round_indices: Sequence[int],
    confused_fraction: float,
    rng: random.Random,
    adversary_bit_fn: Optional[Callable[[int, int], int]] = None,
) -> CoinSource:
    """Theorem 3's (s, t) model.

    Args:
        n: processors.
        num_rounds: s, the total sequence length.
        good_round_indices: which rounds are genuine global coin flips (t
            of them).
        confused_fraction: in good rounds, the O(1/log n) fraction of
            processors that see a wrong/arbitrary bit.
        adversary_bit_fn: view for bad rounds and for confused processors,
            ``(round_index, pid) -> bit``; defaults to the worst practical
            split (alternating by pid parity).
    """
    if not 0 <= confused_fraction < 1:
        raise CoinError("confused_fraction must be in [0, 1)")
    good_set = set(good_round_indices)
    if any(i < 0 or i >= num_rounds for i in good_set):
        raise CoinError("good round index out of range")
    if adversary_bit_fn is None:
        adversary_bit_fn = lambda round_index, pid: pid % 2

    rounds: List[CoinRound] = []
    for round_index in range(num_rounds):
        if round_index in good_set:
            bit = rng.randrange(2)
            views = {p: bit for p in range(n)}
            confused_count = int(confused_fraction * n)
            for p in rng.sample(range(n), confused_count):
                views[p] = adversary_bit_fn(round_index, p)
            rounds.append(CoinRound(good=True, views=views, true_bit=bit))
        else:
            views = {
                p: adversary_bit_fn(round_index, p) for p in range(n)
            }
            rounds.append(CoinRound(good=False, views=views, true_bit=None))
    return CoinSource(rounds)


def coin_source_from_words(
    n: int,
    words_per_processor: Dict[int, List[Optional[int]]],
    num_rounds: int,
) -> CoinSource:
    """Build a coin source from revealed candidate-array words.

    ``words_per_processor[p][i]`` is processor p's view of the i-th
    revealed coin word (None if it failed to learn it — it then defaults
    to 0, a deterministic fallback every implementation needs).  The coin
    bit is the word's low bit, as in the tournament.
    """
    rounds: List[CoinRound] = []
    for i in range(num_rounds):
        views: Dict[int, int] = {}
        for p in range(n):
            words = words_per_processor.get(p, [])
            word = words[i] if i < len(words) else None
            views[p] = (word & 1) if word is not None else 0
        bits = set(views.values())
        rounds.append(
            CoinRound(
                good=len(bits) == 1,
                views=views,
                true_bit=bits.pop() if len(bits) == 1 else None,
            )
        )
    return CoinSource(rounds)
