"""The Algorithm 2 tournament as a :class:`ProcessorProtocol` network.

The tournament (and the full Theorem 1 pipeline built on it) is
implemented as an orchestrated dataflow — whole phases execute at once
while a round clock records what a lock-step execution would need.
That was the one protocol the engine's batch backend could not
multiplex: it drives :class:`~repro.net.simulator.SyncNetwork` objects
round by round.

This module closes that gap.  :class:`PhasedRoundDriver` adapts a
*phase generator* (each ``next()`` runs one phase and yields the number
of synchronous rounds it occupied — see
:meth:`repro.core.almost_everywhere.Tournament.run_stepwise` and
:meth:`repro.core.byzantine_agreement.EverywhereBAExecution.phases`) to
a per-round budget: each simulator round burns one round of the current
phase's budget, and exhausting it resumes the generator, executing the
next phase.  :func:`build_everywhere_ba_network` wraps one driver in a
real ``SyncNetwork`` of :class:`PhasedMemberProtocol` processors, so
the batch backend interleaves *full Theorem 1 runs* breadth-first —
round 1 of every tournament, then round 2, … — exactly as it already
does for actor-model protocols.

Faithfulness note: the network's adversary is
:class:`~repro.net.simulator.NullAdversary` because the *real*
adversary (adaptive corruptions, bin stuffing, fake responders) acts
inside the phase-stepped execution, where the paper grants it its
moves.  The wrapper processors carry no protocol state of their own;
they exist to give the orchestrated run the simulator's round
interface, one output slot per processor.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from ..adversary.adaptive import TournamentAdversary
from ..net.messages import Message
from ..net.simulator import NullAdversary, ProcessorProtocol, SyncNetwork
from .byzantine_agreement import EverywhereBAExecution

#: Output slot value for processors the inner run left undecided
#: (corrupted processors, mainly).  The wrapper network needs *some*
#: non-None output per slot to halt; collectors read the inner result,
#: never this sentinel.
UNDECIDED = -1


class PhasedRoundDriver:
    """Burns simulator rounds against a phase generator's round budget.

    ``advance_round()`` is called once per simulated round.  When the
    current phase's budget is exhausted the generator is resumed, which
    executes the next phase's work and deposits its round budget.  The
    driver is ``done`` once the generator is exhausted — by then the
    execution behind it has published its result.
    """

    def __init__(self, phases: Iterator[int]) -> None:
        self._phases = phases
        self._remaining = 0
        self.done = False
        self._pull()

    def _pull(self) -> None:
        """Execute phases until rounds remain to burn (or none are left)."""
        while not self.done and self._remaining == 0:
            try:
                # A phase always occupies at least one round on the
                # wrapper clock, so instances make progress even if an
                # inner phase reports zero rounds.
                self._remaining += max(1, next(self._phases))
            except StopIteration:
                self.done = True

    def advance_round(self) -> None:
        """Consume one simulator round (no-op once done)."""
        if self.done:
            return
        self._remaining -= 1
        self._pull()


class PhasedMemberProtocol(ProcessorProtocol):
    """One processor's slot in a phase-stepped orchestrated protocol.

    Processor 0 advances the shared driver (once per round — the
    simulator calls processors in pid order); every slot exposes its
    decision through ``decide_fn`` once the driver completes.
    """

    def __init__(
        self,
        pid: int,
        driver: PhasedRoundDriver,
        decide_fn: Callable[[int], Any],
    ) -> None:
        super().__init__(pid)
        self.driver = driver
        self.decide_fn = decide_fn

    def on_round(self, round_no: int, inbox: List[Message]) -> List[Message]:
        if self.pid == 0:
            self.driver.advance_round()
        return []

    def output(self) -> Optional[Any]:
        if not self.driver.done:
            return None
        return self.decide_fn(self.pid)


def build_everywhere_ba_network(
    n: int,
    inputs: Sequence[int],
    tournament_adversary: Optional[TournamentAdversary] = None,
    seed: int = 0,
    coin_words: int = 2,
) -> Tuple[SyncNetwork, EverywhereBAExecution]:
    """One full Theorem 1 run as a steppable ``SyncNetwork``.

    Returns the network plus the underlying
    :class:`EverywhereBAExecution`; once the network halts (every slot
    decided), ``execution.result`` holds the
    :class:`~repro.core.byzantine_agreement.EverywhereBAResult` —
    identical to :func:`~repro.core.byzantine_agreement.run_everywhere_ba`
    with the same arguments, whichever driver stepped the rounds.
    """
    execution = EverywhereBAExecution(
        n,
        inputs,
        tournament_adversary=tournament_adversary,
        seed=seed,
        coin_words=coin_words,
    )
    driver = PhasedRoundDriver(execution.phases())

    def decide(pid: int) -> int:
        assert execution.result is not None
        decided = execution.result.ae2e_result.decided.get(pid)
        return UNDECIDED if decided is None else int(decided)

    protocols = [
        PhasedMemberProtocol(pid, driver, decide) for pid in range(n)
    ]
    network = SyncNetwork(protocols, NullAdversary(n))
    return network, execution
