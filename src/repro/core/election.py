"""Feige's lightest-bin election (paper Section 3.3, Algorithm 1, Lemma 4).

Candidates each name a bin; the bin containing the *fewest* candidates
wins, and its occupants are the election winners.  Feige's insight is that
even an adversary who picks its bins *after* seeing all good candidates'
choices cannot keep good candidates out of the lightest bin: the lightest
bin has at most the average load, and good candidates are spread close to
evenly, so the winner set stays representative.

This module is deliberately pure (no networking): the tournament feeds it
the *agreed* bin choices produced by the almost-everywhere agreement
subprotocol, as Algorithm 1 prescribes.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple


class ElectionError(ValueError):
    """Raised on malformed election inputs."""


@dataclass(frozen=True)
class ElectionResult:
    """Outcome of one lightest-bin election.

    Attributes:
        winners: candidate indices that advance (Algorithm 1's W).
        lightest_bin: the winning bin.
        bin_counts: candidates per bin.
        padded: how many winners were added by the padding rule (when the
            lightest bin held fewer than the target count).
    """

    winners: Tuple[int, ...]
    lightest_bin: int
    bin_counts: Dict[int, int]
    padded: int

    def winner_set(self) -> Set[int]:
        """Winning candidate indices as a set."""
        return set(self.winners)


def lightest_bin_election(
    bin_choices: Sequence[int],
    num_bins: int,
    target_winners: Optional[int] = None,
) -> ElectionResult:
    """Algorithm 1, step 2: select the occupants of the lightest bin.

    Args:
        bin_choices: agreed bin choice per candidate (index = candidate).
        num_bins: number of bins (paper: r / (5c log^3 n)).
        target_winners: |W|; defaults to r / num_bins.  If the lightest
            bin holds fewer, the first omitted candidate indices are added
            (the paper's augmentation rule); if more, the lowest indices
            are kept so |W| is exactly the target.

    Ties between equally light bins break toward the lower bin index,
    which is a deterministic rule every processor can apply locally.
    """
    r = len(bin_choices)
    if r == 0:
        raise ElectionError("election needs at least one candidate")
    if num_bins < 1:
        raise ElectionError("need at least one bin")
    for choice in bin_choices:
        if not 0 <= choice < num_bins:
            raise ElectionError(
                f"bin choice {choice} out of range 0..{num_bins - 1}"
            )
    if target_winners is None:
        target_winners = max(1, r // num_bins)

    counts = Counter(bin_choices)
    # Empty bins count as weight 0 and therefore win; Feige's protocol
    # considers only non-empty bins (an empty selection elects nobody and
    # the padding rule would fill W arbitrarily), so we take the lightest
    # *non-empty* bin, breaking ties low.
    lightest = min(counts, key=lambda b: (counts[b], b))
    winners = [j for j, choice in enumerate(bin_choices) if choice == lightest]

    padded = 0
    if len(winners) < target_winners:
        for j in range(r):
            if j not in winners:
                winners.append(j)
                padded += 1
                if len(winners) >= target_winners:
                    break
        winners.sort()
    elif len(winners) > target_winners:
        winners = winners[:target_winners]

    return ElectionResult(
        winners=tuple(winners),
        lightest_bin=lightest,
        bin_counts=dict(counts),
        padded=padded,
    )


def good_winner_fraction(
    result: ElectionResult, good_candidates: Set[int]
) -> float:
    """Fraction of winners drawn from the good candidate set (Lemma 4)."""
    if not result.winners:
        return 0.0
    good = sum(1 for j in result.winners if j in good_candidates)
    return good / len(result.winners)


def lemma4_bound(num_good: int, num_bins: int) -> float:
    """Lemma 4's failure probability bound 2^(-2|S| / (3 numBins)).

    The probability that the lightest bin contains fewer than
    (1/numBins - eps)|S| good candidates.
    """
    return 2.0 ** (-2 * num_good / (3 * num_bins))


def simulate_election_against_adversary(
    num_good: int,
    num_bad: int,
    num_bins: int,
    adversary_strategy: str,
    rng: random.Random,
    target_winners: Optional[int] = None,
) -> ElectionResult:
    """One election where bad candidates move *after* seeing good choices.

    Strategies (all rushing — they see the good bin loads first):

    * ``"stuff_lightest"`` — all bad candidates pile into the currently
      lightest bin, hoping to own the winner set.
    * ``"balance"`` — bad candidates fill the lightest bins one each,
      maximising the chance a bad-heavy bin wins.
    * ``"avoid"`` — bad candidates pick the heaviest bin (sacrificing
      themselves to make a good-heavy light bin win; harmless, included
      for completeness).
    * ``"random"`` — uniform choices.

    Good candidates occupy indices ``0..num_good-1``.
    """
    good_choices = [rng.randrange(num_bins) for _ in range(num_good)]
    counts = Counter(good_choices)
    loads = {b: counts.get(b, 0) for b in range(num_bins)}

    bad_choices: List[int] = []
    if adversary_strategy == "stuff_lightest":
        lightest = min(loads, key=lambda b: (loads[b], b))
        bad_choices = [lightest] * num_bad
    elif adversary_strategy == "balance":
        working = dict(loads)
        for _ in range(num_bad):
            b = min(working, key=lambda x: (working[x], x))
            bad_choices.append(b)
            working[b] += 1
    elif adversary_strategy == "avoid":
        heaviest = max(loads, key=lambda b: (loads[b], b))
        bad_choices = [heaviest] * num_bad
    elif adversary_strategy == "random":
        bad_choices = [rng.randrange(num_bins) for _ in range(num_bad)]
    else:
        raise ElectionError(f"unknown strategy {adversary_strategy!r}")

    return lightest_bin_election(
        good_choices + bad_choices, num_bins, target_winners
    )
