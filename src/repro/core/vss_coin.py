"""VSS-based committee shared coin — the design alternative, measured.

The paper generates shared randomness by electing *arrays* of committed
secrets through the tournament (Section 3.4), paying the cost up front
and amortizing it across every coin the protocol ever needs.  The
classical alternative (Canetti-Rabin style) generates each coin on
demand with verifiable secret sharing.  This module implements that
alternative for a single committee so benchmark E19 can price the
trade-off:

Round 1 (deal).   Every member deals a random secret through symmetric-
                  bivariate VSS (:mod:`repro.crypto.bivariate`): member
                  j receives row f_i(j, .) of dealer i's polynomial.
Round 2 (echo).   For every dealer i, members j and k cross-check the
                  symmetry point F_i(j, k) = F_i(k, j) by exchanging it.
Round 3 (blame).  Members broadcast complaint lists; a dealer drawing
                  complaints from more than t members is disqualified
                  (an honest dealer's points always verify between good
                  members, so it draws at most t complaints).
Round 4 (reveal). Members broadcast their effective Shamir share of
                  every qualified dealer's secret; each member
                  reconstructs the qualified secrets and outputs
                  coin = (sum of qualified secrets) mod 2.

Soundness at t < n/3 with a rushing adversary: a qualified dealer's
secret is fixed by the good members' rows before the reveal round, so
the adversary cannot steer it; reconstruction needs t + 1 of the n - t
good shares, so withholding cannot abort it; and any single qualified
good dealer's uniform secret makes the sum uniform.

Cost: Theta(k^2) field elements per member per coin (the echo round
dominates) — against the paper's amortized polylog per coin.  That gap
is why the tournament exists.

Documented simplification: qualification is decided from the complaint
broadcasts as received.  A Byzantine member that *equivocates its
complaint list* against a dealer sitting exactly at the threshold could
split the qualified set between good members; the full Canetti-Rabin
protocol closes this with a complaint-response round plus one committee
Byzantine agreement per borderline dealer (O(k) extra rounds, same
asymptotic bit cost).  Good dealers always qualify at every good member
(they draw complaints only from the <= t bad members) and dealers whose
rows fail verification at more than t good members are disqualified at
every good member, so the coin's unpredictability and the all-good-case
agreement are unaffected by the simplification.
"""

from __future__ import annotations

import random
from collections import Counter, defaultdict
from dataclasses import dataclass
from itertools import combinations, islice
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..crypto.bivariate import BivariateRow, BivariateScheme
from ..crypto.kernels import (
    interpolate_constant,
    interpolate_windows_at_zero,
)
from ..net.messages import Message
from ..net.simulator import (
    Adversary,
    NullAdversary,
    ProcessorProtocol,
    RunResult,
    SyncNetwork,
)


def vss_coin_fault_bound(k: int) -> int:
    """Maximum tolerated faults in the committee: t < k/3."""
    return max(0, (k - 1) // 3)


#: How many threshold-sized windows the robust reveal tries per dealer.
ROBUST_REVEAL_WINDOWS = 40


class VSSCoinMember(ProcessorProtocol):
    """One good committee member of the 4-round VSS coin protocol."""

    def __init__(self, pid: int, k: int, seed: int) -> None:
        super().__init__(pid)
        self.k = k
        self.fault_bound = vss_coin_fault_bound(k)
        self.scheme = BivariateScheme(
            n_players=k, threshold=self.fault_bound + 1
        )
        # String seeding hashes through SHA-512 (init_by_array), avoiding
        # the correlated Mersenne Twister streams that structured integer
        # seeds like (seed << 20) | pid produce for consecutive seeds —
        # those visibly biased the coin.
        self.rng = random.Random(f"vss-coin-{seed}-{pid}")
        self.secret = self.scheme.field.random_element(self.rng)
        # rows[dealer] = my BivariateRow from that dealer.
        self.rows: Dict[int, BivariateRow] = {}
        # echoes[(dealer, sender)] = claimed F_dealer(sender, me).
        self.echoes: Dict[Tuple[int, int], int] = {}
        self.complaints_against: Dict[int, Set[int]] = defaultdict(set)
        self.qualified: List[int] = []
        self.reveal_shares: Dict[int, Dict[int, int]] = defaultdict(dict)
        self._coin: Optional[int] = None
        # Rows staged by bulk_predeal (wave-bulk dealing); consumed by
        # _deal in round 1.
        self._predealt: Optional[List[BivariateRow]] = None

    # -- rounds ------------------------------------------------------------------

    def on_round(self, round_no: int, inbox: List[Message]) -> List[Message]:
        if round_no == 1:
            return self._deal()
        if round_no == 2:
            self._absorb_rows(inbox)
            return self._echo()
        if round_no == 3:
            self._absorb_echoes(inbox)
            return self._blame()
        if round_no == 4:
            self._absorb_blames(inbox)
            return self._reveal()
        if round_no == 5:
            self._absorb_reveals(inbox)
            self._toss()
        return []

    def output(self) -> Optional[int]:
        return self._coin

    # -- round 1: deal ---------------------------------------------------------------

    def _deal(self) -> List[Message]:
        rows = self._predealt
        if rows is None:
            rows = self.scheme.deal(self.secret, self.rng)
        else:
            self._predealt = None
        out = []
        for row in rows:
            member = row.x - 1  # shares are 1-indexed
            if member == self.pid:
                self.rows[self.pid] = row
                continue
            out.append(
                Message(self.pid, member, "row", (self.pid, row.values))
            )
        return out

    def _absorb_rows(self, inbox: List[Message]) -> None:
        for m in inbox:
            if m.tag != "row":
                continue
            dealer, values = m.payload
            if dealer != m.sender or dealer in self.rows:
                continue
            if len(values) != self.k + 1:
                continue
            self.rows[dealer] = BivariateRow(
                x=self.pid + 1, values=tuple(values)
            )

    # -- round 2: echo ---------------------------------------------------------------

    def _echo(self) -> List[Message]:
        out = []
        for peer in range(self.k):
            if peer == self.pid:
                continue
            points = tuple(
                (dealer, row.at(peer + 1))
                for dealer, row in sorted(self.rows.items())
            )
            out.append(Message(self.pid, peer, "echo", points))
        return out

    def _absorb_echoes(self, inbox: List[Message]) -> None:
        for m in inbox:
            if m.tag != "echo":
                continue
            for dealer, value in m.payload:
                if isinstance(dealer, int) and isinstance(value, int):
                    self.echoes.setdefault((dealer, m.sender), value)

    # -- round 3: blame --------------------------------------------------------------

    def _blame(self) -> List[Message]:
        complaints = []
        for dealer, row in self.rows.items():
            for peer in range(self.k):
                if peer == self.pid:
                    continue
                claimed = self.echoes.get((dealer, peer))
                if claimed is None:
                    continue
                if claimed != row.at(peer + 1):
                    complaints.append(dealer)
                    break
        # Dealers whose row never arrived are also complained about.
        for dealer in range(self.k):
            if dealer not in self.rows:
                complaints.append(dealer)
        complaints = sorted(set(complaints))
        for dealer in complaints:
            self.complaints_against[dealer].add(self.pid)
        return [
            Message(self.pid, peer, "blame", tuple(complaints))
            for peer in range(self.k)
            if peer != self.pid
        ]

    def _absorb_blames(self, inbox: List[Message]) -> None:
        for m in inbox:
            if m.tag != "blame":
                continue
            for dealer in m.payload:
                if isinstance(dealer, int) and 0 <= dealer < self.k:
                    self.complaints_against[dealer].add(m.sender)

    # -- round 4: reveal -------------------------------------------------------------

    def _reveal(self) -> List[Message]:
        self.qualified = [
            dealer
            for dealer in range(self.k)
            if len(self.complaints_against[dealer]) <= self.fault_bound
            and dealer in self.rows
        ]
        shares = tuple(
            (dealer, self.rows[dealer].shamir_share().value)
            for dealer in self.qualified
        )
        for dealer in self.qualified:
            self.reveal_shares[dealer][self.pid] = (
                self.rows[dealer].shamir_share().value
            )
        return [
            Message(self.pid, peer, "reveal", shares)
            for peer in range(self.k)
            if peer != self.pid
        ]

    def _absorb_reveals(self, inbox: List[Message]) -> None:
        for m in inbox:
            if m.tag != "reveal":
                continue
            for dealer, value in m.payload:
                if isinstance(dealer, int) and isinstance(value, int):
                    self.reveal_shares[dealer].setdefault(m.sender, value)

    def _toss(self) -> None:
        total = 0
        field = self.scheme.field
        secrets = self._reveal_secrets(self.qualified)
        for dealer in self.qualified:
            secret = secrets.get(dealer)
            if secret is None:
                continue
            total = field.add(total, secret)
        self._coin = total % 2

    def _reveal_secrets(
        self, dealers: Sequence[int]
    ) -> Dict[int, int]:
        """The windowed robust reveal of every dealer, batched.

        Dealers whose pools cover the same member coordinates (all of
        them, absent withholding) share one x-grid, so their windows
        collapse into a single matrix product per grid
        (:func:`~repro.crypto.kernels.interpolate_windows_at_zero`)
        instead of one interpolation per window per dealer.  Window
        order — and therefore the plurality vote's insertion-order
        tie-break — is exactly :meth:`_reconstruct_robust`'s, so the
        result per dealer is bit-identical; dealers with too few shares
        are simply absent from the result.
        """
        threshold = self.scheme.threshold
        field = self.scheme.field
        groups: Dict[Tuple[int, ...], List[Tuple[int, List[int]]]] = {}
        for dealer in dealers:
            shares = sorted(self.reveal_shares[dealer].items())
            if len(shares) < threshold:
                continue
            xs = tuple(member + 1 for member, _ in shares)
            ys = [value for _, value in shares]
            groups.setdefault(xs, []).append((dealer, ys))
        out: Dict[int, int] = {}
        for xs, pool in groups.items():
            windows = list(
                islice(
                    combinations(range(len(xs)), threshold),
                    ROBUST_REVEAL_WINDOWS,
                )
            )
            values = interpolate_windows_at_zero(
                field, xs, [ys for _, ys in pool], windows
            )
            for (dealer, _), candidates in zip(pool, values):
                counts: Counter = Counter(candidates)
                out[dealer] = counts.most_common(1)[0][0]
        return out

    def _reconstruct_robust(self, dealer: int) -> Optional[int]:
        """Majority-vote reconstruction over threshold-sized subsets.

        With at most t corrupt shares among >= 2t+1, the value produced
        by the honest majority of share subsets is the dealt secret; we
        approximate the (expensive) exhaustive decoding by trying
        threshold-sized windows and taking the plurality result, which
        suffices at the committee sizes simulated here.

        The per-dealer reference path: :meth:`_reveal_secrets` batches
        the same windows across every dealer of a toss and is pinned
        bit-identical to this method by ``tests/test_vss_coin.py``.

        The same windows over the same member coordinates recur for
        every dealer of every coin, so each window's interpolation plan
        (weights + lambdas at zero) is a cache hit after the first toss.
        """
        shares = sorted(self.reveal_shares[dealer].items())
        if len(shares) < self.scheme.threshold:
            return None
        candidates: Counter = Counter()
        points = [(member + 1, value) for member, value in shares]
        window = self.scheme.threshold
        field = self.scheme.field
        tried = 0
        for combo in combinations(range(len(points)), window):
            subset = [points[i] for i in combo]
            try:
                candidates[interpolate_constant(field, subset)] += 1
            except Exception:
                continue
            tried += 1
            if tried >= ROBUST_REVEAL_WINDOWS:
                break
        if not candidates:
            return None
        return candidates.most_common(1)[0][0]


def bulk_predeal(members: Iterable["VSSCoinMember"]) -> None:
    """Stage every member's round-1 dealing in one batched pass.

    The wave-bulk hook behind the batch/async backends'
    ``prepare_wave``: for all (not-yet-predealt) members across a wave
    of trials, sample each member's symmetric coefficient matrix from
    *its own* rng — exactly the randomness its lazy ``_deal`` would
    draw, in the same order, so transcripts are bit-identical — then
    evaluate every dealing's two grid stages stacked through one
    :class:`~repro.crypto.kernels.BatchEvalPlan` pass per stage
    (:meth:`BivariateScheme.deal_from_coefficients`).  Members whose
    ``_deal`` never runs (corrupted from round 1) simply discard the
    staged rows; their rng is never read again, so consuming it early
    is unobservable.
    """
    pending = [m for m in members if m._predealt is None]
    by_scheme: Dict[BivariateScheme, List[VSSCoinMember]] = {}
    for member in pending:
        by_scheme.setdefault(member.scheme, []).append(member)
    for scheme, group in by_scheme.items():
        t = scheme.threshold - 1
        coeffs = [
            scheme._symmetric_coefficients(m.secret, t, m.rng)
            for m in group
        ]
        for member, rows in zip(
            group, scheme.deal_from_coefficients(coeffs)
        ):
            member._predealt = rows


def run_vss_coin(
    k: int,
    seed: int = 0,
    adversary: Optional[Adversary] = None,
) -> RunResult:
    """Run one VSS-coin toss on a k-member committee."""
    if adversary is None:
        adversary = NullAdversary(k)
    members = [VSSCoinMember(pid, k, seed) for pid in range(k)]
    network = SyncNetwork(members, adversary)
    return network.run(max_rounds=5)


@dataclass
class CoinCostModel:
    """Per-coin traffic of the VSS coin vs the paper's amortized coin."""

    k: int
    element_bits: int = 31

    def vss_bits_per_member(self) -> int:
        """Deal (k rows of k+1 elements 1/k each) + echo (k points to
        each of k peers) + blame + reveal: Theta(k^2) elements."""
        deal = (self.k + 1) * self.element_bits  # own dealing, per member
        echo = self.k * self.k * self.element_bits
        reveal = self.k * self.k * self.element_bits
        return deal + echo + reveal

    def paper_amortized_bits_per_member(self, coins_served: int) -> float:
        """Tournament cost amortized across every coin it serves."""
        if coins_served <= 0:
            raise ValueError("coins_served must be positive")
        tournament_per_member = (self.k**2) * self.element_bits
        return tournament_per_member / coins_served
