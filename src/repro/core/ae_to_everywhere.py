"""Almost-everywhere to everywhere agreement — paper Section 4, Algorithm 3.

Setting: (1/2 + eps) n *knowledgeable* good processors already agree on a
message M (from the tournament) and can jointly generate random numbers
k in [1..sqrt(n)] (from the global coin subsequence).  The remaining good
processors are *confused*.  Each loop:

1. Every processor sends, for each label i in [1..sqrt(n)], requests
   carrying i to a·log n processors (targets chosen before k exists, so
   the adversary cannot aim takeovers at the communication pattern —
   the insight that escapes the Holtby-Kapron-King lower bound model).
2. Knowledgeable processors agree on a fresh random k.
3. A knowledgeable processor answers requests labelled k — unless that
   label is *overloaded* (> sqrt(n)·log n accepted requests), the defence
   against flooding.
4. A requester looks at its busiest label i_max; if enough identical
   answers came back for it, it decides that message.

Per-processor traffic is O(sqrt(n) · a · log n) request words plus the
answers — the O~(sqrt(n)) of Theorem 4.

Anti-flooding acceptance rule: a responder accepts at most one request
per sender (the paper: a sender of more than its share is "evidently
corrupt"), so a corrupted coalition can overload at most
sqrt(n)/(3 log n) of the sqrt(n) labels, and the random k dodges them
with probability 1 - O(1/log n) (Lemma 9).
"""

from __future__ import annotations

import math
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..net.messages import Message
from ..net.simulator import (
    Adversary,
    AdversaryView,
    NullAdversary,
    ProcessorProtocol,
    SyncNetwork,
)
from .parameters import ProtocolParameters

REQUEST_TAG = "ae2e_request"
RESPONSE_TAG = "ae2e_response"


@dataclass
class LoopStats:
    """Per-loop instrumentation (drives Lemmas 8, 9 / E11)."""

    loop: int
    k: int
    overloaded_responders: int
    deciders: int
    undecided_after: int
    response_counts: List[int]


class AEToEProcessor(ProcessorProtocol):
    """One good processor running Algorithm 3 for ``loops`` iterations.

    Args:
        pid: processor ID.
        n: network size.
        knowledgeable: whether this processor starts knowing M.
        message: M for knowledgeable processors (None for confused).
        k_of_loop: oracle giving loop -> agreed random label; only
            knowledgeable (and decided) processors consult it, matching
            the protocol (confused processors never need k).
        params: protocol parameters (fanout, overload limit, epsilon).
        rng: private coin.
    """

    def __init__(
        self,
        pid: int,
        n: int,
        knowledgeable: bool,
        message: Optional[int],
        k_of_loop: Callable[[int], int],
        params: ProtocolParameters,
        rng: random.Random,
        loops: int,
    ) -> None:
        super().__init__(pid)
        self.n = n
        self.knowledgeable = knowledgeable
        self.message = message
        self.k_of_loop = k_of_loop
        self.params = params
        self.rng = rng
        self.loops = loops
        self.decided: Optional[int] = message if knowledgeable else None
        self.overloaded_this_loop = False
        self._sent_labels: Dict[int, int] = {}  # target -> label, this loop
        self._accepted: Dict[int, int] = {}  # sender -> label, this loop
        self._sender_seen: Set[int] = set()

    # -- round dispatch ----------------------------------------------------------

    def on_round(self, round_no: int, inbox: List[Message]) -> List[Message]:
        loop = (round_no - 1) // 3
        phase = (round_no - 1) % 3
        if loop >= self.loops:
            return []
        if phase == 0:
            return self._send_requests(loop)
        if phase == 1:
            return self._respond(loop, inbox)
        return self._tally(loop, inbox)

    def output(self) -> Optional[int]:
        return self.decided

    # -- phase 1: requests ---------------------------------------------------------

    def _send_requests(self, loop: int) -> List[Message]:
        """For every label, request from a·log n distinct processors.

        All targets across all labels are distinct, so no responder sees
        two requests from us (the acceptance rule drops duplicates).
        """
        self._sent_labels = {}
        sqrt_n = self.params.sqrt_n()
        fanout = self.params.request_fanout()
        total = min(sqrt_n * fanout, self.n - 1)
        pool = [p for p in range(self.n) if p != self.pid]
        targets = self.rng.sample(pool, total)
        messages: List[Message] = []
        index = 0
        for label in range(1, sqrt_n + 1):
            for _ in range(fanout):
                if index >= len(targets):
                    break
                target = targets[index]
                index += 1
                self._sent_labels[target] = label
                messages.append(
                    Message(self.pid, target, REQUEST_TAG, label)
                )
        return messages

    # -- phase 2: responses ----------------------------------------------------------

    def _respond(self, loop: int, inbox: List[Message]) -> List[Message]:
        """Answer requests labelled k, subject to the overload rule."""
        self._accepted = {}
        self._sender_seen = set()
        duplicate_senders: Set[int] = set()
        for m in inbox:
            if m.tag != REQUEST_TAG or not isinstance(m.payload, int):
                continue
            if m.sender in self._sender_seen:
                duplicate_senders.add(m.sender)  # evidently corrupt
                continue
            self._sender_seen.add(m.sender)
            self._accepted[m.sender] = m.payload
        for sender in duplicate_senders:
            self._accepted.pop(sender, None)

        if self.decided is None:
            return []  # confused: nothing to answer with
        k = self.k_of_loop(loop)
        requesters = [
            sender for sender, label in self._accepted.items() if label == k
        ]
        self.overloaded_this_loop = (
            len(requesters) > self.params.overload_limit()
        )
        if self.overloaded_this_loop:
            return []
        return [
            Message(self.pid, sender, RESPONSE_TAG, self.decided)
            for sender in requesters
        ]

    # -- phase 3: decision -------------------------------------------------------------

    def _tally(self, loop: int, inbox: List[Message]) -> List[Message]:
        """Decide if the busiest label returned enough identical answers."""
        if self.decided is not None:
            return []
        by_label: Dict[int, List[int]] = {}
        for m in inbox:
            if m.tag != RESPONSE_TAG:
                continue
            label = self._sent_labels.get(m.sender)
            if label is None:
                continue  # unsolicited response: ignore
            if isinstance(m.payload, int):
                by_label.setdefault(label, []).append(m.payload)
        if not by_label:
            return []
        i_max = max(by_label, key=lambda i: (len(by_label[i]), -i))
        tally = Counter(by_label[i_max])
        value, count = max(tally.items(), key=lambda kv: (kv[1], -kv[0]))
        threshold = self.decision_threshold(self.params)
        if count >= threshold:
            self.decided = value
        return []

    @staticmethod
    def decision_threshold(params: ProtocolParameters) -> int:
        """(1/2 + 3 eps / 8) · a log n identical answers."""
        return max(
            1,
            math.ceil(
                (0.5 + 3 * params.epsilon / 8) * params.request_fanout()
            ),
        )


class FakeResponderAdversary(Adversary):
    """Corrupted processors answer *every* request with a forged message.

    Optionally, on loops where the global coin word was adversarial (the
    coin subsequence's non-random positions), the coalition knows k in
    advance and floods requests labelled k to overload every responder.
    """

    def __init__(
        self,
        n: int,
        targets: Sequence[int],
        fake_message: int,
        known_bad_loops: Optional[Dict[int, int]] = None,
        seed: int = 0,
    ) -> None:
        target_set = set(targets)
        super().__init__(n, budget=len(target_set))
        self._targets = target_set
        self.fake_message = fake_message
        self.known_bad_loops = known_bad_loops or {}
        self.rng = random.Random(seed)

    def select_corruptions(self, round_no: int) -> Set[int]:
        return set(self._targets) if round_no == 1 else set()

    def act(self, view: AdversaryView) -> List[Message]:
        loop = (view.round_no - 1) // 3
        phase = (view.round_no - 1) % 3
        messages: List[Message] = []
        if phase == 0 and loop in self.known_bad_loops:
            # Overload attack on the known-in-advance label.
            k = self.known_bad_loops[loop]
            for sender in sorted(view.corrupted):
                for recipient in range(self.n):
                    if recipient in view.corrupted:
                        continue
                    messages.append(
                        Message(sender, recipient, REQUEST_TAG, k)
                    )
        if phase == 1:
            # Answer everything we were asked, with the forged message.
            for m in view.inbound:
                if m.tag == REQUEST_TAG:
                    messages.append(
                        Message(
                            m.recipient, m.sender, RESPONSE_TAG,
                            self.fake_message,
                        )
                    )
        return messages


@dataclass
class AEToEResult:
    """Outcome of running Algorithm 3 for some number of loops."""

    decided: Dict[int, Optional[int]]
    corrupted: Set[int]
    loops_run: int
    loop_stats: List[LoopStats]
    max_bits_per_processor: int
    mean_bits_per_processor: float
    rounds: int
    sent_bits: Dict[int, int] = field(default_factory=dict)

    def good_decided(self) -> Dict[int, Optional[int]]:
        """Decisions of uncorrupted processors."""
        return {
            p: v for p, v in self.decided.items() if p not in self.corrupted
        }

    def everyone_agrees(self, expected: int) -> bool:
        """Whether every good processor decided ``expected``."""
        good = self.good_decided()
        return all(v == expected for v in good.values())

    def no_bad_decision(self, expected: int) -> bool:
        """Lemma 7(2): every good processor agrees on M or is undecided."""
        good = self.good_decided()
        return all(v in (expected, None) for v in good.values())

    def undecided_count(self) -> int:
        """How many good processors remain undecided."""
        return sum(1 for v in self.good_decided().values() if v is None)


def run_ae_to_everywhere(
    params: ProtocolParameters,
    knowledgeable: Set[int],
    message: int,
    k_sequence: Sequence[int],
    adversary: Optional[Adversary] = None,
    seed: int = 0,
) -> AEToEResult:
    """Run Algorithm 3 for ``len(k_sequence)`` loops.

    Args:
        params: protocol parameters (n, fanout, overload limit).
        knowledgeable: good processors that already agree on ``message``.
        message: M.
        k_sequence: agreed random number per loop (the global coin
            subsequence, values in [1..sqrt(n)]).
        adversary: optional; corrupted processors are removed from the
            knowledgeable set automatically.
    """
    n = params.n
    loops = len(k_sequence)
    if adversary is None:
        adversary = NullAdversary(n)

    def k_of_loop(loop: int) -> int:
        return k_sequence[loop % loops]

    protocols = [
        AEToEProcessor(
            pid=p,
            n=n,
            knowledgeable=(p in knowledgeable),
            message=message if p in knowledgeable else None,
            k_of_loop=k_of_loop,
            params=params,
            rng=random.Random((seed << 20) ^ (p * 7919 + 13)),
            loops=loops,
        )
        for p in range(n)
    ]
    network = SyncNetwork(protocols, adversary)

    loop_stats: List[LoopStats] = []
    round_no = 0
    for loop in range(loops):
        undecided_before = sum(
            1
            for p in range(n)
            if p not in adversary.corrupted and protocols[p].decided is None
        )
        if undecided_before == 0 and loop > 0:
            break
        for _phase in range(3):
            round_no += 1
            network.step(round_no)
        good = [p for p in range(n) if p not in adversary.corrupted]
        deciders = sum(
            1
            for p in good
            if protocols[p].decided is not None
        )
        loop_stats.append(
            LoopStats(
                loop=loop,
                k=k_sequence[loop],
                overloaded_responders=sum(
                    1
                    for p in good
                    if protocols[p].overloaded_this_loop
                ),
                deciders=deciders,
                undecided_after=len(good) - deciders,
                response_counts=[],
            )
        )

    good = [p for p in range(n) if p not in adversary.corrupted]
    return AEToEResult(
        decided={p: protocols[p].decided for p in range(n)},
        corrupted=set(adversary.corrupted),
        loops_run=len(loop_stats),
        loop_stats=loop_stats,
        max_bits_per_processor=network.ledger.max_bits_per_processor(
            include=good
        ),
        mean_bits_per_processor=network.ledger.mean_bits_per_processor(
            include=good
        ),
        rounds=round_no,
        sent_bits={p: network.ledger.sent_bits.get(p, 0) for p in range(n)},
    )
