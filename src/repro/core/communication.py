"""Tree communication protocols: sendSecretUp, sendDown, sendOpen.

Paper Section 3.2.3.  Secrets climb the tree as iterated shares
(Definition 1) and are revealed by cascading back down to every leaf of
the subtree, where level-1 committees reconstruct and then report values
straight up to the revealing node over ℓ-links (Lemma 3).

Implementation notes (see DESIGN.md §3 for the substitution rationale):

* **Upward** flows are tracked per processor: ``(node, pid)`` share
  stores, so adversary knowledge (which secrets a corrupted coalition can
  reconstruct — Lemma 1) is exact.
* **Downward** reveal pools arriving shares per committee node: once a
  secret is being revealed, secrecy is moot, and the paper itself pools at
  level 1 ("the processors in the 1-node each send each other all their
  shares and reconstruct").  Reconstruction of a (j-1)-share succeeds at a
  child node iff enough shares of that dealing arrive — exactly the
  condition Lemma 3(2) argues holds along good paths.
* Every transfer is charged to the ledger at word granularity, preserving
  Lemma 5's counting (including the ``d_m^ℓ`` replication blow-up).
* Corrupted holders contribute *tampered* share values during reveal and
  deal garbage when re-sharing; robustness comes from the same
  majority/threshold structure the paper relies on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..crypto.field import PrimeField
from ..crypto.kernels import get_interp_plan
from ..crypto.reed_solomon import decode_constant
from ..crypto.shamir import SecretSharingError, ShamirScheme, Share
from ..net.accounting import BitLedger
from ..net.messages import HEADER_BITS
from ..topology.links import LinkStructure
from ..topology.tree import NodeId, TreeTopology

#: Identifies one secret word: (owner processor, word index within array).
SecretKey = Tuple[int, int]

#: One dealing hop: (dealer processor id, x coordinate within the dealing).
PathEntry = Tuple[int, int]

SharePathT = Tuple[PathEntry, ...]


@dataclass(frozen=True)
class ShareRecord:
    """An i-share held by some processor.

    ``path`` lists the dealing hops from the original level-1 dealing to
    this record; ``len(path)`` is the iteration depth i.
    """

    secret: SecretKey
    path: SharePathT
    value: int

    @property
    def depth(self) -> int:
        """Number of share-tree levels above this record."""
        return len(self.path)

    def prefix(self) -> SharePathT:
        """The parent record's path (one dealing hop removed)."""
        return self.path[:-1]


class CommunicationError(RuntimeError):
    """Raised on protocol-flow violations."""


class _DealingPool:
    """Aggregated arrivals of one dealing's shares at one committee node.

    ``votes[x][value]`` counts weighted arrivals of coordinate ``x`` with
    ``value`` (conflicts only arise from corrupted holders);
    ``recipients[pid]`` counts how many shares each node member received
    (used to pick the forwarding holders).
    """

    __slots__ = ("votes", "recipients")

    def __init__(self) -> None:
        self.votes: Dict[int, Dict[int, int]] = {}
        self.recipients: Dict[int, int] = {}

    def majority_points(self) -> List[Tuple[int, int]]:
        """Per-coordinate majority value — the decoder's input."""
        return sorted(
            (x, max(votes, key=lambda v: (votes[v], -v)))
            for x, votes in self.votes.items()
        )


def robust_reconstruct_points(
    field: PrimeField,
    points: Sequence[Tuple[int, int]],
    group_size: int,
    threshold: int,
) -> Optional[int]:
    """Reconstruct a secret from distinct-coordinate (x, y) points.

    Clean pools take a single interpolation; noisy pools fall back to
    Berlekamp-Welch decoding, which corrects up to
    (|pool| - threshold) // 2 wrong points deterministically.

    Returns None when no consistent polynomial exists within the decoding
    radius (the caller treats the dealing as unrecoverable, the same as
    receiving too few shares — fail-safe, never fail-wrong).
    """
    if len(points) < threshold:
        return None
    # Fast path: interpolate a prefix sample; in clean pools it explains
    # everything immediately.  The pool grids (committee coordinates)
    # recur across dealings, so the sample's interpolation plan — its
    # barycentric weights and the lambda vector at every checked x —
    # is a cache hit after the first reconstruction.
    sample = points[:threshold]
    plan = get_interp_plan(field, tuple(x for x, _y in sample))
    sample_ys = [y for _x, y in sample]
    if all(
        plan.interpolate_at(x, sample_ys) == y % field.modulus
        for x, y in points
    ):
        return plan.constant(sample_ys)
    # Noisy pool: deterministic Berlekamp-Welch decoding up to the unique
    # radius e = (|pool| - threshold) // 2 (two degree-(threshold-1)
    # polynomials agree on <= threshold-1 points, so the decoded one is
    # unique).
    return decode_constant(field, points, threshold)


def robust_reconstruct(
    field: PrimeField,
    shares: Sequence[Share],
    group_size: int,
    threshold: int,
    rng: Optional[random.Random] = None,
    max_tries: int = 24,
) -> Optional[int]:
    """Share-list front end of :func:`robust_reconstruct_points`.

    Replicated transfers can deliver the same coordinate several times
    (possibly with conflicting values from corrupted holders); the
    majority value per coordinate is taken first.

    ``rng`` and ``max_tries`` are accepted for call-site compatibility
    but unused: decoding is fully deterministic (fast-path interpolation
    plus Berlekamp-Welch), which is what lets every engine backend
    reproduce a trial bit-for-bit from its derived seed alone.
    """
    by_x: Dict[int, Dict[int, int]] = {}
    for share in shares:
        votes = by_x.setdefault(share.x, {})
        votes[share.value] = votes.get(share.value, 0) + 1
    points = sorted(
        (x, max(votes, key=lambda v: (votes[v], -v)))
        for x, votes in by_x.items()
    )
    return robust_reconstruct_points(field, points, group_size, threshold)


@dataclass
class RevealOutcome:
    """Result of one sendDown + sendOpen reveal.

    Attributes:
        leaf_values: per level-1 node, the value the (good members of the)
            node reconstructed — None when reconstruction failed there.
        node_views: per member of the revealing node, the value it learned
            through sendOpen majorities (None = could not determine).
        true_values_learned: convenience count of node members whose view
            matches ``expected`` when an expected value is supplied.
    """

    leaf_values: Dict[NodeId, Dict[SecretKey, Optional[int]]]
    node_views: Dict[int, Dict[SecretKey, Optional[int]]]


class TreeCommunicator:
    """Executes the three communication protocols over one tree.

    The communicator is the omniscient simulation harness: it stores every
    processor's shares, moves them according to the protocols, charges the
    ledger, and applies the adversary's tampering.  Protocol *decisions*
    (what to share, when to reveal) belong to the tournament in
    :mod:`repro.core.almost_everywhere`.

    Args:
        tree: committee tree.
        links: uplinks / ℓ-links / intra-node graphs.
        field: share arithmetic field.
        ledger: bit ledger charged for every transfer.
        rng: harness RNG (dealer polynomials etc.).  Must be a *seeded*
            ``random.Random``, preferably a labelled child stream of the
            caller's master seed (the tournament passes
            ``child_rng(seed, "comm")``) — required explicitly so no two
            Monte-Carlo trials can silently share dealer randomness, and
            no code path ever falls back to global module randomness.
        threshold_fraction: reconstruction threshold as a fraction of each
            dealing's group (paper: 1/2; "any t in [1/3, 2/3] would work").
    """

    def __init__(
        self,
        tree: TreeTopology,
        links: LinkStructure,
        field: PrimeField,
        ledger: BitLedger,
        rng: random.Random,
        threshold_fraction: float = 0.5,
    ) -> None:
        if not 0.0 < threshold_fraction < 1.0:
            raise CommunicationError("threshold_fraction must be in (0,1)")
        if rng is None:
            raise CommunicationError(
                "TreeCommunicator requires a seeded rng stream "
                "(e.g. child_rng(seed, 'comm'))"
            )
        self.tree = tree
        self.links = links
        self.field = field
        self.ledger = ledger
        self.rng = rng
        self.threshold_fraction = threshold_fraction
        #: (node, pid) -> secret -> list of records held there.
        self.stores: Dict[Tuple[NodeId, int], Dict[SecretKey, List[ShareRecord]]] = {}
        #: (secret, dealing path) -> group size of that dealing.
        self.group_sizes: Dict[Tuple[SecretKey, SharePathT], int] = {}
        self.word_bits = field.element_bits

    # -- helpers --------------------------------------------------------------------

    def _store(self, node: NodeId, pid: int) -> Dict[SecretKey, List[ShareRecord]]:
        return self.stores.setdefault((node, pid), {})

    def _threshold(self, group_size: int) -> int:
        return max(1, int(group_size * self.threshold_fraction) + 1)

    def _charge(self, sender: int, recipient: int, words: int = 1) -> None:
        self.ledger.record_abstract(
            sender, recipient, words * (self.word_bits + HEADER_BITS)
        )

    def _charge_batch(self, counts: Dict[Tuple[int, int], int]) -> None:
        """One ledger entry per (sender, recipient) pair — hot-path form."""
        per_word = self.word_bits + HEADER_BITS
        for (sender, recipient), words in counts.items():
            self.ledger.record_abstract(sender, recipient, words * per_word)

    def records_at(self, node: NodeId, pid: int, key: SecretKey) -> List[ShareRecord]:
        """Share records a processor holds for a key at a node."""
        return list(self._store(node, pid).get(key, []))

    def erase(self, node: NodeId, pid: int, key: SecretKey) -> None:
        """The paper's mandatory deletion after re-sharing."""
        self._store(node, pid).pop(key, None)

    # -- initial dealing (Algorithm 2 step 1a) ------------------------------------------

    def initial_share(
        self, owner: int, secrets: Dict[SecretKey, int]
    ) -> None:
        """Processor ``owner`` secret-shares its words with leaf node ``owner``.

        Every word is dealt independently over the leaf committee; member
        j receives the x = j+1 share.
        """
        leaf = NodeId(1, owner)
        members = sorted(self.tree.members(leaf))
        scheme = ShamirScheme(
            n_players=len(members),
            threshold=self._threshold(len(members)),
            field=self.field,
        )
        for key, value in secrets.items():
            shares = scheme.deal(value, self.rng)
            self.group_sizes[(key, ((owner, 0),))] = len(members)
            for member, share in zip(members, shares):
                record = ShareRecord(
                    secret=key,
                    path=((owner, share.x),),
                    value=share.value,
                )
                self._store(leaf, member).setdefault(key, []).append(record)
                self._charge(owner, member)

    # -- sendSecretUp ----------------------------------------------------------------

    def send_secret_up(
        self,
        child: NodeId,
        keys: Sequence[SecretKey],
        corrupted: Set[int],
    ) -> None:
        """Re-share every record of ``keys`` from ``child`` into its parent.

        Each holder deals each of its records over its uplink targets and
        erases the original (Definition 1's iteration).  Corrupted holders
        deal garbage — the adversary may always destroy what it holds.
        """
        parent = self.tree.parent(child)
        for member in sorted(self.tree.members(child)):
            store = self._store(child, member)
            targets = sorted(self.links.uplinks(child, member))
            if not targets:
                continue
            scheme = ShamirScheme(
                n_players=len(targets),
                threshold=self._threshold(len(targets)),
                field=self.field,
            )
            for key in keys:
                records = store.pop(key, [])
                for record in records:
                    value = record.value
                    if member in corrupted:
                        value = (value + 1) % self.field.modulus
                    shares = scheme.deal(value, self.rng)
                    new_path_base = record.path
                    self.group_sizes[
                        (key, new_path_base + ((member, 0),))
                    ] = len(targets)
                    for target, share in zip(targets, shares):
                        new_record = ShareRecord(
                            secret=key,
                            path=new_path_base + ((member, share.x),),
                            value=share.value,
                        )
                        self._store(parent, target).setdefault(
                            key, []
                        ).append(new_record)
                        self._charge(member, target)

    # -- sendDown + reconstruction ------------------------------------------------------

    def send_down(
        self,
        top: NodeId,
        keys: Sequence[SecretKey],
        corrupted: Set[int],
    ) -> Dict[NodeId, Dict[SecretKey, Optional[int]]]:
        """Cascade shares from ``top`` to all its level-1 descendants.

        Returns the value each level-1 node reconstructs per secret (None
        on failure).  Shares held at ``top`` are consumed (released).
        """
        # Frontier: node -> key -> list of (record, holder pids).  Records
        # reconstructed on the way down are replicated across several
        # holders (capped), mirroring the paper's fan-out while keeping
        # the state tractable; corrupted holders are then outvoted by the
        # per-coordinate majority inside robust_reconstruct.
        frontier: Dict[SecretKey, List[Tuple[ShareRecord, Tuple[int, ...]]]] = {
            key: [] for key in keys
        }
        for member in self.tree.members(top):
            store = self._store(top, member)
            for key in keys:
                for record in store.pop(key, []):
                    frontier[key].append((record, (member,)))

        per_node: Dict[
            NodeId, Dict[SecretKey, List[Tuple[ShareRecord, Tuple[int, ...]]]]
        ]
        per_node = {top: frontier}
        level = top.level
        while level > 1:
            next_per_node: Dict[
                NodeId, Dict[SecretKey, List[Tuple[ShareRecord, int]]]
            ] = {}
            for node, node_frontier in per_node.items():
                for child in self.tree.children(node):
                    pooled = self._transfer_down(
                        node, child, node_frontier, corrupted
                    )
                    reconstructed = self._reconstruct_pool(
                        child, pooled, corrupted
                    )
                    next_per_node[child] = reconstructed
            per_node = next_per_node
            level -= 1

        # Level-1 nodes: members exchange all shares and reconstruct the
        # secret itself (the paper's final step).
        leaf_values: Dict[NodeId, Dict[SecretKey, Optional[int]]] = {}
        for leaf, leaf_frontier in per_node.items():
            members = sorted(self.tree.members(leaf))
            values: Dict[SecretKey, Optional[int]] = {}
            charge_counts: Dict[Tuple[int, int], int] = {}
            for key, records in leaf_frontier.items():
                # Intra-node exchange cost: every holder sends each record
                # to every other member.
                pool: List[Share] = []
                group_key = (key, ((key[0], 0),))
                group_size = self.group_sizes.get(group_key, len(members))
                for record, holders in records:
                    for holder in holders:
                        for other in members:
                            if other != holder:
                                pair = (holder, other)
                                charge_counts[pair] = (
                                    charge_counts.get(pair, 0) + 1
                                )
                        value = record.value
                        if holder in corrupted:
                            value = (value + 1) % self.field.modulus
                        pool.append(
                            Share(x=record.path[-1][1], value=value)
                        )
                values[key] = robust_reconstruct(
                    self.field,
                    pool,
                    group_size,
                    self._threshold(group_size),
                    self.rng,
                )
            self._charge_batch(charge_counts)
            leaf_values[leaf] = values
        return leaf_values

    #: Cap on how many members replicate one reconstructed record on the
    #: way down.  3 keeps a lone corrupted holder outvoted while bounding
    #: the state blow-up (the *bits* of the paper's full replication are
    #: charged regardless, in _transfer_down).
    REPLICATION_CAP = 3

    def _transfer_down(
        self,
        node: NodeId,
        child: NodeId,
        node_frontier: Dict[SecretKey, List[Tuple[ShareRecord, Tuple[int, ...]]]],
        corrupted: Set[int],
    ) -> Dict[SecretKey, Dict[SharePathT, "_DealingPool"]]:
        """Send every record from ``node``'s holders into ``child``.

        Each holder v sends to the child members whose uplinks include v
        (the reversed uplink graph).  Returns, per secret and per dealing,
        the aggregated arrival pool in the child: per-coordinate value
        votes plus per-recipient share counts.  Every copy a holder sends
        is identical, so votes are aggregated per (record, holder) with
        the recipient count as the weight — same decoder input, a
        fraction of the bookkeeping.
        """
        # Reverse uplink index for this child.
        reverse: Dict[int, List[int]] = {}
        for member in self.tree.members(child):
            for target in self.links.uplinks(child, member):
                reverse.setdefault(target, []).append(member)
        coverage = {holder: len(r) for holder, r in reverse.items()}

        # Per-holder record counts for batched ledger charges.
        records_per_holder: Dict[int, int] = {}

        pooled: Dict[SecretKey, Dict[SharePathT, _DealingPool]] = {}
        for key, records in node_frontier.items():
            dealings = pooled.setdefault(key, {})
            for record, holders in records:
                dealing = record.prefix() + ((record.path[-1][0], 0),)
                pool = dealings.get(dealing)
                if pool is None:
                    pool = _DealingPool()
                    dealings[dealing] = pool
                x = record.path[-1][1]
                for holder in holders:
                    weight = coverage.get(holder, 0)
                    if not weight:
                        continue
                    records_per_holder[holder] = (
                        records_per_holder.get(holder, 0) + 1
                    )
                    value = record.value
                    if holder in corrupted:
                        value = (value + 1) % self.field.modulus
                    votes = pool.votes.setdefault(x, {})
                    votes[value] = votes.get(value, 0) + weight
                    for recipient in reverse[holder]:
                        pool.recipients[recipient] = (
                            pool.recipients.get(recipient, 0) + 1
                        )

        charge_counts: Dict[Tuple[int, int], int] = {}
        for holder, n_records in records_per_holder.items():
            for recipient in reverse.get(holder, ()):
                charge_counts[(holder, recipient)] = n_records
        self._charge_batch(charge_counts)
        return pooled

    def _reconstruct_pool(
        self,
        child: NodeId,
        pooled: Dict[SecretKey, Dict[SharePathT, "_DealingPool"]],
        corrupted: Set[int],
    ) -> Dict[SecretKey, List[Tuple[ShareRecord, Tuple[int, ...]]]]:
        """Collapse arrived i-shares into (i-1)-share records at ``child``.

        A dealing is recoverable when enough of its shares arrived; the
        reconstructed record is replicated to the (up to REPLICATION_CAP)
        members that received the most of its shares — they forward it
        further down, and a corrupted one among them is outvoted by the
        per-coordinate majority at the next hop.
        """
        out: Dict[SecretKey, List[Tuple[ShareRecord, Tuple[int, ...]]]] = {}
        for key, dealings in pooled.items():
            records: List[Tuple[ShareRecord, Tuple[int, ...]]] = []
            for dealing, pool in dealings.items():
                group_key = (key, dealing)
                group_size = self.group_sizes.get(group_key)
                if group_size is None:
                    continue
                value = robust_reconstruct_points(
                    self.field,
                    pool.majority_points(),
                    group_size,
                    self._threshold(group_size),
                )
                if value is None:
                    continue
                ranked = sorted(
                    pool.recipients,
                    key=lambda m: (-pool.recipients[m], m),
                )
                holders = tuple(ranked[: self.REPLICATION_CAP])
                parent_path = dealing[:-1]
                if parent_path:
                    record = ShareRecord(
                        secret=key, path=parent_path, value=value
                    )
                else:  # fully reconstructed secret (top was level 1)
                    record = ShareRecord(
                        secret=key, path=((key[0], 0),), value=value
                    )
                records.append((record, holders))
            out[key] = records
        return out

    # -- sendOpen -------------------------------------------------------------------

    def send_open(
        self,
        top: NodeId,
        keys: Sequence[SecretKey],
        leaf_values: Dict[NodeId, Dict[SecretKey, Optional[int]]],
        corrupted: Set[int],
        bad_value_fn=None,
    ) -> Dict[int, Dict[SecretKey, Optional[int]]]:
        """Leaf committees report reconstructed values up the ℓ-links.

        Every member of each level-1 node sends its value for each secret
        to the ``top`` members linked to that node.  A ``top`` member
        takes a majority within each leaf node's reports, then a majority
        across its linked leaf nodes (Section 3.2.3).

        ``bad_value_fn(key, pid)`` supplies corrupted members' reports
        (default: flip the low bit — enough to attack coin words).
        """
        if bad_value_fn is None:
            bad_value_fn = lambda key, pid: 1
        node_views: Dict[int, Dict[SecretKey, Optional[int]]] = {}
        member_links: Dict[int, Tuple[NodeId, ...]] = {}
        if top.level == 1:
            # Degenerate: the "subtree" is the node itself; every member
            # already holds the reconstructed value.
            for member in self.tree.members(top):
                views = {}
                for key in keys:
                    views[key] = leaf_values.get(top, {}).get(key)
                node_views[member] = views
            return node_views

        for member in self.tree.members(top):
            member_links[member] = self.links.ell_links(top, member)

        charge_counts: Dict[Tuple[int, int], int] = {}
        for member, linked_leaves in member_links.items():
            views: Dict[SecretKey, Optional[int]] = {}
            for key in keys:
                leaf_reports: List[int] = []
                for leaf in linked_leaves:
                    leaf_members = self.tree.members(leaf)
                    reports: List[int] = []
                    for leaf_member in leaf_members:
                        if leaf_member in corrupted:
                            reported = bad_value_fn(key, leaf_member)
                        else:
                            value = leaf_values.get(leaf, {}).get(key)
                            if value is None:
                                continue  # abstains (failed reconstruction)
                            reported = value
                        pair = (leaf_member, member)
                        charge_counts[pair] = charge_counts.get(pair, 0) + 1
                        reports.append(reported)
                    # A leaf's report only counts when a strict majority of
                    # its *full membership* backs one value — committee
                    # sizes are common knowledge, so silence from failed
                    # good members must not let a corrupted minority speak
                    # for the node.
                    majority = _majority(reports)
                    if majority is not None:
                        backing = sum(1 for r in reports if r == majority)
                        if backing * 2 > len(leaf_members):
                            leaf_reports.append(majority)
                # Same guard across the linked leaves.
                majority = _majority(leaf_reports)
                if majority is not None:
                    backing = sum(1 for r in leaf_reports if r == majority)
                    if backing * 2 <= len(linked_leaves):
                        majority = None
                views[key] = majority
            node_views[member] = views
        self._charge_batch(charge_counts)
        return node_views

    def reveal(
        self,
        top: NodeId,
        keys: Sequence[SecretKey],
        corrupted: Set[int],
        bad_value_fn=None,
    ) -> RevealOutcome:
        """sendDown followed by sendOpen — the full reveal of Lemma 3(2)."""
        leaf_values = self.send_down(top, keys, corrupted)
        node_views = self.send_open(
            top, keys, leaf_values, corrupted, bad_value_fn
        )
        return RevealOutcome(leaf_values=leaf_values, node_views=node_views)

    # -- adversary knowledge (Lemma 1 / Lemma 3(1)) -------------------------------------

    def adversary_can_reconstruct(
        self, key: SecretKey, corrupted: Set[int]
    ) -> bool:
        """Whether the coalition's current shares determine secret ``key``.

        Pools every record held by corrupted processors anywhere in the
        tree and runs the same cascade the reveal would, but *only* with
        coalition shares.  True means secrecy is broken (Lemma 3(1): some
        node on the path must have gone bad).
        """
        by_path: Dict[SharePathT, int] = {}
        for (node, pid), store in self.stores.items():
            if pid not in corrupted:
                continue
            for record in store.get(key, []):
                by_path[record.path] = record.value

        # Iteratively collapse deepest dealings first.
        changed = True
        while changed:
            changed = False
            pools: Dict[SharePathT, List[Share]] = {}
            for path, value in by_path.items():
                if len(path) <= 1:
                    continue
                dealing = path[:-1] + ((path[-1][0], 0),)
                pools.setdefault(dealing, []).append(
                    Share(x=path[-1][1], value=value)
                )
            for dealing, shares in pools.items():
                parent_path = dealing[:-1]
                if parent_path in by_path:
                    continue
                group_size = self.group_sizes.get((key, dealing))
                if group_size is None:
                    continue
                threshold = self._threshold(group_size)
                if len({s.x for s in shares}) >= threshold:
                    scheme = ShamirScheme(
                        n_players=group_size,
                        threshold=threshold,
                        field=self.field,
                    )
                    try:
                        value = scheme.reconstruct(shares)
                    except SecretSharingError:
                        continue
                    by_path[parent_path] = value
                    changed = True
        # The secret itself corresponds to recovering the level-1 dealing.
        root_dealing = ((key[0], 0),)
        pool = [
            Share(x=path[-1][1], value=value)
            for path, value in by_path.items()
            if len(path) == 1 and path[-1][0] == key[0]
        ]
        group_size = self.group_sizes.get((key, root_dealing))
        if group_size is None:
            return False
        threshold = self._threshold(group_size)
        if len({s.x for s in pool}) >= threshold:
            return True
        return False


def _majority(values: Sequence[int]) -> Optional[int]:
    """Strict plurality with deterministic tie-break; None when empty."""
    if not values:
        return None
    counts: Dict[int, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    return max(counts, key=lambda v: (counts[v], -v))
