"""The paper's primary contribution: Algorithms 1-5 and their composition.

* :mod:`~repro.core.parameters` — parameter derivation (§3.6, Lemma 5).
* :mod:`~repro.core.blocks` — candidate arrays/blocks (Definition 4).
* :mod:`~repro.core.communication` — sendSecretUp/sendDown/sendOpen (§3.2.3).
* :mod:`~repro.core.election` — Feige lightest bin (Algorithm 1, Lemma 4).
* :mod:`~repro.core.coins` / :mod:`~repro.core.global_coin` — coin models.
* :mod:`~repro.core.unreliable_coin_ba` — Algorithm 5 (Theorems 3, 5).
* :mod:`~repro.core.almost_everywhere` — the tournament (Algorithm 2, Thm 2).
* :mod:`~repro.core.ae_to_everywhere` — Algorithm 3 (§4, Theorem 4).
* :mod:`~repro.core.byzantine_agreement` — Algorithm 4 (§5, Theorem 1).
"""

from .ae_to_everywhere import (
    AEToEProcessor,
    AEToEResult,
    FakeResponderAdversary,
    run_ae_to_everywhere,
)
from .almost_everywhere import (
    LevelStats,
    Tournament,
    TournamentResult,
    run_almost_everywhere_ba,
)
from .blocks import Block, CandidateArray, generate_array
from .byzantine_agreement import EverywhereBAResult, run_everywhere_ba
from .coins import (
    CoinRound,
    CoinSource,
    coin_source_from_words,
    perfect_coin_source,
    unreliable_coin_source,
)
from .communication import (
    RevealOutcome,
    SecretKey,
    ShareRecord,
    TreeCommunicator,
    robust_reconstruct,
    robust_reconstruct_points,
)
from .election import (
    ElectionResult,
    good_winner_fraction,
    lemma4_bound,
    lightest_bin_election,
    simulate_election_against_adversary,
)
from .global_coin import GlobalCoinSubsequence, synthetic_subsequence
from .leader_election import (
    AttackOutcome,
    LeaderDraw,
    LeaderElectionError,
    LeaderSchedule,
    elect_leader,
    expected_good_rounds,
    leader_schedule,
    run_leader_election,
    schedule_under_attack,
)
from .multivalued import (
    MultiValuedResult,
    run_scalable_multivalued,
    turpin_coan_reduce,
)
from .parameters import ParameterError, ProtocolParameters
from .repeated_agreement import (
    ReplicatedLogError,
    ReplicatedLogResult,
    SlotResult,
    run_replicated_log,
    words_per_slot,
)
from .universe_reduction import (
    CommitteeResult,
    reduce_universe,
    run_universe_reduction,
    sample_committee_from_words,
)
from .unreliable_coin_ba import (
    AEBAResult,
    SparseAEBAProcessor,
    aeba_vote_update,
    majority_and_fraction,
    run_aeba_dataflow,
    run_unreliable_coin_ba,
    vote_threshold,
)

__all__ = [
    "AEToEProcessor",
    "AEToEResult",
    "FakeResponderAdversary",
    "run_ae_to_everywhere",
    "LevelStats",
    "Tournament",
    "TournamentResult",
    "run_almost_everywhere_ba",
    "Block",
    "CandidateArray",
    "generate_array",
    "EverywhereBAResult",
    "run_everywhere_ba",
    "CoinRound",
    "CoinSource",
    "coin_source_from_words",
    "perfect_coin_source",
    "unreliable_coin_source",
    "RevealOutcome",
    "SecretKey",
    "ShareRecord",
    "TreeCommunicator",
    "robust_reconstruct",
    "robust_reconstruct_points",
    "ElectionResult",
    "good_winner_fraction",
    "lemma4_bound",
    "lightest_bin_election",
    "simulate_election_against_adversary",
    "GlobalCoinSubsequence",
    "synthetic_subsequence",
    "AttackOutcome",
    "LeaderDraw",
    "LeaderElectionError",
    "LeaderSchedule",
    "elect_leader",
    "expected_good_rounds",
    "leader_schedule",
    "run_leader_election",
    "schedule_under_attack",
    "MultiValuedResult",
    "run_scalable_multivalued",
    "turpin_coan_reduce",
    "ParameterError",
    "ProtocolParameters",
    "ReplicatedLogError",
    "ReplicatedLogResult",
    "SlotResult",
    "run_replicated_log",
    "words_per_slot",
    "CommitteeResult",
    "reduce_universe",
    "run_universe_reduction",
    "sample_committee_from_words",
    "AEBAResult",
    "SparseAEBAProcessor",
    "aeba_vote_update",
    "majority_and_fraction",
    "run_aeba_dataflow",
    "run_unreliable_coin_ba",
    "vote_threshold",
]
