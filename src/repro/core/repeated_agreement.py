"""Repeated agreement: one tournament amortized over a replicated log.

The intro's systems motivation is replication — "Byzantine agreement ...
is infeasible for use in synchronizing a large number of replicas" [22].
Replication does not need one agreement, it needs one per log slot, and
the expensive part of this paper's pipeline (the Algorithm 2 tournament)
is *input-independent*: its real products are the sparse-graph agreement
engine and the global coin subsequence, which Section 3.5 extends to any
polylogarithmic length at O~(n^{4/delta}) bits per word.

So a log commits slots the cheap way:

1. Run the tournament **once**, asking for enough output words to cover
   every planned slot (Section 3.5's modification).
2. Per slot, run Algorithm 5 among all n processors on the slot's
   proposals, with coins carved from that slot's segment of the
   subsequence — almost-everywhere agreement at O(k log^2 n) bits per
   processor.
3. Push each slot's bit everywhere with Algorithm 3, keyed by the
   segment's remaining words (O~(sqrt n) bits per processor).

Per-slot marginal cost is steps 2-3; the tournament divides across the
log.  Benchmark E22 measures the amortization against re-running the
full Theorem 1 pipeline per slot and against a quadratic PBFT-style
baseline per slot.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..adversary.adaptive import TournamentAdversary
from ..adversary.behaviors import EquivocatingBehavior, VoteBehavior
from ..adversary.flooding import FloodingAdversary
from ..adversary.static import StaticByzantineAdversary
from ..net.simulator import NullAdversary
from .ae_to_everywhere import (
    AEToEResult,
    FakeResponderAdversary,
    run_ae_to_everywhere,
)
from .almost_everywhere import Tournament, TournamentResult
from .coins import CoinRound, CoinSource
from .global_coin import GlobalCoinSubsequence
from .parameters import ProtocolParameters
from .unreliable_coin_ba import AEBAResult, run_unreliable_coin_ba


class ReplicatedLogError(ValueError):
    """Raised for invalid log configuration."""


@dataclass
class SlotResult:
    """One committed log slot.

    Attributes:
        index: slot position in the log.
        bit: the committed bit.
        aeba: the slot's Algorithm 5 outcome (almost-everywhere phase).
        ae2e: the slot's Algorithm 3 outcome (everywhere phase).
        word_indices: which subsequence words this slot consumed.
    """

    index: int
    bit: int
    aeba: AEBAResult
    ae2e: AEToEResult
    word_indices: List[int]

    def success(self, corrupted: Set[int]) -> bool:
        """Every good processor decided this slot's bit."""
        return all(
            value == self.bit
            for pid, value in self.ae2e.decided.items()
            if pid not in corrupted
        )


@dataclass
class ReplicatedLogResult:
    """A committed log plus the shared tournament that funded it."""

    slots: List[SlotResult]
    tournament: TournamentResult
    coin: GlobalCoinSubsequence
    inputs: List[List[int]]
    slot_bits_per_processor: List[Dict[int, int]] = field(
        default_factory=list
    )

    @property
    def corrupted(self) -> Set[int]:
        """Processors the adversary controlled during the shared tournament."""
        return self.tournament.corrupted

    def bits(self) -> List[int]:
        """The committed bit of every slot, in log order."""
        return [slot.bit for slot in self.slots]

    def success(self) -> bool:
        """Every slot decided everywhere by every good processor."""
        return all(slot.success(self.corrupted) for slot in self.slots)

    def all_valid(self) -> bool:
        """Each slot's bit was proposed by at least one good processor."""
        for slot in self.slots:
            proposals = self.inputs[slot.index]
            if not any(
                proposals[p] == slot.bit
                for p in range(len(proposals))
                if p not in self.corrupted
            ):
                return False
        return True

    def tournament_max_bits(self) -> int:
        """Largest bit total any good processor sent in the shared tournament."""
        good = [
            p
            for p in self.tournament.ledger.sent_bits
            if p not in self.corrupted
        ]
        return max(
            (self.tournament.ledger.sent_bits[p] for p in good), default=0
        )

    def slot_max_bits(self, index: int) -> int:
        """Max bits any good processor sent for one slot (steps 2-3)."""
        ledger = self.slot_bits_per_processor[index]
        good = [p for p in ledger if p not in self.corrupted]
        return max((ledger[p] for p in good), default=0)

    def amortized_max_bits_per_slot(self) -> float:
        """Tournament divided across the log plus the mean marginal cost."""
        if not self.slots:
            return 0.0
        marginal = sum(
            self.slot_max_bits(i) for i in range(len(self.slots))
        ) / len(self.slots)
        return self.tournament_max_bits() / len(self.slots) + marginal


def words_per_slot(aeba_rounds: int, ae2e_loops: int) -> int:
    """Subsequence words one slot consumes (coins + request labels)."""
    return aeba_rounds + ae2e_loops


def _slot_coin_source(
    coin: GlobalCoinSubsequence, n: int, indices: Sequence[int]
) -> CoinSource:
    """Algorithm 5 coins for one slot: per-processor low bits of the
    slot's words, each round good iff the word was genuinely random and
    every processor's view of it agrees."""
    rounds: List[CoinRound] = []
    for index in indices:
        views: Dict[int, int] = {}
        learned_all = True
        for p in range(n):
            word_views = coin.views.get(p, [])
            word = word_views[index] if index < len(word_views) else None
            if word is None:
                learned_all = False
            views[p] = (word & 1) if word is not None else 0
        distinct = set(views.values())
        genuinely_random = (
            index < len(coin.truth) and coin.truth[index] is not None
        )
        good = genuinely_random and learned_all and len(distinct) == 1
        rounds.append(
            CoinRound(
                good=good,
                views=views,
                true_bit=distinct.pop() if good else None,
            )
        )
    return CoinSource(rounds)


def _slot_k_sequence(
    coin: GlobalCoinSubsequence, indices: Sequence[int], sqrt_n: int
) -> List[int]:
    """Algorithm 3 request labels for one slot's amplification loops."""
    ks: List[int] = []
    for index in indices:
        word = coin.agreed_word(index)
        ks.append(1 + (word % sqrt_n) if word is not None else 1)
    return ks


def run_replicated_log(
    n: int,
    slot_inputs: Sequence[Sequence[int]],
    aeba_rounds: int = 6,
    ae2e_loops: int = 2,
    tournament_adversary: Optional[TournamentAdversary] = None,
    slot_behavior: Optional[VoteBehavior] = None,
    flood_factor: int = 0,
    params: Optional[ProtocolParameters] = None,
    seed: int = 0,
) -> ReplicatedLogResult:
    """Commit a multi-slot log with one shared tournament.

    Args:
        n: processors.
        slot_inputs: per slot, the proposal bit of every processor.
        aeba_rounds: Algorithm 5 rounds (and coin words) per slot.
        ae2e_loops: Algorithm 3 loops (and label words) per slot.
        tournament_adversary: adversary for the shared tournament; its
            corrupted set attacks every subsequent slot too.
        slot_behavior: how corrupted processors vote inside each slot's
            Algorithm 5 run (default: the equivocating split attack).
        flood_factor: junk messages each corrupted processor sprays per
            round inside every slot phase (the model's "bad processors
            can send any number of messages").
        params: protocol parameters (default: the simulation preset).
        seed: master seed; every phase derives its own stream.
    """
    if not slot_inputs:
        raise ReplicatedLogError("need at least one slot")
    for i, proposals in enumerate(slot_inputs):
        if len(proposals) != n:
            raise ReplicatedLogError(
                f"slot {i} has {len(proposals)} proposals, expected {n}"
            )
    if aeba_rounds < 1 or ae2e_loops < 1:
        raise ReplicatedLogError(
            "need at least one Algorithm 5 round and one Algorithm 3 loop "
            f"per slot, got {aeba_rounds} and {ae2e_loops}"
        )
    if params is None:
        params = ProtocolParameters.simulation(n)
    if tournament_adversary is None:
        tournament_adversary = TournamentAdversary(n, budget=0)

    num_slots = len(slot_inputs)
    per_slot = words_per_slot(aeba_rounds, ae2e_loops)
    total_words = num_slots * per_slot
    contestants = max(1, params.winners_per_election * params.q)
    output_words = max(2, math.ceil(total_words / contestants))

    # Step 1: the shared tournament.  Its input bits are irrelevant to
    # the log (each slot agrees on its own proposals); what the log buys
    # is the coin subsequence.
    tournament = Tournament(
        params,
        list(slot_inputs[0]),
        tournament_adversary,
        seed=seed,
        output_words=output_words,
    )
    ae_result = tournament.run()
    coin = GlobalCoinSubsequence(
        views=ae_result.output_views,
        truth=ae_result.output_truth,
        corrupted=ae_result.corrupted,
    )
    if coin.length < total_words:
        raise ReplicatedLogError(
            f"tournament produced {coin.length} words, log needs "
            f"{total_words}; raise aeba_rounds/ae2e_loops or slot count"
        )

    corrupted = set(ae_result.corrupted)
    if slot_behavior is None:
        slot_behavior = EquivocatingBehavior()

    slots: List[SlotResult] = []
    slot_ledgers: List[Dict[int, int]] = []
    for index, proposals in enumerate(slot_inputs):
        base = index * per_slot
        coin_indices = list(range(base, base + aeba_rounds))
        label_indices = list(
            range(base + aeba_rounds, base + per_slot)
        )

        # Step 2: almost-everywhere agreement on this slot's proposals.
        aeba_adversary = None
        if corrupted:
            aeba_adversary = StaticByzantineAdversary(
                n,
                targets=sorted(corrupted),
                behavior=slot_behavior,
                seed=seed + 101 * index,
            )
            if flood_factor > 0:
                aeba_adversary = FloodingAdversary(
                    aeba_adversary,
                    flood_factor=flood_factor,
                    seed=seed + 103 * index,
                )
        aeba = run_unreliable_coin_ba(
            n,
            list(proposals),
            _slot_coin_source(coin, n, coin_indices),
            adversary=aeba_adversary,
            seed=seed + 31 * index + 7,
        )
        bit = aeba.agreed_bit()

        # Step 3: push the slot's bit everywhere.
        knowledgeable = {
            p
            for p, vote in aeba.votes.items()
            if p not in corrupted and vote == bit
        }
        if corrupted:
            ae2e_adversary = FakeResponderAdversary(
                n,
                targets=sorted(corrupted),
                fake_message=1 - bit,
                seed=seed + 53 * index,
            )
            if flood_factor > 0:
                ae2e_adversary = FloodingAdversary(
                    ae2e_adversary,
                    flood_factor=flood_factor,
                    seed=seed + 107 * index,
                )
        else:
            ae2e_adversary = NullAdversary(n)
        ae2e = run_ae_to_everywhere(
            params,
            knowledgeable=knowledgeable,
            message=bit,
            k_sequence=_slot_k_sequence(
                coin, label_indices, params.sqrt_n()
            ),
            adversary=ae2e_adversary,
            seed=seed + 17 * index + 3,
        )

        slots.append(
            SlotResult(
                index=index,
                bit=bit,
                aeba=aeba,
                ae2e=ae2e,
                word_indices=coin_indices + label_indices,
            )
        )
        ledger = dict(ae2e.sent_bits)
        # Algorithm 5's ledger only exposes the per-processor max; spread
        # is tight on a regular graph, so the max is the honest figure to
        # charge every processor for amortization accounting.
        for p in range(n):
            ledger[p] = ledger.get(p, 0) + aeba.max_bits_per_processor
        slot_ledgers.append(ledger)

    return ReplicatedLogResult(
        slots=slots,
        tournament=ae_result,
        coin=coin,
        inputs=[list(proposals) for proposals in slot_inputs],
        slot_bits_per_processor=slot_ledgers,
    )
