"""Scalable leader election — the [17] companion result, made adaptive-safe.

Section 2 of the paper builds on [17] (King, Saia, Sanwalani, Vee, SODA
2006), whose tournament elects "Byzantine agreement, leader election, and
universe reduction" against a *non-adaptive* adversary.  Electing a
processor as leader is prima facie impossible against an adaptive
adversary — the paper's own opening observation (§1.3): the adversary
"can simply wait until a small set is elected and then can take over all
processors in that set".

The adaptive-safe analogue uses exactly this paper's machinery: derive
the leader from the *global coin subsequence* (§3.5), whose random words
come from arrays that were secret-shared long before the draw and are
erased by the time it is revealed.  The adversary learns the leader the
moment everyone does, never earlier, so

* a single draw names a good processor with probability equal to the
  population's good fraction (>= 2/3 + eps), and
* a *schedule* of m draws is representative — its good fraction
  concentrates on the population's (Chernoff), the same argument as
  :mod:`repro.core.universe_reduction`.

Rotation is what makes post-hoc corruption affordable: corrupting a
revealed leader costs the adversary one unit of budget per round and
buys only the tail of that leader's term.  :func:`schedule_under_attack`
makes the dependence executable — with takeover delay 0 (instant
corruption, i.e. the non-adaptive model's guarantee transplanted
verbatim) every leader dies in office; with any positive delay the
schedule's useful-good fraction matches the population's until the
budget runs dry.  Benchmark E21 measures both regimes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..adversary.adaptive import TournamentAdversary
from .almost_everywhere import Tournament
from .global_coin import GlobalCoinSubsequence
from .parameters import ProtocolParameters


class LeaderElectionError(RuntimeError):
    """Raised when the coin subsequence cannot support a requested draw."""


@dataclass
class LeaderDraw:
    """One leader drawn from a public coin word.

    Attributes:
        leader: the elected processor id.
        word_index: which subsequence word produced the draw.
        agreement_fraction: fraction of good processors whose own view of
            that word names the same leader.
        leader_is_good: whether the leader was uncorrupted at draw time.
    """

    leader: int
    word_index: int
    agreement_fraction: float
    leader_is_good: bool


@dataclass
class LeaderSchedule:
    """A rotation of leaders, one per upcoming round.

    Attributes:
        draws: the per-round draws, in rotation order.
        corrupted_at_draw: processors corrupted when the schedule was drawn.
    """

    draws: List[LeaderDraw]
    corrupted_at_draw: Set[int] = field(default_factory=set)

    @property
    def leaders(self) -> List[int]:
        """The drawn leader ids, in rotation order."""
        return [d.leader for d in self.draws]

    def good_fraction(self) -> float:
        """Fraction of draws naming a good (at draw time) processor."""
        if not self.draws:
            return 0.0
        return sum(d.leader_is_good for d in self.draws) / len(self.draws)

    def min_agreement(self) -> float:
        """Worst per-draw agreement — the schedule is only as agreed as
        its least-agreed word."""
        if not self.draws:
            return 0.0
        return min(d.agreement_fraction for d in self.draws)


def elect_leader(
    coin: GlobalCoinSubsequence,
    n: int,
    word_index: int = 0,
    corrupted: Optional[Set[int]] = None,
) -> LeaderDraw:
    """Draw one leader from the agreed word at ``word_index``.

    Every processor applies the same map (word mod n), so agreement on
    the word is agreement on the leader.  Raises
    :class:`LeaderElectionError` if no good processor learned the word.
    """
    if not 0 <= word_index < coin.length:
        raise LeaderElectionError(
            f"word index {word_index} outside sequence of length "
            f"{coin.length}"
        )
    corrupted = corrupted if corrupted is not None else coin.corrupted
    word = coin.agreed_word(word_index)
    if word is None:
        raise LeaderElectionError(
            f"no agreed value for word {word_index}: nobody learned it"
        )
    leader = word % n

    good = [p for p in coin.views if p not in corrupted]
    matching = sum(
        1
        for p in good
        if word_index < len(coin.views[p])
        and coin.views[p][word_index] is not None
        and coin.views[p][word_index] % n == leader
    )
    agreement = matching / len(good) if good else 0.0
    return LeaderDraw(
        leader=leader,
        word_index=word_index,
        agreement_fraction=agreement,
        leader_is_good=leader not in corrupted,
    )


def leader_schedule(
    coin: GlobalCoinSubsequence,
    n: int,
    count: int,
    corrupted: Optional[Set[int]] = None,
) -> LeaderSchedule:
    """Draw a rotation of ``count`` leaders from consecutive agreed words.

    Words nobody learned are skipped (they cannot name an agreed leader);
    raises :class:`LeaderElectionError` if the sequence runs out before
    ``count`` draws succeed.  Repeats are allowed — the schedule is a
    uniform sample with replacement, which is what the concentration
    argument needs.
    """
    if count < 1:
        raise LeaderElectionError(f"need at least one draw, got {count}")
    corrupted = corrupted if corrupted is not None else coin.corrupted
    draws: List[LeaderDraw] = []
    for index in range(coin.length):
        if len(draws) >= count:
            break
        try:
            draws.append(elect_leader(coin, n, index, corrupted))
        except LeaderElectionError:
            continue
    if len(draws) < count:
        raise LeaderElectionError(
            f"coin subsequence too short: wanted {count} draws, "
            f"got {len(draws)} from {coin.length} words"
        )
    return LeaderSchedule(draws=draws, corrupted_at_draw=set(corrupted))


def schedule_length_for(n: int, c: float = 3.0) -> int:
    """Default rotation length: c * log n draws (polylog, enough for the
    Chernoff bound on the good fraction to bite)."""
    return max(3, int(round(c * max(2.0, math.log2(max(n, 2))))))


@dataclass
class AttackOutcome:
    """What an adaptive post-hoc corruptor achieves against a schedule.

    Attributes:
        round_good: per round, whether the sitting leader was good for
            the whole round (drawn good and not yet taken over).
        corrupted_leaders: leaders the adversary took over, in order.
        budget_left: adversary budget remaining after the last round.
    """

    round_good: List[bool]
    corrupted_leaders: List[int]
    budget_left: int

    def useful_good_fraction(self) -> float:
        """Fraction of rounds whose sitting leader stayed good throughout."""
        if not self.round_good:
            return 0.0
        return sum(self.round_good) / len(self.round_good)


def schedule_under_attack(
    schedule: LeaderSchedule,
    budget: int,
    takeover_delay: int = 1,
) -> AttackOutcome:
    """Play a leader-killing adversary against a drawn rotation.

    The adversary sees each round's leader the moment the round starts
    (the draw is public) and immediately spends one unit of budget to
    corrupt it; the takeover lands ``takeover_delay`` rounds later.

    ``takeover_delay = 0`` is the instant-takeover regime — the reason
    electing processors fails outright against an adaptive adversary
    (every leader is corrupt for its own round).  Any positive delay
    models the synchronous reality that a round completes before the
    corruption propagates: each leader serves its term good, and the
    adversary's budget drains one per round for nothing.
    """
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    if takeover_delay < 0:
        raise ValueError(
            f"takeover delay must be non-negative, got {takeover_delay}"
        )
    corrupted = set(schedule.corrupted_at_draw)
    targeted = set(corrupted)  # corrupt or takeover-in-flight: no double spend
    pending: Dict[int, List[int]] = {}
    corrupted_leaders: List[int] = []
    round_good: List[bool] = []
    remaining = budget

    for round_no, draw in enumerate(schedule.draws):
        for pid in pending.pop(round_no, []):
            corrupted.add(pid)
        leader = draw.leader
        if leader not in targeted and remaining > 0:
            remaining -= 1
            corrupted_leaders.append(leader)
            targeted.add(leader)
            if takeover_delay == 0:
                corrupted.add(leader)
            else:
                pending.setdefault(
                    round_no + takeover_delay, []
                ).append(leader)
        round_good.append(leader not in corrupted)

    return AttackOutcome(
        round_good=round_good,
        corrupted_leaders=corrupted_leaders,
        budget_left=remaining,
    )


def run_leader_election(
    n: int,
    schedule_length: Optional[int] = None,
    adversary: Optional[TournamentAdversary] = None,
    params: Optional[ProtocolParameters] = None,
    seed: int = 0,
) -> LeaderSchedule:
    """End-to-end leader election: tournament -> coin subsequence -> draws.

    Runs the full Algorithm 2 tournament with the §3.5 output block,
    then rotates leaders off the agreed words.  The returned schedule's
    :meth:`~LeaderSchedule.good_fraction` is the headline measurement:
    it should track the population's good fraction, because the draw is
    uniform and the adversary cannot see it coming.
    """
    if params is None:
        params = ProtocolParameters.simulation(n)
    if adversary is None:
        adversary = TournamentAdversary(n, budget=0)
    if schedule_length is None:
        schedule_length = schedule_length_for(n)
    words_needed = max(
        2,
        math.ceil(
            2 * schedule_length
            / max(1, params.winners_per_election * params.q)
        ),
    )
    tournament = Tournament(
        params,
        [0] * n,
        adversary,
        seed=seed,
        output_words=words_needed,
    )
    result = tournament.run()
    coin = GlobalCoinSubsequence(
        views=result.output_views,
        truth=result.output_truth,
        corrupted=result.corrupted,
    )
    return leader_schedule(coin, n, schedule_length)


def expected_good_rounds(
    n_rounds: int, good_fraction: float, budget: int, takeover_delay: int
) -> float:
    """Closed-form companion to :func:`schedule_under_attack`.

    With instant takeover every round is bad once the budget covers it:
    the adversary kills ``min(budget, n_rounds)`` sitting leaders plus
    whatever was bad to begin with.  With positive delay each leader
    finishes its own round, so the expectation is just
    ``good_fraction * n_rounds`` (repeat draws whose earlier takeover
    landed are the only loss, a second-order term the simulator measures
    and this model ignores).
    """
    if n_rounds <= 0:
        return 0.0
    base = good_fraction * n_rounds
    if takeover_delay > 0:
        return base
    return max(0.0, base - min(budget, n_rounds))
