"""Sparse regular random graphs — substrate for Algorithm 5 (Theorem 5).

Theorem 5 requires a random ``k * log n``-regular graph G on the
processors of a node.  We implement the standard pairing-model
construction with retries, falling back to a circulant construction if
pairing repeatedly fails (only relevant for tiny, odd corner cases).
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Set, Tuple


class GraphError(ValueError):
    """Raised when a regular graph cannot be constructed."""


def theorem5_degree(n: int, k: float = 4.0) -> int:
    """The paper's degree choice k * log n, at least 2, at most n-1."""
    if n <= 1:
        return 0
    degree = max(2, int(round(k * math.log2(n))))
    return min(degree, n - 1)


def random_regular_graph(
    n: int, degree: int, rng: random.Random, max_attempts: int = 200
) -> Dict[int, Set[int]]:
    """A uniform-ish random ``degree``-regular simple graph on ``n`` vertices.

    Uses networkx's Steger-Wormald generator (robust even at the dense
    degrees Theorem 5's k·log n reaches for small committees), falling
    back to the configuration model and finally a circulant graph.
    ``n * degree`` must be even and ``degree < n`` (an odd degree sum is
    fixed up by bumping the degree).  Returns vertex -> neighbor set.
    """
    if degree < 0 or degree >= n:
        raise GraphError(f"degree {degree} invalid for {n} vertices")
    if degree == 0:
        return {v: set() for v in range(n)}
    if (n * degree) % 2 != 0:
        # Regular graph of odd total degree doesn't exist; bump degree.
        degree += 1
        if degree >= n:
            raise GraphError("cannot fix odd degree sum")

    try:
        import networkx as nx

        graph = nx.random_regular_graph(
            degree, n, seed=rng.randrange(1 << 30)
        )
        return {v: set(graph.neighbors(v)) for v in range(n)}
    except Exception:  # pragma: no cover - nx absent or generator failure
        pass

    for _attempt in range(max_attempts):
        stubs = [v for v in range(n) for _ in range(degree)]
        rng.shuffle(stubs)
        adjacency: Dict[int, Set[int]] = {v: set() for v in range(n)}
        ok = True
        for i in range(0, len(stubs), 2):
            a, b = stubs[i], stubs[i + 1]
            if a == b or b in adjacency[a]:
                ok = False
                break
            adjacency[a].add(b)
            adjacency[b].add(a)
        if ok:
            return adjacency
    # Deterministic last resort: circulant graph — regular, but clusters
    # contiguous corrupted ranges; only used when both generators fail.
    return circulant_graph(n, degree)


def circulant_graph(n: int, degree: int) -> Dict[int, Set[int]]:
    """Circulant fallback: connect to offsets 1..degree//2 on both sides."""
    if degree >= n:
        raise GraphError(f"degree {degree} invalid for {n} vertices")
    adjacency: Dict[int, Set[int]] = {v: set() for v in range(n)}
    half = degree // 2
    for v in range(n):
        for offset in range(1, half + 1):
            adjacency[v].add((v + offset) % n)
            adjacency[v].add((v - offset) % n)
    if degree % 2 == 1:
        if n % 2 != 0:
            raise GraphError("odd-degree circulant needs even n")
        for v in range(n):
            adjacency[v].add((v + n // 2) % n)
    for v in range(n):
        adjacency[v].discard(v)
    return adjacency


def edge_count(adjacency: Dict[int, Set[int]]) -> int:
    """Number of undirected edges in the adjacency map."""
    return sum(len(neigh) for neigh in adjacency.values()) // 2


def is_regular(adjacency: Dict[int, Set[int]]) -> bool:
    """Whether every vertex has the same degree."""
    degrees = {len(neigh) for neigh in adjacency.values()}
    return len(degrees) <= 1


def expansion_estimate(
    adjacency: Dict[int, Set[int]],
    trials: int,
    rng: random.Random,
) -> float:
    """Crude edge-expansion estimate: min over random halves of cut/|S|.

    Used by tests to sanity-check that the pairing-model graphs expand
    (Theorem 5's proof needs expander-like concentration).
    """
    n = len(adjacency)
    if n < 4:
        return 0.0
    best = float("inf")
    vertices = list(adjacency)
    for _ in range(trials):
        rng.shuffle(vertices)
        s = set(vertices[: n // 2])
        cut = sum(
            1
            for v in s
            for u in adjacency[v]
            if u not in s
        )
        best = min(best, cut / len(s))
    return best
