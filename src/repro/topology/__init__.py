"""Network topology substrate (paper Section 3.2.2 and Theorem 5)."""

from .links import LinkStructure, UplinkKey
from .sparse_graph import (
    GraphError,
    circulant_graph,
    edge_count,
    expansion_estimate,
    is_regular,
    random_regular_graph,
    theorem5_degree,
)
from .tree import NodeId, TopologyError, TreeTopology
from .visualize import render_node, render_paths, render_tree

__all__ = [
    "LinkStructure",
    "UplinkKey",
    "GraphError",
    "circulant_graph",
    "edge_count",
    "expansion_estimate",
    "is_regular",
    "random_regular_graph",
    "theorem5_degree",
    "render_node",
    "render_paths",
    "render_tree",
    "NodeId",
    "TopologyError",
    "TreeTopology",
]
