"""The q-ary tree of committee nodes — paper Section 3.2.2.

Processors are arranged into *nodes* (committees) forming a complete q-ary
tree, mirroring Figure 1 of the paper:

* Level 1 (leaves): one node per processor; the i-th leaf is where
  processor p_i initially secret-shares its candidate array.  Each leaf
  node *contains* ``k1`` processors chosen by a sampler (paper:
  k1 = log^3 n).
* Level ``l`` nodes contain ``k_l = q**(l-1) * k1`` processors (capped at
  n), again chosen by a sampler over all processors.
* The root (level ``lstar``) contains all processors.

The paper adds a log^3 n redundancy factor to the node count per level for
its w.h.p. union bounds; like Figure 1 we build the plain q-ary tree and
surface redundancy through the samplers' seed (see DESIGN.md §3).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from ..samplers.sampler import Sampler


class TopologyError(ValueError):
    """Raised on invalid tree parameters or queries."""


@dataclass(frozen=True, order=True)
class NodeId:
    """Identifies one committee node: (level, index within level).

    Levels are numbered from the leaves (1) to the root (``lstar``), as in
    the paper.
    """

    level: int
    index: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"L{self.level}N{self.index}"


class TreeTopology:
    """A concrete, fully materialised tree of committee nodes.

    Args:
        n: number of processors (IDs ``0..n-1``).
        q: tree arity (paper: log^delta n).
        k1: leaf committee size (paper: log^3 n).
        rng: seeded RNG used for all sampler constructions, so every
            processor can deterministically derive the same topology
            (the paper's "each processor has a copy of the required
            samplers").
    """

    def __init__(self, n: int, q: int, k1: int, rng: random.Random) -> None:
        if n < 1:
            raise TopologyError("need at least one processor")
        if q < 2:
            raise TopologyError("tree arity q must be >= 2")
        if k1 < 1:
            raise TopologyError("leaf committee size k1 must be >= 1")
        self.n = n
        self.q = q
        self.k1 = k1

        # Number of nodes per level: n leaves, shrinking by a factor q per
        # level until a single root remains.
        counts = [n]
        while counts[-1] > 1:
            counts.append(math.ceil(counts[-1] / q))
        self._counts = counts  # counts[l-1] = number of nodes on level l
        self.lstar = len(counts)

        # Committee membership per node, via one sampler per level.
        self._members: Dict[NodeId, Tuple[int, ...]] = {}
        for level in range(1, self.lstar + 1):
            size = self.node_size(level)
            count = self._counts[level - 1]
            if size >= n:
                for index in range(count):
                    self._members[NodeId(level, index)] = tuple(range(n))
            else:
                sampler = Sampler.random(r=count, s=n, d=size, rng=rng)
                for index in range(count):
                    self._members[NodeId(level, index)] = sampler.assign(index)
        # Leaf i always contains its owner p_i (the processor whose array
        # it hosts) — the paper assigns each leaf to a distinct processor.
        for index in range(n):
            node = NodeId(1, index)
            members = self._members[node]
            if index not in members:
                replaced = list(members)
                replaced[0] = index
                self._members[node] = tuple(sorted(replaced))

    # -- structure ---------------------------------------------------------------

    def node_size(self, level: int) -> int:
        """k_l = q**(l-1) * k1, capped at n; the root holds everyone."""
        self._check_level(level)
        if level == self.lstar:
            return self.n
        return min(self.n, self.k1 * self.q ** (level - 1))

    def nodes_on_level(self, level: int) -> List[NodeId]:
        """All node ids on one level, leftmost first."""
        self._check_level(level)
        return [NodeId(level, i) for i in range(self._counts[level - 1])]

    def node_count(self, level: int) -> int:
        """How many nodes a level has."""
        self._check_level(level)
        return self._counts[level - 1]

    def all_nodes(self) -> Iterator[NodeId]:
        """Every node, level by level from the leaves up."""
        for level in range(1, self.lstar + 1):
            yield from self.nodes_on_level(level)

    def parent(self, node: NodeId) -> NodeId:
        """The parent node; raises TopologyError at the root."""
        if node.level >= self.lstar:
            raise TopologyError("root has no parent")
        return NodeId(node.level + 1, node.index // self.q)

    def children(self, node: NodeId) -> List[NodeId]:
        """Child nodes (empty at the leaves)."""
        if node.level <= 1:
            return []
        lo = node.index * self.q
        hi = min(self._counts[node.level - 2], lo + self.q)
        return [NodeId(node.level - 1, i) for i in range(lo, hi)]

    def root(self) -> NodeId:
        """The single node on the top level."""
        return NodeId(self.lstar, 0)

    def members(self, node: NodeId) -> Tuple[int, ...]:
        """Processor ids assigned to a node by the membership sampler."""
        try:
            return self._members[node]
        except KeyError:
            raise TopologyError(f"unknown node {node}") from None

    def leaf_descendants(self, node: NodeId) -> List[NodeId]:
        """All level-1 nodes in this node's subtree."""
        span = self.q ** (node.level - 1)
        lo = node.index * span
        hi = min(self.n, lo + span)
        return [NodeId(1, i) for i in range(lo, hi)]

    def path_to_root(self, leaf: NodeId) -> List[NodeId]:
        """The node path from a leaf up to (and including) the root."""
        if leaf.level != 1:
            raise TopologyError("path_to_root starts at a leaf")
        path = [leaf]
        node = leaf
        while node.level < self.lstar:
            node = self.parent(node)
            path.append(node)
        return path

    # -- fault analysis -----------------------------------------------------------

    def good_fraction(self, node: NodeId, bad: Set[int]) -> float:
        """Fraction of a node's members outside the bad set."""
        members = self.members(node)
        good = sum(1 for p in members if p not in bad)
        return good / len(members)

    def is_good_node(
        self, node: NodeId, bad: Set[int], threshold: float
    ) -> bool:
        """Definition 3: a good node has >= threshold fraction good members.

        The paper uses threshold = 2/3 + eps/2.
        """
        return self.good_fraction(node, bad) >= threshold

    def bad_nodes(self, bad: Set[int], threshold: float) -> Set[NodeId]:
        """All nodes below the good-node threshold (Definition 3)."""
        return {
            node
            for node in self.all_nodes()
            if not self.is_good_node(node, bad, threshold)
        }

    def good_path_leaves(
        self, top: NodeId, bad: Set[int], threshold: float
    ) -> List[NodeId]:
        """Leaf descendants of ``top`` whose whole path to ``top`` is good.

        Used in Lemma 3(2) and in the definition of a good election
        (Section 3.7 condition (3)).
        """
        bad_node_set = {
            node
            for node in self.all_nodes()
            if node.level <= top.level
            and not self.is_good_node(node, bad, threshold)
        }
        result = []
        for leaf in self.leaf_descendants(top):
            node = leaf
            ok = node not in bad_node_set
            while ok and node.level < top.level:
                node = self.parent(node)
                ok = node not in bad_node_set
            if ok:
                result.append(leaf)
        return result

    def processor_appearances(self, processor: int) -> List[NodeId]:
        """Every node containing a given processor (polylog many, per Lemma 5)."""
        return [
            node
            for node, members in self._members.items()
            if processor in members
        ]

    def _check_level(self, level: int) -> None:
        if not 1 <= level <= self.lstar:
            raise TopologyError(
                f"level {level} out of range 1..{self.lstar}"
            )
