"""Edge structure over the committee tree — paper Section 3.2.2 edge types.

Three families of links connect processors:

1. **Uplinks** — from each processor in a child node to a sampler-chosen
   subset of processors in its parent node (paper degree: q * log^3 n).
   ``sendSecretUp`` shares travel along these; ``sendDown`` reverses them.
2. **ℓ-links** — from processors in a node C at level ℓ directly to C's
   level-1 descendant nodes (paper degree: O(log^3 n) distinct leaf
   nodes).  ``sendOpen`` travels up these.
3. **Intra-node links** — a sparse regular graph among the processors of a
   single node, used by the a.e. BA with unreliable coins subprotocol
   (described with the Algorithm 5 analysis, Theorem 5).

All assignments derive from one seeded RNG so that the topology is common
knowledge, as the paper assumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .sparse_graph import random_regular_graph
from .tree import NodeId, TopologyError, TreeTopology


@dataclass(frozen=True)
class UplinkKey:
    """Identifies the uplink set of one processor within one child node."""

    child: NodeId
    processor: int


class LinkStructure:
    """Materialised uplinks, ℓ-links and intra-node graphs for a tree.

    Args:
        tree: the committee tree.
        uplink_degree: uplinks per (child-node, processor) pair.
        ell_link_degree: number of level-1 descendant nodes each processor
            of an ancestor node links to.
        intra_degree: degree of the intra-node regular graph.
        rng: seeded RNG (common knowledge).
    """

    def __init__(
        self,
        tree: TreeTopology,
        uplink_degree: int,
        ell_link_degree: int,
        intra_degree: int,
        rng: random.Random,
    ) -> None:
        self.tree = tree
        self.uplink_degree = uplink_degree
        self.ell_link_degree = ell_link_degree
        self.intra_degree = intra_degree

        self._uplinks: Dict[UplinkKey, Tuple[int, ...]] = {}
        for level in range(1, tree.lstar):
            for child in tree.nodes_on_level(level):
                parent = tree.parent(child)
                parent_members = tree.members(parent)
                d = min(uplink_degree, len(parent_members))
                for processor in tree.members(child):
                    chosen = tuple(sorted(rng.sample(parent_members, d)))
                    self._uplinks[UplinkKey(child, processor)] = chosen

        self._ell_links: Dict[Tuple[NodeId, int], Tuple[NodeId, ...]] = {}
        for level in range(2, tree.lstar + 1):
            for node in tree.nodes_on_level(level):
                leaves = tree.leaf_descendants(node)
                d = min(ell_link_degree, len(leaves))
                for processor in tree.members(node):
                    chosen = tuple(sorted(rng.sample(leaves, d)))
                    self._ell_links[(node, processor)] = chosen

        self._intra: Dict[NodeId, Dict[int, Tuple[int, ...]]] = {}
        for node in tree.all_nodes():
            members = tree.members(node)
            self._intra[node] = _intra_node_graph(members, intra_degree, rng)

    # -- uplinks -----------------------------------------------------------------

    def uplinks(self, child: NodeId, processor: int) -> Tuple[int, ...]:
        """Parent-node processors that ``processor`` in ``child`` shares up to."""
        try:
            return self._uplinks[UplinkKey(child, processor)]
        except KeyError:
            raise TopologyError(
                f"no uplinks for processor {processor} in node {child}"
            ) from None

    def downlink_sources(self, child: NodeId, parent_processor: int) -> List[int]:
        """Child-node processors whose uplinks include ``parent_processor``.

        ``sendDown`` sends i-shares back down "the uplinks it came from plus
        the corresponding uplinks from each of its other children"; this is
        the reverse index needed for that.
        """
        return [
            key.processor
            for key, targets in self._uplinks.items()
            if key.child == child and parent_processor in targets
        ]

    # -- ell links ----------------------------------------------------------------

    def ell_links(self, node: NodeId, processor: int) -> Tuple[NodeId, ...]:
        """Level-1 descendant nodes a processor of ``node`` listens to."""
        try:
            return self._ell_links[(node, processor)]
        except KeyError:
            raise TopologyError(
                f"no ell-links for processor {processor} in node {node}"
            ) from None

    # -- intra-node ----------------------------------------------------------------

    def intra_neighbors(self, node: NodeId, processor: int) -> Tuple[int, ...]:
        """Neighbors of a processor in the node's sparse regular graph."""
        try:
            return self._intra[node][processor]
        except KeyError:
            raise TopologyError(
                f"processor {processor} not in node {node}"
            ) from None


def _intra_node_graph(
    members: Sequence[int], degree: int, rng: random.Random
) -> Dict[int, Tuple[int, ...]]:
    """A (near-)regular undirected graph among ``members``.

    Small committees (fewer members than degree+1) fall back to the
    complete graph, which is what the asymptotic construction degenerates
    to at simulation scale.
    """
    k = len(members)
    if k <= 1:
        return {m: () for m in members}
    if degree >= k - 1:
        member_set = set(members)
        return {
            m: tuple(sorted(member_set - {m}))
            for m in members
        }
    adjacency = random_regular_graph(k, degree, rng)
    return {
        members[i]: tuple(sorted(members[j] for j in adjacency[i]))
        for i in range(k)
    }
