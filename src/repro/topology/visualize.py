"""ASCII rendering of the committee tree — Figure 1's left panel.

Produces the paper's picture for any simulated tree: one box per node
showing the committee (bottom) and, when supplied, the candidate arrays
competing there (top).  Used by benchmark E7 and handy in a REPL when
debugging topologies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .tree import NodeId, TreeTopology


def _format_members(members: Sequence[int], limit: int) -> str:
    shown = ",".join(str(m) for m in members[:limit])
    if len(members) > limit:
        shown += f",+{len(members) - limit}"
    return shown


def render_node(
    tree: TreeTopology,
    node: NodeId,
    candidates: Optional[Dict[NodeId, Sequence[int]]] = None,
    member_limit: int = 8,
) -> str:
    """One node as ``[cands | members]`` (cands omitted when absent)."""
    members = _format_members(tree.members(node), member_limit)
    if candidates and node in candidates:
        cands = _format_members(list(candidates[node]), member_limit)
        return f"[{cands} | {members}]"
    return f"[{members}]"


def render_tree(
    tree: TreeTopology,
    candidates: Optional[Dict[NodeId, Sequence[int]]] = None,
    member_limit: int = 6,
    max_nodes_per_level: int = 9,
) -> str:
    """The whole tree, root at top, one line per level.

    Args:
        candidates: optional node -> candidate-owner list annotations
            (the top half of Figure 1's ovals).
        member_limit: committee members shown per node before eliding.
        max_nodes_per_level: nodes rendered per level before eliding.
    """
    lines: List[str] = []
    for level in range(tree.lstar, 0, -1):
        nodes = tree.nodes_on_level(level)
        rendered = [
            render_node(tree, node, candidates, member_limit)
            for node in nodes[:max_nodes_per_level]
        ]
        suffix = (
            f"  ... +{len(nodes) - max_nodes_per_level} nodes"
            if len(nodes) > max_nodes_per_level
            else ""
        )
        lines.append(
            f"L{level} ({len(nodes)} nodes, k={tree.node_size(level)}): "
            + "  ".join(rendered)
            + suffix
        )
    return "\n".join(lines)


def render_paths(tree: TreeTopology, leaf_index: int) -> str:
    """The leaf-to-root committee path for one processor's array."""
    path = tree.path_to_root(NodeId(1, leaf_index))
    parts = []
    for node in path:
        members = _format_members(tree.members(node), 6)
        parts.append(f"L{node.level}N{node.index}{{{members}}}")
    return " -> ".join(parts)
