"""Concentration bounds used by the paper's proofs (§3.7, §4.1, A.3).

These are checked against simulation in the E11 benchmark: the measured
tail frequencies must fall under the analytic curves.
"""

from __future__ import annotations

import math
from typing import Tuple


def chernoff_below(mean: float, factor: float) -> float:
    """P[X < (1 - factor) * mean] <= exp(-factor^2 * mean / 2).

    Multiplicative lower-tail Chernoff bound for sums of independent 0/1
    variables (the form used in Lemma 8's proof).
    """
    if not 0 < factor <= 1:
        raise ValueError("factor must be in (0, 1]")
    return math.exp(-(factor**2) * mean / 2)


def chernoff_above(mean: float, factor: float) -> float:
    """P[X > (1 + factor) * mean] <= exp(-factor^2 * mean / 3)."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    return math.exp(-(factor**2) * mean / 3)


def lemma8_failure_probability(
    n: int, epsilon: float, a: float, c: float = 2.0
) -> float:
    """Lemma 8: P[fewer than (1/2 + eps/2) a log n knowledgeable responders].

    The proof's union bound over sqrt(n) labels and n processors:
    sqrt(n) * n * exp(-(eps^2/8)(a log n (1/2 + eps))).
    """
    log_n = max(1.0, math.log2(n))
    per_event = math.exp(
        -(epsilon**2 / 8) * a * log_n * (0.5 + epsilon)
    )
    return min(1.0, math.sqrt(n) * n * per_event)


def lemma9_overload_probability(epsilon: float, n: int) -> float:
    """Lemma 9: P[more than eps n/4 knowledgeable overloaded] < 4/(eps log n)."""
    log_n = max(2.0, math.log2(n))
    return min(1.0, 4.0 / (epsilon * log_n))


def lemma7_loop_failure(epsilon: float, n: int, c: float = 2.0) -> float:
    """Lemma 7(1): one Algorithm 3 loop fails to finish everyone with
    probability at most 4/(eps log n) + 1/n^c."""
    return min(
        1.0, lemma9_overload_probability(epsilon, n) + n ** (-c)
    )


def lemma10_total_failure(epsilon: float, n: int, loops: int) -> float:
    """Lemma 10: probability that ``loops`` independent repetitions all fail."""
    return lemma7_loop_failure(epsilon, n) ** loops


def theorem5_failure_probability(
    n: int, good_coin_rounds: int, c1: float = 1.0
) -> float:
    """Theorem 5: failure prob <= e^{-C1 n} + 2^{-r} with r good coin rounds."""
    return min(1.0, math.exp(-c1 * n) + 2.0 ** (-good_coin_rounds))


def lemma4_failure_probability(num_good: int, num_bins: int) -> float:
    """Lemma 4: lightest bin under-represents good candidates with
    probability at most 2^{-2|S| / (3 numBins)}."""
    if num_bins <= 0:
        raise ValueError("num_bins must be positive")
    return min(1.0, 2.0 ** (-2 * num_good / (3 * num_bins)))


def lemma6_good_array_bound(level: int, n: int) -> float:
    """Lemma 6: at least 2/3 - 7*level/log n of winning arrays are good."""
    log_n = max(2.0, math.log2(n))
    return max(0.0, 2 / 3 - 7 * level / log_n)


def binomial_tail_at_least(n: int, p: float, k: int) -> float:
    """Exact P[Binomial(n, p) >= k] — used to sanity-check the Chernoff
    bounds in tests (the exact tail must not exceed the bound)."""
    if k <= 0:
        return 1.0
    if k > n:
        return 0.0
    total = 0.0
    log_p = math.log(p) if p > 0 else -math.inf
    log_q = math.log1p(-p) if p < 1 else -math.inf
    for i in range(k, n + 1):
        log_term = (
            math.lgamma(n + 1)
            - math.lgamma(i + 1)
            - math.lgamma(n - i + 1)
            + i * log_p
            + (n - i) * log_q
        )
        total += math.exp(log_term)
    return min(1.0, total)
