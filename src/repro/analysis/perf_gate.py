"""Machine-readable perf baseline: the repo's reconstruction fast paths.

The ROADMAP's north star is "as fast as the hardware allows", but until
this harness existed no speedup was ever *recorded* — so none was ever
*protected*.  ``run_suites`` times the reconstruction-heavy workloads
(the shapes of benches E9, E17 and E19) on both the naive reference
kernels (:mod:`repro.crypto.polynomial`) and the cached plan kernels
(:mod:`repro.crypto.kernels`), plus a simulator round-loop micro-bench,
and emits one JSON document — ``BENCH_core.json`` — that seeds the
repo's perf trajectory.

Gating: :func:`compare` checks a fresh run against the committed
baseline.  Because absolute wall-clock is machine-bound, the gate
compares the **dimensionless speedups** (plan vs naive on identical
inputs — the suites that emit a ``speedup`` field); a suite whose
speedup drops by more than ``--max-regression`` (default 25%)
soft-fails with exit code 3, which CI surfaces via a
``continue-on-error`` job.  Wall-clock fields, the simulator
``null_vs_tracked`` ratio and the engine ``dispatch_overhead`` /
``telemetry_overhead`` micro-benches are recorded for trend reading,
not gated.

Entry points:

* ``python benchmarks/perf_gate.py [--quick] [--out F] [--baseline F]``
* ``python -m repro bench --json [--quick] [--out F] [--baseline F]``

Every suite also asserts bit-exact parity between the naive and plan
results before timing is trusted — a gate that records a speedup for a
wrong answer would be worse than no gate.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

SCHEMA = "repro-perf-gate/1"

#: Exit code for a soft regression (CI marks the step continue-on-error).
EXIT_REGRESSION = 3


def _time(fn, reps: int) -> float:
    start = time.perf_counter()
    for _ in range(reps):
        fn()
    return time.perf_counter() - start


def _suite_e9_reconstruct(quick: bool) -> Dict[str, Any]:
    """E9 shape: iterated-sharing reconstruction at n=64 (threshold 33).

    Reconstruct-at-0 over the fixed player grid — the exact call
    ``sendDown`` and ``ShareTree.reconstruct_from`` bottom out in.
    """
    from repro.crypto import kernels
    from repro.crypto.field import DEFAULT_FIELD as field
    from repro.crypto.polynomial import interpolate_constant
    from repro.crypto.shamir import ShamirScheme, paper_threshold

    threshold = paper_threshold(64)
    scheme = ShamirScheme(n_players=64, threshold=threshold)
    rng = random.Random(0xE9)
    pools = []
    for _ in range(16):
        shares = scheme.deal(rng.randrange(field.modulus), rng)
        pools.append([(s.x, s.value) for s in shares[:threshold]])

    for pool in pools:  # parity before speed
        assert kernels.interpolate_constant(field, pool) == (
            interpolate_constant(field, pool)
        )

    reps = 40 if quick else 400

    def naive() -> None:
        for pool in pools:
            interpolate_constant(field, pool)

    def plan() -> None:
        for pool in pools:
            kernels.interpolate_constant(field, pool)

    naive_s = _time(naive, reps)
    plan_s = _time(plan, reps)
    ops = reps * len(pools)
    return {
        "desc": "reconstruct-at-0, grid 1..33 (n=64 iterated sharing)",
        "ops": ops,
        "naive_s": round(naive_s, 6),
        "plan_s": round(plan_s, 6),
        "plan_us_per_op": round(plan_s / ops * 1e6, 3),
        "speedup": round(naive_s / plan_s, 2) if plan_s else float("inf"),
        "parity": True,
    }


def _suite_e17_row_check(quick: bool) -> Dict[str, Any]:
    """E17 shape: bivariate VSS row-degree verification at n=64.

    Predict every off-basis point of a dealt row from the first
    ``threshold`` points — the echo-phase hot loop of the VSS ablation.
    """
    from repro.crypto import kernels
    from repro.crypto.bivariate import BivariateScheme
    from repro.crypto.field import DEFAULT_FIELD as field
    from repro.crypto.polynomial import lagrange_interpolate_at
    from repro.crypto.shamir import paper_threshold

    n = 64
    scheme = BivariateScheme(n_players=n, threshold=paper_threshold(n))
    rng = random.Random(0xE17)
    rows = scheme.deal(123456789, rng)[:4]
    t = scheme.threshold

    def check_with(predict) -> bool:
        ok = True
        for row in rows:
            points = [(y, row.values[y]) for y in range(n + 1)]
            basis, rest = points[:t], points[t:]
            for y, value in rest:
                ok &= predict(basis, y) == value
        return ok

    def naive_predict(basis, y):
        return lagrange_interpolate_at(field, basis, y)

    def plan_predict(basis, y):
        return kernels.interpolate_at(field, basis, y)

    assert check_with(naive_predict) and check_with(plan_predict)

    reps = 2 if quick else 12
    naive_s = _time(lambda: check_with(naive_predict), reps)
    plan_s = _time(lambda: check_with(plan_predict), reps)
    ops = reps * len(rows) * (n + 1 - t)
    return {
        "desc": "bivariate row-degree checks (n=64 VSS ablation)",
        "ops": ops,
        "naive_s": round(naive_s, 6),
        "plan_s": round(plan_s, 6),
        "plan_us_per_op": round(plan_s / ops * 1e6, 3),
        "speedup": round(naive_s / plan_s, 2) if plan_s else float("inf"),
        "parity": True,
    }


def _suite_e9_batch_reveal(quick: bool) -> Dict[str, Any]:
    """E9 shape, batched: windowed robust reveal across many dealers.

    The exact call shape of ``VSSCoinMember._reveal_secrets``: every
    dealer's share pool sits on the same member grid, and each pool is
    probed through the same ``ROBUST_REVEAL_WINDOWS`` threshold-sized
    windows.  The baseline is the *plan path* (the repo's previous fast
    path: one cached-lambda dot product per (dealer, window) pair); the
    batched path collapses all pairs into a single ``(dealers, k) @
    (k, windows)`` product via
    :func:`~repro.crypto.kernels.interpolate_windows_at_zero`.
    """
    from itertools import combinations, islice

    from repro.crypto import kernels
    from repro.crypto.field import DEFAULT_FIELD as field
    from repro.crypto.shamir import ShamirScheme, paper_threshold

    n = 64
    threshold = paper_threshold(n)
    scheme = ShamirScheme(n_players=n, threshold=threshold)
    rng = random.Random(0xE9B)
    dealers = 16
    secrets = [rng.randrange(field.modulus) for _ in range(dealers)]
    pools = scheme.deal_many(secrets, rng)
    xs = [share.x for share in pools[0]]
    ys_rows = [[share.value for share in pool] for pool in pools]
    windows = [
        tuple(combo)
        for combo in islice(combinations(range(n), threshold), 40)
    ]

    def plan() -> List[List[int]]:
        return [
            [
                kernels.interpolate_constant(
                    field, [(xs[i], ys[i]) for i in combo]
                )
                for combo in windows
            ]
            for ys in ys_rows
        ]

    def batched() -> List[List[int]]:
        return kernels.interpolate_windows_at_zero(
            field, xs, ys_rows, windows
        )

    expected = plan()
    assert batched() == expected  # parity before speed
    assert all(
        value == secret
        for row, secret in zip(expected, secrets)
        for value in row
    )

    reps = 2 if quick else 10
    plan_s = _time(plan, reps)
    batch_s = _time(batched, reps)
    ops = reps * dealers * len(windows)
    return {
        "desc": (
            f"windowed robust reveal: {dealers} dealers x "
            f"{len(windows)} windows, grid 1..{n}"
        ),
        "engine": kernels.batch_engine(field),
        "ops": ops,
        "plan_s": round(plan_s, 6),
        "batch_s": round(batch_s, 6),
        "batch_us_per_op": round(batch_s / ops * 1e6, 3),
        "speedup": round(plan_s / batch_s, 2) if batch_s else float("inf"),
        "parity": True,
    }


def _suite_e17_batch_rows(quick: bool) -> Dict[str, Any]:
    """E17 shape, batched: a whole dealing's row-degree checks at once.

    The baseline is the plan path (``row_degree_ok``: one cached-lambda
    dot product per off-basis point); the batched path is
    ``rows_degree_ok`` — every row of the dealing predicted through one
    ``(rows, t) @ (t, rest)`` product against the shared basis grid.
    """
    from repro.crypto import kernels
    from repro.crypto.bivariate import BivariateScheme
    from repro.crypto.field import DEFAULT_FIELD as field
    from repro.crypto.shamir import paper_threshold

    n = 64
    scheme = BivariateScheme(n_players=n, threshold=paper_threshold(n))
    rng = random.Random(0xE17B)
    rows = scheme.deal(rng.randrange(field.modulus), rng)
    # One tampered row keeps the False path honest in the parity check.
    bad = rows[3]
    bad_values = list(bad.values)
    bad_values[-1] = (bad_values[-1] + 1) % field.modulus
    rows[3] = type(bad)(x=bad.x, values=tuple(bad_values))

    def plan() -> List[bool]:
        return [scheme.row_degree_ok(row) for row in rows]

    def batched() -> List[bool]:
        return scheme.rows_degree_ok(rows)

    expected = plan()
    assert batched() == expected  # parity before speed
    assert not expected[3] and all(expected[:3] + expected[4:])

    reps = 2 if quick else 12
    plan_s = _time(plan, reps)
    batch_s = _time(batched, reps)
    ops = reps * len(rows) * (n + 1 - scheme.threshold)
    return {
        "desc": (
            f"row-degree checks, whole dealing ({len(rows)} rows) at "
            f"n={n}"
        ),
        "engine": kernels.batch_engine(field),
        "ops": ops,
        "plan_s": round(plan_s, 6),
        "batch_s": round(batch_s, 6),
        "batch_us_per_op": round(batch_s / ops * 1e6, 3),
        "speedup": round(plan_s / batch_s, 2) if batch_s else float("inf"),
        "parity": True,
    }


def _suite_e19_vss_coin(quick: bool) -> Dict[str, Any]:
    """E19 end-to-end: full VSS-coin protocol runs (wall-clock trend).

    No naive twin — this is the whole stack (bivariate dealing, echo,
    blame, robust reveal) through the simulator; recorded so the
    trajectory of the integrated path is visible commit over commit.
    """
    from repro.core.vss_coin import run_vss_coin

    k = 7 if quick else 16
    reps = 2 if quick else 4
    results = []

    def run() -> None:
        results.append(run_vss_coin(k, seed=len(results)))

    seconds = _time(run, reps)
    assert all(r.halted for r in results)
    return {
        "desc": f"full vss-coin toss, k={k} committee",
        "ops": reps,
        "seconds": round(seconds, 6),
        "s_per_op": round(seconds / reps, 6),
    }


def _suite_sim_round_loop(quick: bool) -> Dict[str, Any]:
    """Simulator micro-bench: NullAdversary fast path vs tracked path.

    The same ping protocol under (a) an exact ``NullAdversary`` — which
    skips corruption scans, the rushing view and adversary dispatch, and
    reuses inbox buffers — and (b) a do-nothing ``Adversary`` subclass
    that still pays the full bookkeeping.  Outputs must match exactly.
    """
    from repro.net.messages import Message
    from repro.net.simulator import (
        Adversary,
        NullAdversary,
        ProcessorProtocol,
        SyncNetwork,
    )

    n = 32
    rounds = 40 if quick else 200

    class Ping(ProcessorProtocol):
        def on_round(self, round_no, inbox):
            return [
                Message(self.pid, (self.pid + j) % n, "ping", round_no)
                for j in range(1, 5)
            ]

        def output(self):
            return None

    class TrackedIdle(Adversary):
        def __init__(self, count: int) -> None:
            super().__init__(count, budget=0)

        def act(self, view):
            return []

    def drive(adversary) -> int:
        net = SyncNetwork([Ping(pid) for pid in range(n)], adversary)
        for rnd in range(1, rounds + 1):
            net.step(rnd)
        return net.ledger.total_bits()

    fast_bits = drive(NullAdversary(n))
    tracked_bits = drive(TrackedIdle(n))
    assert fast_bits == tracked_bits  # identical executions

    reps = 1 if quick else 3
    tracked_s = _time(lambda: drive(TrackedIdle(n)), reps)
    fast_s = _time(lambda: drive(NullAdversary(n)), reps)
    ops = reps * rounds
    # null_vs_tracked is informational, not gated: buffer reuse benefits
    # both paths, so the remaining delta (skipped corruption scans and
    # rushing views) is small and noisy on shared runners.
    return {
        "desc": f"sync round loop, n={n}, {rounds} rounds, 4 msgs/proc",
        "ops": ops,
        "tracked_s": round(tracked_s, 6),
        "fast_s": round(fast_s, 6),
        "fast_us_per_round": round(fast_s / ops * 1e6, 3),
        "null_vs_tracked": (
            round(tracked_s / fast_s, 2) if fast_s else float("inf")
        ),
        "parity": True,
    }


def _suite_dispatch_overhead(quick: bool) -> Dict[str, Any]:
    """Dispatch-plane bookkeeping per work unit (trend, not gated).

    Every sharded backend (process, hybrid, distributed) routes units
    through ``DispatchPlan`` + ``run_units``; this measures what that
    plumbing costs over a bare serial loop by driving no-op trials
    through the in-process ``InlineTransport`` at unit size 1 — the
    worst case, one full submit/collect/merge round per trial.  Real
    workloads amortise this over multi-trial units and actual protocol
    work; the number recorded here is the ceiling on what the dispatch
    refactor can ever cost a sweep.
    """
    from repro.engine import (
        ExperimentSpec,
        Scenario,
        TrialResult,
        register,
    )
    from repro.engine.dispatch import (
        DispatchPlan,
        InlineTransport,
        run_one_trial,
        run_units,
    )

    def _noop_trial(ctx) -> TrialResult:
        return TrialResult(
            trial_index=ctx.trial_index, seed=ctx.seed,
            metrics=(("one", 1.0),),
        )

    register(
        Scenario(
            name="perf-gate-noop",
            run_trial=_noop_trial,
            description="perf-gate only: a free trial",
        )
    )
    trials = 128 if quick else 512
    spec = ExperimentSpec(runner="perf-gate-noop", n=1, trials=trials)
    units = DispatchPlan.chunked(trials, 1, 4).units(spec)

    def serial() -> List[Any]:
        return [run_one_trial(spec, i) for i in range(trials)]

    def dispatched() -> List[Any]:
        return run_units(units, InlineTransport())

    assert serial() == dispatched()  # parity before timing

    reps = 4 if quick else 20
    serial_s = _time(serial, reps)
    dispatched_s = _time(dispatched, reps)
    ops = reps * trials
    return {
        "desc": f"run_units vs bare loop, {trials} no-op units of 1 trial",
        "ops": ops,
        "serial_s": round(serial_s, 6),
        "dispatched_s": round(dispatched_s, 6),
        "dispatch_us_per_unit": round(
            max(0.0, dispatched_s - serial_s) / ops * 1e6, 3
        ),
        "parity": True,
    }


def _suite_telemetry_overhead(quick: bool) -> Dict[str, Any]:
    """Telemetry-plane cost over a real sweep (trend, not gated).

    The telemetry layer is always on — every backend records per-unit
    spans — so its cost must stay in the noise.  Two measurements:

    * ``overhead_fraction``: a full ``SerialBackend`` sweep of a real
      scenario (per-trial spans, report-ready records) against a bare
      ``run_one_trial`` loop over the same spec.  This is the number
      the <5% budget is judged against.
    * ``span_us_per_unit``: ``run_units`` over no-op units with a live
      ``RunTelemetry`` vs with ``telemetry=None`` — the absolute
      bookkeeping cost per unit attempt, worst case (free trials).
    """
    from repro.engine import (
        ExperimentSpec,
        Scenario,
        SerialBackend,
        TrialResult,
        register,
    )
    from repro.engine.backends import run_one_trial
    from repro.engine.dispatch import (
        DispatchPlan,
        InlineTransport,
        run_units,
    )
    from repro.engine.telemetry import RunTelemetry

    def _noop_trial(ctx) -> TrialResult:
        return TrialResult(
            trial_index=ctx.trial_index, seed=ctx.seed,
            metrics=(("one", 1.0),),
        )

    # Idempotent re-registration: suites must not depend on run order.
    register(
        Scenario(
            name="perf-gate-noop",
            run_trial=_noop_trial,
            description="perf-gate only: a free trial",
        )
    )

    spec = ExperimentSpec(
        runner="bracha-broadcast", n=5, trials=8 if quick else 24, seed=7
    )

    def bare() -> List[Any]:
        return [run_one_trial(spec, i) for i in range(spec.trials)]

    def telemetered() -> List[Any]:
        return SerialBackend().run_trials(spec)

    assert bare() == telemetered()  # telemetry must not perturb results

    reps = 2 if quick else 6
    bare_s = _time(bare, reps)
    telemetered_s = _time(telemetered, reps)

    # Worst-case per-unit span cost: free trials through the dispatch
    # plane, with and without a live telemetry sink.
    noop_trials = 128 if quick else 512
    noop_spec = ExperimentSpec(runner="perf-gate-noop", n=1, trials=noop_trials)
    units = DispatchPlan.chunked(noop_trials, 1, 4).units(noop_spec)
    span_reps = 4 if quick else 20

    def plain() -> List[Any]:
        return run_units(units, InlineTransport())

    def spanned() -> List[Any]:
        telemetry = RunTelemetry(backend="bench", total_trials=noop_trials)
        out = run_units(units, InlineTransport(), telemetry=telemetry)
        telemetry.finish()
        return out

    assert plain() == spanned()

    plain_s = _time(plain, span_reps)
    spanned_s = _time(spanned, span_reps)
    span_ops = span_reps * noop_trials
    return {
        "desc": (
            f"serial sweep w/ telemetry vs bare loop, "
            f"{spec.trials} bracha-broadcast trials"
        ),
        "ops": reps * spec.trials,
        "bare_s": round(bare_s, 6),
        "telemetered_s": round(telemetered_s, 6),
        "overhead_fraction": round(
            max(0.0, telemetered_s - bare_s) / bare_s, 4
        ) if bare_s else 0.0,
        "span_us_per_unit": round(
            max(0.0, spanned_s - plain_s) / span_ops * 1e6, 3
        ),
        "parity": True,
    }


def _suite_cost_dispatch_mixed_n(quick: bool) -> Dict[str, Any]:
    """Cost-aware vs uniform shard geometry on a mixed-n grid (GATED).

    The workload the cost plane exists for: one grid mixing many cheap
    phase-king sweeps (n=8) with a few expensive ones (n=40, ~100x the
    per-trial work).  Uniform geometry sizes units by trial count, so
    the expensive spec collapses into a couple of huge units that
    leave most lanes idle; cost-aware geometry bins by predicted
    per-trial cost, splitting the expensive trials across lanes.

    The gated ``speedup`` is the ratio of the two plans' *makespans*
    under the collect loop's own scheduling discipline (units in
    submit order, each to the earliest-free lane), with per-unit
    durations taken from measured per-trial wall time of each spec —
    i.e. the model prices the plan, the clock prices the trials.  Both
    modes use the same grid, so quick and full runs land on the same
    ratio (only the timing repetitions differ).  Parity of the fused
    grid path against bare serial loops is asserted before timing.
    """
    from repro.analysis.costmodel import get_cost_model
    from repro.engine import ExperimentSpec
    from repro.engine.costplan import plan_grid
    from repro.engine.dispatch import (
        MODE_TRIALS,
        InlineTransport,
        run_grid_units,
        run_one_trial,
    )

    assert get_cost_model("phase-king") is not None, (
        "cost_dispatch_mixed_n needs the phase-king cost model "
        "(is sympy unavailable?)"
    )

    lanes = 4
    light = ExperimentSpec(runner="phase-king", n=8, trials=96, seed=11)
    heavy = ExperimentSpec(runner="phase-king", n=40, trials=12, seed=11)
    specs = [light, heavy]

    # Parity first, on a scaled-down copy of the same grid shape: the
    # fused cost-aware path must be bit-identical to bare serial loops.
    parity_specs = [
        ExperimentSpec(runner="phase-king", n=8, trials=12, seed=11),
        ExperimentSpec(runner="phase-king", n=24, trials=3, seed=11),
    ]
    parity_units = plan_grid(
        parity_specs, capacity=lanes, modes=[MODE_TRIALS] * 2
    )
    pairs = run_grid_units(parity_units, InlineTransport())
    by_spec = {spec: results for spec, results in pairs}
    for spec in parity_specs:
        serial = [run_one_trial(spec, i) for i in range(spec.trials)]
        assert by_spec[spec] == serial  # parity before timing

    # Measured per-trial seconds per spec (the simulation's clock).
    light_reps, light_count = (2, 8) if quick else (6, 16)
    heavy_reps, heavy_count = (1, 2) if quick else (3, 3)

    def _light_batch() -> List[Any]:
        return [run_one_trial(light, i) for i in range(light_count)]

    def _heavy_batch() -> List[Any]:
        return [run_one_trial(heavy, i) for i in range(heavy_count)]

    _light_batch(), _heavy_batch()  # warm caches before the clock starts
    per_trial = {
        light: _time(_light_batch, light_reps) / (light_reps * light_count),
        heavy: _time(_heavy_batch, heavy_reps) / (heavy_reps * heavy_count),
    }

    def _makespan(units: List[Any]) -> float:
        free = [0.0] * lanes
        for unit in units:
            lane = min(range(lanes), key=free.__getitem__)
            free[lane] += len(unit.indices) * per_trial[unit.spec]
        return max(free)

    modes = [MODE_TRIALS] * len(specs)
    uniform_units = plan_grid(
        specs, capacity=lanes, modes=modes, cost_aware=False
    )
    cost_units = plan_grid(
        specs, capacity=lanes, modes=modes, cost_aware=True
    )
    uniform_s = _makespan(uniform_units)
    cost_s = _makespan(cost_units)
    return {
        "desc": (
            f"mixed-n phase-king grid (n=8 x{light.trials} + "
            f"n=40 x{heavy.trials}), {lanes} lanes: cost-aware vs "
            "uniform unit geometry, measured-trial makespan"
        ),
        "ops": light.trials + heavy.trials,
        "uniform_units": len(uniform_units),
        "cost_units": len(cost_units),
        "uniform_makespan_s": round(uniform_s, 6),
        "cost_makespan_s": round(cost_s, 6),
        "speedup": round(uniform_s / cost_s, 2) if cost_s else 0.0,
        "parity": True,
    }


class _LinkRelay:
    """A loopback TCP relay that adds fixed one-way latency per direction.

    The benchmark link: every byte is delivered, in order, ``delay``
    seconds after it arrived — latency without any throughput limit,
    which is exactly the shape of the real links the lane pipeline
    exists to hide (bare loopback has ~10 us round trips, so a
    latency-hiding optimisation measured against it would be measuring
    nothing).  Both the baseline and the pipelined path dial the same
    relay, so the comparison isolates the client's exchange discipline.
    """

    def __init__(self, host: str, port: int, delay: float) -> None:
        import socket
        import threading

        self._socket = socket
        self._threading = threading
        self.target = (host, port)
        self.delay = delay
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.host, self.port = self._listener.getsockname()[:2]
        threading.Thread(
            target=self._accept_loop, name="perf-gate-relay", daemon=True
        ).start()

    def _accept_loop(self) -> None:
        socket = self._socket
        while True:
            try:
                inbound, _ = self._listener.accept()
            except OSError:
                return
            outbound = socket.create_connection(self.target)
            for sock in (inbound, outbound):
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._pump(inbound, outbound)
            self._pump(outbound, inbound)

    def _pump(self, src, dst) -> None:
        """One direction: a reader stamps arrival deadlines, a writer
        holds each chunk until its deadline — chunks queue behind each
        other without the delays adding up (throughput is unshaped)."""
        import queue

        handoff: "queue.Queue" = queue.Queue()

        def reader() -> None:
            while True:
                try:
                    data = src.recv(65536)
                except OSError:
                    data = b""
                handoff.put((time.perf_counter() + self.delay, data))
                if not data:
                    return

        def writer() -> None:
            socket = self._socket
            while True:
                deadline, data = handoff.get()
                wait = deadline - time.perf_counter()
                if wait > 0:
                    time.sleep(wait)
                if not data:
                    try:
                        dst.shutdown(socket.SHUT_WR)
                    except OSError:
                        pass
                    return
                try:
                    dst.sendall(data)
                except OSError:
                    return

        for fn in (reader, writer):
            self._threading.Thread(target=fn, daemon=True).start()

    def close(self) -> None:
        try:
            self._listener.close()
        except OSError:
            pass


def _suite_dispatch_wire(quick: bool) -> Dict[str, Any]:
    """Binary pipelined lanes vs the JSON one-in-flight client (GATED).

    The data-plane workload the wire codec exists for: many small work
    units whose round trips — not whose compute — dominate the sweep.
    One in-process ``WorkerServer``, reached through a loopback
    :class:`_LinkRelay` adding 2 ms of one-way latency (the emulated
    cluster link), serves the same 64-unit spec twice:

    * **baseline**: the pre-codec client, byte for byte —
      ``codec="json"`` (newline-delimited JSON, no negotiation) with
      ``lane_depth=1`` (one exchange in flight, the old ping-pong
      discipline — every unit pays the full round trip);
    * **fast path**: ``codec="auto"`` (negotiates the length-prefixed
      binary framing with zlib payload compression) with
      ``lane_depth=4`` (the sender streams request frames while the
      receiver completes earlier units off the same connection, so the
      link latency is paid once per *window*, not once per unit).

    The gated ``speedup`` is the units/sec ratio; ``bytes_in`` /
    ``bytes_out`` per path come from the lane telemetry and record the
    codec's wire footprint next to the throughput it buys.  Both paths
    must match the bare serial loop bit for bit before timing counts.
    """
    from repro.engine import (
        ExperimentSpec,
        Scenario,
        TrialResult,
        register,
    )
    from repro.engine.backends import run_one_trial
    from repro.engine.distributed import DistributedBackend, WorkerServer

    def _wire_trial(ctx) -> TrialResult:
        # ~48 metrics -> a ~1.5 KiB result document: big enough that
        # framing and compression matter, small enough that round-trip
        # latency (what pipelining hides) still dominates the exchange.
        metrics = tuple(
            (f"m{i:02d}", float((ctx.seed * 2654435761 + i * 40503) % 99991))
            for i in range(48)
        )
        return TrialResult(
            trial_index=ctx.trial_index, seed=ctx.seed, metrics=metrics
        )

    # Idempotent re-registration: suites must not depend on run order.
    register(
        Scenario(
            name="perf-gate-wire",
            run_trial=_wire_trial,
            description="perf-gate only: a wire-sized result document",
        )
    )

    trials = 64
    spec = ExperimentSpec(runner="perf-gate-wire", n=1, trials=trials)
    serial = [run_one_trial(spec, i) for i in range(trials)]

    def sweep(codec: str, depth: int):
        backend = DistributedBackend(
            hosts=[(relay.host, relay.port)],
            unit_size=1,
            lane_depth=depth,
            codec=codec,
        )
        try:
            results = backend.run_trials(spec)
            report = backend.telemetry.report(results)
        finally:
            backend.close()
        return results, report

    with WorkerServer() as server:
        relay = _LinkRelay(server.host, server.port, delay=0.002)
        try:
            json_results, json_report = sweep("json", 1)
            binary_results, binary_report = sweep("auto", 4)
            # Parity before speed: codec and depth change framing and
            # overlap, never content.
            assert json_results == serial
            assert binary_results == serial
            assert json_report.lanes[0].codec == "json"
            assert binary_report.lanes[0].codec == "binary"

            reps = 2 if quick else 4
            json_s = _time(lambda: sweep("json", 1), reps)
            binary_s = _time(lambda: sweep("auto", 4), reps)
        finally:
            relay.close()

    ops = reps * trials
    json_lane = json_report.lanes[0]
    binary_lane = binary_report.lanes[0]
    return {
        "desc": (
            f"{trials} single-trial units over a 2ms loopback link: "
            "binary codec + lane_depth=4 vs JSON lines + lane_depth=1"
        ),
        "ops": ops,
        "json_s": round(json_s, 6),
        "binary_s": round(binary_s, 6),
        "json_units_per_s": round(ops / json_s, 1) if json_s else 0.0,
        "binary_units_per_s": (
            round(ops / binary_s, 1) if binary_s else 0.0
        ),
        "json_wire_bytes": json_lane.bytes_out + json_lane.bytes_in,
        "binary_wire_bytes": binary_lane.bytes_out + binary_lane.bytes_in,
        "binary_inflight_peak": binary_lane.inflight_peak,
        "speedup": round(json_s / binary_s, 2) if binary_s else 0.0,
        "parity": True,
    }


_SUITES = {
    "e9_reconstruct_n64": _suite_e9_reconstruct,
    "e9_batch_reveal_n64": _suite_e9_batch_reveal,
    "e17_row_check_n64": _suite_e17_row_check,
    "e17_batch_rows_n64": _suite_e17_batch_rows,
    "e19_vss_coin": _suite_e19_vss_coin,
    "sim_round_loop_n32": _suite_sim_round_loop,
    "dispatch_overhead": _suite_dispatch_overhead,
    "telemetry_overhead": _suite_telemetry_overhead,
    "cost_dispatch_mixed_n": _suite_cost_dispatch_mixed_n,
    "dispatch_wire_n64": _suite_dispatch_wire,
}


def run_suites(quick: bool = False) -> Dict[str, Any]:
    """Execute every suite and assemble the baseline document."""
    suites = {name: fn(quick) for name, fn in _SUITES.items()}
    return {
        "schema": SCHEMA,
        "mode": "quick" if quick else "full",
        "python": ".".join(str(v) for v in sys.version_info[:3]),
        "suites": suites,
    }


def compare(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float = 0.25,
) -> List[str]:
    """Speedup regressions of ``current`` against ``baseline``.

    Only the dimensionless ``speedup`` fields are gated (machine-
    portable); wall-clock fields are informational.  Returns one
    human-readable line per regressed suite.
    """
    problems = []
    for name, base in baseline.get("suites", {}).items():
        base_speedup = base.get("speedup")
        cur = current.get("suites", {}).get(name)
        if base_speedup is None or cur is None:
            continue
        cur_speedup = cur.get("speedup")
        if cur_speedup is None:
            problems.append(f"{name}: speedup field missing from current run")
            continue
        floor = base_speedup * (1.0 - max_regression)
        if cur_speedup < floor:
            problems.append(
                f"{name}: speedup {cur_speedup:.2f}x < "
                f"{floor:.2f}x floor (baseline {base_speedup:.2f}x, "
                f"max regression {max_regression:.0%})"
            )
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="perf_gate",
        description=(
            "Run the reconstruction/simulator perf suites, emit the "
            "BENCH_core.json baseline, and optionally gate against a "
            "committed baseline."
        ),
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized repetitions (same suites, smaller reps/committees)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSON document here ('-' for stdout only)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="committed baseline to gate speedups against",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.25,
        help="allowed fractional speedup drop before soft-failing "
             "(default 0.25)",
    )
    args = parser.parse_args(argv)

    # Load the baseline *before* writing --out: CI points both flags at
    # BENCH_core.json (gate against the committed file, upload the fresh
    # one), which must not degenerate into comparing a file to itself.
    baseline = None
    if args.baseline:
        try:
            with open(args.baseline) as f:
                baseline = json.load(f)
        except FileNotFoundError:
            print(
                f"no baseline at {args.baseline}; nothing to gate against",
                file=sys.stderr,
            )

    current = run_suites(quick=args.quick)
    body = json.dumps(current, indent=2, sort_keys=True) + "\n"
    if args.out and args.out != "-":
        with open(args.out, "w") as f:
            f.write(body)
        print(f"wrote {args.out}")
    else:
        print(body, end="")

    if baseline is not None:
        problems = compare(
            current, baseline, max_regression=args.max_regression
        )
        if problems:
            print("PERF REGRESSION (soft fail):", file=sys.stderr)
            for line in problems:
                print(f"  {line}", file=sys.stderr)
            return EXIT_REGRESSION
        print(
            f"perf gate ok against {args.baseline} "
            f"(max regression {args.max_regression:.0%})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
