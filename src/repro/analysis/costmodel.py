"""Closed-form bit-complexity models (Lemma 5, Theorems 1/2/4).

Python cannot message-level-simulate n = 10^6 (repro band: "too slow for
large-n scaling experiments"), so the large-n scaling curves pair the
small-n simulator with these models, which count the same messages the
simulator sends.  Tests cross-validate model vs simulator at small n;
benchmark E10 reports both.

All functions return bits *per processor* unless noted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.parameters import ProtocolParameters, log2n


@dataclass(frozen=True)
class CostBreakdown:
    """Per-phase cost components of one protocol execution."""

    phases: Dict[str, float]

    @property
    def total(self) -> float:
        """Total modelled bits summed over all phases."""
        return sum(self.phases.values())


# -- Lemma 5: the almost-everywhere tournament ---------------------------------------


def aeba_cost_paper(n: int, delta: float = 5.0, c: float = 1.0) -> CostBreakdown:
    """Lemma 5's accounting with the paper's asymptotic parameters.

    Terms (quoting the proof):

        O~((q + k1)(q + l* w q) + l*(wq)^2 + k1 (wq)^2 + w^2 q^3
           + sum_l d_m^l (wq)^2)

    with w = O(log^3 n), l* = log(n/k1)/log q, d_m = c' log^4 n,
    k1 = log^3 n and q = (log n)^delta.  The last (share replication)
    term dominates and evaluates to O~(n^{4/delta}).
    """
    ln = log2n(n)
    q = ln**delta
    k1 = ln**3
    w = 5 * c * ln**3
    lstar = max(1.0, math.log(max(n / k1, 2.0)) / math.log(max(q, 2.0)))
    d_m = ln**4  # c' log^4 n, c' = 1

    wq = w * q
    phases = {
        "initial_share": (q + k1) * (q + lstar * wq),
        "bin_agreement": lstar * wq**2,
        "leaf_reconstruct": k1 * wq**2,
        "send_open": w**2 * q**3,
        "share_replication": sum(
            d_m**level * wq**2 for level in range(1, int(lstar) + 1)
        ),
    }
    return CostBreakdown(phases=phases)


def aeba_bits_per_processor_paper(
    n: int, delta: float = 5.0, c: float = 1.0
) -> float:
    """Headline Theorem 2 figure: O~(n^{4/delta}) bits per processor."""
    return aeba_cost_paper(n, delta, c).total


def aeba_asymptotic_exponent(delta: float) -> float:
    """The n-exponent of Theorem 2's bit bound: 4 / delta."""
    return 4.0 / delta


# -- Theorem 4: almost-everywhere to everywhere ------------------------------------------


def ae_to_everywhere_cost(
    params: ProtocolParameters, loops: int, message_bits: Optional[int] = None
) -> CostBreakdown:
    """Per-processor cost of ``loops`` iterations of Algorithm 3.

    Per loop each processor sends sqrt(n) * a log n requests of
    log(sqrt(n)) bits and answers up to sqrt(n) log n requests with the
    message — O~(sqrt(n)) total, the dominant cost of Theorem 1.
    """
    if message_bits is None:
        message_bits = params.word_bits
    sqrt_n = params.sqrt_n()
    fanout = params.request_fanout()
    label_bits = max(1, math.ceil(math.log2(sqrt_n + 1)))
    requests = sqrt_n * fanout * label_bits
    responses = params.overload_limit() * message_bits
    return CostBreakdown(
        phases={
            "requests": loops * requests,
            "responses": loops * responses,
        }
    )


def everywhere_ba_bits_per_processor(
    n: int,
    delta: float = 5.0,
    coin_iterations: Optional[int] = None,
) -> float:
    """Theorem 1's per-processor bits: tournament + wq iterations of Alg. 3.

    With delta chosen so n^{4/delta} = O~(sqrt(n)) (delta >= 8) the
    Algorithm 3 phase dominates at O~(sqrt(n)).
    """
    params = ProtocolParameters.paper(n, delta=delta)
    if coin_iterations is None:
        coin_iterations = max(
            1, int(params.winners_per_election) * int(params.q)
        )
        # wq is polylog; cap the model at log^4 n iterations as the paper's
        # X = Theta(log n) repetition bound implies.
        coin_iterations = min(coin_iterations, int(log2n(n) ** 4))
    tournament = aeba_bits_per_processor_paper(n, delta=delta)
    push = ae_to_everywhere_cost(params, loops=coin_iterations).total
    return tournament + push


def sparse_aeba_bits_per_processor(
    n: int, rounds: int = 6, word_bits: float = 1.0
) -> float:
    """Algorithm 5 per-processor bits: degree x rounds x vote size.

    On the Theorem 5 graph (degree k log n) each processor sends one
    vote to every neighbor per round.
    """
    from ..topology.sparse_graph import theorem5_degree

    return theorem5_degree(n) * rounds * word_bits


def replicated_log_marginal_bits(
    n: int, aeba_rounds: int = 6, ae2e_loops: int = 2
) -> float:
    """Marginal per-slot bits of the repeated-agreement layer (E22).

    Once the tournament is sunk, a log slot pays only Algorithm 5 on the
    sparse graph plus Algorithm 3's everywhere push.
    """
    params = ProtocolParameters.simulation(n)
    aeba = sparse_aeba_bits_per_processor(n, rounds=aeba_rounds)
    push = ae_to_everywhere_cost(params, loops=ae2e_loops).total
    return aeba + push


def replicated_log_amortized_bits(
    n: int, slots: int, aeba_rounds: int = 6, ae2e_loops: int = 2
) -> float:
    """Amortized per-processor bits per slot of an m-slot log (E22).

    The tournament term (simulation-preset constants, as in
    :func:`everywhere_ba_bits_simulation`) divides across the log; the
    marginal term is paid per slot.
    """
    if slots < 1:
        raise ValueError(f"need at least one slot, got {slots}")
    params = ProtocolParameters.simulation(n)
    ln = log2n(n)
    tournament = (
        params.k1 * params.uplink_degree * params.block_words(2) * ln**2
    )
    return tournament / slots + replicated_log_marginal_bits(
        n, aeba_rounds=aeba_rounds, ae2e_loops=ae2e_loops
    )


# -- Baseline models --------------------------------------------------------------------


def everywhere_ba_bits_simulation(n: int, loops: int = 8) -> float:
    """Theorem 1's cost with *simulation-preset* constants.

    The paper-preset model (:func:`everywhere_ba_bits_per_processor`)
    takes the asymptotic parameters literally, whose polylog factors
    (log^30 n and worse) dwarf n^2 until absurd scales.  Real deployments
    would tune constants the way the simulation preset does; this model
    gives the practically-relevant crossover against the baselines.
    """
    params = ProtocolParameters.simulation(n)
    # Tournament traffic per processor: committee appearances x per-level
    # share fan-out (uplink_degree words per record, polylog records).
    ln = log2n(n)
    tournament = (
        params.k1 * params.uplink_degree * params.block_words(2) * ln**2
    )
    push = ae_to_everywhere_cost(params, loops=loops).total
    return tournament + push


def phase_king_bits_per_processor(n: int) -> float:
    """(f+1) phases x 2 all-to-all rounds x 1-bit payloads ~= n^2 / 2."""
    f = max(0, (n - 1) // 4)
    return (f + 1) * 2.0 * (n - 1)


def rabin_bits_per_processor(n: int, expected_rounds: float = 4.0) -> float:
    """All-to-all votes for O(1) expected rounds: Theta(n) per processor."""
    return expected_rounds * (n - 1)


def benor_bits_per_processor(n: int, fault_fraction: float = 0.1) -> float:
    """Local-coin agreement: expected rounds blow up exponentially in the
    fault count; modelled as 2^(c t^2 / n) rounds of 2(n-1) bits (the
    standard Theta(2^{Theta(n)}) bound at linear fault rates)."""
    t = fault_fraction * n
    expected_rounds = min(2.0 ** (t * t / max(n, 1)), 1e18)
    return expected_rounds * 2.0 * (n - 1)


def crossover_point(
    model_a, model_b, lo: int = 4, hi: int = 1 << 40
) -> Optional[int]:
    """Smallest n in [lo, hi] where model_a(n) < model_b(n), by doubling +
    bisection (both models assumed to cross at most once in the range)."""
    def cheaper(n: int) -> bool:
        return model_a(n) < model_b(n)

    if cheaper(lo):
        return lo
    if not cheaper(hi):
        return None
    low, high = lo, hi
    while high - low > 1:
        mid = (low + high) // 2
        if cheaper(mid):
            high = mid
        else:
            low = mid
    return high


# -- Per-scenario symbolic cost models (the dispatch cost plane) -------------------------
#
# Every registered scenario gets a ``ScenarioCostModel``: a pair of sympy
# expressions — predicted communication bits and computation work units
# per trial — over symbols resolved from (n, declared params).  The
# dispatch plane sizes work units by ``trial_cost`` so mixed-n grids
# balance predicted work instead of trial counts; ``calibrate`` fits the
# constant factors from measured BitLedger totals and per-trial timings.
# sympy is optional: when it is missing no model is available and every
# consumer falls back to uniform (trial-count) geometry.


def _sympy():
    import sympy

    return sympy


def _have_sympy() -> bool:
    try:
        _sympy()
    except ImportError:
        return False
    return True


@dataclass(frozen=True)
class TrialCost:
    """Predicted per-trial cost of one scenario at resolved params."""

    bits: float  #: communication bits charged to the BitLedger
    work: float  #: computation work units (~messages processed)

    @property
    def cost(self) -> float:
        """The scalar the dispatch plane bins by (calibrated work)."""
        return self.work


@dataclass(frozen=True)
class ScenarioCostModel:
    """Symbolic per-trial cost of one scenario.

    ``bits_expr`` / ``work_expr`` are sympy expressions whose free
    symbols are filled by ``resolver(n, params)`` — the resolver applies
    the same auto-derivations the scenario builder does (e.g. a ``None``
    degree becoming ``theorem5_degree(n)``), so the model prices the
    trial that would actually run.  ``uses`` names the declared params
    the model reads; everything else is flagged as ignored by
    ``repro cost``.
    """

    scenario: str
    bits_expr: Any
    work_expr: Any
    resolver: Callable[[int, Mapping[str, Any]], Dict[str, float]]
    uses: Tuple[str, ...] = ()
    bits_scale: float = 1.0
    work_scale: float = 1.0

    def substitutions(self, n: int, params: Mapping[str, Any]) -> Dict[str, float]:
        subs = dict(self.resolver(n, params))
        subs["n"] = float(n)
        return subs

    def _eval(self, expr: Any, subs: Dict[str, float]) -> float:
        sympy = _sympy()
        value = expr.subs(
            {sympy.Symbol(name): value for name, value in subs.items()}
        )
        return float(value)

    def predict(
        self, n: int, params: Optional[Mapping[str, Any]] = None
    ) -> TrialCost:
        """Predicted (bits, work) for one trial at ``n`` / ``params``."""
        subs = self.substitutions(n, dict(params or {}))
        return TrialCost(
            bits=self.bits_scale * self._eval(self.bits_expr, subs),
            work=self.work_scale * self._eval(self.work_expr, subs),
        )

    def trial_cost(
        self, n: int, params: Optional[Mapping[str, Any]] = None
    ) -> float:
        """Scalar predicted cost of one trial (what dispatch bins by)."""
        return self.predict(n, params).cost

    def symbol_names(self) -> Tuple[str, ...]:
        names = {
            str(s)
            for expr in (self.bits_expr, self.work_expr)
            for s in expr.free_symbols
        }
        return tuple(sorted(names))

    def ignored_params(self, declared: Sequence[str]) -> Tuple[str, ...]:
        """Declared params the model does not price."""
        return tuple(sorted(set(declared) - set(self.uses)))

    def calibrated(
        self,
        bits_scale: Optional[float] = None,
        work_scale: Optional[float] = None,
    ) -> "ScenarioCostModel":
        return replace(
            self,
            bits_scale=self.bits_scale if bits_scale is None else bits_scale,
            work_scale=self.work_scale if work_scale is None else work_scale,
        )


@dataclass(frozen=True)
class CostSample:
    """One measured data point for ``calibrate``.

    ``bits`` is a measured per-trial BitLedger total (``net.accounting``
    snapshot merged into ``TrialResult.ledger``); ``seconds`` is a
    measured per-trial wall time (telemetry ``UnitStats.trial_seconds``).
    Either may be None when only one axis was measured.
    """

    n: int
    params: Tuple[Tuple[str, Any], ...] = ()
    bits: Optional[float] = None
    seconds: Optional[float] = None


def calibrate(
    model: ScenarioCostModel, samples: Sequence[CostSample]
) -> ScenarioCostModel:
    """Fit the model's constant factors to measured samples.

    Least squares through the origin, per axis: the bits scale maps the
    symbolic bit count onto measured ledger totals, the work scale maps
    work units onto measured seconds (so calibrated ``trial_cost`` is in
    seconds).  Axes with no samples keep their current scale.
    """
    bits_num = bits_den = 0.0
    work_num = work_den = 0.0
    for sample in samples:
        predicted = model.predict(sample.n, dict(sample.params))
        raw_bits = predicted.bits / model.bits_scale if model.bits_scale else 0.0
        raw_work = predicted.work / model.work_scale if model.work_scale else 0.0
        if sample.bits is not None and raw_bits > 0:
            bits_num += raw_bits * sample.bits
            bits_den += raw_bits * raw_bits
        if sample.seconds is not None and raw_work > 0:
            work_num += raw_work * sample.seconds
            work_den += raw_work * raw_work
    return model.calibrated(
        bits_scale=bits_num / bits_den if bits_den else None,
        work_scale=work_num / work_den if work_den else None,
    )


#: Simulator envelope cost per message (header + 1-bit payload), measured
#: from BitLedger traces: phase-king / rabin / unreliable-coin-ba all
#: charge exactly 49 bits per vote message.
_VOTE_BITS = 49.0

_MODEL_BUILDERS: Dict[str, Callable[[], ScenarioCostModel]] = {}
_MODELS: Dict[str, ScenarioCostModel] = {}


def register_cost_model(
    scenario: str, builder: Callable[[], ScenarioCostModel]
) -> None:
    """Register (or replace) the cost-model builder for a scenario."""
    _MODEL_BUILDERS[scenario] = builder
    _MODELS.pop(scenario, None)


def get_cost_model(scenario: str) -> Optional[ScenarioCostModel]:
    """The scenario's cost model, or None (unknown scenario / no sympy).

    A ``None`` here is the documented uniform-geometry fallback signal:
    every consumer (``DispatchPlan.cost_*``, backends, the fleet
    coordinator, ``repro cost``) must degrade to trial-count sizing.
    """
    if scenario in _MODELS:
        return _MODELS[scenario]
    builder = _MODEL_BUILDERS.get(scenario)
    if builder is None or not _have_sympy():
        return None
    model = builder()
    _MODELS[scenario] = model
    return model


def cost_model_names() -> Tuple[str, ...]:
    """Scenarios with a registered cost model (even if sympy is absent)."""
    return tuple(sorted(_MODEL_BUILDERS))


def _eig_tree_values(n: int, t: int) -> float:
    """Values relayed per EIG round pair: sum_{r=0..t} P(n-1, r)."""
    total, term = 0.0, 1.0
    for r in range(t + 1):
        total += term
        term *= max(0, (n - 1) - r)
    return total


def _resolved(params: Mapping[str, Any], key: str, default: Any) -> Any:
    value = params.get(key)
    return default if value is None else value


def _build_builtin_models() -> None:
    sympy = _sympy()
    Sym = sympy.Symbol

    n = Sym("n")

    def simple(
        scenario: str,
        bits_expr: Any,
        work_expr: Any,
        resolver: Callable[[int, Mapping[str, Any]], Dict[str, float]],
        uses: Tuple[str, ...],
    ) -> None:
        register_cost_model(
            scenario,
            lambda: ScenarioCostModel(
                scenario=scenario,
                bits_expr=bits_expr,
                work_expr=work_expr,
                resolver=resolver,
                uses=uses,
            ),
        )

    # phase-king: `phases` x (2 all-to-all rounds + king broadcast);
    # the ledger charges exactly phases*(n^2-1) vote messages.
    phases = Sym("phases")
    pk_msgs = phases * (n**2 - 1)
    simple(
        "phase-king",
        _VOTE_BITS * pk_msgs,
        pk_msgs + 2 * phases * n,
        lambda N, p: {
            "phases": float(
                _resolved(p, "num_phases", max(0, (N - 1) // 4) + 1)
            )
        },
        ("num_phases",),
    )

    # rabin: all-to-all votes for `rounds_eff` expected rounds (3 at the
    # default corruption, growing toward max_rounds under faults).
    rounds_eff = Sym("rounds_eff")
    rb_msgs = rounds_eff * n * (n - 1)
    simple(
        "rabin",
        _VOTE_BITS * rb_msgs,
        rb_msgs + 2 * rounds_eff * n,
        lambda N, p: {
            "rounds_eff": float(
                min(
                    3.0 + 8.0 * float(p.get("corrupt", 0.0) or 0.0),
                    _resolved(p, "max_rounds", 64),
                )
            )
        },
        ("corrupt", "max_rounds"),
    )

    # benor (sync local-coin): expected phases grow exponentially in the
    # corrupted fraction; each phase is two all-to-all vote rounds.
    exp_phases = Sym("exp_phases")
    bo_msgs = 2 * exp_phases * n * (n - 1)
    simple(
        "benor",
        _VOTE_BITS * bo_msgs,
        bo_msgs + 4 * exp_phases * n,
        lambda N, p: {
            "exp_phases": float(
                min(
                    2.0 * 2.0 ** (float(p.get("corrupt", 0.0) or 0.0) * N),
                    _resolved(p, "max_phases", 64),
                )
            )
        },
        ("corrupt", "max_phases"),
    )

    # eig: exact message count — n(n-1) sends per round, each relaying
    # the previous level's tree values: sum_{r=0..t} P(n-1, r) values.
    tree_values = Sym("tree_values")
    t_sym = Sym("t")
    eig_msgs = n * (n - 1) * tree_values
    simple(
        "eig",
        (40.0 + 3.0 * t_sym) * eig_msgs,
        eig_msgs,
        lambda N, p: (
            lambda t: {"t": float(t), "tree_values": _eig_tree_values(N, t)}
        )(int(_resolved(p, "t", max(0, (N - 1) // 3)))),
        ("t",),
    )

    # bracha-broadcast: init (n-1) + echo n(n-1) + ready n(n-1) messages.
    br_msgs = (2 * n + 1) * (n - 1)
    simple(
        "bracha-broadcast",
        58.6 * br_msgs,
        2 * br_msgs,
        lambda N, p: {},
        (),
    )

    # async-benor / common-coin-ba: expected ~4 phases of all-to-all
    # traffic under the async scheduler (measured ~4.5 n^2 messages).
    exp_phases_a = Sym("exp_phases")
    ab_msgs = exp_phases_a * n * (n - 1)
    for name in ("async-benor", "common-coin-ba"):
        simple(
            name,
            74.0 * ab_msgs,
            2 * ab_msgs,
            lambda N, p: {
                "exp_phases": float(min(5.0, _resolved(p, "max_phases", 64)))
            },
            ("max_phases",),
        )

    # unreliable-coin-ba: one vote to every sparse-graph neighbor per
    # round — exactly n * degree * num_rounds ledger messages.
    degree = Sym("degree")
    num_rounds = Sym("num_rounds")
    uc_msgs = n * degree * num_rounds
    def _uc_resolver(N: int, p: Mapping[str, Any]) -> Dict[str, float]:
        from ..topology.sparse_graph import theorem5_degree

        return {
            "degree": float(_resolved(p, "degree", theorem5_degree(N))),
            "num_rounds": float(_resolved(p, "num_rounds", 1)),
        }

    simple(
        "unreliable-coin-ba",
        _VOTE_BITS * uc_msgs,
        uc_msgs + 2 * num_rounds * n,
        _uc_resolver,
        ("degree", "num_rounds"),
    )

    # async-sparse-aeba: (num_rounds + 1) sparse vote rounds at a
    # measured 119.7 bits per message.
    as_msgs = n * degree * (num_rounds + 1)
    def _as_resolver(N: int, p: Mapping[str, Any]) -> Dict[str, float]:
        from ..topology.sparse_graph import theorem5_degree

        deg = int(_resolved(p, "degree", theorem5_degree(N)))
        return {
            "degree": float(deg),
            "num_rounds": float(
                _resolved(p, "num_rounds", max(8, deg // 2))
            ),
        }

    simple(
        "async-sparse-aeba",
        119.7 * as_msgs,
        2 * as_msgs,
        _as_resolver,
        ("degree", "num_rounds"),
    )

    # vss-coin: 4 k(k-1) dealing/echo/reveal messages whose payloads are
    # rows of ~k field words; reconstruction work is cubic in k.
    k = Sym("k")
    vss_msgs = 4 * k * (k - 1)
    simple(
        "vss-coin",
        k * (k - 1) * (214.0 + 98.0 * k),
        vss_msgs + k**3,
        lambda N, p: {"k": float(_resolved(p, "k", N))},
        ("k",),
    )

    # cpa: nothing hits the ledger (charge-free flooding sim); work is
    # rounds x n x degree relays.
    rounds_sym = Sym("rounds")
    simple(
        "cpa",
        sympy.Integer(0),
        rounds_sym * n * degree,
        lambda N, p: {
            "rounds": float(_resolved(p, "rounds", 3 * N)),
            "degree": float(
                _resolved(p, "degree", max(2, int(math.log2(max(N, 2))) + 1))
            ),
        },
        ("rounds", "degree"),
    )

    # disc09-ae2e: a log(n) pull requests per processor at 41 bits/msg.
    a_sym = Sym("a")
    d9_msgs = a_sym * n * sympy.log(n)
    simple(
        "disc09-ae2e",
        41.0 * d9_msgs,
        d9_msgs,
        lambda N, p: {"a": float(_resolved(p, "a", 6.0))},
        ("a",),
    )

    # sampler-quality: pure computation (no network) — r outer samplers
    # each drawing s candidates and running inner_trials degree-sized
    # committee probes.
    r_sym, s_sym, it_sym = Sym("r"), Sym("s"), Sym("inner_trials")
    simple(
        "sampler-quality",
        sympy.Integer(0),
        r_sym * (s_sym + it_sym * s_sym),
        lambda N, p: {
            "r": float(_resolved(p, "r", 100)),
            "s": float(_resolved(p, "s", 300)),
            "inner_trials": float(_resolved(p, "inner_trials", 15)),
        },
        ("r", "s", "inner_trials"),
    )

    # everywhere-ba: the tournament simulation; bits from the existing
    # simulation-preset closed form (Theorem 1 constants), work
    # proportional to the implied message count.
    bits_pp = Sym("bits_pp")
    simple(
        "everywhere-ba",
        n * bits_pp,
        n * bits_pp / 31.0,
        lambda N, p: {"bits_pp": everywhere_ba_bits_simulation(N)},
        (),
    )


if _have_sympy():  # registration is cheap; expressions build lazily
    _build_builtin_models()
