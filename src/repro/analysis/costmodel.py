"""Closed-form bit-complexity models (Lemma 5, Theorems 1/2/4).

Python cannot message-level-simulate n = 10^6 (repro band: "too slow for
large-n scaling experiments"), so the large-n scaling curves pair the
small-n simulator with these models, which count the same messages the
simulator sends.  Tests cross-validate model vs simulator at small n;
benchmark E10 reports both.

All functions return bits *per processor* unless noted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.parameters import ProtocolParameters, log2n


@dataclass(frozen=True)
class CostBreakdown:
    """Per-phase cost components of one protocol execution."""

    phases: Dict[str, float]

    @property
    def total(self) -> float:
        """Total modelled bits summed over all phases."""
        return sum(self.phases.values())


# -- Lemma 5: the almost-everywhere tournament ---------------------------------------


def aeba_cost_paper(n: int, delta: float = 5.0, c: float = 1.0) -> CostBreakdown:
    """Lemma 5's accounting with the paper's asymptotic parameters.

    Terms (quoting the proof):

        O~((q + k1)(q + l* w q) + l*(wq)^2 + k1 (wq)^2 + w^2 q^3
           + sum_l d_m^l (wq)^2)

    with w = O(log^3 n), l* = log(n/k1)/log q, d_m = c' log^4 n,
    k1 = log^3 n and q = (log n)^delta.  The last (share replication)
    term dominates and evaluates to O~(n^{4/delta}).
    """
    ln = log2n(n)
    q = ln**delta
    k1 = ln**3
    w = 5 * c * ln**3
    lstar = max(1.0, math.log(max(n / k1, 2.0)) / math.log(max(q, 2.0)))
    d_m = ln**4  # c' log^4 n, c' = 1

    wq = w * q
    phases = {
        "initial_share": (q + k1) * (q + lstar * wq),
        "bin_agreement": lstar * wq**2,
        "leaf_reconstruct": k1 * wq**2,
        "send_open": w**2 * q**3,
        "share_replication": sum(
            d_m**level * wq**2 for level in range(1, int(lstar) + 1)
        ),
    }
    return CostBreakdown(phases=phases)


def aeba_bits_per_processor_paper(
    n: int, delta: float = 5.0, c: float = 1.0
) -> float:
    """Headline Theorem 2 figure: O~(n^{4/delta}) bits per processor."""
    return aeba_cost_paper(n, delta, c).total


def aeba_asymptotic_exponent(delta: float) -> float:
    """The n-exponent of Theorem 2's bit bound: 4 / delta."""
    return 4.0 / delta


# -- Theorem 4: almost-everywhere to everywhere ------------------------------------------


def ae_to_everywhere_cost(
    params: ProtocolParameters, loops: int, message_bits: Optional[int] = None
) -> CostBreakdown:
    """Per-processor cost of ``loops`` iterations of Algorithm 3.

    Per loop each processor sends sqrt(n) * a log n requests of
    log(sqrt(n)) bits and answers up to sqrt(n) log n requests with the
    message — O~(sqrt(n)) total, the dominant cost of Theorem 1.
    """
    if message_bits is None:
        message_bits = params.word_bits
    sqrt_n = params.sqrt_n()
    fanout = params.request_fanout()
    label_bits = max(1, math.ceil(math.log2(sqrt_n + 1)))
    requests = sqrt_n * fanout * label_bits
    responses = params.overload_limit() * message_bits
    return CostBreakdown(
        phases={
            "requests": loops * requests,
            "responses": loops * responses,
        }
    )


def everywhere_ba_bits_per_processor(
    n: int,
    delta: float = 5.0,
    coin_iterations: Optional[int] = None,
) -> float:
    """Theorem 1's per-processor bits: tournament + wq iterations of Alg. 3.

    With delta chosen so n^{4/delta} = O~(sqrt(n)) (delta >= 8) the
    Algorithm 3 phase dominates at O~(sqrt(n)).
    """
    params = ProtocolParameters.paper(n, delta=delta)
    if coin_iterations is None:
        coin_iterations = max(
            1, int(params.winners_per_election) * int(params.q)
        )
        # wq is polylog; cap the model at log^4 n iterations as the paper's
        # X = Theta(log n) repetition bound implies.
        coin_iterations = min(coin_iterations, int(log2n(n) ** 4))
    tournament = aeba_bits_per_processor_paper(n, delta=delta)
    push = ae_to_everywhere_cost(params, loops=coin_iterations).total
    return tournament + push


def sparse_aeba_bits_per_processor(
    n: int, rounds: int = 6, word_bits: float = 1.0
) -> float:
    """Algorithm 5 per-processor bits: degree x rounds x vote size.

    On the Theorem 5 graph (degree k log n) each processor sends one
    vote to every neighbor per round.
    """
    from ..topology.sparse_graph import theorem5_degree

    return theorem5_degree(n) * rounds * word_bits


def replicated_log_marginal_bits(
    n: int, aeba_rounds: int = 6, ae2e_loops: int = 2
) -> float:
    """Marginal per-slot bits of the repeated-agreement layer (E22).

    Once the tournament is sunk, a log slot pays only Algorithm 5 on the
    sparse graph plus Algorithm 3's everywhere push.
    """
    params = ProtocolParameters.simulation(n)
    aeba = sparse_aeba_bits_per_processor(n, rounds=aeba_rounds)
    push = ae_to_everywhere_cost(params, loops=ae2e_loops).total
    return aeba + push


def replicated_log_amortized_bits(
    n: int, slots: int, aeba_rounds: int = 6, ae2e_loops: int = 2
) -> float:
    """Amortized per-processor bits per slot of an m-slot log (E22).

    The tournament term (simulation-preset constants, as in
    :func:`everywhere_ba_bits_simulation`) divides across the log; the
    marginal term is paid per slot.
    """
    if slots < 1:
        raise ValueError(f"need at least one slot, got {slots}")
    params = ProtocolParameters.simulation(n)
    ln = log2n(n)
    tournament = (
        params.k1 * params.uplink_degree * params.block_words(2) * ln**2
    )
    return tournament / slots + replicated_log_marginal_bits(
        n, aeba_rounds=aeba_rounds, ae2e_loops=ae2e_loops
    )


# -- Baseline models --------------------------------------------------------------------


def everywhere_ba_bits_simulation(n: int, loops: int = 8) -> float:
    """Theorem 1's cost with *simulation-preset* constants.

    The paper-preset model (:func:`everywhere_ba_bits_per_processor`)
    takes the asymptotic parameters literally, whose polylog factors
    (log^30 n and worse) dwarf n^2 until absurd scales.  Real deployments
    would tune constants the way the simulation preset does; this model
    gives the practically-relevant crossover against the baselines.
    """
    params = ProtocolParameters.simulation(n)
    # Tournament traffic per processor: committee appearances x per-level
    # share fan-out (uplink_degree words per record, polylog records).
    ln = log2n(n)
    tournament = (
        params.k1 * params.uplink_degree * params.block_words(2) * ln**2
    )
    push = ae_to_everywhere_cost(params, loops=loops).total
    return tournament + push


def phase_king_bits_per_processor(n: int) -> float:
    """(f+1) phases x 2 all-to-all rounds x 1-bit payloads ~= n^2 / 2."""
    f = max(0, (n - 1) // 4)
    return (f + 1) * 2.0 * (n - 1)


def rabin_bits_per_processor(n: int, expected_rounds: float = 4.0) -> float:
    """All-to-all votes for O(1) expected rounds: Theta(n) per processor."""
    return expected_rounds * (n - 1)


def benor_bits_per_processor(n: int, fault_fraction: float = 0.1) -> float:
    """Local-coin agreement: expected rounds blow up exponentially in the
    fault count; modelled as 2^(c t^2 / n) rounds of 2(n-1) bits (the
    standard Theta(2^{Theta(n)}) bound at linear fault rates)."""
    t = fault_fraction * n
    expected_rounds = min(2.0 ** (t * t / max(n, 1)), 1e18)
    return expected_rounds * 2.0 * (n - 1)


def crossover_point(
    model_a, model_b, lo: int = 4, hi: int = 1 << 40
) -> Optional[int]:
    """Smallest n in [lo, hi] where model_a(n) < model_b(n), by doubling +
    bisection (both models assumed to cross at most once in the range)."""
    def cheaper(n: int) -> bool:
        return model_a(n) < model_b(n)

    if cheaper(lo):
        return lo
    if not cheaper(hi):
        return None
    low, high = lo, hi
    while high - low > 1:
        mid = (low + high) // 2
        if cheaper(mid):
            high = mid
        else:
            low = mid
    return high
