"""Multi-trial experiment sweeps with seeded reproducibility.

The benchmarks repeatedly need "run this protocol k times across seeds
and report mean/min/max of some metric, per parameter point".  This
module centralises that: a :class:`Sweep` runs a factory over a parameter
grid and seed list and aggregates named metrics into :class:`SeriesPoint`
rows ready for tabulation.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Sequence


@dataclass(frozen=True)
class MetricSummary:
    """Aggregate of one metric across trials."""

    name: str
    mean: float
    minimum: float
    maximum: float
    stdev: float
    count: int

    def as_tuple(self) -> tuple:
        """The (mean, minimum, maximum) triple."""
        return (self.mean, self.minimum, self.maximum)


@dataclass
class SeriesPoint:
    """One parameter point's aggregated results."""

    params: Dict[str, Any]
    metrics: Dict[str, MetricSummary]

    def metric(self, name: str) -> MetricSummary:
        """Summary for one named metric."""
        return self.metrics[name]


def summarise(name: str, values: Sequence[float]) -> MetricSummary:
    """Aggregate raw per-trial values into a summary."""
    if not values:
        raise ValueError(f"metric {name!r} has no values")
    values = [float(v) for v in values]
    return MetricSummary(
        name=name,
        mean=sum(values) / len(values),
        minimum=min(values),
        maximum=max(values),
        stdev=statistics.pstdev(values) if len(values) > 1 else 0.0,
        count=len(values),
    )


def run_sweep(
    points: Iterable[Mapping[str, Any]],
    trial: Callable[..., Mapping[str, float]],
    seeds: Sequence[int],
) -> List[SeriesPoint]:
    """Run ``trial(seed=..., **point)`` for every point x seed.

    ``trial`` returns a mapping of metric name -> value; metrics are
    aggregated per point across seeds.
    """
    series: List[SeriesPoint] = []
    for point in points:
        raw: Dict[str, List[float]] = {}
        for seed in seeds:
            metrics = trial(seed=seed, **dict(point))
            for name, value in metrics.items():
                raw.setdefault(name, []).append(float(value))
        series.append(
            SeriesPoint(
                params=dict(point),
                metrics={
                    name: summarise(name, values)
                    for name, values in raw.items()
                },
            )
        )
    return series


def fit_power_law(
    xs: Sequence[float], ys: Sequence[float]
) -> tuple:
    """Least-squares exponent and constant of y = c * x^alpha.

    The benchmarks use this to report the measured growth exponent of
    bits-per-processor curves (Theorem 1's sqrt shape, Phase King's
    square shape).
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fit needs positive data")
    log_x = [math.log(x) for x in xs]
    log_y = [math.log(y) for y in ys]
    n = len(xs)
    mean_x = sum(log_x) / n
    mean_y = sum(log_y) / n
    covariance = sum(
        (lx - mean_x) * (ly - mean_y) for lx, ly in zip(log_x, log_y)
    )
    variance = sum((lx - mean_x) ** 2 for lx in log_x)
    alpha = covariance / variance if variance else 0.0
    constant = math.exp(mean_y - alpha * mean_x)
    return alpha, constant
