"""Terminal line charts for the experiment benchmarks.

The paper's scaling stories (Õ(√n) vs n vs n²) read best as curves; this
module renders multi-series log-log or linear charts as plain text so
benchmark output and the CLI can show them without any plotting
dependency.  Pure functions over (x, y) series; no global state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


class PlotError(ValueError):
    """Raised for unplottable input."""


@dataclass
class Series:
    """One named curve."""

    label: str
    points: List[Tuple[float, float]]
    marker: str = "*"

    def __post_init__(self) -> None:
        if not self.points:
            raise PlotError(f"series {self.label!r} has no points")
        if len(self.marker) != 1:
            raise PlotError("marker must be a single character")


def _transform(value: float, log: bool) -> float:
    if not log:
        return value
    if value <= 0:
        raise PlotError("log scale requires positive values")
    return math.log10(value)


def _axis_ticks(lo: float, hi: float, log: bool, count: int) -> List[float]:
    if count < 2:
        raise PlotError("need at least two ticks")
    step = (hi - lo) / (count - 1)
    raw = [lo + i * step for i in range(count)]
    if log:
        return [10**v for v in raw]
    return raw


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e5 or magnitude < 1e-2:
        return f"{value:.0e}"
    if magnitude >= 100:
        return f"{value:,.0f}"
    return f"{value:.3g}"


def render_chart(
    series: Sequence[Series],
    width: int = 64,
    height: int = 18,
    log_x: bool = True,
    log_y: bool = True,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render the series into a text chart.

    Args:
        series: curves to draw; later series overdraw earlier ones where
            cells collide.
        width, height: interior plot size in characters.
        log_x, log_y: log10 axes (the natural choice for scaling plots).

    Returns:
        The chart as a newline-joined string (no trailing newline).
    """
    if not series:
        raise PlotError("nothing to plot")
    if width < 8 or height < 4:
        raise PlotError("plot area too small")

    xs = [
        _transform(x, log_x) for s in series for x, _ in s.points
    ]
    ys = [
        _transform(y, log_y) for s in series for _, y in s.points
    ]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_cell(x: float, y: float) -> Tuple[int, int]:
        cx = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        cy = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        return cx, height - 1 - cy

    for s in series:
        transformed = sorted(
            (_transform(x, log_x), _transform(y, log_y))
            for x, y in s.points
        )
        # Connect consecutive points with interpolated cells.
        for (x0, y0), (x1, y1) in zip(transformed, transformed[1:]):
            steps = max(2, int(abs(x1 - x0) / (x_hi - x_lo) * width) * 2)
            for i in range(steps + 1):
                t = i / steps
                cx, cy = to_cell(x0 + t * (x1 - x0), y0 + t * (y1 - y0))
                if grid[cy][cx] == " ":
                    grid[cy][cx] = "."
        for x, y in transformed:
            cx, cy = to_cell(x, y)
            grid[cy][cx] = s.marker

    lines: List[str] = []
    if title:
        lines.append(title.center(width + 10))
    y_ticks = _axis_ticks(y_lo, y_hi, log_y, 4)
    tick_rows = {
        0: _format_tick(y_ticks[-1]),
        height - 1: _format_tick(y_ticks[0]),
        (height - 1) // 2: _format_tick(y_ticks[len(y_ticks) // 2]),
    }
    gutter = max(len(v) for v in tick_rows.values()) + 1
    for row_index, row in enumerate(grid):
        label = tick_rows.get(row_index, "").rjust(gutter)
        lines.append(f"{label} |{''.join(row)}")
    x_ticks = _axis_ticks(x_lo, x_hi, log_x, 3)
    lines.append(" " * gutter + " +" + "-" * width)
    left = _format_tick(x_ticks[0])
    mid = _format_tick(x_ticks[1])
    right = _format_tick(x_ticks[-1])
    axis = (
        left
        + mid.center(width - len(left) - len(right))
        + right
    )
    lines.append(" " * (gutter + 2) + axis)
    footer_parts = []
    if x_label:
        footer_parts.append(f"x: {x_label}" + (" (log)" if log_x else ""))
    if y_label:
        footer_parts.append(f"y: {y_label}" + (" (log)" if log_y else ""))
    legend = "  ".join(f"{s.marker}={s.label}" for s in series)
    if legend:
        footer_parts.append(legend)
    if footer_parts:
        lines.append(" " * (gutter + 2) + "   ".join(footer_parts))
    return "\n".join(lines)


def fitted_exponent(points: Sequence[Tuple[float, float]]) -> float:
    """Least-squares slope of log y vs log x — the scaling exponent.

    The number benchmarks quote next to a curve: ~0.5 for the paper's
    Õ(√n), ~1 for Rabin, ~2 for Phase King.
    """
    if len(points) < 2:
        raise PlotError("need at least two points to fit")
    logs = [
        (math.log10(x), math.log10(y))
        for x, y in points
        if x > 0 and y > 0
    ]
    if len(logs) < 2:
        raise PlotError("need at least two positive points to fit")
    n = len(logs)
    mean_x = sum(x for x, _ in logs) / n
    mean_y = sum(y for _, y in logs) / n
    num = sum((x - mean_x) * (y - mean_y) for x, y in logs)
    den = sum((x - mean_x) ** 2 for x, _ in logs)
    if den == 0:
        raise PlotError("degenerate x values")
    return num / den
