"""Result-table rendering: plain text, Markdown and CSV writers.

The benchmark harness prints plain-text tables; EXPERIMENTS.md and any
downstream notebooks want Markdown/CSV.  One table model, three writers,
all purely functional.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Sequence


@dataclass
class Table:
    """An ordered result table."""

    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    note: str = ""

    def add_row(self, *cells: Any) -> None:
        """Append one row (cells stringified); must match the header width."""
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(row)

    # -- writers -----------------------------------------------------------------

    def to_text(self) -> str:
        """Render the table as aligned plain text."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        out = io.StringIO()
        out.write(f"=== {self.title} ===\n")
        header = "  ".join(
            h.ljust(widths[i]) for i, h in enumerate(self.headers)
        )
        out.write(header + "\n")
        out.write("-" * len(header) + "\n")
        for row in self.rows:
            out.write(
                "  ".join(
                    cell.rjust(widths[i]) for i, cell in enumerate(row)
                )
                + "\n"
            )
        if self.note:
            out.write(self.note + "\n")
        return out.getvalue()

    def to_markdown(self) -> str:
        """Render the table as GitHub-flavoured Markdown."""
        out = io.StringIO()
        out.write(f"### {self.title}\n\n")
        out.write("| " + " | ".join(self.headers) + " |\n")
        out.write("|" + "|".join("---" for _ in self.headers) + "|\n")
        for row in self.rows:
            out.write("| " + " | ".join(row) + " |\n")
        if self.note:
            out.write(f"\n{self.note}\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """Render the table as CSV (header row first)."""
        out = io.StringIO()
        out.write(",".join(_csv_escape(h) for h in self.headers) + "\n")
        for row in self.rows:
            out.write(",".join(_csv_escape(c) for c in row) + "\n")
        return out.getvalue()


def _csv_escape(cell: str) -> str:
    if any(ch in cell for ch in ',"\n'):
        return '"' + cell.replace('"', '""') + '"'
    return cell


def tables_to_markdown(tables: Iterable[Table]) -> str:
    """Concatenate several tables into one Markdown document body."""
    return "\n".join(table.to_markdown() for table in tables)
