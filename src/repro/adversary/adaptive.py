"""Adaptive-corruption adversaries — the model this paper is about.

An adaptive adversary may take over processors *during* the protocol, up
to its (1/3 - eps) * n budget.  The killer application of adaptivity is
targeting whoever becomes important: elected committee members, processors
holding revealed secrets, high-degree sampler elements.

Two flavours are provided:

* :class:`AdaptiveByzantineAdversary` — actor-model adversary for the
  :class:`~repro.net.simulator.SyncNetwork`; corrupts according to a
  targeting policy fed by its (private-channel-limited) observations.
* :class:`TournamentAdversary` — the adversary interface used by the
  tournament orchestration in :mod:`repro.core.almost_everywhere`, with
  hooks at each phase where the paper's adversary gets to move.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..net.messages import Message
from ..net.simulator import Adversary, AdversaryView
from .behaviors import VoteBehavior


class TargetingPolicy(abc.ABC):
    """Chooses who to corrupt next, given what the adversary has seen."""

    @abc.abstractmethod
    def choose(
        self,
        round_no: int,
        corrupted: Set[int],
        observed_senders: Dict[int, int],
        remaining_budget: int,
        n: int,
        rng: random.Random,
    ) -> Set[int]:
        """Return processor IDs to corrupt this round (<= remaining budget)."""


class NoTargeting(TargetingPolicy):
    """Targeting policy that never corrupts anyone."""

    def choose(self, round_no, corrupted, observed_senders, remaining_budget, n, rng):
        return set()


class CorruptChattiest(TargetingPolicy):
    """Corrupt the processors the adversary has heard from most.

    With private channels the adversary only observes senders of messages
    addressed to corrupted processors; "chattiest toward me" is the best
    proxy it has for protocol importance.
    """

    def __init__(self, per_round: int = 1, start_round: int = 1) -> None:
        self.per_round = per_round
        self.start_round = start_round

    def choose(self, round_no, corrupted, observed_senders, remaining_budget, n, rng):
        if round_no < self.start_round or remaining_budget <= 0:
            return set()
        candidates = [
            pid
            for pid, _count in sorted(
                observed_senders.items(), key=lambda kv: -kv[1]
            )
            if pid not in corrupted
        ]
        take = min(self.per_round, remaining_budget)
        return set(candidates[:take])


class CorruptScheduled(TargetingPolicy):
    """Corrupt a scripted set of processors at scripted rounds.

    Used to reproduce the adaptive attack on processor-elections: wait for
    the election result, then take over the winners (DESIGN.md ablation).
    """

    def __init__(self, schedule: Dict[int, Iterable[int]]) -> None:
        self.schedule = {r: set(p) for r, p in schedule.items()}

    def choose(self, round_no, corrupted, observed_senders, remaining_budget, n, rng):
        return set(self.schedule.get(round_no, set())) - corrupted


class CorruptRandomGradually(TargetingPolicy):
    """Corrupt random good processors at a steady rate until out of budget."""

    def __init__(self, per_round: int = 1) -> None:
        self.per_round = per_round

    def choose(self, round_no, corrupted, observed_senders, remaining_budget, n, rng):
        if remaining_budget <= 0:
            return set()
        available = [pid for pid in range(n) if pid not in corrupted]
        take = min(self.per_round, remaining_budget, len(available))
        return set(rng.sample(available, take))


class AdaptiveByzantineAdversary(Adversary):
    """Actor-model adversary combining a targeting policy and a vote behavior."""

    def __init__(
        self,
        n: int,
        budget: int,
        policy: TargetingPolicy,
        behavior: VoteBehavior,
        recipients_of: Optional[Dict[int, Sequence[int]]] = None,
        vote_tag: str = "vote",
        seed: int = 0,
    ) -> None:
        super().__init__(n, budget)
        self.policy = policy
        self.behavior = behavior
        self.recipients_of = recipients_of
        self.vote_tag = vote_tag
        self.rng = random.Random(seed)
        self._observed_senders: Dict[int, int] = {}
        self._round = 0

    def select_corruptions(self, round_no: int) -> Set[int]:
        self._round = round_no
        return self.policy.choose(
            round_no,
            self.corrupted,
            self._observed_senders,
            self.remaining_budget(),
            self.n,
            self.rng,
        )

    def act(self, view: AdversaryView) -> List[Message]:
        for message in view.inbound:
            if message.sender not in view.corrupted:
                self._observed_senders[message.sender] = (
                    self._observed_senders.get(message.sender, 0) + 1
                )
        messages: List[Message] = []
        for sender in sorted(view.corrupted):
            if self.recipients_of is not None:
                recipients = self.recipients_of.get(sender, ())
            else:
                recipients = [
                    pid for pid in range(self.n) if pid not in view.corrupted
                ]
            votes = self.behavior.votes(view, sender, recipients, self.rng)
            for recipient, bit in votes.items():
                if bit is None:
                    continue
                messages.append(
                    Message(sender, recipient, self.vote_tag, bit)
                )
        return messages


class TournamentAdversary:
    """Adversary hooks for the phase-structured tournament orchestration.

    The tournament (Algorithm 2) is simulated phase-by-phase; at each
    phase boundary the adversary gets exactly the moves the paper grants
    it.  Subclass and override any hook.

    Hook contract:

    * ``initial_corruptions`` — static head start (may be empty).
    * ``corrupt_after_election`` — adaptive takeover between levels; sees
      which arrays won which elections *after* the result is fixed, which
      is exactly when the paper's adaptive adversary gets to move and
      exactly why electing *processors* would fail.
    * ``bad_bin_choice`` / ``bad_coin_word`` — values revealed from
      corrupted arrays' blocks (the adversary controls the inputs of bad
      processors, hence the contents of bad arrays).
    """

    def __init__(self, n: int, budget: int, seed: int = 0) -> None:
        self.n = n
        self.budget = budget
        self.corrupted: Set[int] = set()
        self.rng = random.Random(seed)

    def remaining_budget(self) -> int:
        """Corruption budget not yet spent."""
        return self.budget - len(self.corrupted)

    def take_over(self, pids: Iterable[int]) -> Set[int]:
        """Corrupt as many of ``pids`` as the budget allows; returns those taken."""
        taken = set()
        for pid in pids:
            if self.remaining_budget() <= 0:
                break
            if pid not in self.corrupted and 0 <= pid < self.n:
                self.corrupted.add(pid)
                taken.add(pid)
        return taken

    # -- hooks --------------------------------------------------------------------

    def initial_corruptions(self) -> Set[int]:
        return set()

    def corrupt_after_election(
        self,
        level: int,
        winners: Sequence[int],
        node_members: Sequence[int],
    ) -> Set[int]:
        """Called after each node election with the winning array owners."""
        return set()

    def bad_bin_choice(self, level: int, owner: int, num_bins: int) -> int:
        """Bin choice revealed for a corrupted candidate array."""
        return 0  # stuff the lowest bin

    def bad_coin_word(self, level: int, owner: int, index: int) -> int:
        """Coin word revealed for a corrupted candidate array."""
        return 0


class GreedyElectionAdversary(TournamentAdversary):
    """Adaptively corrupts winning-array owners after every election.

    Against a *processor* election this wins outright (take over the small
    elected set).  Against the paper's *array* election it gains nothing:
    the arrays' secrets were shared before the winners were known, so
    corrupting the owners afterwards does not let the adversary bias coins
    already committed.  E5's ablation measures exactly this difference.
    """

    def corrupt_after_election(self, level, winners, node_members):
        return self.take_over(list(winners))


class BinStuffingAdversary(TournamentAdversary):
    """Corrupted candidates coordinate bin choices to crowd a chosen bin."""

    def __init__(
        self, n: int, budget: int, seed: int = 0, strategy: str = "stuff"
    ) -> None:
        super().__init__(n, budget, seed)
        if strategy not in ("stuff", "spread", "random"):
            raise ValueError(f"unknown bin strategy {strategy!r}")
        self.strategy = strategy
        self._spread_counter = 0

    def initial_corruptions(self) -> Set[int]:
        return self.take_over(range(self.budget))

    def bad_bin_choice(self, level: int, owner: int, num_bins: int) -> int:
        if self.strategy == "stuff":
            return 0
        if self.strategy == "spread":
            self._spread_counter += 1
            return self._spread_counter % max(1, num_bins)
        return self.rng.randrange(max(1, num_bins))
