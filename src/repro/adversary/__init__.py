"""Adversary models: static, adaptive, flooding (paper Section 1.1)."""

from .adaptive import (
    AdaptiveByzantineAdversary,
    BinStuffingAdversary,
    CorruptChattiest,
    CorruptRandomGradually,
    CorruptScheduled,
    GreedyElectionAdversary,
    NoTargeting,
    TargetingPolicy,
    TournamentAdversary,
)
from .behaviors import (
    AntiMajorityBehavior,
    EquivocatingBehavior,
    FixedBitBehavior,
    KeepSplitBehavior,
    RandomBitBehavior,
    SilentBehavior,
    VoteBehavior,
    behavior_by_name,
)
from .flooding import FloodingAdversary
from .static import StaticByzantineAdversary, random_target_set

__all__ = [
    "AdaptiveByzantineAdversary",
    "BinStuffingAdversary",
    "CorruptChattiest",
    "CorruptRandomGradually",
    "CorruptScheduled",
    "GreedyElectionAdversary",
    "NoTargeting",
    "TargetingPolicy",
    "TournamentAdversary",
    "AntiMajorityBehavior",
    "EquivocatingBehavior",
    "FixedBitBehavior",
    "KeepSplitBehavior",
    "RandomBitBehavior",
    "SilentBehavior",
    "VoteBehavior",
    "behavior_by_name",
    "FloodingAdversary",
    "StaticByzantineAdversary",
    "random_target_set",
]
