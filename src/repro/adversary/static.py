"""Static-corruption adversaries: the full bad set is fixed up front.

Static adversaries are the *weaker* model the paper's predecessor [17]
tolerated; we provide them both as baselines for comparison and as the
workhorse for experiments where the corrupted set does not need to react
to the execution (e.g. validity tests).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..net.messages import Message
from ..net.simulator import Adversary, AdversaryView
from .behaviors import VoteBehavior


class StaticByzantineAdversary(Adversary):
    """Corrupts a fixed set at round 1 and follows a :class:`VoteBehavior`.

    Args:
        n: network size.
        targets: the processors to corrupt (must fit in the budget).
        behavior: how corrupted processors vote.
        recipients_of: recipient list per corrupted sender (e.g. the
            sparse-graph neighbors for Algorithm 5); defaults to all
            processors (full network broadcast protocols).
        vote_tag: message tag the victim protocol dispatches on.
        seed: RNG seed for randomized behaviors.
    """

    def __init__(
        self,
        n: int,
        targets: Iterable[int],
        behavior: VoteBehavior,
        recipients_of: Optional[Dict[int, Sequence[int]]] = None,
        vote_tag: str = "vote",
        seed: int = 0,
    ) -> None:
        target_set = set(targets)
        super().__init__(n, budget=len(target_set))
        self._targets = target_set
        self.behavior = behavior
        self.recipients_of = recipients_of
        self.vote_tag = vote_tag
        self.rng = random.Random(seed)

    def select_corruptions(self, round_no: int) -> Set[int]:
        if round_no == 1:
            return set(self._targets)
        return set()

    def act(self, view: AdversaryView) -> List[Message]:
        messages: List[Message] = []
        for sender in sorted(view.corrupted):
            if self.recipients_of is not None:
                recipients = self.recipients_of.get(sender, ())
            else:
                recipients = [
                    pid for pid in range(self.n) if pid not in view.corrupted
                ]
            votes = self.behavior.votes(view, sender, recipients, self.rng)
            for recipient, bit in votes.items():
                if bit is None:
                    continue
                messages.append(
                    Message(
                        sender=sender,
                        recipient=recipient,
                        tag=self.vote_tag,
                        payload=bit,
                    )
                )
        return messages


def random_target_set(
    n: int, fraction: float, rng: random.Random
) -> Set[int]:
    """A uniformly random corrupted set of floor(fraction * n) processors."""
    count = int(fraction * n)
    return set(rng.sample(range(n), count))
