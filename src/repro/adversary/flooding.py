"""Flooding attacks: corrupted processors send unbounded junk traffic.

The paper's model explicitly allows this ("processors controlled by the
adversary can send out any number of messages"), and the
almost-everywhere-to-everywhere protocol's overload rule (Algorithm 3,
step 3) is the defence.  :class:`FloodingAdversary` wraps any other
adversary and adds ``flood_factor`` junk messages per corrupted processor
per round.
"""

from __future__ import annotations

import random
from typing import List, Set

from ..net.messages import Message
from ..net.simulator import Adversary, AdversaryView


class FloodingAdversary(Adversary):
    """Decorator adversary: inner adversary's behavior plus junk flooding."""

    def __init__(
        self,
        inner: Adversary,
        flood_factor: int,
        junk_bits: int = 64,
        flood_tag: str = "junk",
        seed: int = 0,
    ) -> None:
        super().__init__(inner.n, inner.budget)
        self.inner = inner
        self.flood_factor = flood_factor
        self.junk_bits = junk_bits
        self.flood_tag = flood_tag
        self.rng = random.Random(seed)
        # Share the corrupted set with the inner adversary.
        self.corrupted = inner.corrupted

    def select_corruptions(self, round_no: int) -> Set[int]:
        return self.inner.select_corruptions(round_no)

    def record_capture(self, pid: int, state) -> None:
        """Mark processors as corrupted against the budget."""
        self.inner.record_capture(pid, state)
        self.captured_state[pid] = state

    def remaining_budget(self) -> int:
        """Corruption budget not yet spent."""
        return self.inner.remaining_budget()

    def act(self, view: AdversaryView) -> List[Message]:
        messages = list(self.inner.act(view))
        junk_payload = (1 << self.junk_bits) - 1
        for sender in sorted(view.corrupted):
            for _ in range(self.flood_factor):
                recipient = self.rng.randrange(self.n)
                messages.append(
                    Message(
                        sender=sender,
                        recipient=recipient,
                        tag=self.flood_tag,
                        payload=junk_payload,
                    )
                )
        return messages
