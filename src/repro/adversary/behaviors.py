"""Reusable byzantine message-generation behaviors.

These plug into :class:`~repro.adversary.static.StaticByzantineAdversary`
and :class:`~repro.adversary.adaptive.AdaptiveByzantineAdversary` to decide
what corrupted processors say each round.  They target the voting protocols
in this library (Algorithm 5's ``vote`` messages and the baselines'
broadcast votes) but are deliberately protocol-agnostic: a behavior simply
maps (round, view, recipients) to payload bits.
"""

from __future__ import annotations

import abc
import random
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..net.messages import Message
from ..net.simulator import AdversaryView


class VoteBehavior(abc.ABC):
    """Decides the bit each corrupted processor sends to each recipient."""

    @abc.abstractmethod
    def votes(
        self,
        view: AdversaryView,
        sender: int,
        recipients: Sequence[int],
        rng: random.Random,
    ) -> Dict[int, Optional[int]]:
        """Map recipient -> bit (or None to stay silent to that recipient)."""


class SilentBehavior(VoteBehavior):
    """Crash-style faults: corrupted processors say nothing."""

    def votes(self, view, sender, recipients, rng):
        return {recipient: None for recipient in recipients}


class FixedBitBehavior(VoteBehavior):
    """Always vote a fixed bit — pushes the network toward one value."""

    def __init__(self, bit: int) -> None:
        self.bit = bit

    def votes(self, view, sender, recipients, rng):
        return {recipient: self.bit for recipient in recipients}


class RandomBitBehavior(VoteBehavior):
    """Independent uniform bit per recipient per round."""

    def votes(self, view, sender, recipients, rng):
        return {recipient: rng.randrange(2) for recipient in recipients}


class EquivocatingBehavior(VoteBehavior):
    """Split-vote attack: 0 to even-ID recipients, 1 to odd-ID ones.

    The classic attack that randomized BA's coin must defeat — it keeps
    good processors maximally split around the 2/3 threshold.
    """

    def votes(self, view, sender, recipients, rng):
        return {recipient: recipient % 2 for recipient in recipients}


class AntiMajorityBehavior(VoteBehavior):
    """Rushing attack: observe inbound votes, then push the minority bit.

    Because the adversary is rushing it sees all good votes addressed to
    corrupted processors before it must speak; it votes against whatever
    majority it observed, maximising confusion.
    """

    def votes(self, view, sender, recipients, rng):
        tally = Counter(
            message.payload
            for message in view.inbound
            if message.tag == "vote" and isinstance(message.payload, int)
        )
        if tally:
            majority_bit = max(tally.items(), key=lambda kv: kv[1])[0]
            push = 1 - int(majority_bit) % 2
        else:
            push = rng.randrange(2)
        return {recipient: push for recipient in recipients}


class KeepSplitBehavior(VoteBehavior):
    """Adaptive split-maintenance: report opposite bits to the two halves
    of the recipients *per round*, reshuffled so no recipient can learn a
    stable pattern."""

    def votes(self, view, sender, recipients, rng):
        shuffled = list(recipients)
        rng.shuffle(shuffled)
        half = len(shuffled) // 2
        result: Dict[int, Optional[int]] = {}
        for i, recipient in enumerate(shuffled):
            result[recipient] = 0 if i < half else 1
        return result


def behavior_by_name(name: str, **kwargs) -> VoteBehavior:
    """Factory used by benchmarks to sweep adversary behaviors by name."""
    table = {
        "silent": SilentBehavior,
        "fixed0": lambda: FixedBitBehavior(0),
        "fixed1": lambda: FixedBitBehavior(1),
        "random": RandomBitBehavior,
        "equivocate": EquivocatingBehavior,
        "anti_majority": AntiMajorityBehavior,
        "keep_split": KeepSplitBehavior,
    }
    try:
        factory = table[name]
    except KeyError:
        raise ValueError(f"unknown behavior {name!r}") from None
    return factory(**kwargs) if kwargs else factory()
