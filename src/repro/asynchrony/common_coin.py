"""Asynchronous BA driven by a *common* coin — what a global coin buys.

This module runs the exact Ben-Or skeleton of
:mod:`repro.asynchrony.benor_async` but replaces the private per-
processor coin flip with a phase-indexed **common coin oracle**: all good
processors that reach phase ``r`` undecided adopt the same random bit
``coin(r)``.  The classic analysis (Rabin 1983, the paper's [21]) then
gives agreement within expected O(1) phases instead of expected
exponentially many: every phase in which the good processors are split,
the coin matches the side that could decide with probability 1/2.

King-Saia's contribution in the synchronous model is precisely the
construction of such a coin for o(n^2) bits against an adaptive
adversary (the global coin subsequence, Theorem 2/3).  Asynchronously,
every known unconditional construction costs Omega(n^2) bits — which is
why we model the coin as an oracle here and charge its cost separately
in benchmark E15.

The oracle interface also admits an *adversarially biased* coin
(:class:`AdversarialCoinOracle`) so tests can show exactly how agreement
degrades when the coin's randomness guarantee is broken — the asynchronous
mirror of the zero-good-coins experiment E3.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, List, Optional, Sequence

from ..net.messages import Message
from .benor_async import NO_PROPOSAL, AsyncBenOrProcess
from .scheduler import (
    AsyncAdversary,
    AsyncNetwork,
    AsyncRunResult,
    NullAsyncAdversary,
    Scheduler,
)


class CommonCoinOracle(abc.ABC):
    """Phase-indexed source of shared random bits."""

    @abc.abstractmethod
    def coin(self, phase: int) -> int:
        """The common coin for ``phase``; must be stable across calls."""

    def bits_charged_per_processor(self) -> int:
        """Accounting hook: bits each processor pays per coin (0 = free)."""
        return 0


class SeededCoinOracle(CommonCoinOracle):
    """Honest oracle: independent fair bits, identical for all callers."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._cache: Dict[int, int] = {}

    def coin(self, phase: int) -> int:
        if phase not in self._cache:
            self._cache[phase] = random.Random(
                (self.seed << 24) | phase
            ).randrange(2)
        return self._cache[phase]


class AdversarialCoinOracle(CommonCoinOracle):
    """Broken oracle: the adversary fixes every coin (worst case).

    With ``fixed_bit`` the coin always lands one way; with a ``schedule``
    the adversary scripts each phase.  Used to demonstrate that the
    skeleton's *safety* (agreement, validity) never depends on the coin —
    only liveness does.
    """

    def __init__(
        self,
        fixed_bit: int = 0,
        schedule: Optional[Dict[int, int]] = None,
    ) -> None:
        self.fixed_bit = int(fixed_bit)
        self.schedule = dict(schedule) if schedule else {}

    def coin(self, phase: int) -> int:
        return self.schedule.get(phase, self.fixed_bit)


class CoinBAProcess(AsyncBenOrProcess):
    """Ben-Or skeleton with the private coin swapped for the oracle."""

    def __init__(
        self,
        pid: int,
        n: int,
        input_bit: int,
        oracle: CommonCoinOracle,
        max_phases: int = 64,
    ) -> None:
        # The private RNG is never consulted; pass a fixed-seed stub.
        super().__init__(
            pid, n, input_bit, rng=random.Random(0), max_phases=max_phases
        )
        self.oracle = oracle
        self.coins_consumed = 0

    def _finish_stage(self, key):  # type: ignore[override]
        phase, stage = key
        if stage != "proposal":
            return super()._finish_stage(key)
        # Re-implement the proposal stage with the common coin fallback.
        own = self._own_proposal
        values = list(self._received[key].values()) + [own]
        from collections import Counter

        proposals = Counter(v for v in values if v != NO_PROPOSAL)
        if proposals:
            top, count = self._top(proposals)
            if count >= 3 * self.fault_bound + 1:
                self._decided = top
                self.vote = top
                return self._broadcast_decision()
            if count >= self.fault_bound + 1:
                self.vote = top
                return self._next_phase()
        self.vote = self.oracle.coin(phase)
        self.coins_consumed += 1
        return self._next_phase()


def run_common_coin_ba(
    n: int,
    inputs: Sequence[int],
    oracle: Optional[CommonCoinOracle] = None,
    adversary: Optional[AsyncAdversary] = None,
    scheduler: Optional[Scheduler] = None,
    max_phases: int = 64,
    seed: int = 0,
    max_steps: Optional[int] = None,
) -> AsyncRunResult:
    """Run the common-coin BA until decision or the step cap."""
    if len(inputs) != n:
        raise ValueError("inputs length must equal n")
    if oracle is None:
        oracle = SeededCoinOracle(seed)
    if adversary is None:
        adversary = NullAsyncAdversary(n)
    processes = [
        CoinBAProcess(pid, n, inputs[pid], oracle, max_phases=max_phases)
        for pid in range(n)
    ]
    network = AsyncNetwork(processes, adversary, scheduler=scheduler)
    cap = max_steps if max_steps is not None else 50 * n * n * max_phases
    return network.run(max_steps=cap)


def max_phase_reached(processes: Sequence[CoinBAProcess]) -> int:
    """Highest phase any process entered — the liveness metric for E15."""
    return max(process.phase for process in processes)
