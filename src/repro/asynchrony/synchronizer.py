"""Round synchronizer: run synchronous protocols on the async engine.

The textbook bridge between the two models this library implements: an
alpha-style synchronizer that simulates lock-step rounds over an
asynchronous network.  Every wrapped processor, per simulated round,

1. computes its round-``r`` protocol messages (from the round-``r-1``
   inbox), sends them tagged with ``r``, and broadcasts a round-``r``
   *marker* to everyone;
2. advances to round ``r+1`` only after collecting markers for round
   ``r`` from at least ``n - t`` distinct processors (the most it can
   safely wait for when ``t`` may never speak), buffering any traffic
   that arrives early for later rounds.

Quorum intersection keeps good processors within one round of each
other, so a synchronous protocol's per-round semantics survive — at a
price the paper's open problem is really about: the synchronizer itself
broadcasts n markers per processor per round, re-imposing Theta(n^2)
messages per round regardless of how frugal the wrapped protocol is.
Running King-Saia's tournament through a synchronizer would therefore
destroy its O~(sqrt n) budget; a native asynchronous protocol is
required, which is why the question is open.

Limitations (documented, inherent to synchronizers): Byzantine
processors may send markers without protocol messages or vice versa, so
the wrapped protocol's fault tolerance must already cover arbitrary
per-round message loss/forgery from t processors — true of the
baselines shipped here (Phase King, Ben-Or).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..net.messages import Message
from ..net.simulator import ProcessorProtocol
from .scheduler import (
    AsyncAdversary,
    AsyncNetwork,
    AsyncProcess,
    AsyncRunResult,
    NullAsyncAdversary,
    Scheduler,
)

#: Tag of the combined per-round envelope.  Each wrapper sends every
#: peer exactly one envelope per simulated round, carrying the round
#: marker *and* any protocol messages for that peer — piggybacking them
#: makes "marker received implies payload received" atomic, so no
#: scheduler can deliver a marker ahead of its round's traffic.
ENVELOPE_TAG = "sync-round"


def synchronizer_fault_bound(n: int) -> int:
    """Marker-quorum fault allowance: t < n/3."""
    return max(0, (n - 1) // 3)


class SynchronizedProcess(AsyncProcess):
    """One asynchronous process simulating lock-step rounds for a
    wrapped synchronous :class:`ProcessorProtocol`.
    """

    def __init__(
        self,
        pid: int,
        n: int,
        inner: ProcessorProtocol,
        max_rounds: int,
        fault_bound: Optional[int] = None,
        peers: Optional[Sequence[int]] = None,
    ) -> None:
        """Args:
            peers: the processors this wrapper exchanges envelopes with
                (default: everyone).  A *sparse* peer set makes the
                synchronizer's per-round cost O(|peers|) instead of
                O(n) — essential when the wrapped protocol itself is
                sparse (Algorithm 5 on a k log n-regular graph).  The
                wrapped protocol must only address peers.
            fault_bound: markers that may be missing from the peer
                quorum; defaults to |peers| // 3 (the n/3 rule applied
                to the neighborhood).
        """
        super().__init__(pid)
        if inner.pid != pid:
            raise ValueError("wrapped protocol pid mismatch")
        self.n = n
        self.inner = inner
        self.max_rounds = max_rounds
        self.peers: List[int] = (
            sorted(set(peers) - {pid}) if peers is not None
            else [q for q in range(n) if q != pid]
        )
        self.fault_bound = (
            fault_bound if fault_bound is not None
            else synchronizer_fault_bound(len(self.peers) + 1)
        )
        self.round = 0  # last completed simulated round
        self.rounds_simulated = 0
        self._markers: Dict[int, Set[int]] = defaultdict(set)
        self._proto_inbox: Dict[int, List[Message]] = defaultdict(list)
        self._finished = False
        self._echoed_rounds: Set[int] = set()

    # -- protocol ----------------------------------------------------------------

    def on_start(self) -> List[Message]:
        return self._run_round(1, [])

    def on_message(self, message: Message) -> List[Message]:
        if message.tag != ENVELOPE_TAG:
            return []
        payload = message.payload
        if not (
            isinstance(payload, (tuple, list))
            and len(payload) == 2
            and isinstance(payload[0], int)
        ):
            return []
        round_no, bundle = payload
        if self._finished:
            # Keep echoing empty envelopes so laggards' quorums still
            # fill after this processor has decided and stopped.
            return self._echo_marker(round_no)
        self._markers[round_no].add(message.sender)
        if round_no >= self.round and isinstance(bundle, (tuple, list)):
            for item in bundle:
                if isinstance(item, (tuple, list)) and len(item) == 2:
                    tag, inner_payload = item
                    self._proto_inbox[round_no].append(
                        Message(
                            message.sender, message.recipient,
                            tag, inner_payload,
                        )
                    )
        return self._maybe_advance()

    def _echo_marker(self, round_no: int) -> List[Message]:
        if round_no in self._echoed_rounds or round_no <= self.round:
            return []
        self._echoed_rounds.add(round_no)
        return [
            Message(self.pid, peer, ENVELOPE_TAG, (round_no, ()))
            for peer in self.peers
        ]

    def output(self):
        return self.inner.output()

    def snapshot_state(self) -> Dict[str, object]:
        """Wrapper state plus the wrapped protocol's state, for debugging."""
        state = dict(self.__dict__)
        state["inner_state"] = self.inner.snapshot_state()
        return state

    # -- round machinery -----------------------------------------------------------

    def _maybe_advance(self) -> List[Message]:
        """Advance through every round whose marker quorum is complete."""
        out: List[Message] = []
        while not self._finished:
            current = self.round
            quorum = len(self.peers) + 1 - self.fault_bound
            # Own marker counts; peers' markers arrive by message.
            if len(self._markers[current]) + 1 < quorum:
                break
            inbox = self._proto_inbox.pop(current, [])
            self._markers.pop(current, None)
            out.extend(self._run_round(current + 1, inbox))
        return out

    def _run_round(
        self, round_no: int, inbox: List[Message]
    ) -> List[Message]:
        if round_no > self.max_rounds or self.inner.output() is not None:
            self._finished = True
            return []
        self.round = round_no
        self.rounds_simulated += 1
        inner_messages = self.inner.on_round(round_no, inbox)
        per_peer: Dict[int, List[Tuple[str, object]]] = defaultdict(list)
        for m in inner_messages:
            if m.sender != self.pid:
                raise ValueError(
                    f"wrapped protocol forged sender {m.sender}"
                )
            per_peer[m.recipient].append((m.tag, m.payload))
        for recipient in per_peer:
            if recipient not in set(self.peers):
                raise ValueError(
                    f"wrapped protocol addressed non-peer {recipient}"
                )
        return [
            Message(
                self.pid, peer, ENVELOPE_TAG,
                (round_no, tuple(per_peer.get(peer, ()))),
            )
            for peer in self.peers
        ]


def run_synchronized(
    protocols: Sequence[ProcessorProtocol],
    max_rounds: int,
    adversary: Optional[AsyncAdversary] = None,
    scheduler: Optional[Scheduler] = None,
    fault_bound: Optional[int] = None,
    max_steps: Optional[int] = None,
    peers_of: Optional[Dict[int, Sequence[int]]] = None,
) -> Tuple[AsyncRunResult, List[SynchronizedProcess]]:
    """Run synchronous protocols to completion over the async engine.

    ``peers_of`` restricts each wrapper's envelopes to a peer set (e.g.
    the sparse graph's neighborhoods); by default every pair exchanges
    envelopes.  Returns the async run result plus the wrapper processes
    (whose ``rounds_simulated`` exposes the round accounting).
    """
    n = len(protocols)
    if adversary is None:
        adversary = NullAsyncAdversary(n)
    processes = [
        SynchronizedProcess(
            pid, n, protocols[pid], max_rounds,
            fault_bound=fault_bound,
            peers=peers_of.get(pid) if peers_of is not None else None,
        )
        for pid in range(n)
    ]
    network = AsyncNetwork(processes, adversary, scheduler=scheduler)
    cap = max_steps if max_steps is not None else 20 * n * n * max_rounds
    result = network.run(max_steps=cap)
    return result, processes


def synchronizer_overhead_messages(n: int, rounds: int) -> int:
    """Marker traffic the synchronizer adds: n(n-1) per simulated round.

    This is the quantitative punchline: even a protocol that sends zero
    messages pays Theta(n^2) per round once synchronized, so the paper's
    o(n^2) budget cannot survive generic synchronization.
    """
    return n * (n - 1) * rounds
