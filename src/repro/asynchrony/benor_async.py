"""Ben-Or's asynchronous Byzantine agreement with local coins (1983).

The first asynchronous BA protocol, and the canonical demonstration of
why randomization is *required* (FLP) and why local coins are *slow*:
with Theta(n) faults the good processors must all flip the same way by
luck, so the expected number of phases is exponential; for t = O(sqrt n)
it is constant.  Benchmark E15 contrasts this against the common-coin
variant (:mod:`repro.asynchrony.common_coin`), which is the asynchronous
analogue of what King-Saia's global coin subsequence provides.

Each phase has two all-to-all exchanges, gated on receiving ``n - t``
messages of the matching phase (the most any processor can safely wait
for under asynchrony):

1. ``report(phase, vote)``: wait for n - t reports; if more than
   (n + t)/2 carry v, propose v, else propose "?".
2. ``proposal(phase, v-or-?)``: wait for n - t proposals; if at least
   3t + 1 carry the same v, decide v; if at least t + 1, adopt v; else
   flip a private coin.

Thresholds tolerate t < n/5 (matching the synchronous twin in
:mod:`repro.baselines.benor`, so the two are directly comparable).
Messages from future phases are buffered; a decided processor answers
future-phase traffic with its decision so laggards terminate.
"""

from __future__ import annotations

import random
from collections import Counter, defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..net.messages import Message
from .scheduler import (
    AsyncAdversary,
    AsyncNetwork,
    AsyncProcess,
    AsyncRunResult,
    NullAsyncAdversary,
    Scheduler,
)

#: Payload sentinel for "no value proposed" (Ben-Or's "?").
NO_PROPOSAL = -1


def async_benor_fault_bound(n: int) -> int:
    """Maximum tolerated faults: t < n/5."""
    return max(0, (n - 1) // 5)


class AsyncBenOrProcess(AsyncProcess):
    """One good processor running asynchronous Ben-Or."""

    def __init__(
        self,
        pid: int,
        n: int,
        input_bit: int,
        rng: random.Random,
        max_phases: int = 64,
    ) -> None:
        super().__init__(pid)
        self.n = n
        self.vote = int(input_bit)
        self.rng = rng
        self.max_phases = max_phases
        self.fault_bound = async_benor_fault_bound(n)
        self.phase = 1
        self.stage = "report"
        self._decided: Optional[int] = None
        # (phase, stage) -> {sender: value}; buffers future-phase traffic.
        self._received: Dict[Tuple[int, str], Dict[int, int]] = defaultdict(dict)
        # decision claims: value -> senders.  A claim is only adopted
        # with fault_bound + 1 corroborating senders (at most
        # fault_bound of them can be lying Byzantine processors).
        self._decided_claims: Dict[int, Set[int]] = defaultdict(set)

    # -- protocol ----------------------------------------------------------------

    def on_start(self) -> List[Message]:
        return self._broadcast("report", self.vote)

    def on_message(self, message: Message) -> List[Message]:
        if message.tag == "decided":
            return self._absorb_decision(message)
        if message.tag not in ("report", "proposal"):
            return []
        if not isinstance(message.payload, (tuple, list)):
            return []
        if len(message.payload) != 2:
            return []
        phase, value = message.payload
        if not isinstance(phase, int) or not isinstance(value, int):
            return []
        if self._decided is not None:
            # Help laggards: answer any later-phase traffic with the decision.
            if phase >= self.phase:
                return [
                    Message(self.pid, message.sender, "decided", self._decided)
                ]
            return []
        if phase < self.phase:
            return []
        self._received[(phase, message.tag)][message.sender] = value
        return self._advance()

    def output(self) -> Optional[int]:
        return self._decided

    # -- stage machinery -----------------------------------------------------------

    def _advance(self) -> List[Message]:
        """Fire any stage whose n - t quorum is now complete."""
        out: List[Message] = []
        progressed = True
        while progressed and self._decided is None:
            progressed = False
            key = (self.phase, self.stage)
            quorum = self.n - self.fault_bound
            # Own message counts toward the quorum.
            if len(self._received[key]) + 1 >= quorum:
                out.extend(self._finish_stage(key))
                progressed = True
        return out

    def _finish_stage(self, key: Tuple[int, str]) -> List[Message]:
        phase, stage = key
        own = self.vote if stage == "report" else self._own_proposal
        values = list(self._received[key].values()) + [own]
        if stage == "report":
            tally = Counter(values)
            top, count = self._top(tally)
            threshold = (self.n + self.fault_bound) / 2
            self._own_proposal = top if count > threshold else NO_PROPOSAL
            self.stage = "proposal"
            return self._broadcast("proposal", self._own_proposal)
        proposals = Counter(v for v in values if v != NO_PROPOSAL)
        if proposals:
            top, count = self._top(proposals)
            if count >= 3 * self.fault_bound + 1:
                self._decided = top
                self.vote = top
                return self._broadcast_decision()
            if count >= self.fault_bound + 1:
                self.vote = top
            else:
                self.vote = self.rng.randrange(2)
        else:
            self.vote = self.rng.randrange(2)
        return self._next_phase()

    def _next_phase(self) -> List[Message]:
        self.phase += 1
        self.stage = "report"
        if self.phase > self.max_phases:
            # Phase cap: give up undecided rather than loop forever.
            return []
        return self._broadcast("report", self.vote)

    @staticmethod
    def _top(tally: Counter) -> Tuple[int, int]:
        top = max(tally, key=lambda v: (tally[v], v))
        return top, tally[top]

    def _absorb_decision(self, message: Message) -> List[Message]:
        if self._decided is not None:
            return []
        if message.payload not in (0, 1):
            return []
        self._decided_claims[message.payload].add(message.sender)
        if len(self._decided_claims[message.payload]) >= self.fault_bound + 1:
            self._decided = message.payload
            self.vote = message.payload
            return self._broadcast_decision()
        return []

    # -- messaging -----------------------------------------------------------------

    def _broadcast(self, tag: str, value: int) -> List[Message]:
        return [
            Message(self.pid, other, tag, (self.phase, value))
            for other in range(self.n)
            if other != self.pid
        ]

    def _broadcast_decision(self) -> List[Message]:
        assert self._decided is not None
        return [
            Message(self.pid, other, "decided", self._decided)
            for other in range(self.n)
            if other != self.pid
        ]


def run_async_benor(
    n: int,
    inputs: Sequence[int],
    adversary: Optional[AsyncAdversary] = None,
    scheduler: Optional[Scheduler] = None,
    max_phases: int = 64,
    seed: int = 0,
    max_steps: Optional[int] = None,
) -> AsyncRunResult:
    """Run asynchronous Ben-Or until decision or the step cap."""
    if len(inputs) != n:
        raise ValueError("inputs length must equal n")
    if adversary is None:
        adversary = NullAsyncAdversary(n)
    processes = [
        AsyncBenOrProcess(
            pid, n, inputs[pid],
            rng=random.Random((seed << 16) | pid),
            max_phases=max_phases,
        )
        for pid in range(n)
    ]
    network = AsyncNetwork(processes, adversary, scheduler=scheduler)
    cap = max_steps if max_steps is not None else 50 * n * n * max_phases
    return network.run(max_steps=cap)
