"""Asynchronous-model extension (the paper's first open problem).

The conclusion of King & Saia (PODC 2010) asks: *"Can we adapt our
results to the asynchronous communication model?"*  This subpackage
builds the substrate needed to study that question:

* :mod:`repro.asynchrony.scheduler` — an event-driven asynchronous
  network with eventual delivery, an adversarial message scheduler and
  adaptive corruptions, mirroring :mod:`repro.net.simulator` for the
  synchronous model.
* :mod:`repro.asynchrony.bracha` — Bracha's reliable broadcast
  (t < n/3), the standard asynchronous building block.
* :mod:`repro.asynchrony.benor_async` — Ben-Or's asynchronous Byzantine
  agreement with *local* coins (t < n/5, exponential expected phases).
* :mod:`repro.asynchrony.common_coin` — the same skeleton driven by a
  *common* coin, converging in expected O(1) phases: the asynchronous
  analogue of what the paper's global coin subsequence buys.

Benchmark E15 compares the three and quantifies why a sub-quadratic
asynchronous analogue of the paper remains open: every known async
common-coin construction without cryptography costs Omega(n^2) bits.
"""

from .scheduler import (
    AsyncAdversary,
    AsyncNetwork,
    AsyncProcess,
    AsyncRunResult,
    FIFOScheduler,
    NullAsyncAdversary,
    RandomScheduler,
    Scheduler,
    SchedulerError,
    TargetedDelayScheduler,
)
from .bracha import BrachaBroadcaster, bracha_fault_bound, run_bracha_broadcast
from .benor_async import AsyncBenOrProcess, run_async_benor
from .common_coin import (
    AdversarialCoinOracle,
    CommonCoinOracle,
    CoinBAProcess,
    SeededCoinOracle,
    run_common_coin_ba,
)
from .synchronizer import (
    SynchronizedProcess,
    run_synchronized,
    synchronizer_fault_bound,
    synchronizer_overhead_messages,
)
from .sparse_aeba import (
    AsyncAEBAOutcome,
    OracleCoinView,
    run_async_sparse_aeba,
)

__all__ = [
    "AsyncAdversary",
    "AsyncNetwork",
    "AsyncProcess",
    "AsyncRunResult",
    "FIFOScheduler",
    "NullAsyncAdversary",
    "RandomScheduler",
    "Scheduler",
    "SchedulerError",
    "TargetedDelayScheduler",
    "BrachaBroadcaster",
    "bracha_fault_bound",
    "run_bracha_broadcast",
    "AsyncBenOrProcess",
    "run_async_benor",
    "CommonCoinOracle",
    "SeededCoinOracle",
    "AdversarialCoinOracle",
    "CoinBAProcess",
    "run_common_coin_ba",
    "SynchronizedProcess",
    "run_synchronized",
    "synchronizer_fault_bound",
    "synchronizer_overhead_messages",
    "AsyncAEBAOutcome",
    "OracleCoinView",
    "run_async_sparse_aeba",
]
