"""Algorithm 5 run asynchronously at sub-quadratic cost.

The closest this library gets to answering the paper's asynchronous
open problem with its own machinery:

* the protocol is the paper's Algorithm 5
  (:class:`repro.core.unreliable_coin_ba.SparseAEBAProcessor`) on a
  k log n-regular graph — per-processor traffic O(degree x rounds);
* rounds are simulated over the asynchronous engine by the *sparse*
  round synchronizer: envelopes travel only along graph edges, so the
  synchronization overhead is also O(degree x rounds) per processor —
  unlike the all-to-all synchronizer's Theta(n) per round;
* the global coin is an oracle (:class:`OracleCoinView`), because
  generating it asynchronously below n^2 bits is exactly the part that
  remains open.

Result: almost-everywhere agreement over an asynchronous network at
O~(polylog n) bits per processor *given the coin* — isolating the open
problem to the coin construction alone.  Benchmark E15e measures the
cost split.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.unreliable_coin_ba import (
    SparseAEBAProcessor,
    vote_threshold,
)
from ..topology.sparse_graph import random_regular_graph, theorem5_degree
from .scheduler import (
    AsyncAdversary,
    AsyncRunResult,
    Scheduler,
)
from .synchronizer import SynchronizedProcess, run_synchronized


class OracleCoinView:
    """Phase-indexed shared coin, same bit for every processor.

    The oracle stands in for the paper's global coin subsequence; its
    asynchronous generation below n^2 bits is the open problem.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._cache: Dict[int, int] = {}

    def view(self, round_index: int, pid: int) -> int:
        if round_index not in self._cache:
            self._cache[round_index] = random.Random(
                f"sparse-aeba-coin-{self.seed}-{round_index}"
            ).randrange(2)
        return self._cache[round_index]


@dataclass
class AsyncAEBAOutcome:
    """Result of one asynchronous Algorithm 5 execution."""

    n: int
    degree: int
    num_rounds: int
    result: AsyncRunResult
    agreement_fraction: float
    agreed_bit: Optional[int]
    max_bits_per_processor: int

    @property
    def almost_everywhere(self) -> bool:
        """Did all but O(n / log n) good processors agree? (We use the
        benchmarks' working threshold of 90%.)"""
        return self.agreement_fraction >= 0.9


def run_async_sparse_aeba(
    n: int,
    inputs: Sequence[int],
    num_rounds: Optional[int] = None,
    degree: Optional[int] = None,
    epsilon: float = 1 / 12,
    epsilon0: float = 0.05,
    coin_seed: int = 0,
    graph_seed: int = 0,
    adversary: Optional[AsyncAdversary] = None,
    scheduler: Optional[Scheduler] = None,
    sync_fault_bound: Optional[int] = None,
) -> AsyncAEBAOutcome:
    """Run Algorithm 5 over the async engine with sparse synchronization.

    Args:
        sync_fault_bound: per-neighborhood envelope slack; 0 (the
            default) waits for every neighbor — appropriate fault-free,
            while crash runs should allow the crashed fraction.
    """
    if len(inputs) != n:
        raise ValueError("inputs length must equal n")
    rng = random.Random(graph_seed)
    if degree is None:
        degree = theorem5_degree(n)
    if num_rounds is None:
        num_rounds = max(8, degree // 2)
    adjacency = random_regular_graph(n, degree, rng)
    coin = OracleCoinView(coin_seed)
    threshold = vote_threshold(epsilon, epsilon0)

    protocols = [
        SparseAEBAProcessor(
            pid,
            inputs[pid],
            sorted(adjacency[pid]),
            coin_view=lambda r, p=0: coin.view(r, p),
            num_rounds=num_rounds,
            threshold=threshold,
        )
        for pid in range(n)
    ]
    result, wrappers = run_synchronized(
        protocols,
        max_rounds=num_rounds + 2,
        adversary=adversary,
        scheduler=scheduler,
        fault_bound=0 if sync_fault_bound is None else sync_fault_bound,
        peers_of={pid: sorted(adjacency[pid]) for pid in range(n)},
    )

    good = result.good_outputs()
    decided = [v for v in good.values() if v is not None]
    agreed_bit: Optional[int] = None
    agreement_fraction = 0.0
    if decided:
        ones = sum(decided)
        agreed_bit = 1 if ones * 2 >= len(decided) else 0
        agreement_fraction = (
            decided.count(agreed_bit) / len(good) if good else 0.0
        )
    max_bits = result.ledger.max_bits_per_processor(
        include=[p for p in range(n) if p not in result.corrupted]
    )
    return AsyncAEBAOutcome(
        n=n,
        degree=degree,
        num_rounds=num_rounds,
        result=result,
        agreement_fraction=agreement_fraction,
        agreed_bit=agreed_bit,
        max_bits_per_processor=max_bits,
    )
