"""Event-driven asynchronous network with an adversarial scheduler.

The asynchronous model drops the synchronous-round assumption of
Section 1.1: there is no bound on message transit time, only *eventual
delivery*.  The adversary controls the delivery order (the asynchronous
analogue of rushing) and may adaptively corrupt processors, subject to
its budget.

Eventual delivery is enforced mechanically: a message may be delayed at
most ``fairness_bound`` delivery steps past the oldest pending message,
after which the network force-delivers it regardless of what the
scheduler asks for.  Every scheduler therefore yields a *fair* execution
and deterministic protocols that are live under fair schedulers
terminate here.

Protocols are written in the message-driven style standard for
asynchronous algorithms: :meth:`AsyncProcess.on_start` emits the initial
messages and :meth:`AsyncProcess.on_message` reacts to each delivery.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set

from ..net.accounting import BitLedger
from ..net.messages import Message
from ..net.tracing import TraceRecorder


class SchedulerError(RuntimeError):
    """Raised on asynchronous-network contract violations."""


@dataclass
class PendingMessage:
    """A message in flight, stamped with the step it was sent."""

    message: Message
    sent_step: int
    seq: int


class AsyncProcess(abc.ABC):
    """Base class for one good processor in the asynchronous model."""

    def __init__(self, pid: int) -> None:
        self.pid = pid

    def on_start(self) -> List[Message]:
        """Messages emitted before any delivery occurs."""
        return []

    @abc.abstractmethod
    def on_message(self, message: Message) -> List[Message]:
        """React to a single delivered message."""

    def output(self) -> Optional[Any]:
        """The processor's decision, or None while undecided."""
        return None

    def snapshot_state(self) -> Dict[str, Any]:
        """State surrendered to the adversary upon corruption."""
        return dict(self.__dict__)


class Scheduler(abc.ABC):
    """Chooses which pending message the network delivers next."""

    @abc.abstractmethod
    def choose(self, pending: Sequence[PendingMessage], step: int) -> int:
        """Index into ``pending`` of the message to deliver."""


class FIFOScheduler(Scheduler):
    """Delivers messages in the order they were sent."""

    def choose(self, pending: Sequence[PendingMessage], step: int) -> int:
        return min(range(len(pending)), key=lambda i: pending[i].seq)


class RandomScheduler(Scheduler):
    """Delivers a uniformly random pending message."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    def choose(self, pending: Sequence[PendingMessage], step: int) -> int:
        return self.rng.randrange(len(pending))


class TargetedDelayScheduler(Scheduler):
    """Starves traffic touching ``victims`` for as long as fairness allows.

    This is the strongest delivery attack available to an asynchronous
    adversary: messages to or from the victim set are only delivered when
    the fairness bound would force them anyway (the network applies the
    force-delivery override), so victims run maximally behind.
    """

    def __init__(self, victims: Iterable[int], seed: int = 0) -> None:
        self.victims = set(victims)
        self.rng = random.Random(seed)

    def _touches_victim(self, pending: PendingMessage) -> bool:
        message = pending.message
        return (
            message.sender in self.victims
            or message.recipient in self.victims
        )

    def choose(self, pending: Sequence[PendingMessage], step: int) -> int:
        preferred = [
            i for i in range(len(pending))
            if not self._touches_victim(pending[i])
        ]
        if preferred:
            return self.rng.choice(preferred)
        return self.rng.randrange(len(pending))


class AsyncAdversary(abc.ABC):
    """Adaptive Byzantine adversary for the asynchronous network.

    Owns the corruption budget and may inject messages from corrupted
    processors after each delivery step.  The view it gets (the message
    just delivered, when the recipient is corrupted) models private
    channels exactly as :class:`repro.net.simulator.AdversaryView` does.
    """

    def __init__(self, n: int, budget: int) -> None:
        if budget >= n:
            raise SchedulerError("corruption budget must be < n")
        self.n = n
        self.budget = budget
        self.corrupted: Set[int] = set()
        self.captured_state: Dict[int, Dict[str, Any]] = {}

    def select_corruptions(self, step: int) -> Set[int]:
        """Processor IDs to take over before this delivery step."""
        return set()

    def record_capture(self, pid: int, state: Dict[str, Any]) -> None:
        self.captured_state[pid] = state

    @abc.abstractmethod
    def on_deliver(
        self, step: int, delivered: Optional[Message]
    ) -> List[Message]:
        """Messages injected from corrupted processors this step.

        ``delivered`` is the message just handed to a *corrupted*
        recipient, or None when the delivery went to a good processor
        (private channels: good-to-good traffic is invisible).
        """

    def remaining_budget(self) -> int:
        """Corruption budget not yet spent."""
        return self.budget - len(self.corrupted)


class NullAsyncAdversary(AsyncAdversary):
    """Corrupts nothing and stays silent."""

    def __init__(self, n: int) -> None:
        super().__init__(n, budget=0)

    def on_deliver(
        self, step: int, delivered: Optional[Message]
    ) -> List[Message]:
        return []


@dataclass
class AsyncRunResult:
    """Outcome of one asynchronous execution."""

    steps: int
    outputs: Dict[int, Any]
    corrupted: Set[int]
    ledger: BitLedger
    quiescent: bool
    undelivered: int

    def good_outputs(self) -> Dict[int, Any]:
        """Outputs of uncorrupted processors."""
        return {
            pid: value
            for pid, value in self.outputs.items()
            if pid not in self.corrupted
        }

    def agreement_value(self) -> Optional[Any]:
        """The unanimous good output, or None if good processors disagree."""
        values = {v for v in self.good_outputs().values() if v is not None}
        if len(values) == 1:
            return values.pop()
        return None

    def decided_fraction(self) -> float:
        """Fraction of good processors that produced an output."""
        good = self.good_outputs()
        if not good:
            return 0.0
        return sum(1 for v in good.values() if v is not None) / len(good)


class AsyncNetwork:
    """Delivery-step-driven execution engine with eventual delivery.

    Args:
        processes: one :class:`AsyncProcess` per processor ID 0..n-1.
        adversary: the adversary (:class:`NullAsyncAdversary` for none).
        scheduler: delivery-order policy; defaults to FIFO.
        fairness_bound: a pending message older (by ``seq``) than every
            other pending message by this many delivery steps is force-
            delivered, overriding the scheduler.  This is what makes
            "eventual delivery" a mechanical guarantee.
        ledger: optional shared ledger for bit accounting.
    """

    def __init__(
        self,
        processes: Sequence[AsyncProcess],
        adversary: AsyncAdversary,
        scheduler: Optional[Scheduler] = None,
        fairness_bound: int = 10_000,
        ledger: Optional[BitLedger] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.processes = list(processes)
        self.n = len(self.processes)
        for pid, process in enumerate(self.processes):
            if process.pid != pid:
                raise SchedulerError(
                    f"process at slot {pid} claims pid {process.pid}"
                )
        if fairness_bound < 1:
            raise SchedulerError("fairness_bound must be >= 1")
        self.adversary = adversary
        self.scheduler = scheduler if scheduler is not None else FIFOScheduler()
        self.fairness_bound = fairness_bound
        self.ledger = ledger if ledger is not None else BitLedger(self.n)
        self.trace = trace
        self._pending: List[PendingMessage] = []
        self._seq = 0
        self._deliveries = 0
        self._started = False
        self._steps = 0
        self._quiescent = False

    # -- execution ---------------------------------------------------------------

    def run(self, max_steps: int) -> AsyncRunResult:
        """Deliver messages until quiescence, decision, or the step cap.

        The run stops early once every good processor has decided (their
        protocols may keep pending messages in flight — asynchronous
        protocols rarely quiesce on their own) or when no messages remain
        pending.

        Implemented entirely through :meth:`begin` / :meth:`advance` /
        :meth:`result` — the same primitives external drivers use (the
        engine's async backend steps many networks breadth-first), so
        both executions are bit-identical by construction.
        """
        self.begin()
        while self._steps < max_steps and self.advance():
            pass
        return self.result()

    def begin(self) -> None:
        """Start every process and collect initial messages (idempotent)."""
        if self._started:
            return
        self._started = True
        self._start_processes()

    @property
    def steps(self) -> int:
        """Delivery steps executed so far."""
        return self._steps

    def advance(self) -> bool:
        """Deliver one message; False once the run is over.

        The run is over when every good processor has decided or no
        messages remain pending (quiescence).  Callers enforce their own
        step cap by checking :attr:`steps` before advancing.
        """
        self.begin()
        if self._all_good_decided():
            return False
        if not self._pending:
            self._quiescent = True
            return False
        self._steps += 1
        self._deliver_one(self._steps)
        return True

    def result(self) -> AsyncRunResult:
        """Freeze the network's current state into an :class:`AsyncRunResult`."""
        outputs = {
            pid: self.processes[pid].output() for pid in range(self.n)
        }
        return AsyncRunResult(
            steps=self._steps,
            outputs=outputs,
            corrupted=set(self.adversary.corrupted),
            ledger=self.ledger,
            quiescent=self._quiescent,
            undelivered=len(self._pending),
        )

    # -- internals ---------------------------------------------------------------

    def _start_processes(self) -> None:
        self._apply_corruptions(step=0)
        for pid in range(self.n):
            if pid in self.adversary.corrupted:
                continue
            self._enqueue_good(self.processes[pid].on_start(), pid)
        self._enqueue_adversarial(self.adversary.on_deliver(0, None))

    def _deliver_one(self, step: int) -> None:
        self._apply_corruptions(step)
        index = self._pick_index(step)
        pending = self._pending.pop(index)
        message = pending.message
        self._deliveries += 1
        if self.trace is not None:
            self.trace.set_round(step)
            self.trace.emit(
                "deliver", message.recipient,
                (message.sender, message.tag),
            )

        delivered_to_adversary: Optional[Message] = None
        if message.recipient in self.adversary.corrupted:
            delivered_to_adversary = message
        else:
            replies = self.processes[message.recipient].on_message(message)
            self._enqueue_good(replies, message.recipient)
        self._enqueue_adversarial(
            self.adversary.on_deliver(step, delivered_to_adversary)
        )
        self.ledger.tick_round()

    def _pick_index(self, step: int) -> int:
        oldest = min(range(len(self._pending)), key=lambda i: self._pending[i].seq)
        age = self._deliveries - self._pending[oldest].sent_step
        if age > self.fairness_bound:
            return oldest
        choice = self.scheduler.choose(self._pending, step)
        if not 0 <= choice < len(self._pending):
            raise SchedulerError(f"scheduler chose invalid index {choice}")
        return choice

    def _enqueue_good(self, messages: Iterable[Message], sender: int) -> None:
        for message in messages:
            if message.sender != sender:
                raise SchedulerError(
                    f"process {sender} forged sender {message.sender}"
                )
            if not 0 <= message.recipient < self.n:
                raise SchedulerError(
                    f"message to unknown recipient {message.recipient}"
                )
            self.ledger.record(message)
            self._push(message)

    def _enqueue_adversarial(self, messages: Iterable[Message]) -> None:
        for message in messages:
            if message.sender not in self.adversary.corrupted:
                raise SchedulerError(
                    "adversary may only send from corrupted processors"
                )
            if not 0 <= message.recipient < self.n:
                raise SchedulerError(
                    f"message to unknown recipient {message.recipient}"
                )
            self._push(message)

    def _push(self, message: Message) -> None:
        self._pending.append(
            PendingMessage(
                message=message, sent_step=self._deliveries, seq=self._seq
            )
        )
        self._seq += 1

    def _apply_corruptions(self, step: int) -> None:
        requested = self.adversary.select_corruptions(step)
        for pid in sorted(requested):
            if pid in self.adversary.corrupted:
                continue
            if self.adversary.remaining_budget() <= 0:
                break
            if not 0 <= pid < self.n:
                raise SchedulerError(f"cannot corrupt unknown pid {pid}")
            self.adversary.corrupted.add(pid)
            self.adversary.record_capture(
                pid, self.processes[pid].snapshot_state()
            )
            if self.trace is not None:
                self.trace.emit("corrupt", pid)

    def _all_good_decided(self) -> bool:
        return all(
            self.processes[pid].output() is not None
            for pid in range(self.n)
            if pid not in self.adversary.corrupted
        )
