"""Bracha's reliable broadcast (1987), tolerating t < n/3.

Reliable broadcast is the foundational asynchronous primitive: a
designated dealer broadcasts a value such that (1) if the dealer is good,
every good processor eventually accepts the dealer's value, and (2) even
if the dealer is Byzantine, no two good processors accept different
values — a corrupt dealer can only cause nobody to accept.

The protocol is the classic three-phase echo pattern:

* the dealer sends ``initial(v)`` to everyone;
* on ``initial(v)`` from the dealer, send ``echo(v)`` to everyone;
* on ``n - t`` matching echoes *or* ``t + 1`` matching readys, send
  ``ready(v)`` to everyone (once);
* on ``2t + 1`` matching readys, accept ``v``.

Bit cost is Theta(n^2) messages per broadcast — exactly the quadratic
floor the King-Saia paper escapes in the synchronous model, and a key
reason its asynchronous adaptation is open (benchmark E15).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set

from ..net.messages import Message
from .scheduler import (
    AsyncAdversary,
    AsyncNetwork,
    AsyncProcess,
    AsyncRunResult,
    NullAsyncAdversary,
    Scheduler,
)


def bracha_fault_bound(n: int) -> int:
    """Maximum tolerated faults: t < n/3."""
    return max(0, (n - 1) // 3)


class BrachaBroadcaster(AsyncProcess):
    """One good processor running Bracha reliable broadcast.

    Args:
        pid: this processor's ID.
        n: network size.
        dealer: the broadcasting processor's ID.
        value: the dealer's value (ignored unless ``pid == dealer``).
    """

    def __init__(
        self, pid: int, n: int, dealer: int, value: Optional[int] = None
    ) -> None:
        super().__init__(pid)
        self.n = n
        self.dealer = dealer
        self.value = value
        self.fault_bound = bracha_fault_bound(n)
        self._echoed = False
        self._readied = False
        self._accepted: Optional[int] = None
        self._echoes: Dict[int, Set[int]] = defaultdict(set)
        self._readys: Dict[int, Set[int]] = defaultdict(set)

    # -- protocol ----------------------------------------------------------------

    def on_start(self) -> List[Message]:
        if self.pid != self.dealer:
            return []
        if self.value is None:
            raise ValueError("dealer must be given a value")
        out = self._to_all("initial", self.value)
        # No loopback deliveries: the dealer echoes its own initial here.
        out.extend(self._maybe_echo(self.value))
        return out

    def on_message(self, message: Message) -> List[Message]:
        if not isinstance(message.payload, int):
            return []
        value = message.payload
        if message.tag == "initial" and message.sender == self.dealer:
            return self._maybe_echo(value)
        if message.tag == "echo":
            self._echoes[value].add(message.sender)
            return self._maybe_ready(value)
        if message.tag == "ready":
            self._readys[value].add(message.sender)
            out = self._maybe_ready(value)
            self._maybe_accept(value)
            return out
        return []

    def output(self) -> Optional[int]:
        return self._accepted

    # -- helpers -----------------------------------------------------------------

    def _maybe_echo(self, value: int) -> List[Message]:
        if self._echoed:
            return []
        self._echoed = True
        out = self._to_all("echo", value)
        # The sender counts its own echo/ready; loopbacks are not sent.
        self._echoes[value].add(self.pid)
        return out

    def _maybe_ready(self, value: int) -> List[Message]:
        if self._readied:
            return []
        enough_echoes = len(self._echoes[value]) >= self.n - self.fault_bound
        enough_readys = len(self._readys[value]) >= self.fault_bound + 1
        if not (enough_echoes or enough_readys):
            return []
        self._readied = True
        self._readys[value].add(self.pid)
        out = self._to_all("ready", value)
        self._maybe_accept(value)
        return out

    def _maybe_accept(self, value: int) -> None:
        if self._accepted is not None:
            return
        if len(self._readys[value]) >= 2 * self.fault_bound + 1:
            self._accepted = value

    def _to_all(self, tag: str, value: int) -> List[Message]:
        return [
            Message(self.pid, other, tag, value)
            for other in range(self.n)
            if other != self.pid
        ]


def run_bracha_broadcast(
    n: int,
    dealer: int,
    value: int,
    adversary: Optional[AsyncAdversary] = None,
    scheduler: Optional[Scheduler] = None,
    max_steps: Optional[int] = None,
) -> AsyncRunResult:
    """Run one reliable broadcast to completion or the step cap."""
    if not 0 <= dealer < n:
        raise ValueError("dealer must be a valid processor ID")
    if adversary is None:
        adversary = NullAsyncAdversary(n)
    processes = [
        BrachaBroadcaster(pid, n, dealer, value if pid == dealer else None)
        for pid in range(n)
    ]
    network = AsyncNetwork(processes, adversary, scheduler=scheduler)
    cap = max_steps if max_steps is not None else 10 * n * n
    return network.run(max_steps=cap)
