"""Command-line interface: ``python -m repro <command>``.

Runs the library's headline experiments from a shell without writing
Python.  Subcommands:

* ``info``      — derived protocol parameters for a network size.
* ``run-ba``    — one everywhere-BA execution (Theorem 1 pipeline).
* ``costmodel`` — modelled bits/processor vs the quadratic baselines.
* ``attack``    — the lower-bound demonstrations (E16).
* ``run-async`` — the asynchronous comparison (E15).
* ``elect-leader`` — an adaptive-safe leader rotation (E21).
* ``commit-log``   — a replicated log off one amortized tournament (E22).
* ``report``    — a compact battery written as Markdown, or — given a
  ``--telemetry`` artifact path — a plain-text rendering of that run's
  telemetry report (lanes, latency percentiles, protocol bits).
* ``bench``     — the perf-gate suites (reconstruction kernels +
  simulator round loop) as machine-readable JSON; ``--baseline``
  soft-gates speedups against a committed ``BENCH_core.json``.
* ``run-experiment`` — Monte-Carlo trials of a registered scenario
  through the :mod:`repro.engine` backends (serial / process pool /
  batched / async / hybrid / distributed).  ``--list`` prints every
  scenario's declared parameter schema; ``--param`` values are
  validated against it (cross-field constraints included); ``--smoke``
  runs each scenario once as a registration guard; ``--backend
  distributed --hosts host:port,...`` dispatches the sweep to
  ``repro worker serve`` processes on other hosts; ``--telemetry
  out.json`` saves the run's telemetry report (per-lane metrics,
  latency percentiles, retry counts, per-trial bit stats) for
  ``repro report out.json``; ``--progress`` draws a live stderr
  progress line (tty only).
* ``worker serve`` — a distributed-dispatch worker: listens on TCP,
  executes engine work units (scenarios rebuilt by name from its own
  registry), returns versioned JSON result envelopes.  With ``--fleet
  <root>`` it also registers in the fleet's worker roster and
  heartbeats until shut down (SIGTERM drains gracefully: the in-flight
  unit finishes and flushes before the socket closes).
* ``queue submit|status|cancel|run`` — the persistent job queue of a
  fleet root directory: submit wire-format experiment jobs, inspect
  and cancel them, and run the crash-resumable coordinator that
  drains the queue against the registered workers.
* ``fleet``    — the live fleet monitor: worker health, queue depth,
  per-lane throughput and usage alerts from merged telemetry reports.

Every command prints a compact plain-text report and exits non-zero on a
protocol failure, so the CLI doubles as a smoke test in CI.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence


def _cmd_info(args: argparse.Namespace) -> int:
    from .core.parameters import ProtocolParameters

    params = ProtocolParameters.simulation(args.n)
    print(f"Protocol parameters for n = {args.n} (simulation preset)")
    for name, value in sorted(vars(params).items()):
        print(f"  {name:>24} : {value}")
    return 0


def _cmd_run_ba(args: argparse.Namespace) -> int:
    from .core.byzantine_agreement import run_everywhere_ba
    from .adversary.adaptive import TournamentAdversary

    n = args.n
    inputs = [1 if p % 3 else 0 for p in range(n)]
    if args.input_bit is not None:
        inputs = [args.input_bit] * n

    adversary = None
    if args.corrupt > 0:
        budget = max(1, int(args.corrupt * n))
        adversary = TournamentAdversary(n, budget=budget, seed=args.seed)

    result = run_everywhere_ba(
        n, inputs, tournament_adversary=adversary, seed=args.seed
    )
    good = [p for p in range(n) if p not in result.corrupted]
    decided = [result.ae2e_result.decided.get(p) for p in good]
    agreeing = sum(1 for v in decided if v == result.bit)

    print(f"Everywhere BA, n = {n}, corruption = {args.corrupt:.0%}, "
          f"seed = {args.seed}")
    print(f"  agreed bit         : {result.bit}")
    print(f"  validity           : {result.is_valid()}")
    print(f"  good agreeing      : {agreeing}/{len(good)}")
    print(f"  total rounds       : {result.total_rounds()}")
    print(f"  max bits/processor : {result.max_bits_per_processor():,}")
    if not result.success():
        print("  FAILURE: some good processor disagrees")
        return 1
    return 0


def _cmd_costmodel(args: argparse.Namespace) -> int:
    from .analysis.costmodel import (
        everywhere_ba_bits_simulation,
        phase_king_bits_per_processor,
        rabin_bits_per_processor,
    )

    print("Modelled bits per processor (simulation-preset constants)")
    print(f"{'n':>12}  {'this paper':>14}  {'Rabin':>14}  "
          f"{'Phase King':>16}  {'advantage':>10}")
    ours_points, rabin_points, pk_points = [], [], []
    n = args.start
    while n <= args.stop:
        ours = everywhere_ba_bits_simulation(n)
        rabin = rabin_bits_per_processor(n)
        pk = phase_king_bits_per_processor(n)
        ours_points.append((n, ours))
        rabin_points.append((n, rabin))
        pk_points.append((n, pk))
        print(f"{n:>12,}  {ours:>14,.0f}  {rabin:>14,.0f}  "
              f"{pk:>16,.0f}  {pk / ours:>9.1f}x")
        n *= args.factor
    if args.plot and len(ours_points) >= 2:
        from .analysis.asciiplot import Series, fitted_exponent, render_chart

        print()
        print(
            render_chart(
                [
                    Series("this paper", ours_points, marker="*"),
                    Series("Rabin", rabin_points, marker="r"),
                    Series("Phase King", pk_points, marker="#"),
                ],
                title="bits per processor vs n (log-log)",
                x_label="n", y_label="bits",
            )
        )
        print(
            f"\nfitted exponents: this paper "
            f"{fitted_exponent(ours_points):.2f}, "
            f"Rabin {fitted_exponent(rabin_points):.2f}, "
            f"Phase King {fitted_exponent(pk_points):.2f} "
            f"(paper predicts ~0.5 / 1 / 2)"
        )
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from .lowerbounds import (
        guessing_attack_demo,
        isolation_attack_demo,
        isolation_threshold,
    )

    if args.kind == "guessing":
        outcome = guessing_attack_demo(n=args.n, seed=args.seed)
        print(f"Coin-guessing attack on sampled-majority BA, n = {args.n}")
        print(f"  messages          : {outcome.total_messages} "
              f"(n^2 = {args.n ** 2})")
        print(f"  oblivious flipped : {outcome.oblivious_wrong}")
        print(f"  guessing flipped  : "
              f"{'victim' if outcome.attack_succeeded else 'nobody'}")
        return 0
    budget, rounds = 12, 3
    cliff = isolation_threshold(budget, rounds)
    print(f"Isolation attack, n = {args.n}, budget {budget}, "
          f"{rounds} rounds (cliff: degree {cliff})")
    for degree in (max(1, cliff - 2), cliff, cliff + 2, 3 * cliff):
        outcome = isolation_attack_demo(
            n=args.n, listen_degree=degree, gossip_rounds=rounds,
            budget=budget, seed=args.seed,
        )
        status = "ISOLATED" if outcome.victim_isolated else "safe"
        print(f"  degree {degree:>3}: victim {status}")
    return 0


def _cmd_run_async(args: argparse.Namespace) -> int:
    from .asynchrony import (
        RandomScheduler,
        SeededCoinOracle,
        run_async_benor,
        run_common_coin_ba,
    )

    n = args.n
    inputs = [i % 2 for i in range(n)]
    benor = run_async_benor(
        n, inputs, seed=args.seed, scheduler=RandomScheduler(args.seed)
    )
    coin = run_common_coin_ba(
        n, inputs, oracle=SeededCoinOracle(args.seed),
        scheduler=RandomScheduler(args.seed),
    )
    print(f"Asynchronous BA, n = {n}, split inputs")
    print(f"  Ben-Or (local coins) : value {benor.agreement_value()}, "
          f"{benor.steps} deliveries")
    print(f"  common coin          : value {coin.agreement_value()}, "
          f"{coin.steps} deliveries")
    ok = (
        benor.agreement_value() in (0, 1)
        and coin.agreement_value() in (0, 1)
    )
    return 0 if ok else 1


def _cmd_elect_leader(args: argparse.Namespace) -> int:
    from .adversary.adaptive import TournamentAdversary
    from .core.leader_election import run_leader_election

    n = args.n
    adversary = None
    if args.corrupt > 0:
        adversary = TournamentAdversary(
            n, budget=max(1, int(args.corrupt * n)), seed=args.seed
        )
    schedule = run_leader_election(
        n, schedule_length=args.rounds, adversary=adversary, seed=args.seed
    )
    print(f"Leader rotation, n = {n}, corruption = {args.corrupt:.0%}, "
          f"{args.rounds} draws, seed = {args.seed}")
    for draw in schedule.draws:
        status = "good" if draw.leader_is_good else "CORRUPT"
        print(f"  word {draw.word_index:>3} -> leader {draw.leader:>4}  "
              f"({status}, agreement {draw.agreement_fraction:.0%})")
    print(f"  good fraction      : {schedule.good_fraction():.0%}")
    print(f"  weakest agreement  : {schedule.min_agreement():.0%}")
    return 0 if schedule.min_agreement() > 0.5 else 1


def _cmd_commit_log(args: argparse.Namespace) -> int:
    from .adversary.adaptive import TournamentAdversary
    from .core.repeated_agreement import run_replicated_log

    n = args.n
    # Alternate unanimous and contested slots, a representative mix.
    slots = []
    for i in range(args.slots):
        if i % 3 == 2:
            slots.append([(i + p) % 2 for p in range(n)])
        else:
            slots.append([i % 2] * n)

    adversary = None
    if args.corrupt > 0:
        adversary = TournamentAdversary(
            n, budget=max(1, int(args.corrupt * n)), seed=args.seed
        )
    result = run_replicated_log(
        n, slots, tournament_adversary=adversary, seed=args.seed
    )
    print(f"Replicated log, n = {n}, {args.slots} slots, "
          f"corruption = {args.corrupt:.0%}, seed = {args.seed}")
    for slot in result.slots:
        print(f"  slot {slot.index}: bit {slot.bit}  "
              f"(everywhere: {slot.success(result.corrupted)})")
    print(f"  all decided everywhere : {result.success()}")
    print(f"  all valid              : {result.all_valid()}")
    print(f"  tournament bits/proc   : {result.tournament_max_bits():,}")
    print(f"  amortized bits/slot    : "
          f"{result.amortized_max_bits_per_slot():,.0f}")
    return 0 if result.success() and result.all_valid() else 1


def _cmd_report(args: argparse.Namespace) -> int:
    """Run a compact experiment battery and write a Markdown report.

    Given a telemetry artifact (``repro report out.json``), render that
    instead: the saved :class:`~repro.engine.telemetry.RunReport` as
    plain-text tables — run summary, per-lane metrics, protocol bridge.
    """
    if args.telemetry is not None:
        from .engine.spec import WireFormatError
        from .engine.telemetry import load_report

        try:
            report = load_report(args.telemetry)
        except (OSError, ValueError, WireFormatError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(report.render())
        return 0

    from .analysis.costmodel import (
        everywhere_ba_bits_simulation,
        phase_king_bits_per_processor,
        rabin_bits_per_processor,
    )
    from .analysis.reporting import Table, tables_to_markdown
    from .core.byzantine_agreement import run_everywhere_ba
    from .adversary.adaptive import TournamentAdversary
    from .lowerbounds import guessing_attack_demo

    tables = []

    ba = Table(
        title=f"Everywhere BA at n = {args.n}",
        headers=["corruption", "agreed bit", "validity", "rounds",
                 "max bits/processor"],
        note="One execution per row; Theorem 1 pipeline.",
    )
    for fraction in (0.0, 0.1):
        adversary = None
        if fraction:
            adversary = TournamentAdversary(
                args.n, budget=max(1, int(fraction * args.n)),
                seed=args.seed,
            )
        result = run_everywhere_ba(
            args.n,
            [1 if p % 3 else 0 for p in range(args.n)],
            tournament_adversary=adversary,
            seed=args.seed,
        )
        ba.add_row(
            f"{fraction:.0%}", result.bit, result.is_valid(),
            result.total_rounds(),
            f"{result.max_bits_per_processor():,}",
        )
    tables.append(ba)

    model = Table(
        title="Modelled bits/processor vs baselines",
        headers=["n", "this paper", "Rabin", "Phase King"],
        note="Simulation-preset cost model (cross-validated in E10).",
    )
    n = 1 << 10
    while n <= 1 << 20:
        model.add_row(
            f"{n:,}",
            f"{everywhere_ba_bits_simulation(n):,.0f}",
            f"{rabin_bits_per_processor(n):,.0f}",
            f"{phase_king_bits_per_processor(n):,.0f}",
        )
        n <<= 4
    tables.append(model)

    attack = Table(
        title="Dolev-Reischuk corollary (coin-guessing attack)",
        headers=["n", "messages", "oblivious flipped", "guessing flipped"],
        note="Below n^2 messages, a correct coin guess defeats the protocol.",
    )
    outcome = guessing_attack_demo(n=90, seed=args.seed)
    attack.add_row(
        90, outcome.total_messages, outcome.oblivious_wrong,
        "victim" if outcome.attack_succeeded else "nobody",
    )
    tables.append(attack)

    body = (
        "# repro experiment report\n\n"
        "Generated by `repro report` — see DESIGN.md for the full "
        "E1-E22 index and `pytest benchmarks/ --benchmark-only` for "
        "the complete battery.\n\n"
        + tables_to_markdown(tables)
    )
    if args.out == "-":
        print(body)
    else:
        with open(args.out, "w") as f:
            f.write(body)
        print(f"wrote {args.out}")
    return 0


def _parse_params(pairs: List[str]) -> dict:
    """``key=value`` CLI parameters, kept raw for schema coercion."""
    params = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        key, raw = pair.split("=", 1)
        params[key] = raw
    return params


def _parse_n_list(raw: object) -> List[int]:
    """``-n 27`` or ``-n 8,16,32`` as a list of network sizes."""
    sizes = []
    for token in str(raw).split(","):
        token = token.strip()
        if not token:
            continue
        try:
            sizes.append(int(token))
        except ValueError:
            raise SystemExit(
                f"-n expects an integer or a comma-separated list of "
                f"integers, got {raw!r}"
            )
    if not sizes:
        raise SystemExit(f"-n expects at least one network size, got {raw!r}")
    return sizes


def _coerce_undeclared(raw: str) -> object:
    """Legacy numeric guess for scenarios without a declared schema."""
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    return raw


def _scenario_flags(runner) -> str:
    flags = ""
    if runner.batchable:
        flags += " [batchable]"
    if runner.asynchronous:
        flags += " [async]"
    return flags


def _cmd_list_scenarios() -> int:
    """``run-experiment --list``: the schema-driven scenario catalogue."""
    from .engine import get_runner, runner_names

    print("Registered scenarios (run with --name <scenario>):")
    for name in runner_names():
        runner = get_runner(name)
        print(f"\n  {name}{_scenario_flags(runner)} : {runner.description}")
        if runner.params is None:
            print("      (no declared schema: parameters pass through)")
            continue
        for param in runner.params:
            note = f"  {param.help}" if param.help else ""
            if param.choices is not None:
                note += (
                    f"  (one of: "
                    f"{', '.join(str(c) for c in param.choices)})"
                )
            print(f"      --param {param.signature():<28}{note}")
        if runner.metrics:
            print(f"      metrics: {', '.join(runner.metrics)}")
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    """``run-experiment --smoke``: every declared scenario, one tiny run.

    CI's registration guard — a scenario that fails to build, validate,
    or execute two cheap trials fails the whole command.
    """
    from .engine import (
        Engine,
        ExperimentSpec,
        get_backend,
        get_runner,
        scenario_names,
    )

    failures = []
    # One backend instance per backend name, reused across the whole
    # sweep — the distributed backend in particular keeps its worker
    # connections alive instead of re-dialing every host per scenario.
    backends = {}

    def backend_for(name: str):
        if name not in backends:
            backends[name] = get_backend(
                name,
                workers=args.workers,
                wave_size=args.wave_size,
                hosts=_parse_hosts_arg(args),
                lane_depth=args.lane_depth,
            )
        return backends[name]

    try:
        for name in scenario_names(declared_only=True):
            runner = get_runner(name)
            spec = ExperimentSpec(
                runner=name,
                n=runner.smoke_n,
                trials=2,
                seed=args.seed,
                params=dict(runner.smoke_params),
            )
            backend = "serial"
            if args.backend != "serial":
                # Honour a backend flip where the scenario supports it.
                # Hybrid (unlike batch/async) has no serial fallback of
                # its own, so the capability check here is what keeps
                # the smoke sweep total.  Distributed runs every
                # scenario (waves for async, chunks otherwise).
                if args.backend == "batch" and runner.batchable:
                    backend = "batch"
                elif args.backend == "async" and runner.asynchronous:
                    backend = "async"
                elif args.backend == "hybrid" and runner.supports("hybrid"):
                    backend = "hybrid"
                elif args.backend in ("process", "distributed"):
                    backend = args.backend
            result = Engine(backend_for(backend)).run(spec)
            status = "ok" if not result.failure_count else "FAILED"
            print(
                f"  {name:>20} [{backend}] n={spec.n}: {status} "
                f"({result.elapsed_seconds:.2f}s)"
            )
            if result.failure_count:
                failures.append(name)
                for trial in result.failures:
                    detail = trial.failure or "protocol-level failure"
                    print(f"      trial {trial.trial_index}: {detail}")
    finally:
        for backend_obj in backends.values():
            backend_obj.close()
    if failures:
        print(f"smoke failures: {', '.join(failures)}", file=sys.stderr)
        return 1
    print(f"all {len(scenario_names(declared_only=True))} scenarios ok")
    return 0


def _parse_hosts_arg(args: argparse.Namespace) -> Optional[List[str]]:
    """``--hosts a:1,b:2`` as a list (None when the flag is absent)."""
    raw = getattr(args, "hosts", None)
    if not raw:
        return None
    return [entry for entry in raw.split(",") if entry.strip()]


def _cmd_run_experiment(args: argparse.Namespace) -> int:
    from .engine import (
        Engine,
        EngineError,
        ExperimentSpec,
        get_backend,
        get_runner,
    )

    if args.list:
        return _cmd_list_scenarios()

    try:
        if args.smoke:
            return _cmd_smoke(args)
        sizes = _parse_n_list(args.n)
        runner = get_runner(args.name)
        raw = _parse_params(args.param)
        # Schema-declared scenarios coerce, reject unknown keys, and
        # apply cross-field checks against each -n; ad-hoc runners fall
        # back to the legacy numeric guess.
        specs = []
        for n in sizes:
            if runner.params is not None:
                params = runner.validate(raw, n=n)
            else:
                params = {k: _coerce_undeclared(v) for k, v in raw.items()}
            specs.append(
                ExperimentSpec(
                    runner=args.name,
                    n=n,
                    trials=args.trials,
                    seed=args.seed,
                    params=params,
                )
            )
        # Cost-aware sizing defaults on for grids (it only changes
        # anything when every grid point has a registered cost model);
        # a single n has nothing to balance.
        cost_aware = (
            args.cost_aware if args.cost_aware is not None else len(specs) > 1
        )
        with get_backend(
            args.backend,
            workers=args.workers,
            wave_size=args.wave_size,
            hosts=_parse_hosts_arg(args),
            lane_depth=args.lane_depth,
        ) as backend:
            if args.progress:
                from .engine.telemetry import SweepMonitor

                backend.monitor = SweepMonitor()
            engine = Engine(backend)
            if len(specs) == 1:
                results = [engine.run(specs[0])]
            else:
                results = engine.run_grid(specs, cost_aware=cost_aware)
    except EngineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.telemetry is not None:
        from .engine.telemetry import write_report

        if results[0].report is None:
            print("error: backend produced no telemetry report",
                  file=sys.stderr)
            return 2
        # Grid runs share one fused-sweep report; one file covers all.
        write_report(results[0].report, args.telemetry)
        print(f"wrote telemetry to {args.telemetry}")
    failed = 0
    for result in results:
        print(result.to_table().to_text())
        if result.failure_count:
            for trial in result.failures:
                detail = trial.failure or "protocol-level failure"
                print(f"  trial {trial.trial_index} FAILED: {detail}")
            failed += result.failure_count
    return 1 if failed else 0


def _cmd_cost(args: argparse.Namespace) -> int:
    """``repro cost``: predicted per-trial cost of one scenario."""
    from .analysis.costmodel import cost_model_names, get_cost_model
    from .engine import EngineError, get_runner

    try:
        runner = get_runner(args.scenario)
        model = get_cost_model(args.scenario)
        if model is None:
            known = ", ".join(cost_model_names())
            detail = (
                f"models exist for: {known}"
                if known
                else "no models are registered (is sympy installed?)"
            )
            raise EngineError(
                f"no cost model for scenario {args.scenario!r}; {detail}. "
                "Sweeps of this scenario fall back to uniform dispatch "
                "geometry."
            )
        sizes = _parse_n_list(args.n)
        raw = _parse_params(args.param)
        rows = []
        for n in sizes:
            if runner.params is not None:
                params = runner.validate(raw, n=n)
            else:
                params = {k: _coerce_undeclared(v) for k, v in raw.items()}
            rows.append((n, model.predict(n, params)))
    except EngineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"Predicted per-trial cost: {args.scenario}")
    sweep_header = f"sweep cost (x{args.trials})"
    print(f"{'n':>10}  {'bits/trial':>16}  {'work/trial':>14}  "
          f"{sweep_header:>20}")
    for n, predicted in rows:
        print(
            f"{n:>10,}  {predicted.bits:>16,.0f}  "
            f"{predicted.work:>14,.1f}  "
            f"{predicted.cost * args.trials:>20,.1f}"
        )
    declared = [p.name for p in (runner.params or ())]
    ignored = model.ignored_params(declared)
    if ignored:
        print(
            "\nnote: the model does not price these declared params "
            f"(they do not change the prediction): {', '.join(ignored)}"
        )
    return 0


def _cmd_worker_serve(args: argparse.Namespace) -> int:
    """``repro worker serve``: run a distributed-dispatch worker."""
    import signal

    from .engine.distributed import DEFAULT_PORT, WorkerServer
    from .engine.spec import CODEC_JSON, SUPPORTED_CODECS
    from .engine.wire import DEFAULT_MAX_FRAME_BYTES

    port = args.port if args.port is not None else DEFAULT_PORT
    binary = args.codec != "json"
    max_frame = (
        args.max_frame_bytes
        if args.max_frame_bytes is not None
        else DEFAULT_MAX_FRAME_BYTES
    )
    server = WorkerServer(
        host=args.host,
        port=port,
        binary=binary,
        max_frame_bytes=max_frame,
    )

    # SIGTERM unwinds through serve_forever so the finally block runs:
    # close() drains the in-flight unit and flushes its response before
    # the listener comes down — fleet shutdowns never cut an exchange
    # mid-envelope.
    def _terminate(signum, frame):
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _terminate)

    heartbeat = None
    if args.fleet is not None:
        from .fleet import FleetRegistry, HeartbeatThread

        heartbeat = HeartbeatThread(
            FleetRegistry(args.fleet),
            host=args.host,
            port=server.port,
            capacity=args.capacity,
            worker_id=args.worker_id,
            interval=args.heartbeat_interval,
            units_served=lambda: server.units_served,
            codecs=tuple(SUPPORTED_CODECS) if binary else (CODEC_JSON,),
        ).start()
        print(
            f"registered as {heartbeat.info.worker_id} "
            f"(capacity {args.capacity}) in {args.fleet}",
            flush=True,
        )
    # Flush immediately: launchers (CI, scripts) block on this line to
    # know the port is bound before dispatching to it.
    print(
        f"repro worker serving on {server.address} "
        f"[{args.codec} codec]",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        if heartbeat is not None:
            heartbeat.stop()
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    if args.worker_command == "serve":
        return _cmd_worker_serve(args)
    raise SystemExit(f"unknown worker command {args.worker_command!r}")


def _cmd_queue_submit(args: argparse.Namespace) -> int:
    """``repro queue submit``: enqueue one experiment job."""
    from .engine import EngineError, ExperimentSpec, get_runner
    from .fleet import JobQueue

    try:
        runner = get_runner(args.name)
        raw = _parse_params(args.param)
        if runner.params is not None:
            params = runner.validate(raw, n=args.n)
        else:
            params = {k: _coerce_undeclared(v) for k, v in raw.items()}
        spec = ExperimentSpec(
            runner=args.name,
            n=args.n,
            trials=args.trials,
            seed=args.seed,
            params=params,
        )
        job = JobQueue(args.root).submit(
            spec, unit_size=args.unit_size, max_live=args.max_live
        )
    except EngineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"submitted {job.describe()}")
    return 0


def _cmd_queue_status(args: argparse.Namespace) -> int:
    """``repro queue status``: the queue, or one job in detail."""
    from .engine import EngineError
    from .fleet import JobQueue

    queue = JobQueue(args.root)
    try:
        if args.job is not None:
            job = queue.get(args.job)
            print(job.describe())
            if job.error:
                print(f"  error: {job.error}")
            results = queue.load_results(job.job_id)
            if results is not None:
                failures = sum(1 for r in results if not r.ok)
                print(
                    f"  results: {len(results)} trial(s), "
                    f"{failures} failure(s) "
                    f"({queue.results_path(job.job_id)})"
                )
            return 0
        jobs = queue.jobs()
        depth = queue.depth()
        print(
            "queue "
            + "  ".join(f"{state}:{n}" for state, n in depth.items())
        )
        for job in jobs:
            print(f"  {job.describe()}")
    except EngineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_queue_cancel(args: argparse.Namespace) -> int:
    """``repro queue cancel``: cancel a pending or running job."""
    from .engine import EngineError
    from .fleet import JobQueue

    try:
        job = JobQueue(args.root).cancel(args.job)
    except EngineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"cancelled {job.job_id}")
    return 0


def _cmd_queue_run(args: argparse.Namespace) -> int:
    """``repro queue run``: drain the queue as the fleet coordinator."""
    import signal

    from .engine import EngineError
    from .fleet import Coordinator, CoordinatorInterrupted

    coordinator = Coordinator(
        args.root,
        max_jobs=args.max_jobs,
        heartbeat_timeout=args.heartbeat_timeout,
        crash_after_units=args.crash_after_units,
        lane_depth=args.lane_depth,
    )

    # First Ctrl-C: graceful stop — job threads unwind at their next
    # collect point, interrupted jobs stay ``running`` for resume, and
    # the coordinator lock is released.  The handler then restores the
    # previous disposition so a *second* Ctrl-C interrupts hard (a
    # coordinator stuck on a dead socket must still be killable).
    previous = signal.getsignal(signal.SIGINT)

    def _on_sigint(signum, frame):
        coordinator.request_stop()
        signal.signal(signal.SIGINT, previous)
        print(
            "\ninterrupt: stopping after in-flight units "
            "(Ctrl-C again to force)",
            file=sys.stderr,
        )

    try:
        signal.signal(signal.SIGINT, _on_sigint)
    except ValueError:
        previous = None  # not the main thread (tests); run unguarded
    try:
        if args.watch:
            coordinator.run_forever(
                poll_interval=args.poll_interval,
                min_workers=args.min_workers,
                worker_timeout=args.worker_timeout,
            )
            return 0
        finished = coordinator.run_once(
            min_workers=args.min_workers,
            worker_timeout=args.worker_timeout,
        )
    except (KeyboardInterrupt, CoordinatorInterrupted):
        print(
            "interrupted: incomplete jobs remain 'running'; "
            "rerun 'repro queue run' to resume",
            file=sys.stderr,
        )
        return 130
    except EngineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if previous is not None:
            try:
                signal.signal(signal.SIGINT, previous)
            except ValueError:
                pass
    if not finished:
        print("queue is empty")
        return 0
    failed = 0
    for job in finished:
        print(f"  {job.describe()}")
        if job.state == "failed":
            failed += 1
    return 1 if failed else 0


def _cmd_queue(args: argparse.Namespace) -> int:
    handlers = {
        "submit": _cmd_queue_submit,
        "status": _cmd_queue_status,
        "cancel": _cmd_queue_cancel,
        "run": _cmd_queue_run,
    }
    handler = handlers.get(args.queue_command)
    if handler is None:
        raise SystemExit(f"unknown queue command {args.queue_command!r}")
    return handler(args)


def _cmd_fleet(args: argparse.Namespace) -> int:
    """``repro fleet``: render (or watch) a fleet root's health."""
    from .fleet import FleetMonitor

    monitor = FleetMonitor(
        args.root,
        heartbeat_timeout=args.heartbeat_timeout,
        usage_alert=args.usage_alert,
        interval=args.interval,
    )
    # One snapshot for --once or piped output; a redraw loop on a tty.
    if args.once or not sys.stdout.isatty():
        print(monitor.render_once())
        return 0
    try:
        monitor.watch()
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench``: run the perf-gate suites, emit/gate JSON."""
    from .analysis.perf_gate import main as perf_gate_main

    forwarded: List[str] = []
    if args.quick:
        forwarded.append("--quick")
    if args.out is not None:
        forwarded.extend(["--out", args.out])
    if args.baseline is not None:
        forwarded.extend(["--baseline", args.baseline])
    forwarded.extend(["--max-regression", str(args.max_regression)])
    return perf_gate_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser with every subcommand registered."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of King & Saia (PODC 2010): scalable Byzantine "
            "agreement with an adaptive adversary."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="derived protocol parameters")
    p.add_argument("-n", type=int, default=81, help="network size")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("run-ba", help="run everywhere Byzantine agreement")
    p.add_argument("-n", type=int, default=27, help="network size")
    p.add_argument("--corrupt", type=float, default=0.0,
                   help="adaptive corruption fraction (e.g. 0.1)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--input-bit", type=int, choices=(0, 1), default=None,
                   help="give every processor this input bit")
    p.set_defaults(func=_cmd_run_ba)

    p = sub.add_parser("costmodel",
                       help="modelled bits/processor vs baselines")
    p.add_argument("--start", type=int, default=1 << 10)
    p.add_argument("--stop", type=int, default=1 << 20)
    p.add_argument("--factor", type=int, default=4)
    p.add_argument("--plot", action="store_true",
                   help="render a log-log chart of the curves")
    p.set_defaults(func=_cmd_costmodel)

    p = sub.add_parser("attack", help="run a lower-bound attack demo")
    p.add_argument("kind", choices=("guessing", "isolation"))
    p.add_argument("-n", type=int, default=90)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_attack)

    p = sub.add_parser("run-async", help="asynchronous BA comparison")
    p.add_argument("-n", type=int, default=6)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_run_async)

    p = sub.add_parser(
        "elect-leader",
        help="draw a leader rotation from the global coin subsequence",
    )
    p.add_argument("-n", type=int, default=27, help="network size")
    p.add_argument("--rounds", type=int, default=4,
                   help="number of leaders to draw")
    p.add_argument("--corrupt", type=float, default=0.0,
                   help="adaptive corruption fraction (e.g. 0.1)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_elect_leader)

    p = sub.add_parser(
        "commit-log",
        help="commit a multi-slot replicated log off one tournament",
    )
    p.add_argument("-n", type=int, default=27, help="network size")
    p.add_argument("--slots", type=int, default=3,
                   help="number of log slots to commit")
    p.add_argument("--corrupt", type=float, default=0.0,
                   help="adaptive corruption fraction (e.g. 0.1)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_commit_log)

    p = sub.add_parser(
        "run-experiment",
        help="run Monte-Carlo trials of a registered scenario on an "
             "engine backend",
    )
    p.add_argument("--name", default="everywhere-ba",
                   help="registered scenario (see --list)")
    p.add_argument("-n", default="27", metavar="N[,N...]",
                   help="network size; a comma-separated list runs the "
                        "whole grid as one fused sweep")
    p.add_argument("--trials", type=int, default=8,
                   help="number of independent trials (per grid point)")
    p.add_argument("--seed", type=int, default=0,
                   help="master seed (per-trial seeds are derived)")
    p.add_argument("--backend", default="serial",
                   choices=("serial", "process", "batch", "async",
                            "hybrid", "distributed"),
                   help="execution backend")
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool workers (default: cpu count)")
    p.add_argument("--wave-size", type=int, default=None,
                   help="hybrid/distributed backends: trials per "
                        "dispatched wave (default: ~2 waves per worker)")
    p.add_argument("--hosts", default=None, metavar="HOST:PORT,...",
                   help="distributed backend: comma-separated "
                        "`repro worker serve` addresses")
    p.add_argument("--lane-depth", type=int, default=None,
                   help="distributed backend: pipelined units in "
                        "flight per worker lane (default 2; 1 = one "
                        "serial exchange at a time)")
    p.add_argument("--param", action="append", default=[],
                   metavar="KEY=VALUE",
                   help="scenario parameter, validated against the "
                        "declared schema (repeatable)")
    p.add_argument("--cost-aware", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="size grid work units by predicted per-trial "
                        "cost instead of trial counts (default: on for "
                        "-n grids when every point has a cost model; "
                        "moot for a single n)")
    p.add_argument("--telemetry", default=None, metavar="PATH",
                   help="write the run's telemetry report (lanes, "
                        "latency percentiles, retries, bit stats) as "
                        "JSON; render it with `repro report PATH`")
    p.add_argument("--progress", action="store_true",
                   help="live stderr progress line (trials done, "
                        "per-lane rates, ETA); inert when stderr is "
                        "not a tty")
    p.add_argument("--list", action="store_true",
                   help="list scenarios with their declared "
                        "parameters, types and defaults, then exit")
    p.add_argument("--smoke", action="store_true",
                   help="run every declared scenario once (tiny n, "
                        "2 trials) — CI's registration guard")
    p.set_defaults(func=_cmd_run_experiment)

    p = sub.add_parser(
        "cost",
        help="predicted per-trial cost of a scenario over a size grid "
             "(the figures cost-aware dispatch bins by)",
    )
    p.add_argument("scenario", help="registered scenario name")
    p.add_argument("-n", default="8,16,32,64", metavar="N[,N...]",
                   help="network sizes to price (comma-separated)")
    p.add_argument("--trials", type=int, default=8,
                   help="trial count used for the sweep-cost column")
    p.add_argument("--param", action="append", default=[],
                   metavar="KEY=VALUE",
                   help="scenario parameter, validated against the "
                        "declared schema (repeatable)")
    p.set_defaults(func=_cmd_cost)

    p = sub.add_parser(
        "worker",
        help="distributed-dispatch worker management",
    )
    worker_sub = p.add_subparsers(dest="worker_command", required=True)
    ws = worker_sub.add_parser(
        "serve",
        help="serve engine work units over TCP (blocks; ^C to stop)",
    )
    ws.add_argument("--host", default="127.0.0.1",
                    help="interface to bind (default: loopback; bind "
                         "non-loopback only on trusted networks)")
    ws.add_argument("--port", type=int, default=None,
                    help="TCP port to listen on (default: the engine's "
                         "DEFAULT_PORT, 7045; 0 = ephemeral)")
    ws.add_argument("--fleet", default=None, metavar="ROOT",
                    help="fleet root directory: register in its worker "
                         "roster and heartbeat until shutdown")
    ws.add_argument("--capacity", type=int, default=1,
                    help="announced capacity weight: concurrent units "
                         "this worker should hold (default 1)")
    ws.add_argument("--worker-id", default=None,
                    help="registry id (default: derived from hostname "
                         "and listening address)")
    ws.add_argument("--heartbeat-interval", type=float, default=2.0,
                    help="seconds between heartbeat writes (default 2)")
    ws.add_argument("--codec", default="binary",
                    choices=("binary", "json"),
                    help="wire codecs to negotiate: 'binary' offers "
                         "the framed binary codec (JSON fallback per "
                         "connection); 'json' serves the legacy line "
                         "protocol only")
    ws.add_argument("--max-frame-bytes", type=int,
                    default=None,
                    help="refuse request frames larger than this "
                         "(default 64 MiB)")
    ws.set_defaults(func=_cmd_worker)

    p = sub.add_parser(
        "queue",
        help="persistent fleet job queue: submit, inspect, cancel, run",
    )
    queue_sub = p.add_subparsers(dest="queue_command", required=True)

    qs = queue_sub.add_parser(
        "submit", help="enqueue one scenario sweep as a durable job"
    )
    qs.add_argument("--root", required=True, metavar="DIR",
                    help="fleet root directory (created if missing)")
    qs.add_argument("--name", default="everywhere-ba",
                    help="registered scenario (see run-experiment --list)")
    qs.add_argument("-n", type=int, default=27, help="network size")
    qs.add_argument("--trials", type=int, default=8,
                    help="number of independent trials")
    qs.add_argument("--seed", type=int, default=0,
                    help="master seed (per-trial seeds are derived)")
    qs.add_argument("--param", action="append", default=[],
                    metavar="KEY=VALUE",
                    help="scenario parameter, validated against the "
                         "declared schema (repeatable)")
    qs.add_argument("--unit-size", type=int, default=None,
                    help="trials per dispatched unit (default: the "
                         "capacity-weighted plan geometry)")
    qs.add_argument("--max-live", type=int, default=None,
                    help="async scenarios: resident instances per wave")
    qs.set_defaults(func=_cmd_queue)

    qs = queue_sub.add_parser(
        "status", help="list the queue, or show one job in detail"
    )
    qs.add_argument("--root", required=True, metavar="DIR")
    qs.add_argument("job", nargs="?", default=None,
                    help="job id (omit to list every job)")
    qs.set_defaults(func=_cmd_queue)

    qs = queue_sub.add_parser(
        "cancel", help="cancel a pending or running job"
    )
    qs.add_argument("--root", required=True, metavar="DIR")
    qs.add_argument("job", help="job id to cancel")
    qs.set_defaults(func=_cmd_queue)

    qs = queue_sub.add_parser(
        "run",
        help="run the coordinator: drain the queue against the "
             "registered workers (crash-resumable)",
    )
    qs.add_argument("--root", required=True, metavar="DIR")
    qs.add_argument("--max-jobs", type=int, default=2,
                    help="sweeps in flight at once (default 2)")
    qs.add_argument("--min-workers", type=int, default=1,
                    help="registered workers to wait for (default 1)")
    qs.add_argument("--worker-timeout", type=float, default=30.0,
                    help="seconds to wait for workers (default 30)")
    qs.add_argument("--heartbeat-timeout", type=float, default=10.0,
                    help="seconds before a silent worker is evicted")
    qs.add_argument("--watch", action="store_true",
                    help="keep polling for new jobs instead of exiting "
                         "when the queue drains")
    qs.add_argument("--poll-interval", type=float, default=1.0,
                    help="--watch: seconds between empty-queue polls")
    qs.add_argument("--lane-depth", type=int, default=2,
                    help="pipelined units in flight per worker lane "
                         "(default 2; 1 = one serial exchange at a "
                         "time)")
    qs.add_argument("--crash-after-units", type=int, default=None,
                    help=argparse.SUPPRESS)  # failure injection (tests)
    qs.set_defaults(func=_cmd_queue)

    p = sub.add_parser(
        "fleet",
        help="live fleet monitor: worker health, queue depth, lane "
             "throughput, usage alerts",
    )
    p.add_argument("--root", required=True, metavar="DIR",
                   help="fleet root directory to observe")
    p.add_argument("--once", action="store_true",
                   help="print one snapshot and exit (default when "
                        "stdout is not a tty)")
    p.add_argument("--interval", type=float, default=2.0,
                   help="watch mode: seconds between redraws")
    p.add_argument("--usage-alert", type=float, default=0.9,
                   help="lane busy fraction that raises an alert "
                        "(default 0.9)")
    p.add_argument("--heartbeat-timeout", type=float, default=10.0,
                   help="seconds before a worker renders as stale")
    p.set_defaults(func=_cmd_fleet)

    p = sub.add_parser(
        "bench",
        help="run the perf-gate suites and emit BENCH_core-style JSON",
    )
    p.add_argument("--json", action="store_true",
                   help="accepted for symmetry; output is always JSON")
    p.add_argument("--quick", action="store_true",
                   help="CI-sized repetitions")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the JSON here ('-' for stdout only)")
    p.add_argument("--baseline", default=None, metavar="PATH",
                   help="gate speedups against this committed baseline")
    p.add_argument("--max-regression", type=float, default=0.25,
                   help="allowed fractional speedup drop (default 0.25)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "report",
        help="run a compact battery and write a Markdown report, or "
             "render a saved telemetry artifact",
    )
    p.add_argument("telemetry", nargs="?", default=None, metavar="TELEMETRY",
                   help="telemetry JSON from `run-experiment "
                        "--telemetry`; when given, render it as "
                        "plain-text tables instead of running the "
                        "battery")
    p.add_argument("-n", type=int, default=27)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default="-",
                   help="output path, or - for stdout")
    p.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
