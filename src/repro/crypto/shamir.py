"""Shamir (n, t+1) threshold secret sharing.

Implements the scheme assumed in Definition 1 of the paper: ``n`` players
each receive one share per secret word; any ``threshold`` (= t+1) shares
reconstruct; any ``threshold - 1`` or fewer shares are information-
theoretically independent of the secret.  The paper fixes t = n/2 ("quite
robust, as any t in [1/3, 2/3] would work"); :func:`paper_threshold`
reproduces that choice.

Shares carry the x-coordinate of their evaluation point so that iterated
sharing (re-sharing a share) can be reversed unambiguously.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .field import DEFAULT_FIELD, FieldError, PrimeField
from .kernels import (
    get_batch_eval_plan,
    get_eval_plan,
    get_interp_plan,
    interpolate_constant,
)
from .polynomial import random_polynomial


class SecretSharingError(ValueError):
    """Raised on invalid scheme parameters or reconstruction failure."""


@dataclass(frozen=True)
class Share:
    """One player's share of a single secret word.

    Attributes:
        x: the evaluation point (1-based player index within the dealing).
        value: the field element f(x).
    """

    x: int
    value: int

    def as_tuple(self) -> Tuple[int, int]:
        """The share as an (x, value) pair."""
        return (self.x, self.value)


def paper_threshold(n_players: int) -> int:
    """The paper's t = n/2 rule, expressed as the reconstruction threshold t+1."""
    return n_players // 2 + 1


@dataclass(frozen=True)
class ShamirScheme:
    """A fixed (n_players, threshold) Shamir configuration.

    ``threshold`` is the number of shares *required* to reconstruct (the
    paper's t+1).  Any ``threshold - 1`` shares reveal nothing.
    """

    n_players: int
    threshold: int
    field: PrimeField = DEFAULT_FIELD

    def __post_init__(self) -> None:
        if self.n_players < 1:
            raise SecretSharingError("need at least one player")
        if not 1 <= self.threshold <= self.n_players:
            raise SecretSharingError(
                f"threshold {self.threshold} out of range for "
                f"{self.n_players} players"
            )
        if self.n_players >= self.field.modulus:
            raise SecretSharingError("field too small for player count")

    # -- dealing ----------------------------------------------------------------

    def _grid_plan(self):
        """The cached evaluation plan for this scheme's share grid 1..n."""
        return get_eval_plan(self.field, range(1, self.n_players + 1))

    def deal(self, secret: int, rng: random.Random) -> List[Share]:
        """Split one secret word into ``n_players`` shares.

        Evaluation routes through the scheme's cached batch plan (a
        width-1 batch) — the same kernel the bulk paths use — rather
        than an inlined loop.
        """
        return self.deal_many([secret], rng)[0]

    def deal_many(
        self, secrets: Sequence[int], rng: random.Random
    ) -> List[List[Share]]:
        """Share many words with one plan fetch: ``result[w]`` is word
        ``w``'s full share list — the layout :meth:`deal` returns.

        The bulk fast path for iterated sharing and dealer-free MPC,
        which deal hundreds of values over the same grid.  Coefficients
        are sampled per word in order (same rng stream as dealing one
        word at a time), then evaluated over the whole batch in single
        array-level passes through the cached
        :class:`~repro.crypto.kernels.BatchEvalPlan`.
        """
        plan = get_batch_eval_plan(
            self.field, range(1, self.n_players + 1)
        )
        degree = self.threshold - 1
        rows = [
            random_polynomial(self.field, secret, degree, rng)
            for secret in secrets
        ]
        return [
            [
                Share(x=x, value=value)
                for x, value in enumerate(values, start=1)
            ]
            for values in plan.evaluate_many(rows)
        ]

    def deal_sequence(
        self, secrets: Sequence[int], rng: random.Random
    ) -> List[List[Share]]:
        """Share a sequence of words; returns per-player share vectors.

        ``result[p]`` is player ``p``'s list of shares, one per word — the
        layout processors actually store in the protocol.
        """
        per_word = self.deal_many(secrets, rng)
        return [
            [per_word[w][p] for w in range(len(secrets))]
            for p in range(self.n_players)
        ]

    # -- reconstruction ----------------------------------------------------------

    def reconstruct(self, shares: Sequence[Share]) -> int:
        """Recover a secret word from at least ``threshold`` shares.

        Duplicate x-coordinates are rejected; exactly ``threshold`` shares
        are used (the first ``threshold`` after de-duplication) since the
        scheme is non-verifiable — robustness against wrong shares is
        provided at the protocol layer by majority over good paths.
        """
        unique: Dict[int, int] = {}
        for share in shares:
            if share.x in unique and unique[share.x] != share.value:
                raise SecretSharingError(
                    f"conflicting shares for x={share.x}"
                )
            unique[share.x] = share.value
        if len(unique) < self.threshold:
            raise SecretSharingError(
                f"need {self.threshold} shares, got {len(unique)}"
            )
        points = list(unique.items())[: self.threshold]
        return interpolate_constant(self.field, points)

    def reconstruct_many(
        self, share_lists: Sequence[Sequence[Share]]
    ) -> List[int]:
        """Recover many secret words, one batched interpolation per grid.

        ``result[w]`` equals ``reconstruct(share_lists[w])`` — the same
        per-list de-duplication and validation — but lists sharing an
        x-grid (the common case: a whole re-sharing level, a wave of
        reveals) collapse into a single matrix product against that
        grid's memoised lambda vector instead of one dot product each.
        """
        prepared: List[Tuple[Tuple[int, ...], List[int]]] = []
        for shares in share_lists:
            unique: Dict[int, int] = {}
            for share in shares:
                if share.x in unique and unique[share.x] != share.value:
                    raise SecretSharingError(
                        f"conflicting shares for x={share.x}"
                    )
                unique[share.x] = share.value
            if len(unique) < self.threshold:
                raise SecretSharingError(
                    f"need {self.threshold} shares, got {len(unique)}"
                )
            points = list(unique.items())[: self.threshold]
            prepared.append(
                (tuple(p[0] for p in points), [p[1] for p in points])
            )
        groups: Dict[Tuple[int, ...], List[int]] = {}
        for index, (xs, _ys) in enumerate(prepared):
            groups.setdefault(xs, []).append(index)
        out = [0] * len(prepared)
        for xs, indices in groups.items():
            plan = get_interp_plan(self.field, xs)
            values = plan.constant_many(
                [prepared[i][1] for i in indices]
            )
            for i, value in zip(indices, values):
                out[i] = value
        return out

    def reconstruct_sequence(
        self, per_player_shares: Sequence[Sequence[Share]]
    ) -> List[int]:
        """Recover a word sequence from per-player share vectors."""
        if not per_player_shares:
            raise SecretSharingError("no share vectors supplied")
        lengths = {len(vec) for vec in per_player_shares}
        if len(lengths) != 1:
            raise SecretSharingError("ragged share vectors")
        n_words = lengths.pop()
        return [
            self.reconstruct([vec[w] for vec in per_player_shares])
            for w in range(n_words)
        ]

    def reconstruct_majority(self, shares: Sequence[Share]) -> int:
        """Robust reconstruction by majority vote over candidate values.

        Tries every x-coordinate's claimed value at most once and asks which
        reconstructed secret a majority of threshold-sized prefixes agree
        on.  Used by tests to demonstrate that a minority of corrupted
        shares cannot silently flip the secret when the protocol also
        majority-votes (Lemma 3's ``sendOpen`` voting); for large share
        counts the protocol layer does the voting instead.
        """
        unique: Dict[int, int] = {}
        for share in shares:
            unique.setdefault(share.x, share.value)
        points = sorted(unique.items())
        if len(points) < self.threshold:
            raise SecretSharingError("not enough shares")
        votes: Dict[int, int] = {}
        # Slide a window of threshold-many points; each window votes.
        # Window grids recur across calls, so each window's interpolation
        # plan (weights + lambdas-at-zero) is a cache hit after the first.
        for start in range(len(points) - self.threshold + 1):
            window = points[start : start + self.threshold]
            candidate = interpolate_constant(self.field, window)
            votes[candidate] = votes.get(candidate, 0) + 1
        winner = max(votes.items(), key=lambda kv: kv[1])
        return winner[0]

    # -- sizing -----------------------------------------------------------------

    def share_bits(self) -> int:
        """Size of one share in bits (equal to one secret word, per Def. 1)."""
        return self.field.element_bits


def split_words(scheme: ShamirScheme, secrets: Sequence[int], rng: random.Random):
    """Convenience wrapper used by the communication layer: share words.

    Returns ``(per_player, scheme)`` where ``per_player[p]`` is player p's
    share vector.
    """
    return scheme.deal_sequence(secrets, rng)
