"""Berlekamp-Welch decoding of Shamir shares with errors.

A Shamir dealing of threshold t is a Reed-Solomon codeword: shares are
evaluations of a degree-(t-1) polynomial.  A pool of m received shares
containing at most e = (m - t) // 2 *wrong* values (tampered by corrupted
holders) can be decoded exactly: find an error-locator polynomial E
(monic, degree e) and Q (degree < t + e) with

    Q(x_i) = y_i * E(x_i)      for every received point,

by solving the linear system; then P = Q / E is the dealer's polynomial.
This is deterministic and one-shot — the hot path of every ``sendDown``
reconstruction, replacing randomized sample-and-verify decoding.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .field import FieldError, PrimeField
from .kernels import get_eval_plan


def _solve_linear_system(
    field: PrimeField, matrix: List[List[int]], rhs: List[int]
) -> Optional[List[int]]:
    """Gaussian elimination over GF(p); any solution (free vars -> 0).

    Returns None when the system is inconsistent.
    """
    mod = field.modulus
    rows = len(matrix)
    cols = len(matrix[0]) if rows else 0
    aug = [list(row) + [rhs[i]] for i, row in enumerate(matrix)]
    pivot_cols: List[int] = []
    r = 0
    for c in range(cols):
        pivot = None
        for i in range(r, rows):
            if aug[i][c] % mod != 0:
                pivot = i
                break
        if pivot is None:
            continue
        aug[r], aug[pivot] = aug[pivot], aug[r]
        inv = field.inv(aug[r][c])
        aug[r] = [(v * inv) % mod for v in aug[r]]
        for i in range(rows):
            if i != r and aug[i][c] % mod != 0:
                factor = aug[i][c]
                aug[i] = [
                    (aug[i][j] - factor * aug[r][j]) % mod
                    for j in range(cols + 1)
                ]
        pivot_cols.append(c)
        r += 1
        if r == rows:
            break
    # Inconsistency: zero row with nonzero rhs.
    for i in range(r, rows):
        if all(v % mod == 0 for v in aug[i][:cols]) and aug[i][cols] % mod != 0:
            return None
    solution = [0] * cols
    for i, c in enumerate(pivot_cols):
        solution[c] = aug[i][cols]
    return solution


def _poly_divmod(
    field: PrimeField, numerator: Sequence[int], denominator: Sequence[int]
) -> Tuple[List[int], List[int]]:
    """Polynomial division (coefficients low-to-high)."""
    mod = field.modulus
    num = [v % mod for v in numerator]
    den = [v % mod for v in denominator]
    while den and den[-1] == 0:
        den.pop()
    if not den:
        raise FieldError("division by zero polynomial")
    quotient = [0] * max(0, len(num) - len(den) + 1)
    remainder = list(num)
    inv_lead = field.inv(den[-1])
    for i in range(len(quotient) - 1, -1, -1):
        if len(remainder) < len(den) + i:
            continue
        coeff = (remainder[len(den) + i - 1] * inv_lead) % mod
        quotient[i] = coeff
        for j, d in enumerate(den):
            remainder[i + j] = (remainder[i + j] - coeff * d) % mod
    while remainder and remainder[-1] == 0:
        remainder.pop()
    return quotient, remainder


def berlekamp_welch(
    field: PrimeField,
    points: Sequence[Tuple[int, int]],
    degree_bound: int,
    max_errors: Optional[int] = None,
) -> Optional[List[int]]:
    """Decode a degree < ``degree_bound`` polynomial from noisy points.

    Args:
        points: distinct (x, y) pairs, at most ``max_errors`` of them wrong.
        degree_bound: t, the number of coefficients of the true polynomial
            (Shamir's reconstruction threshold).
        max_errors: defaults to the unique-decoding radius
            (len(points) - degree_bound) // 2.

    Returns the coefficient list (low-to-high, length <= degree_bound) or
    None if decoding fails.
    """
    m = len(points)
    if m < degree_bound:
        return None
    if max_errors is None:
        max_errors = max(0, (m - degree_bound) // 2)
    mod = field.modulus

    # The same share pools recur across rounds, so the grid's power
    # table (the Vandermonde rows below) and batch evaluations come
    # from the cached plan instead of being remultiplied per decode.
    plan = get_eval_plan(field, [x for x, _y in points])
    grid_ys = [y % mod for _x, y in points]

    # Solving at the full radius e_max suffices whenever the true error
    # count is within it (E absorbs spurious factors); one step down
    # covers the rare degenerate division.  Beyond that the pool is
    # undecodable and iterating further only burns time.
    candidate_error_counts = [max_errors]
    if max_errors > 0:
        candidate_error_counts.append(max_errors - 1)
    for e in candidate_error_counts:
        q_len = degree_bound + e  # Q has degree < degree_bound + e
        powers = plan.power_table(q_len + 1)
        # Unknowns: q_0..q_{q_len-1}, E_0..E_{e-1} (E monic of degree e).
        matrix: List[List[int]] = []
        rhs: List[int] = []
        for i, y in enumerate(grid_ys):
            xpow = powers[i]
            row = xpow[:q_len]
            row.extend((-y * xpow[j]) % mod for j in range(e))
            # monic term: y * x^e moved to the rhs.
            matrix.append(row)
            rhs.append((y * xpow[e]) % mod)
        solution = _solve_linear_system(field, matrix, rhs)
        if solution is None:
            continue
        q_coeffs = solution[:q_len]
        e_coeffs = solution[q_len:] + [1]  # monic
        try:
            p_coeffs, remainder = _poly_divmod(field, q_coeffs, e_coeffs)
        except FieldError:
            continue
        if remainder:
            continue
        if len(p_coeffs) > degree_bound:
            continue
        # Verify against the pool: must explain all but <= e points.
        decoded = plan.evaluate(p_coeffs)
        mismatches = sum(
            1 for got, y in zip(decoded, grid_ys) if got != y
        )
        if mismatches <= e:
            return p_coeffs + [0] * (degree_bound - len(p_coeffs))
    return None


def decode_constant(
    field: PrimeField,
    points: Sequence[Tuple[int, int]],
    degree_bound: int,
    max_errors: Optional[int] = None,
) -> Optional[int]:
    """The Shamir secret (constant term), or None on decoding failure."""
    coefficients = berlekamp_welch(field, points, degree_bound, max_errors)
    if coefficients is None:
        return None
    return coefficients[0]
