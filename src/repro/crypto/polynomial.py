"""Polynomial evaluation and Lagrange interpolation over a prime field.

This is the mathematical core of the Shamir (n, t+1) threshold scheme used
throughout the paper's Section 3.1.  Polynomials are represented as
coefficient lists ``[c0, c1, ...]`` meaning ``c0 + c1*x + c2*x^2 + ...``;
the constant coefficient ``c0`` carries the secret.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from .field import FieldError, PrimeField


def evaluate(field: PrimeField, coefficients: Sequence[int], x: int) -> int:
    """Evaluate a polynomial at ``x`` using Horner's rule."""
    result = 0
    for coefficient in reversed(coefficients):
        result = (result * x + coefficient) % field.modulus
    return result


def evaluate_many(
    field: PrimeField, coefficients: Sequence[int], xs: Sequence[int]
) -> List[int]:
    """Evaluate a polynomial at each point of ``xs``."""
    return [evaluate(field, coefficients, x) for x in xs]


def random_polynomial(
    field: PrimeField, constant: int, degree: int, rng: random.Random
) -> List[int]:
    """A uniformly random degree-``degree`` polynomial with given constant term.

    This is precisely a Shamir dealer's polynomial: the constant term is the
    secret and the remaining ``degree`` coefficients are uniform.
    """
    if degree < 0:
        raise FieldError("polynomial degree must be non-negative")
    coefficients = [field.element(constant)]
    coefficients.extend(field.random_elements(degree, rng))
    return coefficients


def pairwise_denominators(
    field: PrimeField, xs: Sequence[int]
) -> List[int]:
    """Lagrange denominators ``prod_{j != i} (x_i - x_j)`` per node.

    Shared by the reference interpolation below and the cached
    :class:`~repro.crypto.kernels.InterpPlan` weights, so both paths
    provably invert the same quantities.
    """
    mod = field.modulus
    denominators = []
    for i, xi in enumerate(xs):
        denominator = 1
        for j, xj in enumerate(xs):
            if i != j:
                denominator = (denominator * (xi - xj)) % mod
        denominators.append(denominator)
    return denominators


def lagrange_interpolate_at(
    field: PrimeField, points: Sequence[Tuple[int, int]], x: int
) -> int:
    """Interpolate the unique polynomial through ``points`` and evaluate at ``x``.

    ``points`` is a sequence of distinct ``(x_i, y_i)`` pairs.  Runs in
    O(len(points)**2) field operations with a *single* modular inversion:
    the per-point denominators go through :func:`batch_inverse`
    (Montgomery's trick) instead of one ``pow`` each, and the numerators
    ``prod_{j != i} (x - x_j)`` come from prefix/suffix products.

    This is the reference implementation; hot paths route through the
    cached plans in :mod:`repro.crypto.kernels`, which are pinned
    bit-identical to this function by ``tests/test_kernels.py``.
    """
    mod = field.modulus
    xs = [p[0] % mod for p in points]
    if len(set(xs)) != len(xs):
        raise FieldError("interpolation points must have distinct x values")
    k = len(points)
    if k == 0:
        return 0
    inverses = batch_inverse(field, pairwise_denominators(field, xs))
    # Numerators prod_{j != i} (x - x_j) via prefix/suffix products.
    diffs = [(x - xj) % mod for xj in xs]
    prefix = [1] * (k + 1)
    for i, d in enumerate(diffs):
        prefix[i + 1] = (prefix[i] * d) % mod
    suffix = [1] * (k + 1)
    for i in range(k - 1, -1, -1):
        suffix[i] = (suffix[i + 1] * diffs[i]) % mod
    total = 0
    for i, (_xi, yi) in enumerate(points):
        numerator = (prefix[i] * suffix[i + 1]) % mod
        term = (yi % mod) * numerator % mod
        total = (total + term * inverses[i]) % mod
    return total


def interpolate_constant(field: PrimeField, points: Sequence[Tuple[int, int]]) -> int:
    """Recover the constant coefficient (the Shamir secret) from points."""
    return lagrange_interpolate_at(field, points, 0)


def batch_inverse(field: PrimeField, values: Sequence[int]) -> List[int]:
    """Inverses of many nonzero elements with a single modular pow.

    Montgomery's trick: one inversion plus 3(k-1) multiplications instead
    of k inversions — the hot path of robust reconstruction.
    """
    mod = field.modulus
    k = len(values)
    if k == 0:
        return []
    prefix = [0] * k
    acc = 1
    for i, value in enumerate(values):
        if value % mod == 0:
            raise FieldError("zero has no multiplicative inverse")
        acc = (acc * value) % mod
        prefix[i] = acc
    inv_acc = field.inv(acc)
    out = [0] * k
    for i in range(k - 1, -1, -1):
        before = prefix[i - 1] if i > 0 else 1
        out[i] = (before * inv_acc) % mod
        inv_acc = (inv_acc * values[i]) % mod
    return out


def interpolate_coefficients(
    field: PrimeField, points: Sequence[Tuple[int, int]]
) -> List[int]:
    """Full coefficient vector of the interpolating polynomial.

    O(k^2) field operations via synthetic division of the master product
    polynomial; used by robust reconstruction, which must verify a
    candidate polynomial against many points (each check is then a cheap
    O(k) Horner evaluation instead of an O(k^2) fresh interpolation).
    """
    xs = [p[0] % field.modulus for p in points]
    if len(set(xs)) != len(xs):
        raise FieldError("interpolation points must have distinct x values")
    k = len(points)
    mod = field.modulus
    # master(x) = prod (x - x_j), coefficients low-to-high.
    master = [1]
    for xj in xs:
        nxt = [0] * (len(master) + 1)
        for d, c in enumerate(master):
            nxt[d] = (nxt[d] - c * xj) % mod
            nxt[d + 1] = (nxt[d + 1] + c) % mod
        master = nxt
    inverses = batch_inverse(field, pairwise_denominators(field, xs))

    result = [0] * k
    for index, (xi, yi) in enumerate(points):
        xi %= mod
        # quotient = master / (x - xi) by synthetic division.
        quotient = [0] * k
        carry = master[k]  # leading coefficient (= 1)
        for d in range(k - 1, -1, -1):
            quotient[d] = carry
            carry = (master[d] + carry * xi) % mod
        scale = (yi % mod) * inverses[index] % mod
        for d in range(k):
            result[d] = (result[d] + scale * quotient[d]) % mod
    return result


def lagrange_coefficients_at_zero(
    field: PrimeField, xs: Sequence[int]
) -> List[int]:
    """Per-point multipliers lambda_i with secret = sum(lambda_i * y_i).

    Precomputing these is useful when many secrets are reconstructed from
    shares at the same x-coordinates (as ``sendDown`` does for whole blocks).
    """
    xs = [x % field.modulus for x in xs]
    if len(set(xs)) != len(xs):
        raise FieldError("interpolation points must have distinct x values")
    lambdas: List[int] = []
    for i, xi in enumerate(xs):
        numerator = 1
        denominator = 1
        for j, xj in enumerate(xs):
            if i == j:
                continue
            numerator = (numerator * (-xj)) % field.modulus
            denominator = (denominator * (xi - xj)) % field.modulus
        lambdas.append(numerator * field.inv(denominator) % field.modulus)
    return lambdas
