"""Packed (ramp) secret sharing — the block-sharing optimisation.

The tournament ships whole *blocks* of words up the tree (Definition 4:
a bin choice plus r coin words per level).  Plain Shamir shares each word
separately: k shares per player for a k-word block.  Packed sharing
embeds all k words into a single polynomial evaluated at k reserved
points, so each player holds ONE share per block — a factor-k bandwidth
saving at the cost of a higher reconstruction threshold
(t + k shares instead of t + 1) and a ramped secrecy guarantee
(coalitions below t learn nothing; between t and t+k they learn partial
information).

This is the classic Franklin-Yung trade-off; DESIGN.md lists it as a
design-choice ablation (bench E9 companion), and the library exposes it
as an alternative backend for :mod:`repro.core.communication`-style block
flows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .field import DEFAULT_FIELD, PrimeField
from .kernels import get_interp_plan
from .shamir import SecretSharingError, Share


@dataclass(frozen=True)
class PackedShamirScheme:
    """A (n_players, secrecy, k) ramp scheme.

    The dealer fixes a polynomial of degree ``secrecy + k - 1`` that
    passes through the k secrets at reserved negative evaluation points
    (-1, ..., -k) with ``secrecy`` random degrees of freedom; players
    receive evaluations at 1..n as usual.

    * Any ``secrecy`` or fewer shares reveal nothing about the block.
    * Any ``secrecy + k`` shares reconstruct the whole block.
    """

    n_players: int
    secrecy: int
    block_size: int
    field: PrimeField = DEFAULT_FIELD

    def __post_init__(self) -> None:
        if self.n_players < 1:
            raise SecretSharingError("need at least one player")
        if self.secrecy < 1:
            raise SecretSharingError("secrecy parameter must be >= 1")
        if self.block_size < 1:
            raise SecretSharingError("block size must be >= 1")
        if self.reconstruction_threshold > self.n_players:
            raise SecretSharingError(
                "secrecy + block_size exceeds player count"
            )
        if self.n_players + self.block_size >= self.field.modulus:
            raise SecretSharingError("field too small")

    @property
    def reconstruction_threshold(self) -> int:
        """Shares needed to reconstruct: secrecy + block size."""
        return self.secrecy + self.block_size

    # -- dealing ----------------------------------------------------------------

    def deal(self, block: Sequence[int], rng: random.Random) -> List[Share]:
        """Share a whole block; every player gets one share."""
        if len(block) != self.block_size:
            raise SecretSharingError(
                f"block must have exactly {self.block_size} words"
            )
        mod = self.field.modulus
        # Interpolation constraints: secrets at x = -1..-k, plus `secrecy`
        # random anchor values at x = n+1 .. n+secrecy to randomise.
        points: List[Tuple[int, int]] = [
            ((-(i + 1)) % mod, block[i] % mod)
            for i in range(self.block_size)
        ]
        for j in range(self.secrecy):
            points.append(
                (self.n_players + 1 + j, self.field.random_element(rng))
            )
        # The constraint grid (reserved negative points + anchors) is
        # fixed per scheme, so its interpolation plan — and the lambda
        # vector at every player coordinate — is cached after one deal.
        plan = get_interp_plan(self.field, tuple(p[0] for p in points))
        ys = [p[1] for p in points]
        return [
            Share(x=x, value=plan.interpolate_at(x, ys))
            for x in range(1, self.n_players + 1)
        ]

    # -- reconstruction ----------------------------------------------------------

    def reconstruct(self, shares: Sequence[Share]) -> List[int]:
        """Recover the whole block from >= secrecy + k shares."""
        unique = {}
        for share in shares:
            if share.x in unique and unique[share.x] != share.value:
                raise SecretSharingError(
                    f"conflicting shares for x={share.x}"
                )
            unique[share.x] = share.value
        if len(unique) < self.reconstruction_threshold:
            raise SecretSharingError(
                f"need {self.reconstruction_threshold} shares, "
                f"got {len(unique)}"
            )
        points = list(unique.items())[: self.reconstruction_threshold]
        mod = self.field.modulus
        plan = get_interp_plan(self.field, tuple(p[0] for p in points))
        ys = [p[1] for p in points]
        return [
            plan.interpolate_at((-(i + 1)) % mod, ys)
            for i in range(self.block_size)
        ]

    # -- sizing ------------------------------------------------------------------

    def share_bits(self) -> int:
        """One share regardless of block size — the packing win."""
        return self.field.element_bits

    def bandwidth_ratio_vs_shamir(self) -> float:
        """Bandwidth of packed vs word-by-word Shamir for one block."""
        return 1.0 / self.block_size
