"""Cached reconstruction and evaluation kernels — the crypto fast path.

Every layer of the Section-3 stack (Shamir dealing, iterated re-sharing,
VSS coins, robust reconstruction) bottoms out in two polynomial
primitives: *evaluate this polynomial on a fixed grid of points* and
*interpolate these points at a fixed x*.  The naive implementations in
:mod:`repro.crypto.polynomial` redo all structural work on every call —
``lagrange_interpolate_at`` spends O(k^2) products plus one modular
inversion per point even though a sweep reconstructs thousands of
secrets over the *same* x-grid (players ``1..n``).

This module precomputes that recurring structure once into *plan*
objects and caches the plans:

* :class:`EvalPlan` — batch grid evaluation.  Fixes the grid ``xs``,
  runs one tight Horner loop per point, and lazily maintains a power
  table ``xs[i]**j`` for callers (Berlekamp-Welch) that need raw
  Vandermonde rows.
* :class:`InterpPlan` — fixes the interpolation nodes ``xs`` and
  precomputes the barycentric weights ``w_i = 1 / prod_{j!=i}
  (x_i - x_j)`` with a **single** modular inversion via
  :func:`~repro.crypto.polynomial.batch_inverse` (Montgomery's trick).
  The Lagrange coefficient vector at any evaluation point ``x`` is then
  O(k) multiplications plus one further batched inversion, and is
  memoised per ``x`` — so reconstruct-at-0 over a warm plan is a plain
  O(k) dot product.
* :class:`BatchEvalPlan` — *many* polynomials on one fixed grid in
  single array-level passes: a vectorised Horner sweep over an
  ``(batch, grid)`` int64 matrix when numpy is importable and the
  modulus fits 31 bits (every intermediate stays below 2**63, so int64
  arithmetic is exact), or fused stacked-column passes over Python ints
  as the portable fallback.  Same GF(p) results either way.
* Batched interpolation — :meth:`InterpPlan.constant_many`,
  :meth:`InterpPlan.interpolate_many_at`,
  :meth:`InterpPlan.interpolate_grid` and the windowed front end
  :func:`interpolate_windows_at_zero` reconstruct many point-sets as a
  single matrix product against the memoised lambda vectors, using a
  16-bit split of the y matrix so every int64 partial sum stays exact.

Cache invalidation rules (also documented in ENGINE.md):

* Plans are keyed on ``(modulus, xs)`` and are immutable with respect to
  that key — the weights depend on nothing else — so a cached plan can
  never go stale; the caches exist purely to bound memory.
* Both global plan caches and the per-plan lambda memo are bounded;
  overflowing them evicts the **oldest** entry (FIFO over the
  insertion-ordered dict), so a plan or lambda vector in active use
  survives adversarial access patterns — e.g. sliding reconstruction
  windows over huge pools — that previously dropped the whole cache.
* Two fields with the same ``xs`` never share a plan: the modulus is
  part of the key.

Exactness: every kernel performs the same GF(p) arithmetic as its naive
counterpart, so results are bit-identical — pinned over random degrees,
grids, fields and batch widths by ``tests/test_kernels.py`` (including
the numpy-absent fallback) and registry-wide by the engine parity suite.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .field import FieldError, PrimeField
from .polynomial import batch_inverse, pairwise_denominators

try:  # pragma: no cover - exercised via the fallback tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Bound on the number of plans each global cache may hold.
PLAN_CACHE_MAX = 2048

#: Bound on memoised per-x lambda vectors within one :class:`InterpPlan`.
LAMBDA_CACHE_MAX = 1024

#: Moduli up to this many bits take the numpy int64 path: with residues
#: below 2**31, a Horner step ``acc * x + c`` stays below 2**63 and the
#: split matrix product keeps every partial sum exact in int64.
_NUMPY_MOD_BITS = 31

#: Largest node count the split matrix product accepts: the low 16-bit
#: half contributes < 2**47 per term, so up to 2**15 terms sum below
#: 2**62 — comfortably exact in int64.
_MATMUL_MAX_K = 1 << 15


def _evict_oldest(cache: Dict) -> None:
    """Drop the single oldest entry (dicts iterate in insertion order)."""
    del cache[next(iter(cache))]


def _numpy_ready(modulus: int) -> bool:
    """Whether the vectorised int64 path is available *and* exact."""
    return _np is not None and modulus.bit_length() <= _NUMPY_MOD_BITS


def batch_engine(field: PrimeField) -> str:
    """Which batch implementation this field's kernels will use.

    ``"numpy"`` for the vectorised int64 path, ``"columns"`` for the
    portable stacked-column fallback (numpy missing, or the modulus too
    wide for exact int64 arithmetic).  Diagnostic only — both engines
    are bit-identical.
    """
    return "numpy" if _numpy_ready(field.modulus) else "columns"


def _rows_to_array(ys_rows: Sequence[Sequence[int]], mod: int):
    """``ys_rows`` as a canonical-residue int64 matrix, or None.

    Returns None when the rows are ragged or carry ints too wide for
    int64 (callers then take the Python fallback, which reduces them
    exactly).
    """
    try:
        arr = _np.array(ys_rows, dtype=_np.int64)
    except (OverflowError, ValueError, TypeError):
        return None
    if arr.ndim != 2:
        return None
    return arr % mod


def _matmul_mod(ys, lam, mod: int):
    """Exact ``(ys @ lam) % mod`` for canonical int64 residues.

    A direct int64 product of two residues below 2**31 already brushes
    2**62, so summing over the nodes would overflow.  Splitting the y
    matrix into 16-bit halves keeps every partial sum exact:
    ``ys @ lam == 2**16 * (hi @ lam) + lo @ lam`` with ``hi < 2**15``
    and ``lo < 2**16``, so both partial products stay below 2**63 for
    up to ``_MATMUL_MAX_K`` nodes.
    """
    hi = ys >> 16
    lo = ys & 0xFFFF
    return ((hi @ lam % mod << 16) + lo @ lam) % mod


class EvalPlan:
    """Batch evaluation of polynomials on one fixed grid of points.

    The plan owns the grid (reduced into the field once) and a lazily
    grown power table; :meth:`evaluate` is the single Horner
    implementation every dealing path routes through.
    """

    __slots__ = ("modulus", "xs", "_powers")

    def __init__(self, field: PrimeField, xs: Sequence[int]) -> None:
        self.modulus = field.modulus
        self.xs: Tuple[int, ...] = tuple(x % self.modulus for x in xs)
        # _powers[i][j] == xs[i] ** j (mod p); columns extend on demand.
        self._powers: List[List[int]] = []

    def evaluate(self, coefficients: Sequence[int]) -> List[int]:
        """The polynomial's value at every grid point (Horner per point)."""
        mod = self.modulus
        rev = coefficients[::-1]
        out = []
        append = out.append
        for x in self.xs:
            acc = 0
            for c in rev:
                acc = (acc * x + c) % mod
            append(acc)
        return out

    def power_table(self, count: int) -> List[List[int]]:
        """Rows ``[x**0, x**1, ..., x**(count-1)]`` per grid point.

        Grown monotonically and kept on the plan, so repeated decodes
        over the same pool (Berlekamp-Welch's Vandermonde rows) reuse
        the powers instead of remultiplying them.

        The returned rows ARE the live cache: they may be longer than
        ``count`` (a previous caller asked for more) and must not be
        mutated — slice-copy before building on them, as
        :func:`~repro.crypto.reed_solomon.berlekamp_welch` does.
        """
        mod = self.modulus
        if not self._powers:
            self._powers = [[1] for _ in self.xs]
        have = len(self._powers[0]) if self._powers else 0
        if count > have:
            for x, row in zip(self.xs, self._powers):
                acc = row[-1]
                for _ in range(count - len(row)):
                    acc = (acc * x) % mod
                    row.append(acc)
        return self._powers


class BatchEvalPlan:
    """Evaluate *many* polynomials on one fixed grid in single passes.

    The batched analogue of :class:`EvalPlan`: where that plan runs one
    Horner loop per grid point per call, this plan runs one Horner step
    per coefficient *column* across the whole ``(batch, grid)`` matrix.
    Ragged coefficient rows are padded with high-order zero coefficients
    (a mathematical no-op).  The numpy path and the stacked-column
    fallback perform the identical GF(p) reductions, so both are
    bit-identical to :meth:`EvalPlan.evaluate` row by row.
    """

    __slots__ = ("modulus", "xs", "_xs_arr")

    def __init__(self, field: PrimeField, xs: Sequence[int]) -> None:
        self.modulus = field.modulus
        self.xs: Tuple[int, ...] = tuple(x % self.modulus for x in xs)
        self._xs_arr = None  # built lazily, only on the numpy path

    def evaluate_many(
        self, coefficient_rows: Sequence[Sequence[int]]
    ) -> List[List[int]]:
        """``result[b]`` is polynomial ``b``'s value at every grid point."""
        rows = coefficient_rows
        if not rows:
            return []
        width = max(len(r) for r in rows)
        if width == 0:
            return [[0] * len(self.xs) for _ in rows]
        if _numpy_ready(self.modulus):
            arr = self._rows_array(rows, width)
            if arr is not None:
                return self._evaluate_numpy(arr)
        return self._evaluate_columns(rows, width)

    def _rows_array(self, rows: Sequence[Sequence[int]], width: int):
        """Coefficient rows as a zero-padded canonical int64 matrix."""
        try:
            if all(len(r) == width for r in rows):
                arr = _np.array(rows, dtype=_np.int64)
            else:
                arr = _np.zeros((len(rows), width), dtype=_np.int64)
                for i, row in enumerate(rows):
                    if row:
                        arr[i, : len(row)] = row
            return arr % self.modulus
        except (OverflowError, ValueError, TypeError):
            return None

    def _evaluate_numpy(self, coeffs) -> List[List[int]]:
        """Vectorised Horner: one fused pass per coefficient column."""
        mod = self.modulus
        if self._xs_arr is None:
            self._xs_arr = _np.array(self.xs, dtype=_np.int64)
        xs_arr = self._xs_arr
        acc = _np.zeros((coeffs.shape[0], len(self.xs)), dtype=_np.int64)
        for j in range(coeffs.shape[1] - 1, -1, -1):
            acc = (acc * xs_arr + coeffs[:, j : j + 1]) % mod
        return acc.tolist()

    def _evaluate_columns(
        self, rows: Sequence[Sequence[int]], width: int
    ) -> List[List[int]]:
        """Portable fallback: fused Horner over stacked Python-int columns."""
        mod = self.modulus
        cols = [
            [row[j] if j < len(row) else 0 for row in rows]
            for j in range(width)
        ]
        out = [[0] * len(self.xs) for _ in rows]
        batch = len(rows)
        for g, x in enumerate(self.xs):
            acc = [0] * batch
            for j in range(width - 1, -1, -1):
                col = cols[j]
                acc = [(a * x + c) % mod for a, c in zip(acc, col)]
            for b, value in enumerate(acc):
                out[b][g] = value
        return out


class InterpPlan:
    """Lagrange interpolation from one fixed set of nodes.

    Setup computes the barycentric weights with one batched inversion;
    afterwards :meth:`interpolate_at` costs O(k) multiplications per
    call for any memoised evaluation point (0, the share grid, packed
    sharing's reserved negative points, ...).  The ``*_many`` methods
    reconstruct whole batches of point-sets as one matrix product
    against the same memoised lambda vectors.
    """

    __slots__ = ("modulus", "xs", "weights", "_field", "_index", "_lambdas")

    def __init__(self, field: PrimeField, xs: Sequence[int]) -> None:
        mod = field.modulus
        nodes = tuple(x % mod for x in xs)
        if len(set(nodes)) != len(nodes):
            raise FieldError("interpolation points must have distinct x values")
        self.modulus = mod
        self.xs = nodes
        self._field = field
        # w_i = 1 / prod_{j != i} (x_i - x_j): one pow for all of them.
        self.weights: Tuple[int, ...] = tuple(
            batch_inverse(field, pairwise_denominators(field, nodes))
        )
        self._index: Dict[int, int] = {x: i for i, x in enumerate(nodes)}
        self._lambdas: Dict[int, Tuple[int, ...]] = {}

    def lambdas_at(self, x: int) -> Tuple[int, ...]:
        """Lagrange coefficients lambda_i(x): value = sum lambda_i * y_i."""
        x %= self.modulus
        cached = self._lambdas.get(x)
        if cached is None:
            cached = self._compute_lambdas(x)
            if len(self._lambdas) >= LAMBDA_CACHE_MAX:
                _evict_oldest(self._lambdas)
            self._lambdas[x] = cached
        return cached

    def _compute_lambdas(self, x: int) -> Tuple[int, ...]:
        node = self._index.get(x)
        if node is not None:
            # x is a node: the interpolating polynomial passes through it.
            lam = [0] * len(self.xs)
            lam[node] = 1
            return tuple(lam)
        mod = self.modulus
        diffs = [(x - xj) % mod for xj in self.xs]
        inverses = batch_inverse(self._field, diffs)
        full = 1
        for d in diffs:
            full = (full * d) % mod
        return tuple(
            (w * full % mod) * inv % mod
            for w, inv in zip(self.weights, inverses)
        )

    def interpolate_at(self, x: int, ys: Sequence[int]) -> int:
        """Evaluate the polynomial through ``zip(xs, ys)`` at ``x``."""
        if len(ys) != len(self.xs):
            raise FieldError("one y value per interpolation node required")
        total = 0
        for lam, y in zip(self.lambdas_at(x), ys):
            total += lam * y
        return total % self.modulus

    def constant(self, ys: Sequence[int]) -> int:
        """The constant coefficient — the Shamir secret."""
        return self.interpolate_at(0, ys)

    # -- batched interpolation ---------------------------------------------------

    def _check_rows(self, ys_rows: Sequence[Sequence[int]]) -> None:
        k = len(self.xs)
        for ys in ys_rows:
            if len(ys) != k:
                raise FieldError(
                    "one y value per interpolation node required"
                )

    def interpolate_many_at(
        self, x: int, ys_rows: Sequence[Sequence[int]]
    ) -> List[int]:
        """Interpolate many y-vectors over the plan's nodes at one x.

        One matrix-vector product against the memoised lambda vector on
        the numpy path; bit-identical to calling :meth:`interpolate_at`
        per row.
        """
        self._check_rows(ys_rows)
        if not ys_rows:
            return []
        lam = self.lambdas_at(x)
        mod = self.modulus
        if _numpy_ready(mod) and len(self.xs) <= _MATMUL_MAX_K:
            arr = _rows_to_array(ys_rows, mod)
            if arr is not None:
                lam_arr = _np.array(lam, dtype=_np.int64)
                return _matmul_mod(arr, lam_arr, mod).tolist()
        return [
            sum(l * y for l, y in zip(lam, ys)) % mod for ys in ys_rows
        ]

    def constant_many(
        self, ys_rows: Sequence[Sequence[int]]
    ) -> List[int]:
        """Many secrets from many share vectors over the same nodes."""
        return self.interpolate_many_at(0, ys_rows)

    def interpolate_grid(
        self, xs_eval: Sequence[int], ys_rows: Sequence[Sequence[int]]
    ) -> List[List[int]]:
        """``result[b][j]`` = row ``b`` interpolated at ``xs_eval[j]``.

        The whole (rows x evaluation points) grid as a single matrix
        product — the shape of bivariate row-degree verification, where
        every off-basis point of every row is predicted from the same
        basis nodes.
        """
        self._check_rows(ys_rows)
        if not ys_rows:
            return []
        lams = [self.lambdas_at(x) for x in xs_eval]
        mod = self.modulus
        if not lams:
            return [[] for _ in ys_rows]
        if _numpy_ready(mod) and len(self.xs) <= _MATMUL_MAX_K:
            arr = _rows_to_array(ys_rows, mod)
            if arr is not None:
                lam_mat = _np.array(lams, dtype=_np.int64).T
                return _matmul_mod(arr, lam_mat, mod).tolist()
        return [
            [sum(l * y for l, y in zip(lam, ys)) % mod for lam in lams]
            for ys in ys_rows
        ]


# -- plan caches --------------------------------------------------------------------

_EVAL_PLANS: Dict[Tuple[int, Tuple[int, ...]], EvalPlan] = {}
_BATCH_EVAL_PLANS: Dict[Tuple[int, Tuple[int, ...]], BatchEvalPlan] = {}
_INTERP_PLANS: Dict[Tuple[int, Tuple[int, ...]], InterpPlan] = {}


def get_eval_plan(field: PrimeField, xs: Sequence[int]) -> EvalPlan:
    """The cached :class:`EvalPlan` for ``(field.modulus, xs)``."""
    key = (field.modulus, tuple(x % field.modulus for x in xs))
    plan = _EVAL_PLANS.get(key)
    if plan is None:
        if len(_EVAL_PLANS) >= PLAN_CACHE_MAX:
            _evict_oldest(_EVAL_PLANS)
        plan = EvalPlan(field, key[1])
        _EVAL_PLANS[key] = plan
    return plan


def get_batch_eval_plan(
    field: PrimeField, xs: Sequence[int]
) -> BatchEvalPlan:
    """The cached :class:`BatchEvalPlan` for ``(field.modulus, xs)``."""
    key = (field.modulus, tuple(x % field.modulus for x in xs))
    plan = _BATCH_EVAL_PLANS.get(key)
    if plan is None:
        if len(_BATCH_EVAL_PLANS) >= PLAN_CACHE_MAX:
            _evict_oldest(_BATCH_EVAL_PLANS)
        plan = BatchEvalPlan(field, key[1])
        _BATCH_EVAL_PLANS[key] = plan
    return plan


def get_interp_plan(field: PrimeField, xs: Sequence[int]) -> InterpPlan:
    """The cached :class:`InterpPlan` for ``(field.modulus, xs)``."""
    key = (field.modulus, tuple(x % field.modulus for x in xs))
    plan = _INTERP_PLANS.get(key)
    if plan is None:
        if len(_INTERP_PLANS) >= PLAN_CACHE_MAX:
            _evict_oldest(_INTERP_PLANS)
        plan = InterpPlan(field, key[1])
        _INTERP_PLANS[key] = plan
    return plan


def clear_plan_caches() -> None:
    """Drop every cached plan (tests; never required for correctness)."""
    _EVAL_PLANS.clear()
    _BATCH_EVAL_PLANS.clear()
    _INTERP_PLANS.clear()


# -- drop-in fast front ends ---------------------------------------------------------


def evaluate_on(
    field: PrimeField, coefficients: Sequence[int], xs: Sequence[int]
) -> List[int]:
    """Plan-cached equivalent of :func:`polynomial.evaluate_many`."""
    return get_eval_plan(field, xs).evaluate(coefficients)


def evaluate_rows(
    field: PrimeField,
    coefficient_rows: Sequence[Sequence[int]],
    xs: Sequence[int],
) -> List[List[int]]:
    """Batched equivalent: many polynomials on one grid, single passes."""
    return get_batch_eval_plan(field, xs).evaluate_many(coefficient_rows)


def interpolate_at(
    field: PrimeField, points: Sequence[Tuple[int, int]], x: int
) -> int:
    """Plan-cached equivalent of :func:`polynomial.lagrange_interpolate_at`."""
    xs = tuple(p[0] for p in points)
    ys = [p[1] for p in points]
    return get_interp_plan(field, xs).interpolate_at(x, ys)


def interpolate_constant(
    field: PrimeField, points: Sequence[Tuple[int, int]]
) -> int:
    """Plan-cached equivalent of :func:`polynomial.interpolate_constant`."""
    return interpolate_at(field, points, 0)


def interpolate_constant_many(
    field: PrimeField,
    xs: Sequence[int],
    ys_rows: Sequence[Sequence[int]],
) -> List[int]:
    """Many reconstructions-at-0 over one shared x-grid, batched.

    ``result[b]`` equals ``interpolate_constant(field,
    list(zip(xs, ys_rows[b])))`` — one matrix-vector product instead of
    one dot product per point-set.
    """
    return get_interp_plan(field, xs).constant_many(ys_rows)


def interpolate_windows_at_zero(
    field: PrimeField,
    xs: Sequence[int],
    ys_rows: Sequence[Sequence[int]],
    windows: Sequence[Sequence[int]],
) -> List[List[int]]:
    """Reconstruct-at-0 of every (row, window) pair in one matrix product.

    ``windows`` are index tuples into ``xs``; ``result[b][w]`` equals
    ``interpolate_constant`` over row ``b``'s points at the ``w``-th
    window's indices.  This is the shape of windowed robust reveal: many
    dealers' share pools over the same member grid, each probed through
    the same threshold-sized windows.  Each window's lambda vector comes
    from the (cached) sub-plan over its own nodes, zero-padded to the
    full pool width, so all windows of all rows collapse into a single
    ``(rows, k) @ (k, windows)`` product on the numpy path.
    """
    mod = field.modulus
    nodes = tuple(x % mod for x in xs)
    k = len(nodes)
    for ys in ys_rows:
        if len(ys) != k:
            raise FieldError("one y value per pool node required")
    win_lams: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
    for combo in windows:
        combo = tuple(combo)
        sub = get_interp_plan(field, tuple(nodes[i] for i in combo))
        win_lams.append((combo, sub.lambdas_at(0)))
    if not ys_rows:
        return []
    if not win_lams:
        return [[] for _ in ys_rows]
    if _numpy_ready(mod) and k <= _MATMUL_MAX_K:
        arr = _rows_to_array(ys_rows, mod)
        if arr is not None:
            lam_mat = _np.zeros((k, len(win_lams)), dtype=_np.int64)
            for w, (combo, lam) in enumerate(win_lams):
                for i, value in zip(combo, lam):
                    lam_mat[i, w] = value
            return _matmul_mod(arr, lam_mat, mod).tolist()
    return [
        [
            sum(lam[j] * ys[i] for j, i in enumerate(combo)) % mod
            for combo, lam in win_lams
        ]
        for ys in ys_rows
    ]


def lambdas_at_zero(
    field: PrimeField, xs: Sequence[int]
) -> Tuple[int, ...]:
    """Plan-cached equivalent of
    :func:`polynomial.lagrange_coefficients_at_zero`."""
    return get_interp_plan(field, xs).lambdas_at(0)
