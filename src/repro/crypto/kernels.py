"""Cached reconstruction and evaluation kernels — the crypto fast path.

Every layer of the Section-3 stack (Shamir dealing, iterated re-sharing,
VSS coins, robust reconstruction) bottoms out in two polynomial
primitives: *evaluate this polynomial on a fixed grid of points* and
*interpolate these points at a fixed x*.  The naive implementations in
:mod:`repro.crypto.polynomial` redo all structural work on every call —
``lagrange_interpolate_at`` spends O(k^2) products plus one modular
inversion per point even though a sweep reconstructs thousands of
secrets over the *same* x-grid (players ``1..n``).

This module precomputes that recurring structure once into *plan*
objects and caches the plans:

* :class:`EvalPlan` — batch grid evaluation.  Fixes the grid ``xs``,
  runs one tight Horner loop per point, and lazily maintains a power
  table ``xs[i]**j`` for callers (Berlekamp-Welch) that need raw
  Vandermonde rows.
* :class:`InterpPlan` — fixes the interpolation nodes ``xs`` and
  precomputes the barycentric weights ``w_i = 1 / prod_{j!=i}
  (x_i - x_j)`` with a **single** modular inversion via
  :func:`~repro.crypto.polynomial.batch_inverse` (Montgomery's trick).
  The Lagrange coefficient vector at any evaluation point ``x`` is then
  O(k) multiplications plus one further batched inversion, and is
  memoised per ``x`` — so reconstruct-at-0 over a warm plan is a plain
  O(k) dot product.

Cache invalidation rules (also documented in ENGINE.md):

* Plans are keyed on ``(modulus, xs)`` and are immutable with respect to
  that key — the weights depend on nothing else — so a cached plan can
  never go stale; the caches exist purely to bound memory.
* Both global plan caches and the per-plan lambda memo are bounded;
  overflowing them drops the *whole* cache (plans are cheap to rebuild,
  and adversarial access patterns — e.g. sliding reconstruction windows
  over huge pools — must not grow memory without limit).
* Two fields with the same ``xs`` never share a plan: the modulus is
  part of the key.

Exactness: every kernel performs the same GF(p) arithmetic as its naive
counterpart, so results are bit-identical — pinned over random degrees,
grids and fields by ``tests/test_kernels.py`` and registry-wide by the
engine parity suite.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .field import FieldError, PrimeField
from .polynomial import batch_inverse, pairwise_denominators

#: Bound on the number of plans each global cache may hold.
PLAN_CACHE_MAX = 2048

#: Bound on memoised per-x lambda vectors within one :class:`InterpPlan`.
LAMBDA_CACHE_MAX = 1024


class EvalPlan:
    """Batch evaluation of polynomials on one fixed grid of points.

    The plan owns the grid (reduced into the field once) and a lazily
    grown power table; :meth:`evaluate` is the single Horner
    implementation every dealing path routes through.
    """

    __slots__ = ("modulus", "xs", "_powers")

    def __init__(self, field: PrimeField, xs: Sequence[int]) -> None:
        self.modulus = field.modulus
        self.xs: Tuple[int, ...] = tuple(x % self.modulus for x in xs)
        # _powers[i][j] == xs[i] ** j (mod p); columns extend on demand.
        self._powers: List[List[int]] = []

    def evaluate(self, coefficients: Sequence[int]) -> List[int]:
        """The polynomial's value at every grid point (Horner per point)."""
        mod = self.modulus
        rev = coefficients[::-1]
        out = []
        append = out.append
        for x in self.xs:
            acc = 0
            for c in rev:
                acc = (acc * x + c) % mod
            append(acc)
        return out

    def power_table(self, count: int) -> List[List[int]]:
        """Rows ``[x**0, x**1, ..., x**(count-1)]`` per grid point.

        Grown monotonically and kept on the plan, so repeated decodes
        over the same pool (Berlekamp-Welch's Vandermonde rows) reuse
        the powers instead of remultiplying them.

        The returned rows ARE the live cache: they may be longer than
        ``count`` (a previous caller asked for more) and must not be
        mutated — slice-copy before building on them, as
        :func:`~repro.crypto.reed_solomon.berlekamp_welch` does.
        """
        mod = self.modulus
        if not self._powers:
            self._powers = [[1] for _ in self.xs]
        have = len(self._powers[0]) if self._powers else 0
        if count > have:
            for x, row in zip(self.xs, self._powers):
                acc = row[-1]
                for _ in range(count - len(row)):
                    acc = (acc * x) % mod
                    row.append(acc)
        return self._powers


class InterpPlan:
    """Lagrange interpolation from one fixed set of nodes.

    Setup computes the barycentric weights with one batched inversion;
    afterwards :meth:`interpolate_at` costs O(k) multiplications per
    call for any memoised evaluation point (0, the share grid, packed
    sharing's reserved negative points, ...).
    """

    __slots__ = ("modulus", "xs", "weights", "_field", "_index", "_lambdas")

    def __init__(self, field: PrimeField, xs: Sequence[int]) -> None:
        mod = field.modulus
        nodes = tuple(x % mod for x in xs)
        if len(set(nodes)) != len(nodes):
            raise FieldError("interpolation points must have distinct x values")
        self.modulus = mod
        self.xs = nodes
        self._field = field
        # w_i = 1 / prod_{j != i} (x_i - x_j): one pow for all of them.
        self.weights: Tuple[int, ...] = tuple(
            batch_inverse(field, pairwise_denominators(field, nodes))
        )
        self._index: Dict[int, int] = {x: i for i, x in enumerate(nodes)}
        self._lambdas: Dict[int, Tuple[int, ...]] = {}

    def lambdas_at(self, x: int) -> Tuple[int, ...]:
        """Lagrange coefficients lambda_i(x): value = sum lambda_i * y_i."""
        x %= self.modulus
        cached = self._lambdas.get(x)
        if cached is None:
            cached = self._compute_lambdas(x)
            if len(self._lambdas) >= LAMBDA_CACHE_MAX:
                self._lambdas.clear()
            self._lambdas[x] = cached
        return cached

    def _compute_lambdas(self, x: int) -> Tuple[int, ...]:
        node = self._index.get(x)
        if node is not None:
            # x is a node: the interpolating polynomial passes through it.
            lam = [0] * len(self.xs)
            lam[node] = 1
            return tuple(lam)
        mod = self.modulus
        diffs = [(x - xj) % mod for xj in self.xs]
        inverses = batch_inverse(self._field, diffs)
        full = 1
        for d in diffs:
            full = (full * d) % mod
        return tuple(
            (w * full % mod) * inv % mod
            for w, inv in zip(self.weights, inverses)
        )

    def interpolate_at(self, x: int, ys: Sequence[int]) -> int:
        """Evaluate the polynomial through ``zip(xs, ys)`` at ``x``."""
        if len(ys) != len(self.xs):
            raise FieldError("one y value per interpolation node required")
        total = 0
        for lam, y in zip(self.lambdas_at(x), ys):
            total += lam * y
        return total % self.modulus

    def constant(self, ys: Sequence[int]) -> int:
        """The constant coefficient — the Shamir secret."""
        return self.interpolate_at(0, ys)


# -- plan caches --------------------------------------------------------------------

_EVAL_PLANS: Dict[Tuple[int, Tuple[int, ...]], EvalPlan] = {}
_INTERP_PLANS: Dict[Tuple[int, Tuple[int, ...]], InterpPlan] = {}


def get_eval_plan(field: PrimeField, xs: Sequence[int]) -> EvalPlan:
    """The cached :class:`EvalPlan` for ``(field.modulus, xs)``."""
    key = (field.modulus, tuple(x % field.modulus for x in xs))
    plan = _EVAL_PLANS.get(key)
    if plan is None:
        if len(_EVAL_PLANS) >= PLAN_CACHE_MAX:
            _EVAL_PLANS.clear()
        plan = EvalPlan(field, key[1])
        _EVAL_PLANS[key] = plan
    return plan


def get_interp_plan(field: PrimeField, xs: Sequence[int]) -> InterpPlan:
    """The cached :class:`InterpPlan` for ``(field.modulus, xs)``."""
    key = (field.modulus, tuple(x % field.modulus for x in xs))
    plan = _INTERP_PLANS.get(key)
    if plan is None:
        if len(_INTERP_PLANS) >= PLAN_CACHE_MAX:
            _INTERP_PLANS.clear()
        plan = InterpPlan(field, key[1])
        _INTERP_PLANS[key] = plan
    return plan


def clear_plan_caches() -> None:
    """Drop every cached plan (tests; never required for correctness)."""
    _EVAL_PLANS.clear()
    _INTERP_PLANS.clear()


# -- drop-in fast front ends ---------------------------------------------------------


def evaluate_on(
    field: PrimeField, coefficients: Sequence[int], xs: Sequence[int]
) -> List[int]:
    """Plan-cached equivalent of :func:`polynomial.evaluate_many`."""
    return get_eval_plan(field, xs).evaluate(coefficients)


def interpolate_at(
    field: PrimeField, points: Sequence[Tuple[int, int]], x: int
) -> int:
    """Plan-cached equivalent of :func:`polynomial.lagrange_interpolate_at`."""
    xs = tuple(p[0] for p in points)
    ys = [p[1] for p in points]
    return get_interp_plan(field, xs).interpolate_at(x, ys)


def interpolate_constant(
    field: PrimeField, points: Sequence[Tuple[int, int]]
) -> int:
    """Plan-cached equivalent of :func:`polynomial.interpolate_constant`."""
    return interpolate_at(field, points, 0)


def lambdas_at_zero(
    field: PrimeField, xs: Sequence[int]
) -> Tuple[int, ...]:
    """Plan-cached equivalent of
    :func:`polynomial.lagrange_coefficients_at_zero`."""
    return get_interp_plan(field, xs).lambdas_at(0)
