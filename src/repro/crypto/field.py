"""Prime-field arithmetic used by the secret-sharing substrate.

The paper (Section 3.1) assumes any (n, t+1) threshold scheme in which each
share is the size of the secret.  We realise that with Shamir sharing over a
prime field GF(p).  The default modulus is the Mersenne prime 2**61 - 1,
which comfortably holds the protocol's "words" (bin choices and coin words
are O(log n) bits) while keeping share size equal to word size.

The class is deliberately small and explicit: elements are plain Python
integers in ``[0, p)`` and all operations are module-level-simple methods.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

#: The Mersenne prime 2**61 - 1 (large-word option).
MERSENNE_61 = (1 << 61) - 1

#: Default modulus: the Mersenne prime 2**31 - 1.  Protocol words are
#: O(log n) bits (bin choices, coin words), so a 31-bit field is faithful
#: and keeps every product within CPython's fast small-int range.
MERSENNE_31 = (1 << 31) - 1

#: A small prime occasionally handy in tests.
SMALL_PRIME = 257


def is_probable_prime(n: int, rounds: int = 16) -> bool:
    """Miller-Rabin primality test.

    Deterministic for n < 3_317_044_064_679_887_385_961_981 when using the
    first 13 prime bases, which covers every modulus this library uses; for
    larger inputs the result is probabilistic with error < 4**-rounds.
    """
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)
    for p in small_primes:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    bases: Iterable[int]
    if n < 3_317_044_064_679_887_385_961_981:
        bases = small_primes
    else:
        rng = random.Random(0xF1E1D)
        bases = [rng.randrange(2, n - 1) for _ in range(rounds)]
    for a in bases:
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


class FieldError(ValueError):
    """Raised for invalid field construction or operations."""


@dataclass(frozen=True)
class PrimeField:
    """The finite field GF(p) for a prime modulus ``p``.

    Elements are canonical Python ints in ``[0, p)``.  The field object is
    immutable and hashable so schemes and shares can reference it cheaply.
    """

    modulus: int = MERSENNE_31

    #: Memoised multiplicative inverses.  Interpolation inverts the same
    #: small coordinate differences (x_i - x_j over committee indices)
    #: millions of times across a tournament, and each miss costs a full
    #: ``pow(a, p-2, p)``.  The cache is excluded from equality/hash so
    #: the field stays a value object, and bounded so adversarial access
    #: patterns cannot grow it without limit.
    _inv_cache: Dict[int, int] = field(
        default_factory=dict, repr=False, compare=False
    )

    #: Cache bound; past it, inverses are computed without memoisation.
    INV_CACHE_MAX = 1 << 16

    def __post_init__(self) -> None:
        if self.modulus < 2 or not is_probable_prime(self.modulus):
            raise FieldError(f"modulus {self.modulus} is not prime")

    # -- element construction -------------------------------------------------

    def element(self, value: int) -> int:
        """Reduce an arbitrary integer into the field."""
        return value % self.modulus

    def random_element(self, rng: random.Random) -> int:
        """A uniformly random field element drawn from ``rng``."""
        return rng.randrange(self.modulus)

    def random_elements(self, count: int, rng: random.Random) -> List[int]:
        """``count`` independent uniform field elements."""
        return [rng.randrange(self.modulus) for _ in range(count)]

    # -- arithmetic ------------------------------------------------------------

    def add(self, a: int, b: int) -> int:
        """a + b mod p."""
        return (a + b) % self.modulus

    def sub(self, a: int, b: int) -> int:
        """a - b mod p."""
        return (a - b) % self.modulus

    def mul(self, a: int, b: int) -> int:
        """a * b mod p."""
        return (a * b) % self.modulus

    def neg(self, a: int) -> int:
        """-a mod p."""
        return (-a) % self.modulus

    def inv(self, a: int) -> int:
        """Multiplicative inverse (memoised); raises FieldError on zero."""
        a %= self.modulus
        if a == 0:
            raise FieldError("zero has no multiplicative inverse")
        cached = self._inv_cache.get(a)
        if cached is None:
            cached = pow(a, self.modulus - 2, self.modulus)
            if len(self._inv_cache) < self.INV_CACHE_MAX:
                self._inv_cache[a] = cached
        return cached

    def precompute_inverses(self, limit: int) -> None:
        """Warm the cache for elements ``1..limit`` in O(limit) total.

        Uses the batched-inversion trick (one ``pow`` for the running
        product, then back-substitution with multiplications only) —
        cheaper than ``limit`` independent ``pow`` calls when priming
        the small coordinates interpolation actually touches.
        """
        limit = min(limit, self.modulus - 1, self.INV_CACHE_MAX)
        if limit < 1:
            return
        prefix = [1] * (limit + 1)
        for i in range(1, limit + 1):
            prefix[i] = (prefix[i - 1] * i) % self.modulus
        running = pow(prefix[limit], self.modulus - 2, self.modulus)
        for i in range(limit, 0, -1):
            self._inv_cache[i] = (running * prefix[i - 1]) % self.modulus
            running = (running * i) % self.modulus

    def div(self, a: int, b: int) -> int:
        """a / b mod p; raises FieldError when b is zero."""
        return self.mul(a, self.inv(b))

    def pow(self, a: int, e: int) -> int:
        """a ** e mod p."""
        return pow(a % self.modulus, e, self.modulus)

    # -- batch helpers ----------------------------------------------------------

    def sum(self, values: Iterable[int]) -> int:
        """Sum of ``values`` mod p."""
        total = 0
        for v in values:
            total = (total + v) % self.modulus
        return total

    def dot(self, left: Sequence[int], right: Sequence[int]) -> int:
        """Inner product of two equal-length vectors."""
        if len(left) != len(right):
            raise FieldError("dot product requires equal-length vectors")
        total = 0
        for a, b in zip(left, right):
            total = (total + a * b) % self.modulus
        return total

    # -- sizing -----------------------------------------------------------------

    @property
    def element_bits(self) -> int:
        """Number of bits needed to encode one field element."""
        return (self.modulus - 1).bit_length()

    def contains(self, value: int) -> bool:
        """Whether ``value`` is a canonical element of the field."""
        return 0 <= value < self.modulus


#: Shared default field instance used across the library.
DEFAULT_FIELD = PrimeField(MERSENNE_31)
