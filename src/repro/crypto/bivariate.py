"""Bivariate-polynomial verifiable secret sharing (BGW/Feldman-free).

The paper deliberately assumes only a *non-verifiable* (n, t+1) threshold
scheme (Section 3.1): with private channels and honest-majority
committees, plain Shamir suffices, and verifiability would cost extra
rounds and bits.  This module implements the classic information-
theoretic alternative — Ben-Or-Goldwasser-Wigderson-style sharing with a
symmetric bivariate polynomial and pairwise echo consistency — so the
trade-off can be measured (ablation in benchmark E9/E17):

* The dealer samples a symmetric bivariate polynomial ``F(x, y)`` of
  degree ``t`` in each variable with ``F(0, 0) = secret`` and gives
  player ``i`` the univariate *row* ``f_i(y) = F(i, y)``.
* Players ``i`` and ``j`` cross-check ``f_i(j) == f_j(i)`` (symmetry);
  a dealt sharing in which every pair of good players is consistent is
  guaranteed to define a unique degree-``t`` secret even if the dealer
  is corrupt — that is the verifiability plain Shamir lacks.
* Player ``i``'s effective Shamir share is ``f_i(0)``; reconstruction is
  ordinary Lagrange interpolation, so verified sharings drop into the
  rest of the library unchanged.

Cost: a row is ``t + 1`` field elements versus Shamir's one, and the
pairwise check is Theta(n^2) messages per dealing — exactly the overhead
the paper avoids by trusting committee majorities instead.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .field import DEFAULT_FIELD, PrimeField
from .kernels import (
    get_batch_eval_plan,
    get_interp_plan,
    interpolate_constant,
)
from .polynomial import evaluate
from .shamir import SecretSharingError, Share


@dataclass(frozen=True)
class BivariateRow:
    """Player ``x``'s row of the bivariate sharing: the map y -> F(x, y).

    ``values[j]`` holds ``F(x, j)`` for j = 0..n_players (index 0 is the
    player's effective Shamir share ``F(x, 0)``).
    """

    x: int
    values: Tuple[int, ...]

    def at(self, y: int) -> int:
        """The row polynomial's value at column ``y``."""
        if not 0 <= y < len(self.values):
            raise SecretSharingError(f"row has no point y={y}")
        return self.values[y]

    def shamir_share(self) -> Share:
        """The effective (x, F(x, 0)) Shamir share of the secret."""
        return Share(x=self.x, value=self.values[0])

    def wire_bits(self) -> int:
        """On-wire size: every stored point is one field element."""
        return sum(max(1, v.bit_length()) for v in self.values)


@dataclass(frozen=True)
class BivariateScheme:
    """A fixed (n_players, threshold) verifiable sharing configuration.

    ``threshold`` is the number of rows needed to reconstruct (t + 1 in
    the usual notation, matching :class:`repro.crypto.shamir.ShamirScheme`).
    """

    n_players: int
    threshold: int
    field: PrimeField = DEFAULT_FIELD

    def __post_init__(self) -> None:
        if self.n_players < 1:
            raise SecretSharingError("need at least one player")
        if not 1 <= self.threshold <= self.n_players:
            raise SecretSharingError(
                "threshold must be in [1, n_players]"
            )
        if self.n_players >= self.field.modulus:
            raise SecretSharingError("field too small for player count")

    # -- dealing -----------------------------------------------------------------

    def deal(self, secret: int, rng: random.Random) -> List[BivariateRow]:
        """Deal rows of a symmetric bivariate polynomial with F(0,0)=secret.

        Grid-factored evaluation: each coefficient row g_i(y) is
        evaluated over the whole column grid once, then every column
        polynomial sum_i g_i(y) x^i over the row grid once — O(n t^2 +
        n^2 t) instead of the naive per-point O(n^2 t^2), through the
        cached :class:`~repro.crypto.kernels.BatchEvalPlan` grids.
        Values are identical to :meth:`_evaluate_bivariate` point by
        point.
        """
        t = self.threshold - 1
        coeffs = self._symmetric_coefficients(secret, t, rng)
        return self.deal_from_coefficients([coeffs])[0]

    def deal_many(
        self, secrets: Sequence[int], rng: random.Random
    ) -> List[List[BivariateRow]]:
        """Deal many independent sharings, batched across dealings.

        Coefficient matrices are sampled per secret in order (the same
        rng stream as dealing one at a time), then every dealing's grid
        passes run stacked through one :class:`BatchEvalPlan` per stage.
        """
        t = self.threshold - 1
        return self.deal_from_coefficients(
            [
                self._symmetric_coefficients(secret, t, rng)
                for secret in secrets
            ]
        )

    def deal_from_coefficients(
        self, coeffs_list: Sequence[Sequence[Sequence[int]]]
    ) -> List[List[BivariateRow]]:
        """Evaluate many sampled coefficient matrices into dealt rows.

        The wave-bulk entry point: callers that must draw each dealing's
        coefficients from a *different* rng (every committee member
        deals from its own stream) sample via
        :meth:`_symmetric_coefficients` themselves and hand the matrices
        here, where both grid-factored stages run as single batched
        passes across every dealing at once.
        """
        if not coeffs_list:
            return []
        n = self.n_players
        t = self.threshold - 1
        y_plan = get_batch_eval_plan(self.field, range(0, n + 1))
        x_plan = get_batch_eval_plan(self.field, range(1, n + 1))
        # Stage 1, all dealings at once: g_i(y) = sum_j c[i][j] * y^j.
        on_grid_flat = y_plan.evaluate_many(
            [row for coeffs in coeffs_list for row in coeffs]
        )
        # Stage 2, all dealings at once: F(x, y) = sum_i g_i(y) * x^i.
        col_polys = []
        for d in range(len(coeffs_list)):
            on_grid = on_grid_flat[d * (t + 1) : (d + 1) * (t + 1)]
            for y in range(n + 1):
                col_polys.append([on_grid[i][y] for i in range(t + 1)])
        cols_flat = x_plan.evaluate_many(col_polys)
        out = []
        for d in range(len(coeffs_list)):
            # columns[y][x-1] = F(x, y) for this dealing.
            columns = cols_flat[d * (n + 1) : (d + 1) * (n + 1)]
            out.append(
                [
                    BivariateRow(
                        x=x,
                        values=tuple(
                            columns[y][x - 1] for y in range(n + 1)
                        ),
                    )
                    for x in range(1, n + 1)
                ]
            )
        return out

    def _symmetric_coefficients(
        self, secret: int, t: int, rng: random.Random
    ) -> List[List[int]]:
        """Coefficient matrix c[i][j] with c[i][j] == c[j][i], c[0][0]=secret."""
        field = self.field
        coeffs = [[0] * (t + 1) for _ in range(t + 1)]
        for i in range(t + 1):
            for j in range(i, t + 1):
                value = field.random_element(rng)
                coeffs[i][j] = value
                coeffs[j][i] = value
        coeffs[0][0] = field.element(secret)
        return coeffs

    def _evaluate_bivariate(
        self, coeffs: Sequence[Sequence[int]], x: int, y: int
    ) -> int:
        """Evaluate F(x, y) via nested Horner in each variable."""
        field = self.field
        # g_i = sum_j coeffs[i][j] * y^j, then F = sum_i g_i * x^i.
        per_row = [evaluate(field, row, y) for row in coeffs]
        return evaluate(field, per_row, x)

    # -- verification ------------------------------------------------------------

    def cross_check(self, row_i: BivariateRow, row_j: BivariateRow) -> bool:
        """The pairwise echo test: F(i, j) must equal F(j, i)."""
        return row_i.at(row_j.x) == row_j.at(row_i.x)

    def verify_dealing(
        self, rows: Sequence[BivariateRow]
    ) -> List[Tuple[int, int]]:
        """All inconsistent pairs among the given rows (empty = verified).

        A corrupt dealer that hands out rows failing any cross-check is
        exposed by the pair involved; a dealing in which all pairs of
        good players verify defines a unique degree-(threshold-1) secret.
        """
        bad_pairs = []
        for a in range(len(rows)):
            for b in range(a + 1, len(rows)):
                if not self.cross_check(rows[a], rows[b]):
                    bad_pairs.append((rows[a].x, rows[b].x))
        return bad_pairs

    def row_degree_ok(self, row: BivariateRow) -> bool:
        """Check the row is a degree-(threshold-1) polynomial in y.

        Interpolate from the first ``threshold`` points and confirm the
        remaining points lie on the same polynomial.
        """
        t = self.threshold
        points = [(y, row.values[y]) for y in range(0, self.n_players + 1)]
        basis, rest = points[:t], points[t:]
        # The basis grid 0..t-1 is the same for every row of every
        # dealing, so the plan (and its per-y lambda vectors) is shared
        # across the whole echo/verification phase.
        plan = get_interp_plan(self.field, tuple(p[0] for p in basis))
        ys = [p[1] for p in basis]
        for y, value in rest:
            if plan.interpolate_at(y, ys) != value:
                return False
        return True

    def rows_degree_ok(
        self, rows: Sequence[BivariateRow]
    ) -> List[bool]:
        """Degree-check many rows with one matrix product.

        ``result[r]`` equals ``row_degree_ok(rows[r])``: every row's
        off-basis points are predicted from its first ``threshold``
        points in a single ``(rows, t) @ (t, rest)`` product against
        the basis grid's memoised lambda vectors
        (:meth:`~repro.crypto.kernels.InterpPlan.interpolate_grid`),
        instead of one dot product per predicted point — the echo-phase
        verification of an entire dealing at once.
        """
        if not rows:
            return []
        t = self.threshold
        rest_ys = list(range(t, self.n_players + 1))
        plan = get_interp_plan(self.field, range(t))
        predicted = plan.interpolate_grid(
            rest_ys, [row.values[:t] for row in rows]
        )
        return [
            all(
                value == row.values[y]
                for y, value in zip(rest_ys, values)
            )
            for row, values in zip(rows, predicted)
        ]

    # -- reconstruction ----------------------------------------------------------

    def reconstruct(self, rows: Sequence[BivariateRow]) -> int:
        """Reconstruct the secret from >= threshold rows."""
        shares = [row.shamir_share() for row in rows]
        if len({s.x for s in shares}) < self.threshold:
            raise SecretSharingError(
                f"need {self.threshold} distinct rows, got "
                f"{len({s.x for s in shares})}"
            )
        points = [(s.x, s.value) for s in shares[: self.threshold]]
        return interpolate_constant(self.field, points)

    def reconstruct_with_complaints(
        self, rows: Sequence[BivariateRow]
    ) -> Tuple[int, Set[int]]:
        """Reconstruct while discarding rows that fail cross-checks.

        Majority-consistency filter: a row inconsistent with more than
        half of the others is presumed forged and dropped.  Returns the
        secret and the set of discarded row indices (player x values).
        """
        keep: List[BivariateRow] = []
        discarded: Set[int] = set()
        for row in rows:
            disagreements = sum(
                0 if self.cross_check(row, other) else 1
                for other in rows
                if other.x != row.x
            )
            if disagreements > (len(rows) - 1) / 2:
                discarded.add(row.x)
            else:
                keep.append(row)
        if len(keep) < self.threshold:
            raise SecretSharingError(
                "too few consistent rows to reconstruct"
            )
        return self.reconstruct(keep), discarded

    # -- accounting ----------------------------------------------------------------

    def row_bits(self) -> int:
        """On-wire bits per dealt row (n_players + 1 field elements)."""
        return (self.n_players + 1) * self.field.element_bits

    def verification_messages(self) -> int:
        """Pairwise echo messages one dealing costs (ordered pairs)."""
        return self.n_players * (self.n_players - 1)

    def overhead_vs_shamir(self) -> float:
        """Share-size blow-up factor relative to plain Shamir."""
        return self.row_bits() / self.field.element_bits
