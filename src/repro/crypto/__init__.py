"""Secret-sharing substrate (paper Section 3.1).

Public surface:

* :class:`~repro.crypto.field.PrimeField` — GF(p) arithmetic.
* :class:`~repro.crypto.shamir.ShamirScheme` — (n, t+1) threshold sharing.
* :class:`~repro.crypto.iterated.ShareTree` — iterated "i-share" dealing.
* :class:`~repro.crypto.kernels.EvalPlan` /
  :class:`~repro.crypto.kernels.InterpPlan` — cached reconstruction and
  evaluation kernels (the hot-path fast lane over
  :mod:`repro.crypto.polynomial`'s reference implementations).
"""

from .field import (
    DEFAULT_FIELD,
    MERSENNE_31,
    MERSENNE_61,
    FieldError,
    PrimeField,
    is_probable_prime,
)
from .iterated import ShareTree, SharePath, recoverable, reshare
from .kernels import (
    EvalPlan,
    InterpPlan,
    clear_plan_caches,
    get_eval_plan,
    get_interp_plan,
)
from .packed import PackedShamirScheme
from .reed_solomon import berlekamp_welch, decode_constant
from .polynomial import (
    evaluate,
    interpolate_constant,
    lagrange_coefficients_at_zero,
    lagrange_interpolate_at,
    random_polynomial,
)
from .shamir import (
    SecretSharingError,
    ShamirScheme,
    Share,
    paper_threshold,
)

__all__ = [
    "DEFAULT_FIELD",
    "MERSENNE_31",
    "MERSENNE_61",
    "FieldError",
    "PrimeField",
    "is_probable_prime",
    "ShareTree",
    "SharePath",
    "recoverable",
    "reshare",
    "EvalPlan",
    "InterpPlan",
    "clear_plan_caches",
    "get_eval_plan",
    "get_interp_plan",
    "PackedShamirScheme",
    "berlekamp_welch",
    "decode_constant",
    "evaluate",
    "interpolate_constant",
    "lagrange_coefficients_at_zero",
    "lagrange_interpolate_at",
    "random_polynomial",
    "SecretSharingError",
    "ShamirScheme",
    "Share",
    "paper_threshold",
]
