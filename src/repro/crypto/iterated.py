"""Iterated secret sharing: the "i-share" machinery of Definition 1.

A dealer shares a secret among n1 players; each player may treat its share
as a secret and re-share it among n2 players (deleting the original), and
so on.  An *i-share* is a share of an (i-1)-share.  Lemma 1 states that an
adversary holding at most t_i shares of each i-share learns nothing.

This module provides:

* :func:`reshare` — split one share value into sub-shares (one iteration).
* :class:`ShareTree` — a dealer-side view of a fully iterated sharing, used
  by tests and benchmarks to validate secrecy/robustness claims without
  running the full network protocol.
* :func:`recoverable` — the exact combinatorial criterion for whether a
  coalition's set of leaf shares determines the secret (>= threshold
  recoverable children at every internal node along some reconstruction).

In the protocol itself (``repro.core.communication``) processors hold
shares tagged with a :class:`SharePath` so that ``sendDown`` can collapse
i-shares back into (i-1)-shares level by level.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .shamir import SecretSharingError, ShamirScheme, Share

#: A path of x-coordinates from the root dealing to a particular i-share.
#: Length i identifies an i-share.
SharePath = Tuple[int, ...]


def reshare(
    scheme: ShamirScheme, share_value: int, rng: random.Random
) -> List[Share]:
    """One iteration of Definition 1: treat a share as a secret and split it.

    The caller is responsible for deleting the original share from memory —
    in the simulator that deletion is performed by the processor model
    (``sendSecretUp`` erases after sharing), mirroring the paper.
    """
    return scheme.deal(share_value, rng)


@dataclass
class ShareTree:
    """A complete iterated sharing of one secret word.

    ``schemes[i]`` is the scheme used at iteration depth ``i`` (0-based):
    the secret is dealt with ``schemes[0]``, each resulting 1-share is
    re-dealt with ``schemes[1]``, and so on.  ``leaves`` maps a full-depth
    :data:`SharePath` to the leaf share value.

    This is an omniscient test/benchmark object; the real protocol never
    materialises the whole tree in one place.
    """

    secret: int
    schemes: List[ShamirScheme]
    leaves: Dict[SharePath, int]

    @classmethod
    def deal(
        cls,
        secret: int,
        schemes: Sequence[ShamirScheme],
        rng: random.Random,
    ) -> "ShareTree":
        """Deal ``secret`` through every iteration level of ``schemes``."""
        if not schemes:
            raise SecretSharingError("need at least one scheme level")
        frontier: Dict[SharePath, int] = {(): secret}
        for scheme in schemes:
            # Whole-level bulk dealing: every node at this depth shares
            # over the same grid, so deal_many fetches the evaluation
            # plan once for the entire frontier.
            paths = list(frontier)
            dealt = scheme.deal_many([frontier[p] for p in paths], rng)
            next_frontier: Dict[SharePath, int] = {}
            for path, shares in zip(paths, dealt):
                for share in shares:
                    next_frontier[path + (share.x,)] = share.value
            frontier = next_frontier
        return cls(secret=secret, schemes=list(schemes), leaves=frontier)

    @property
    def depth(self) -> int:
        """How many sharing iterations the tree holds."""
        return len(self.schemes)

    def leaf_paths(self) -> List[SharePath]:
        """All leaf share paths, sorted."""
        return sorted(self.leaves)

    def reconstruct(self) -> int:
        """Collapse the whole tree bottom-up; must equal ``secret``."""
        return self.reconstruct_from(self.leaves)

    def reconstruct_from(self, known: Dict[SharePath, int]) -> int:
        """Reconstruct the secret from a subset of leaf shares.

        Raises :class:`SecretSharingError` if at any internal node fewer
        than that level's threshold of child values are recoverable.
        """
        frontier = dict(known)
        for level in range(self.depth - 1, -1, -1):
            scheme = self.schemes[level]
            grouped: Dict[SharePath, List[Share]] = {}
            for path, value in frontier.items():
                if len(path) != level + 1:
                    raise SecretSharingError(
                        f"share at path {path} does not belong to level {level + 1}"
                    )
                grouped.setdefault(path[:-1], []).append(
                    Share(x=path[-1], value=value)
                )
            # Whole-level bulk reconstruction: every recoverable parent
            # at this depth interpolates over (usually) the same grid,
            # so reconstruct_many collapses the level in one batched
            # pass instead of one dot product per parent.
            parents = [
                path
                for path, shares in grouped.items()
                if len(shares) >= scheme.threshold
            ]
            values = scheme.reconstruct_many(
                [grouped[path] for path in parents]
            )
            next_frontier: Dict[SharePath, int] = dict(
                zip(parents, values)
            )
            if not next_frontier:
                raise SecretSharingError(
                    f"no level-{level} share recoverable from coalition"
                )
            frontier = next_frontier
        if () not in frontier:
            raise SecretSharingError("secret not recoverable from coalition")
        return frontier[()]

    def recoverable(self, known_paths: Sequence[SharePath]) -> bool:
        """Whether a coalition holding exactly ``known_paths`` learns the secret.

        This is the exact information-theoretic criterion for Shamir-based
        iterated sharing: a node's value is determined iff >= threshold of
        its children's values are determined.  (Holding fewer shares of a
        node gives *zero* information about it — Lemma 1.)
        """
        determined = set(known_paths)
        for level in range(self.depth - 1, -1, -1):
            scheme = self.schemes[level]
            counts: Dict[SharePath, int] = {}
            for path in determined:
                if len(path) == level + 1:
                    counts[path[:-1]] = counts.get(path[:-1], 0) + 1
            for parent_path, count in counts.items():
                if count >= scheme.threshold:
                    determined.add(parent_path)
        return () in determined


def recoverable(
    schemes: Sequence[ShamirScheme], known_paths: Sequence[SharePath]
) -> bool:
    """Coalition-recoverability check without materialising share values.

    Same criterion as :meth:`ShareTree.recoverable` but purely structural;
    used by benchmarks that sweep coalition sizes.
    """
    determined = set(known_paths)
    depth = len(schemes)
    for level in range(depth - 1, -1, -1):
        scheme = schemes[level]
        counts: Dict[SharePath, int] = {}
        for path in determined:
            if len(path) == level + 1:
                counts[path[:-1]] = counts.get(path[:-1], 0) + 1
        for parent_path, count in counts.items():
            if count >= scheme.threshold:
                determined.add(parent_path)
    return () in determined
