"""The fleet coordinator: a crash-resumable, bounded-concurrency runner.

One coordinator owns a fleet root at a time (advisory pid lock).  Its
loop is deliberately simple because every hard invariant already lives
below it:

* the *host list* comes from the worker registry — whichever ``repro
  worker serve --fleet`` processes are currently heartbeating, with
  their announced capacity weights — not from a static ``--hosts``
  flag; stale registrations are evicted before each scheduling pass;
* each job's trials shard through the capacity-weighted
  :class:`~repro.engine.dispatch.DispatchPlan` and execute over the
  unchanged :class:`~repro.engine.distributed.SocketTransport` /
  :func:`~repro.engine.dispatch.run_units` pair, so a worker dying
  mid-job is rebalanced exactly like a dead lane in a one-shot
  distributed sweep;
* every completed work unit is persisted to the job's
  :class:`~repro.fleet.queue.UnitStore` *at collect time*, so a
  coordinator killed mid-sweep loses at most the units in flight.  On
  restart it finds the job still ``running``, loads the persisted
  units, re-dispatches only what is missing, and merges cached and
  fresh results into exactly the list an uninterrupted run produces —
  bit-identical, because trial seeds derive from the spec alone and
  the persisted results round-trip the same wire codecs a live
  worker's reply does.

Jobs run with bounded concurrency (``max_jobs`` sweeps in flight, each
on its own transport); each finished job writes its telemetry
:class:`~repro.engine.telemetry.RunReport` next to its results, which
is what ``repro fleet`` merges for per-lane throughput and usage
alerts.

``crash_after_units`` is the failure-injection hook behind the
crash-resume tests: the coordinator persists that many units fleet-wide
and then dies mid-collect by raising :class:`CoordinatorKilled` — a
``BaseException``, so it sails through the job-level ``except
Exception`` failure handling exactly like ``kill -9`` would, leaving
the job envelope ``running`` and the unit store partially filled.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..engine.costplan import spec_trial_cost
from ..engine.dispatch import DispatchPlan, WorkUnit, run_units
from ..engine.distributed import DEFAULT_LANE_DEPTH, SocketTransport
from ..engine.registry import get_runner
from ..engine.spec import TrialResult
from ..engine.telemetry import RunTelemetry, write_report
from .queue import FleetError, Job, JobQueue, UnitStore
from .registry import DEFAULT_HEARTBEAT_TIMEOUT, FleetRegistry


class CoordinatorKilled(BaseException):
    """Simulated coordinator death (failure injection; not an Exception).

    Deliberately a ``BaseException``: a real ``kill -9`` does not give
    the job-level failure handler a chance to mark the job ``failed``,
    so the simulation must not either.
    """


class CoordinatorInterrupted(BaseException):
    """Graceful stop (Ctrl-C) requested via :meth:`Coordinator.request_stop`.

    Also a ``BaseException`` — and for the same reason as
    :class:`CoordinatorKilled`: an interrupted job must stay
    ``running`` (not be marked ``failed``) so the next ``repro queue
    run`` resumes it from the persisted unit log bit-identically.
    Unlike a simulated kill it unwinds *cleanly*: every job thread
    raises at its next collect point, the scheduling loop re-raises
    after the in-flight siblings settle, and ``run_once``'s ``finally``
    releases the advisory pid lock on the way out.
    """


class _PersistingTelemetry:
    """The coordinator's ``run_units`` telemetry sink: persist-on-collect.

    Wraps the job's real :class:`RunTelemetry` (events pass straight
    through) and, on every successful envelope, writes the unit's
    results to the job's :class:`UnitStore` *before* the collect loop
    moves on — the instant a unit is collected it is durable, which is
    the whole crash-resume story.  ``on_collect`` runs first and is
    where the kill simulation raises.
    """

    def __init__(
        self,
        inner: Optional[RunTelemetry],
        store: UnitStore,
        units: Sequence[WorkUnit],
        unit_indices: Sequence[int],
        on_collect: Any = None,
    ) -> None:
        self._inner = inner
        self._store = store
        self._units = list(units)
        self._indices = list(unit_indices)
        self._on_collect = on_collect

    def note_submit(
        self,
        unit_id: int,
        trials: int,
        mode: str,
        predicted_cost: Optional[float] = None,
    ) -> None:
        if self._inner is not None:
            self._inner.note_submit(
                unit_id, trials, mode, predicted_cost=predicted_cost
            )

    def cancel_submit(self, unit_id: int) -> None:
        if self._inner is not None:
            self._inner.cancel_submit(unit_id)

    def note_result(self, envelope: Any) -> None:
        if envelope.ok and self._on_collect is not None:
            # The kill hook fires *before* this unit persists: a unit
            # budget of N leaves exactly N units durable on disk.
            self._on_collect()
        if self._inner is not None:
            self._inner.note_result(envelope)
        if envelope.ok:
            index = self._indices[envelope.unit_id]
            self._store.save(
                index, self._units[envelope.unit_id], envelope.results
            )


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


class Coordinator:
    """Drain a fleet root's job queue against its registered workers."""

    def __init__(
        self,
        root: str,
        max_jobs: int = 2,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        max_live: int = 64,
        connect_timeout: float = 5.0,
        io_timeout: Optional[float] = None,
        crash_after_units: Optional[int] = None,
        lane_depth: int = DEFAULT_LANE_DEPTH,
    ) -> None:
        if max_jobs < 1:
            raise FleetError("max_jobs must be >= 1")
        if lane_depth < 1:
            raise FleetError("lane_depth must be >= 1")
        self.root = root
        self.queue = JobQueue(root)
        self.registry = FleetRegistry(
            root, heartbeat_timeout=heartbeat_timeout
        )
        self.max_jobs = max_jobs
        self.max_live = max_live
        self.lane_depth = lane_depth
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self.crash_after_units = crash_after_units
        self._collected_units = 0
        self._collect_lock = threading.Lock()
        self._lock_path = os.path.join(root, "coordinator.lock")
        self._stop = threading.Event()

    def request_stop(self) -> None:
        """Ask the coordinator to unwind at the next safe point.

        Signal-handler safe (sets an event, raises nothing here): the
        CLI's SIGINT handler calls this so the *first* Ctrl-C drains
        gracefully — every job thread raises
        :class:`CoordinatorInterrupted` at its next collect point,
        already-persisted units stay durable, interrupted jobs stay
        ``running`` for resume, and the advisory lock is released.
        """
        self._stop.set()

    @property
    def stop_requested(self) -> bool:
        return self._stop.is_set()

    def _check_stop(self) -> None:
        if self._stop.is_set():
            raise CoordinatorInterrupted("stop requested")

    # -- the advisory lock -------------------------------------------------------------

    def _acquire_lock(self) -> None:
        while True:
            try:
                fd = os.open(
                    self._lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                try:
                    with open(self._lock_path) as handle:
                        pid = int(handle.read().strip() or "0")
                except (OSError, ValueError):
                    pid = 0
                if pid and pid != os.getpid() and _pid_alive(pid):
                    raise FleetError(
                        f"another coordinator (pid {pid}) holds "
                        f"{self._lock_path}"
                    )
                # Stale (dead pid) or our own earlier simulated-kill
                # run: a crashed coordinator cannot unlock, so the
                # restart must be able to steal.
                try:
                    os.remove(self._lock_path)
                except FileNotFoundError:
                    pass
                continue
            with os.fdopen(fd, "w") as handle:
                handle.write(str(os.getpid()))
            return

    def _release_lock(self) -> None:
        try:
            os.remove(self._lock_path)
        except FileNotFoundError:
            pass

    # -- worker discovery --------------------------------------------------------------

    def wait_for_workers(
        self, min_workers: int = 1, timeout: float = 30.0
    ) -> List[Tuple[str, int, int]]:
        """Block until ``min_workers`` are registered and fresh.

        Returns their dial triples; raises :class:`FleetError` on
        timeout so a misconfigured fleet fails loudly instead of
        queueing forever.
        """
        deadline = time.monotonic() + timeout
        while True:
            self._check_stop()
            self.registry.evict_dead()
            addresses = self.registry.addresses()
            if len(addresses) >= min_workers:
                return addresses
            if time.monotonic() >= deadline:
                raise FleetError(
                    f"no {min_workers} live worker(s) registered under "
                    f"{self.registry.workers_dir} within {timeout:.0f}s"
                )
            self._stop.wait(0.1)

    # -- failure injection -------------------------------------------------------------

    def _note_collect(self) -> None:
        # The graceful-stop collect point: every persisted unit is a
        # safe place to unwind, because the unit about to persist has
        # not yet been written — resume re-dispatches it.
        self._check_stop()
        if self.crash_after_units is None:
            return
        with self._collect_lock:
            self._collected_units += 1
            if self._collected_units > self.crash_after_units:
                raise CoordinatorKilled(
                    f"simulated coordinator death after "
                    f"{self.crash_after_units} persisted unit(s)"
                )

    # -- one job -----------------------------------------------------------------------

    def _plan(self, job: Job) -> DispatchPlan:
        """Capacity-weighted geometry for one job (mirrors the backend).

        Weighted by the *currently registered* fleet, so a job
        submitted under two weight-1 workers and executed later under
        a weight-4 machine shards for the machine that will run it.
        """
        runner = get_runner(job.spec.runner)
        weights = [w for _, _, w in self.registry.addresses()] or [1]
        if runner.build_async_instance is not None:
            return DispatchPlan.waved(
                job.spec.trials,
                job.unit_size,
                workers=0,
                max_live=(
                    job.max_live if job.max_live is not None else self.max_live
                ),
                weights=weights,
            )
        return DispatchPlan.chunked(
            job.spec.trials, job.unit_size, workers=0, weights=weights
        )

    def run_job(
        self, job: Job, addresses: Sequence[Tuple[str, int, int]]
    ) -> Job:
        """Run one job to a terminal state (the resume path included).

        ``pending`` jobs transition to ``running`` first; ``running``
        jobs are *resumed*: persisted units load from the store, only
        the missing ones dispatch, and the merge covers both.  Any
        ``Exception`` marks the job ``failed`` with the error text;
        :class:`CoordinatorKilled` (and real signals) pass through,
        leaving the envelope ``running`` for the next coordinator.
        """
        job = self.queue.get(job.job_id)
        if job.state == "cancelled":
            return job
        if job.state == "pending":
            job = self.queue.transition(job.job_id, "running")
        elif job.state != "running":
            return job
        try:
            results = self._execute(job, addresses)
        except Exception as exc:
            return self.queue.transition(
                job.job_id, "failed", error=f"{type(exc).__name__}: {exc}"
            )
        self.queue.save_results(job.job_id, results)
        return self.queue.transition(job.job_id, "done")

    def _apply_cost_sizing(
        self,
        jobs: Sequence[Job],
        addresses: Sequence[Tuple[str, int, int]],
    ) -> List[Job]:
        """Stamp cost-derived unit sizes onto pending, unsized jobs.

        The target unit cost is queue-wide — total predicted cost over
        the pending jobs divided by the fleet's weighted lane capacity
        (times the grid parts-per-lane factor) — so cheap sweeps shard
        into large units and expensive sweeps into small ones, and
        every dispatched unit carries roughly equal predicted work.
        The chosen size persists into the job envelope *before* any
        unit dispatches, so a coordinator killed mid-job re-derives
        the identical geometry on resume.  Sizing engages only when
        *every* unsized pending job has a cost model (balancing
        predictions against guesses would misshard both) and never
        touches an explicit ``--unit-size`` or a resumed job.
        """
        from ..engine.costplan import (
            GRID_PARTS_PER_WORKER,
            cost_sized_unit_size,
        )

        unsized = [
            job
            for job in jobs
            if job.state == "pending" and job.unit_size is None
        ]
        if len(unsized) < 2:
            return list(jobs)
        costs: Dict[str, float] = {}
        for job in unsized:
            cost = spec_trial_cost(job.spec)
            if cost is None:
                return list(jobs)
            costs[job.job_id] = cost
        capacity = sum(w for _, _, w in addresses) or 1
        total = sum(
            costs[job.job_id] * job.spec.trials for job in unsized
        )
        target = total / max(1, capacity * GRID_PARTS_PER_WORKER)
        out: List[Job] = []
        for job in jobs:
            if job.job_id in costs:
                size = cost_sized_unit_size(job.spec, target)
                if size is not None:
                    job = self.queue.set_unit_size(job.job_id, size)
            out.append(job)
        return out

    def _execute(
        self, job: Job, addresses: Sequence[Tuple[str, int, int]]
    ) -> List[TrialResult]:
        spec = job.spec
        get_runner(spec.runner)  # unknown scenarios fail fast, locally
        units = self._plan(job).units(spec)
        trial_cost = spec_trial_cost(spec)
        if trial_cost is not None:
            # Advisory stamp for the telemetry skew column; excluded
            # from unit equality, so resume logs written without it
            # still match.
            units = [
                replace(u, predicted_cost=trial_cost * len(u.indices))
                for u in units
            ]
        store = UnitStore(self.root, job.job_id)
        cached: Dict[int, List[TrialResult]] = {}
        missing: List[int] = []
        for index, unit in enumerate(units):
            loaded = store.load(index, unit)
            if loaded is None:
                missing.append(index)
            else:
                cached[index] = loaded
        telemetry = RunTelemetry(
            backend="fleet", total_trials=spec.trials
        )
        fresh: List[TrialResult] = []
        if missing:
            sink = _PersistingTelemetry(
                telemetry,
                store,
                [units[i] for i in missing],
                missing,
                on_collect=self._note_collect,
            )
            transport = SocketTransport(
                addresses,
                connect_timeout=self.connect_timeout,
                io_timeout=self.io_timeout,
                lane_depth=self.lane_depth,
            )
            transport.telemetry = telemetry
            try:
                fresh = run_units(
                    [units[i] for i in missing], transport, telemetry=sink
                )
            finally:
                transport.close()
        merged = sorted(
            [r for results in cached.values() for r in results]
            + list(fresh),
            key=lambda r: r.trial_index,
        )
        if [r.trial_index for r in merged] != list(range(spec.trials)):
            raise FleetError(
                f"job {job.job_id}: merged results do not cover "
                f"trials 0..{spec.trials - 1} exactly once"
            )
        telemetry.finish()
        write_report(
            telemetry.report(results=merged),
            self.queue.report_path(job.job_id),
        )
        return merged

    # -- the scheduling loop -----------------------------------------------------------

    def runnable_jobs(self) -> List[Job]:
        """What this coordinator should (re)start: pending + orphaned
        running jobs, in submission order."""
        return self.queue.by_state("pending", "running")

    def run_once(
        self, min_workers: int = 1, worker_timeout: float = 30.0
    ) -> List[Job]:
        """Drain everything currently runnable; return the final jobs.

        Takes the coordinator lock for the duration.  Jobs run with at
        most ``max_jobs`` sweeps in flight, each over its own
        transport (a shared transport would collide on unit ids).  A
        :class:`CoordinatorKilled` raised by the kill hook propagates
        after in-flight sibling jobs settle — mirroring how a real
        death takes every job's dispatch down at once.
        """
        self._check_stop()
        self._acquire_lock()
        try:
            jobs = self.runnable_jobs()
            if not jobs:
                return []
            addresses = self.wait_for_workers(
                min_workers=min_workers, timeout=worker_timeout
            )
            jobs = self._apply_cost_sizing(jobs, addresses)
            finished: List[Job] = []
            with ThreadPoolExecutor(
                max_workers=self.max_jobs,
                thread_name_prefix="repro-fleet-job",
            ) as pool:
                futures = [
                    pool.submit(self.run_job, job, addresses)
                    for job in jobs
                ]
                error: Optional[BaseException] = None
                for future in futures:
                    try:
                        finished.append(future.result())
                    except BaseException as exc:
                        error = exc
                if error is not None:
                    raise error
            return finished
        finally:
            self._release_lock()

    def run_forever(
        self,
        poll_interval: float = 1.0,
        min_workers: int = 1,
        worker_timeout: float = 30.0,
        idle_rounds: Optional[int] = None,
    ) -> None:
        """Poll-and-drain service loop (the ``repro queue run --watch``
        entry point).  ``idle_rounds`` bounds consecutive empty polls
        (``None`` = run until interrupted)."""
        idle = 0
        while True:
            self._check_stop()
            finished = self.run_once(
                min_workers=min_workers, worker_timeout=worker_timeout
            )
            if finished:
                idle = 0
                continue
            idle += 1
            if idle_rounds is not None and idle >= idle_rounds:
                return
            if self._stop.wait(poll_interval):
                raise CoordinatorInterrupted("stop requested")
