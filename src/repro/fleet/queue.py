"""The persistent job queue: sweeps as durable, resumable on-disk state.

A *job* is one :class:`~repro.engine.spec.ExperimentSpec` waiting to be
(or being) executed by the fleet.  Jobs live as JSON documents on disk
— the spec rides inside the job envelope as its existing wire document
(:func:`~repro.engine.spec.spec_to_wire`), so a queued job survives
process restarts, crosses machines on a shared filesystem, and decodes
with the same versioned codecs the distributed backend already speaks.

Layout of a fleet root directory::

    <root>/jobs/<job-id>.json        one job envelope each
    <root>/results/<job-id>/         persisted per-unit results + merge
    <root>/reports/<job-id>.json     the job's telemetry RunReport
    <root>/workers/<worker-id>.json  heartbeat files (registry.py)

State machine, enforced by :meth:`JobQueue.transition`::

    pending ──▶ running ──▶ done
        │           ├─────▶ failed
        └───────────┴─────▶ cancelled

Writes are atomic (temp file + ``os.replace``), so a reader never sees
a torn envelope; a cancellation racing a completion wins (the
coordinator's ``done``/``failed`` transition observes ``cancelled`` and
leaves it).  A job found ``running`` with no live coordinator is not an
error — it is the crash-resume case: the coordinator re-opens it,
loads the persisted units from :class:`UnitStore`, and dispatches only
what is missing.

:class:`UnitStore` persists each completed :class:`WorkUnit`'s results
the moment the coordinator collects them, as one document per unit
(the unit's own wire codec plus one ``result`` envelope per trial).
Because the persisted results decode through exactly the codecs a
remote worker's reply decodes through, a merge of cached and freshly
executed units is bit-identical to one uninterrupted run.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..engine.dispatch import WorkUnit, unit_from_wire, unit_to_wire
from ..engine.spec import (
    EngineError,
    ExperimentSpec,
    TrialResult,
    WIRE_VERSION,
    require_wire,
    result_from_wire,
    result_to_wire,
    spec_from_wire,
    spec_to_wire,
    wire_dumps,
    wire_loads,
)


class FleetError(EngineError):
    """Raised on fleet contract violations (bad transitions, torn state)."""


#: Every state a job can be in.
JOB_STATES = ("pending", "running", "done", "failed", "cancelled")

#: Allowed transitions; anything else raises :class:`FleetError`.
_TRANSITIONS = {
    "pending": {"running", "cancelled"},
    "running": {"done", "failed", "cancelled"},
    "done": set(),
    "failed": set(),
    "cancelled": set(),
}

#: Terminal states — a job here never runs again.
TERMINAL_STATES = ("done", "failed", "cancelled")


@dataclass(frozen=True)
class Job:
    """One queued sweep: a spec plus durable scheduling state."""

    job_id: str
    spec: ExperimentSpec
    state: str = "pending"
    #: Optional geometry overrides, mirroring DistributedBackend's.
    unit_size: Optional[int] = None
    max_live: Optional[int] = None
    error: str = ""
    submitted_at: float = 0.0
    updated_at: float = 0.0

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise FleetError(f"unknown job state {self.state!r}")

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def describe(self) -> str:
        return f"{self.job_id} [{self.state}] {self.spec.describe()}"


def job_to_wire(job: Job) -> Dict[str, Any]:
    """A :class:`Job` as a version-1 wire document."""
    for value, where in (
        (job.submitted_at, "submitted_at"),
        (job.updated_at, "updated_at"),
    ):
        if not math.isfinite(value):
            raise FleetError(f"non-finite {where} on {job.job_id}")
    return {
        "version": WIRE_VERSION,
        "kind": "job",
        "job_id": job.job_id,
        "spec": spec_to_wire(job.spec),
        "state": job.state,
        "unit_size": job.unit_size,
        "max_live": job.max_live,
        "error": job.error,
        "submitted_at": job.submitted_at,
        "updated_at": job.updated_at,
    }


def job_from_wire(doc: Any) -> Job:
    """Decode a job envelope; inverse of :func:`job_to_wire`."""
    require_wire(doc, "job")
    try:
        unit_size = doc["unit_size"]
        max_live = doc["max_live"]
        return Job(
            job_id=str(doc["job_id"]),
            spec=spec_from_wire(doc["spec"]),
            state=str(doc["state"]),
            unit_size=None if unit_size is None else int(unit_size),
            max_live=None if max_live is None else int(max_live),
            error=str(doc["error"]),
            submitted_at=float(doc["submitted_at"]),
            updated_at=float(doc["updated_at"]),
        )
    except EngineError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise FleetError(f"malformed job document: {exc}") from None


def _write_atomic(path: str, text: str) -> None:
    """Write a small document so readers never observe a torn file."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        handle.write(text)
    os.replace(tmp, path)


class JobQueue:
    """The durable queue under one fleet root directory.

    One coordinator owns a fleet root at a time (an advisory pid lock
    is taken by :class:`~repro.fleet.coordinator.Coordinator`); any
    number of submitters and monitors may read and write concurrently —
    submission allocates job ids race-free via ``O_EXCL`` file
    creation, and every envelope write is atomic.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.jobs_dir = os.path.join(root, "jobs")
        self.results_dir = os.path.join(root, "results")
        self.reports_dir = os.path.join(root, "reports")
        for path in (self.jobs_dir, self.results_dir, self.reports_dir):
            os.makedirs(path, exist_ok=True)

    # -- paths -------------------------------------------------------------------------

    def _job_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def report_path(self, job_id: str) -> str:
        """Where the job's telemetry RunReport is written."""
        return os.path.join(self.reports_dir, f"{job_id}.json")

    # -- submission --------------------------------------------------------------------

    def submit(
        self,
        spec: ExperimentSpec,
        unit_size: Optional[int] = None,
        max_live: Optional[int] = None,
    ) -> Job:
        """Enqueue one spec; returns the pending :class:`Job`.

        Job ids are dense (``job-000001`` …); the id is claimed by
        exclusive file creation, so concurrent submitters never collide.
        """
        if unit_size is not None and unit_size < 1:
            raise FleetError("unit_size must be >= 1")
        if max_live is not None and max_live < 1:
            raise FleetError("max_live must be >= 1")
        number = self._next_number()
        while True:
            job_id = f"job-{number:06d}"
            path = self._job_path(job_id)
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                number += 1
                continue
            now = time.time()
            job = Job(
                job_id=job_id,
                spec=spec,
                unit_size=unit_size,
                max_live=max_live,
                submitted_at=now,
                updated_at=now,
            )
            with os.fdopen(fd, "w") as handle:
                handle.write(wire_dumps(job_to_wire(job)) + "\n")
            return job

    def _next_number(self) -> int:
        highest = 0
        for name in os.listdir(self.jobs_dir):
            if name.startswith("job-") and name.endswith(".json"):
                try:
                    highest = max(highest, int(name[4:-5]))
                except ValueError:
                    continue
        return highest + 1

    # -- reads -------------------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """One job's current envelope; unknown ids raise."""
        path = self._job_path(job_id)
        try:
            with open(path) as handle:
                return job_from_wire(wire_loads(handle.read()))
        except FileNotFoundError:
            raise FleetError(f"unknown job {job_id!r}") from None

    def jobs(self) -> List[Job]:
        """Every job in the queue, ordered by job id."""
        out = []
        for name in sorted(os.listdir(self.jobs_dir)):
            if name.endswith(".json"):
                out.append(self.get(name[:-5]))
        return out

    def by_state(self, *states: str) -> List[Job]:
        """Jobs currently in any of ``states``, ordered by job id."""
        for state in states:
            if state not in JOB_STATES:
                raise FleetError(f"unknown job state {state!r}")
        return [job for job in self.jobs() if job.state in states]

    def depth(self) -> Dict[str, int]:
        """Queue depth per state (every state present, possibly 0)."""
        counts = {state: 0 for state in JOB_STATES}
        for job in self.jobs():
            counts[job.state] += 1
        return counts

    # -- transitions -------------------------------------------------------------------

    def transition(self, job_id: str, state: str, error: str = "") -> Job:
        """Atomically move a job to ``state``; invalid moves raise.

        One deliberate exception: completing a job (``done``/``failed``)
        that a concurrent ``cancel`` beat to the envelope is *not* an
        error — cancellation wins and the cancelled job is returned
        unchanged, so the coordinator's happy path and a user's cancel
        can race safely.
        """
        if state not in JOB_STATES:
            raise FleetError(f"unknown job state {state!r}")
        job = self.get(job_id)
        if job.state == "cancelled" and state in ("done", "failed"):
            return job
        if state not in _TRANSITIONS[job.state]:
            raise FleetError(
                f"job {job_id} cannot move {job.state!r} -> {state!r}"
            )
        updated = replace(
            job, state=state, error=error, updated_at=time.time()
        )
        _write_atomic(
            self._job_path(job_id), wire_dumps(job_to_wire(updated)) + "\n"
        )
        return updated

    def cancel(self, job_id: str) -> Job:
        """Cancel a pending or running job (terminal states raise)."""
        return self.transition(job_id, "cancelled")

    def set_unit_size(self, job_id: str, unit_size: int) -> Job:
        """Persist a planner-chosen unit size onto a *pending* job.

        The coordinator's cost-aware sizing pass calls this before the
        job first dispatches: once the size is in the envelope, a
        coordinator killed mid-job re-derives the identical shard
        geometry on resume, which is what keeps the persisted unit log
        valid.  Only pending jobs may be resized — a running job's
        geometry is pinned by its unit store; anything else raises.
        """
        if unit_size < 1:
            raise FleetError("unit_size must be >= 1")
        job = self.get(job_id)
        if job.state != "pending":
            raise FleetError(
                f"job {job_id} is {job.state!r}; only pending jobs "
                "can be resized"
            )
        updated = replace(job, unit_size=unit_size, updated_at=time.time())
        _write_atomic(
            self._job_path(job_id), wire_dumps(job_to_wire(updated)) + "\n"
        )
        return updated

    # -- merged results ----------------------------------------------------------------

    def results_path(self, job_id: str) -> str:
        return os.path.join(self.results_dir, job_id, "merged.json")

    def save_results(
        self, job_id: str, results: Sequence[TrialResult]
    ) -> None:
        """Persist a job's merged, trial-ordered results."""
        doc = {
            "version": WIRE_VERSION,
            "kind": "job-results",
            "job_id": job_id,
            "results": [result_to_wire(r) for r in results],
        }
        os.makedirs(os.path.dirname(self.results_path(job_id)), exist_ok=True)
        _write_atomic(self.results_path(job_id), wire_dumps(doc) + "\n")

    def load_results(self, job_id: str) -> Optional[List[TrialResult]]:
        """A completed job's merged results (None when not finished)."""
        try:
            with open(self.results_path(job_id)) as handle:
                doc = wire_loads(handle.read())
        except FileNotFoundError:
            return None
        require_wire(doc, "job-results")
        return [result_from_wire(r) for r in doc["results"]]


class UnitStore:
    """Per-unit result persistence — the coordinator's resume log.

    Each completed work unit becomes one on-disk document the moment
    its envelope is collected: the unit itself via its wire codec (so a
    resumed coordinator can verify the plan geometry did not shift
    underneath the job) plus one result envelope per trial.  A restart
    loads what exists, re-dispatches only what is missing, and the
    merged sweep stays bit-identical to an uninterrupted run.
    """

    def __init__(self, root: str, job_id: str) -> None:
        self.dir = os.path.join(root, "results", job_id, "units")
        os.makedirs(self.dir, exist_ok=True)

    def _path(self, unit_index: int) -> str:
        return os.path.join(self.dir, f"unit-{unit_index:06d}.json")

    def save(
        self,
        unit_index: int,
        unit: WorkUnit,
        results: Sequence[TrialResult],
    ) -> None:
        """Persist one completed unit (atomic; replaces any prior write)."""
        doc = {
            "version": WIRE_VERSION,
            "kind": "unit-results",
            "unit_index": unit_index,
            "unit": unit_to_wire(unit),
            "results": [result_to_wire(r) for r in results],
        }
        _write_atomic(self._path(unit_index), wire_dumps(doc) + "\n")

    def load(
        self, unit_index: int, expected: WorkUnit
    ) -> Optional[List[TrialResult]]:
        """A persisted unit's results, or None when it never completed.

        The stored unit must match ``expected`` exactly — a resumed job
        whose spec or geometry changed under it is a real fault, not
        a cache miss, and raises :class:`FleetError`.
        """
        try:
            with open(self._path(unit_index)) as handle:
                doc = wire_loads(handle.read())
        except FileNotFoundError:
            return None
        require_wire(doc, "unit-results")
        stored = unit_from_wire(doc["unit"])
        if stored != expected:
            raise FleetError(
                f"persisted unit {unit_index} does not match the plan "
                f"(stored {stored.indices!r} of "
                f"{stored.spec.describe()}, expected "
                f"{expected.indices!r} of {expected.spec.describe()})"
            )
        results = [result_from_wire(r) for r in doc["results"]]
        if [r.trial_index for r in results] != list(expected.indices):
            raise FleetError(
                f"persisted unit {unit_index} results do not cover its "
                "indices"
            )
        return results

    def completed_indices(self) -> Tuple[int, ...]:
        """Indices of the units already persisted, sorted."""
        out = []
        for name in os.listdir(self.dir):
            if name.startswith("unit-") and name.endswith(".json"):
                try:
                    out.append(int(name[5:-5]))
                except ValueError:
                    continue
        return tuple(sorted(out))
