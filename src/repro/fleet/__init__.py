"""The sweep control plane: queue, worker registry, coordinator, monitor.

Turns the one-shot distributed backend into a long-lived service.  The
shared medium is a *fleet root directory* — atomically-written JSON
wire documents, nothing live — with four cooperating pieces on top:

* :mod:`~repro.fleet.queue` — the persistent job queue
  (:class:`JobQueue`) holding wire-format ``ExperimentSpec`` jobs with
  atomic state transitions, plus the per-unit :class:`UnitStore`
  resume log;
* :mod:`~repro.fleet.registry` — worker discovery
  (:class:`FleetRegistry`): ``repro worker serve --fleet`` processes
  register, heartbeat, and announce capacity weights; stale workers
  are evicted;
* :mod:`~repro.fleet.coordinator` — the crash-resumable, bounded-
  concurrency job runner (:class:`Coordinator`) dispatching over the
  registered fleet through the unchanged dispatch plane;
* :mod:`~repro.fleet.monitor` — the ``repro fleet`` view
  (:class:`FleetMonitor`): host health, queue depth, per-lane
  throughput and usage alerts from merged telemetry reports.

See the "Fleet" section of ENGINE.md for the lifecycle diagram,
heartbeat protocol and resume semantics.
"""

from .coordinator import (
    Coordinator,
    CoordinatorInterrupted,
    CoordinatorKilled,
)
from .monitor import (
    DEFAULT_USAGE_ALERT,
    FleetMonitor,
    FleetSnapshot,
    alerts,
    render,
    snapshot,
)
from .queue import (
    JOB_STATES,
    TERMINAL_STATES,
    FleetError,
    Job,
    JobQueue,
    UnitStore,
    job_from_wire,
    job_to_wire,
)
from .registry import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_HEARTBEAT_TIMEOUT,
    FleetRegistry,
    HeartbeatThread,
    WorkerInfo,
    default_worker_id,
    worker_from_wire,
    worker_to_wire,
)

__all__ = [
    "Coordinator",
    "CoordinatorInterrupted",
    "CoordinatorKilled",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_HEARTBEAT_TIMEOUT",
    "DEFAULT_USAGE_ALERT",
    "FleetError",
    "FleetMonitor",
    "FleetRegistry",
    "FleetSnapshot",
    "HeartbeatThread",
    "JOB_STATES",
    "Job",
    "JobQueue",
    "TERMINAL_STATES",
    "UnitStore",
    "WorkerInfo",
    "alerts",
    "default_worker_id",
    "job_from_wire",
    "job_to_wire",
    "render",
    "snapshot",
    "worker_from_wire",
    "worker_to_wire",
]
