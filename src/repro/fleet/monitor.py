"""``repro fleet``: the live view over a fleet root directory.

Everything rendered here is read from the same on-disk control plane
the coordinator and workers write — worker heartbeat files, job
envelopes, and the per-job telemetry ``RunReport`` artifacts — so the
monitor needs no connection to anything live and works equally on a
fleet that is running, crashed, or long finished.

Per-lane throughput and the usage alerts come from *merging* the job
reports (:meth:`RunReport.merge` is associative, so the fold over any
number of jobs is order-independent): lane usage is the fraction of
the **summed** per-job wall clocks a lane spent executing units —
summed, not merged, because concurrently-run jobs overlap and the
merged wall clock (a max) would report busy fractions above 100%.
Crossing ``usage_alert`` flags the lane as saturated — the signal to
raise its capacity weight or add workers.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..analysis.reporting import Table
from ..engine.telemetry import RunReport, load_report
from .queue import Job, JobQueue
from .registry import (
    DEFAULT_HEARTBEAT_TIMEOUT,
    FleetRegistry,
    WorkerInfo,
)

#: Lane busy fraction above which the monitor raises a usage alert.
DEFAULT_USAGE_ALERT = 0.9


@dataclass(frozen=True)
class FleetSnapshot:
    """One consistent-enough read of a fleet root's observable state."""

    now: float
    heartbeat_timeout: float
    workers: Tuple[WorkerInfo, ...] = ()
    jobs: Tuple[Job, ...] = ()
    report: RunReport = field(default_factory=RunReport)
    #: Sum of the per-job wall clocks (the merged report's wall is a
    #: max, which under-counts when jobs ran concurrently).
    total_wall_seconds: float = 0.0

    def alive_workers(self) -> List[WorkerInfo]:
        return [
            w
            for w in self.workers
            if w.age(self.now) <= self.heartbeat_timeout
        ]

    def stale_workers(self) -> List[WorkerInfo]:
        return [
            w
            for w in self.workers
            if w.age(self.now) > self.heartbeat_timeout
        ]

    def depth(self) -> dict:
        counts = {
            s: 0 for s in ("pending", "running", "done", "failed", "cancelled")
        }
        for job in self.jobs:
            counts[job.state] += 1
        return counts

    def lane_usage(self) -> List[Tuple[str, float]]:
        """Per-lane busy fraction of the summed job wall clocks."""
        if self.total_wall_seconds <= 0:
            return []
        return [
            (lane.lane, sum(lane.unit_seconds) / self.total_wall_seconds)
            for lane in self.report.lanes
        ]


def snapshot(
    root: str,
    heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
    now: Optional[float] = None,
) -> FleetSnapshot:
    """Read a fleet root: roster, queue, and the merged telemetry."""
    now = time.time() if now is None else now
    registry = FleetRegistry(root, heartbeat_timeout=heartbeat_timeout)
    queue = JobQueue(root)
    report = RunReport()
    total_wall = 0.0
    for name in sorted(os.listdir(queue.reports_dir)):
        if name.endswith(".json"):
            job_report = load_report(os.path.join(queue.reports_dir, name))
            report = report.merge(job_report)
            total_wall += job_report.wall_seconds
    return FleetSnapshot(
        now=now,
        heartbeat_timeout=heartbeat_timeout,
        workers=tuple(registry.workers()),
        jobs=tuple(queue.jobs()),
        report=report,
        total_wall_seconds=total_wall,
    )


def alerts(
    snap: FleetSnapshot, usage_alert: float = DEFAULT_USAGE_ALERT
) -> List[str]:
    """The fleet's current warning lines (empty = healthy)."""
    out: List[str] = []
    for worker in snap.stale_workers():
        out.append(
            f"worker {worker.worker_id} is stale: last heartbeat "
            f"{worker.age(snap.now):.1f}s ago (timeout "
            f"{snap.heartbeat_timeout:.0f}s)"
        )
    depth = snap.depth()
    if depth["pending"] + depth["running"] > 0 and not snap.alive_workers():
        out.append(
            f"{depth['pending'] + depth['running']} job(s) queued but no "
            "live worker is registered"
        )
    for job in snap.jobs:
        if job.state == "failed":
            out.append(f"job {job.job_id} failed: {job.error}")
    for lane, usage in snap.lane_usage():
        if usage > usage_alert:
            out.append(
                f"lane {lane} usage {usage:.0%} exceeds the "
                f"{usage_alert:.0%} threshold — consider raising its "
                "capacity weight or adding workers"
            )
    for lane in snap.report.lanes:
        if lane.dead_events:
            out.append(
                f"lane {lane.lane} recorded {lane.dead_events} dead "
                "event(s) — units were rebalanced away from it"
            )
    return out


def render(
    snap: FleetSnapshot, usage_alert: float = DEFAULT_USAGE_ALERT
) -> str:
    """The snapshot as plain-text tables plus an alert block."""
    workers = Table(
        title="fleet workers",
        headers=["worker", "address", "capacity", "units", "age s", "state"],
        note=(
            f"heartbeat timeout {snap.heartbeat_timeout:.0f}s; stale "
            "workers are evicted by the coordinator's next pass"
        ),
    )
    for worker in snap.workers:
        age = worker.age(snap.now)
        workers.add_row(
            worker.worker_id,
            f"{worker.host}:{worker.port}",
            f"{worker.capacity}",
            f"{worker.units_served}",
            f"{age:.1f}",
            "alive" if age <= snap.heartbeat_timeout else "STALE",
        )
    if not snap.workers:
        workers.add_row("(none registered)", "", "", "", "", "")

    depth = snap.depth()
    jobs = Table(
        title=(
            "job queue  ["
            + "  ".join(f"{state}:{n}" for state, n in depth.items())
            + "]"
        ),
        headers=["job", "state", "spec", "note"],
    )
    for job in snap.jobs:
        jobs.add_row(
            job.job_id, job.state, job.spec.describe(), job.error
        )
    if not snap.jobs:
        jobs.add_row("(empty)", "", "", "")

    tables = [workers, jobs]

    if snap.report.lanes:
        usage = dict(snap.lane_usage())
        lanes = Table(
            title="lane throughput (merged job reports)",
            headers=[
                "lane", "units", "trials", "trials/s", "p50 s", "usage"
            ],
            note="usage = busy fraction of the summed job wall clocks",
        )
        wall = snap.total_wall_seconds
        for lane in snap.report.lanes:
            lane_usage = usage.get(lane.lane, 0.0)
            rate = lane.trials / wall if wall > 0 else 0.0
            p50 = (
                sorted(lane.unit_seconds)[len(lane.unit_seconds) // 2]
                if lane.unit_seconds
                else 0.0
            )
            lanes.add_row(
                lane.lane,
                f"{lane.units_ok}",
                f"{lane.trials}",
                f"{rate:.1f}",
                f"{p50:.4f}",
                f"{lane_usage:.0%}",
            )
        tables.append(lanes)

    body = "\n\n".join(table.to_text() for table in tables)
    warning_lines = alerts(snap, usage_alert=usage_alert)
    if warning_lines:
        body += "\n\nalerts:\n" + "\n".join(
            f"  ! {line}" for line in warning_lines
        )
    else:
        body += "\n\nalerts: none"
    return body


class FleetMonitor:
    """The ``repro fleet`` loop: render a fleet root, repeatedly."""

    def __init__(
        self,
        root: str,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        usage_alert: float = DEFAULT_USAGE_ALERT,
        interval: float = 2.0,
    ) -> None:
        self.root = root
        self.heartbeat_timeout = heartbeat_timeout
        self.usage_alert = usage_alert
        self.interval = interval

    def render_once(self, now: Optional[float] = None) -> str:
        return render(
            snapshot(
                self.root,
                heartbeat_timeout=self.heartbeat_timeout,
                now=now,
            ),
            usage_alert=self.usage_alert,
        )

    def watch(
        self, stream: Optional[object] = None, iterations: Optional[int] = None
    ) -> None:
        """Redraw until interrupted (``iterations`` bounds it in tests)."""
        stream = stream if stream is not None else sys.stdout
        count = 0
        while iterations is None or count < iterations:
            if count:
                time.sleep(self.interval)
            stream.write(self.render_once() + "\n")
            stream.flush()
            count += 1
