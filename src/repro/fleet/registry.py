"""Worker discovery: registration files, heartbeats, eviction.

PR 5's distributed backend took a static ``--hosts`` list on every
invocation; the fleet replaces that with *registration*: each ``repro
worker serve --fleet <root>`` announces itself by writing (and
periodically rewriting) one heartbeat file under ``<root>/workers/``,
carrying its dial address, its capacity weight, and a wall-clock
heartbeat stamp.  The coordinator derives its host list from whichever
registrations are currently *fresh* — a worker whose heartbeat goes
stale is evicted (its file removed) and any unit in flight on it is
rebalanced by the existing ``run_units`` retry path, exactly as if the
host had died mid-sweep.

The registry is the same medium as the queue — atomically-written JSON
files on a shared directory — so it needs no extra server, survives
coordinator restarts, and `repro fleet` can render host health without
talking to anything live.
"""

from __future__ import annotations

import os
import socket as socket_module
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from ..engine.spec import (
    WIRE_VERSION,
    require_wire,
    wire_dumps,
    wire_loads,
)
from .queue import FleetError, _write_atomic

#: A worker whose heartbeat is older than this (seconds) is dead.
DEFAULT_HEARTBEAT_TIMEOUT = 10.0

#: How often a live worker rewrites its heartbeat file.
DEFAULT_HEARTBEAT_INTERVAL = 2.0


@dataclass(frozen=True)
class WorkerInfo:
    """One registered worker: dial address, capacity, liveness stamp."""

    worker_id: str
    host: str
    port: int
    capacity: int = 1
    started_at: float = 0.0
    heartbeat_at: float = 0.0
    #: Advisory: the worker's own served-unit counter at last heartbeat.
    units_served: int = 0
    #: Advisory: wire codecs the worker accepts (monitoring only — the
    #: transport always re-negotiates per connection, so a stale roster
    #: entry can never force a codec a worker no longer speaks).
    codecs: Tuple[int, ...] = (1,)

    def __post_init__(self) -> None:
        if not self.worker_id:
            raise FleetError("worker_id must be non-empty")
        if not 0 < self.port < 65536:
            raise FleetError(
                f"worker {self.worker_id!r}: port {self.port} outside "
                "1..65535"
            )
        if self.capacity < 1:
            raise FleetError(
                f"worker {self.worker_id!r}: capacity {self.capacity} "
                "must be >= 1"
            )

    @property
    def address(self) -> Tuple[str, int, int]:
        """The ``(host, port, weight)`` triple the dispatch plane dials."""
        return (self.host, self.port, self.capacity)

    def age(self, now: Optional[float] = None) -> float:
        """Seconds since the last heartbeat, on the observer's clock.

        Clamped at zero: a heartbeat stamped *ahead* of the observer's
        clock (cross-host skew, an NTP step on either side) reads as
        freshly alive instead of as a negative age.  Callers comparing
        several workers must pass one shared ``now`` — as
        :meth:`FleetRegistry.alive`, :meth:`FleetRegistry.evict_dead`
        and the fleet monitor's snapshot do — so a roster pass ranks
        every stamp against a single observer reading rather than a
        drifting per-worker ``time.time()``.
        """
        reference = time.time() if now is None else now
        return max(0.0, reference - self.heartbeat_at)


def worker_to_wire(info: WorkerInfo) -> Dict[str, Any]:
    """A :class:`WorkerInfo` as a version-1 wire document."""
    return {
        "version": WIRE_VERSION,
        "kind": "worker",
        "worker_id": info.worker_id,
        "host": info.host,
        "port": info.port,
        "capacity": info.capacity,
        "started_at": info.started_at,
        "heartbeat_at": info.heartbeat_at,
        "units_served": info.units_served,
        "codecs": list(info.codecs),
    }


def worker_from_wire(doc: Any) -> WorkerInfo:
    """Decode a worker registration; inverse of :func:`worker_to_wire`."""
    require_wire(doc, "worker")
    try:
        return WorkerInfo(
            worker_id=str(doc["worker_id"]),
            host=str(doc["host"]),
            port=int(doc["port"]),
            capacity=int(doc["capacity"]),
            started_at=float(doc["started_at"]),
            heartbeat_at=float(doc["heartbeat_at"]),
            units_served=int(doc["units_served"]),
            # Tolerant: registrations written before the wire codec
            # imply the JSON line protocol.
            codecs=tuple(int(c) for c in doc.get("codecs", (1,))),
        )
    except FleetError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise FleetError(f"malformed worker document: {exc}") from None


def default_worker_id(host: str, port: int) -> str:
    """A stable, filename-safe worker id for one listening address."""
    node = socket_module.gethostname().split(".")[0] or "worker"
    return f"{node}-{host.replace(':', '_')}-{port}"


class FleetRegistry:
    """The worker roster under ``<root>/workers/``.

    Readers (coordinator, monitor) and writers (workers) share nothing
    but the directory; every registration write is atomic, so a reader
    racing a heartbeat sees either the old stamp or the new one.
    """

    def __init__(
        self,
        root: str,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
    ) -> None:
        if heartbeat_timeout <= 0:
            raise FleetError("heartbeat_timeout must be > 0")
        self.root = root
        self.heartbeat_timeout = heartbeat_timeout
        self.workers_dir = os.path.join(root, "workers")
        os.makedirs(self.workers_dir, exist_ok=True)

    def _path(self, worker_id: str) -> str:
        if "/" in worker_id or worker_id in (".", ".."):
            raise FleetError(f"unsafe worker id {worker_id!r}")
        return os.path.join(self.workers_dir, f"{worker_id}.json")

    # -- worker side -------------------------------------------------------------------

    def register(
        self,
        host: str,
        port: int,
        capacity: int = 1,
        worker_id: Optional[str] = None,
        codecs: Tuple[int, ...] = (1,),
    ) -> WorkerInfo:
        """Announce one worker; returns the registration just written."""
        now = time.time()
        info = WorkerInfo(
            worker_id=worker_id or default_worker_id(host, port),
            host=host,
            port=port,
            capacity=capacity,
            started_at=now,
            heartbeat_at=now,
            codecs=codecs,
        )
        self._write(info)
        return info

    def heartbeat(
        self, info: WorkerInfo, units_served: Optional[int] = None
    ) -> WorkerInfo:
        """Refresh one worker's liveness stamp."""
        updated = replace(
            info,
            heartbeat_at=time.time(),
            units_served=(
                info.units_served if units_served is None else units_served
            ),
        )
        self._write(updated)
        return updated

    def deregister(self, worker_id: str) -> None:
        """Withdraw a worker (idempotent — eviction may have won)."""
        try:
            os.remove(self._path(worker_id))
        except FileNotFoundError:
            pass

    def _write(self, info: WorkerInfo) -> None:
        _write_atomic(
            self._path(info.worker_id),
            wire_dumps(worker_to_wire(info)) + "\n",
        )

    # -- reader side -------------------------------------------------------------------

    def workers(self) -> List[WorkerInfo]:
        """Every registration on disk, fresh or stale, ordered by id."""
        out = []
        for name in sorted(os.listdir(self.workers_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.workers_dir, name)
            try:
                with open(path) as handle:
                    out.append(worker_from_wire(wire_loads(handle.read())))
            except FileNotFoundError:
                continue  # evicted between listdir and open
        return out

    def alive(self, now: Optional[float] = None) -> List[WorkerInfo]:
        """Workers whose heartbeat is within the timeout."""
        now = time.time() if now is None else now
        return [
            w for w in self.workers() if w.age(now) <= self.heartbeat_timeout
        ]

    def evict_dead(self, now: Optional[float] = None) -> List[WorkerInfo]:
        """Remove stale registrations; returns what was evicted.

        Eviction only touches the roster — a unit in flight on an
        evicted host keeps running client-side until its lane fails,
        at which point the collect loop rebalances it (the lane is
        excluded from the retry) through the unchanged ``run_units``
        path.
        """
        now = time.time() if now is None else now
        evicted = []
        for worker in self.workers():
            if worker.age(now) > self.heartbeat_timeout:
                self.deregister(worker.worker_id)
                evicted.append(worker)
        return evicted

    def addresses(self) -> List[Tuple[str, int, int]]:
        """Dial triples of the currently-alive workers.

        What the coordinator feeds the capacity-weighted dispatch plane
        in place of a static host list.
        """
        return [w.address for w in self.alive()]


class HeartbeatThread:
    """The worker-process side of liveness: a periodic heartbeat writer.

    ``repro worker serve --fleet <root>`` starts one next to its
    :class:`~repro.engine.distributed.WorkerServer`; the thread
    registers on start, rewrites the heartbeat file every ``interval``
    seconds (carrying the server's served-unit counter), and
    deregisters on :meth:`stop` — so a cleanly drained worker leaves
    the roster immediately instead of waiting out the timeout.
    """

    def __init__(
        self,
        registry: FleetRegistry,
        host: str,
        port: int,
        capacity: int = 1,
        worker_id: Optional[str] = None,
        interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        units_served: Any = None,
        codecs: Tuple[int, ...] = (1,),
    ) -> None:
        if interval <= 0:
            raise FleetError("heartbeat interval must be > 0")
        self.registry = registry
        self.interval = interval
        #: Zero-argument callable polled for the served-unit counter.
        self.units_served = units_served
        self.info = registry.register(
            host, port, capacity=capacity, worker_id=worker_id,
            codecs=codecs,
        )
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "HeartbeatThread":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run,
                name=f"repro-heartbeat-{self.info.worker_id}",
                daemon=True,
            )
            self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            count = self.units_served() if self.units_served else 0
            self.info = self.registry.heartbeat(
                self.info, units_served=count
            )

    def stop(self) -> None:
        """Stop heartbeating and withdraw the registration (idempotent)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.registry.deregister(self.info.worker_id)

    def __enter__(self) -> "HeartbeatThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
