"""Dealer-free Beaver triple generation (GRR degree reduction).

Removes the trusted dealer that :mod:`repro.mpc.beaver` assumes,
closing the substitution documented in DESIGN.md §5b.  The committee
generates its own triples with the Gennaro-Rabin-Rabin (1998)
simplification of BGW multiplication:

1. **Random sharings without a dealer**: every member deals a random
   value; the sum of all dealings is a uniformly random shared value no
   coalition below the threshold can bias or predict (each member's own
   contribution is a one-time pad on the rest).  Two of these give
   shared ``a`` and ``b``.
2. **Local multiplication**: member ``i`` computes ``d_i = a_i * b_i``,
   a point on the degree-``2t`` product polynomial — too high a degree
   to reconstruct with ``t+1`` shares, hence step 3.
3. **Degree reduction**: each member re-shares ``d_i`` at degree ``t``;
   members then combine the received sub-shares with the public
   Lagrange coefficients lambda_i (``ab = sum_i lambda_i * d_i``) to
   obtain degree-``t`` shares of ``c = a * b``.

Requires ``n_players >= 2t + 1`` so the product polynomial is
determined by the members' points — the honest-majority condition of
BGW, satisfied by the paper's committees (corruption below 1/3 with
t chosen at n/3 rather than the sharing layer's default n/2).

Cost: 2 dealings per member for a/b plus one re-sharing per member for
the reduction — Theta(k^2) field elements per triple, the figure quoted
in the E18 notes.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..crypto.kernels import lambdas_at_zero
from ..crypto.shamir import SecretSharingError, ShamirScheme, Share
from .beaver import BeaverTriple


def triple_scheme(committee_size: int) -> ShamirScheme:
    """A Shamir configuration that supports degree reduction.

    Degree reduction needs n >= 2t + 1; choose t = (k - 1) // 3 (the
    BA-compatible third) so the committee tolerates the same corruption
    fraction as the surrounding protocol.
    """
    t = (committee_size - 1) // 3
    return ShamirScheme(n_players=committee_size, threshold=t + 1)


def check_reduction_compatible(scheme: ShamirScheme) -> None:
    """Raise unless the scheme leaves room for degree-2t interpolation."""
    t = scheme.threshold - 1
    if scheme.n_players < 2 * t + 1:
        raise SecretSharingError(
            f"degree reduction needs n >= 2t+1: n={scheme.n_players}, "
            f"t={t}"
        )


def distributed_random_sharing(
    scheme: ShamirScheme,
    rng: random.Random,
    contributions: Optional[Sequence[int]] = None,
) -> List[Share]:
    """A shared uniform random value with no dealer.

    Every member deals a random contribution; members sum their columns.
    ``contributions`` overrides the sampled values (used by tests and by
    adversary simulations that fix corrupt members' inputs — note that
    fixing up to ``threshold - 1`` contributions cannot bias the sum).
    """
    fld = scheme.field
    k = scheme.n_players
    if contributions is None:
        contributions = [fld.random_element(rng) for _ in range(k)]
    if len(contributions) != k:
        raise SecretSharingError("one contribution per member required")
    rows = scheme.deal_many(contributions, rng)
    summed = []
    for i in range(k):
        x = rows[0][i].x
        acc = 0
        for row in rows:
            acc = fld.add(acc, row[i].value)
        summed.append(Share(x=x, value=acc))
    return summed


def degree_reduce_product(
    a_shares: Sequence[Share],
    b_shares: Sequence[Share],
    scheme: ShamirScheme,
    rng: random.Random,
) -> List[Share]:
    """Degree-t shares of a*b from degree-t shares of a and b (GRR).

    Every member participates (the simulation is omniscient; a real
    deployment runs the same arithmetic across the committee's private
    channels and one synchronous round).
    """
    check_reduction_compatible(scheme)
    fld = scheme.field
    k = scheme.n_players
    if [s.x for s in a_shares] != [s.x for s in b_shares]:
        raise SecretSharingError("a and b shares misaligned")

    # Step 2: local products — points on the degree-2t polynomial.
    products = [
        fld.mul(a.value, b.value) for a, b in zip(a_shares, b_shares)
    ]

    # Step 3: each member re-shares its product point at degree t...
    reshared = scheme.deal_many(products, rng)

    # ...and everyone linearly combines with the public Lagrange weights
    # for interpolating the degree-2t polynomial at zero from all k points
    # (plan-cached: the committee grid is fixed, so repeated triples pay
    # the weight setup once).
    xs = [s.x for s in a_shares]
    lambdas = lambdas_at_zero(fld, xs)
    reduced = []
    for j in range(k):
        x = reshared[0][j].x
        acc = 0
        for i in range(k):
            acc = fld.add(acc, fld.mul(lambdas[i], reshared[i][j].value))
        reduced.append(Share(x=x, value=acc))
    return reduced


def generate_triple_distributed(
    scheme: ShamirScheme, rng: random.Random
) -> BeaverTriple:
    """A Beaver triple produced by the committee itself (no dealer)."""
    check_reduction_compatible(scheme)
    a_shares = distributed_random_sharing(scheme, rng)
    b_shares = distributed_random_sharing(scheme, rng)
    c_shares = degree_reduce_product(a_shares, b_shares, scheme, rng)
    return BeaverTriple(
        a=tuple(a_shares), b=tuple(b_shares), c=tuple(c_shares)
    )


def triple_generation_bits(scheme: ShamirScheme) -> int:
    """Field bits of committee traffic one distributed triple costs.

    Two random dealings plus one re-sharing, each k members dealing k
    shares: 3 * k^2 field elements.
    """
    k = scheme.n_players
    return 3 * k * k * scheme.field.element_bits
