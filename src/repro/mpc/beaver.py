"""Multiplication of shared values via Beaver triples.

Linear MPC (:mod:`repro.mpc.linear`) handles additions for free;
multiplication needs one round of interaction and preprocessed
randomness.  Beaver's trick (1991): given shares of random ``a, b, c``
with ``c = a * b`` (the *triple*), the committee multiplies shared
``x`` and ``y`` by

1. locally computing shares of ``d = x - a`` and ``e = y - b``;
2. opening ``d`` and ``e`` (safe: ``a``/``b`` are uniform one-time pads);
3. locally setting ``z_i = c_i + d * b_i + e * a_i + d * e`` — shares of
   ``x * y``, since ``xy = c + db + ea + de``.

Triple generation here uses a **trusted dealer** (the standard
preprocessing model; in a full deployment triples are produced by a
distributed protocol — e.g. the committee's own sharing plus degree
reduction — at Theta(k^2) communication per triple).  The substitution
is documented in DESIGN.md: the dealer exercises the same online code
path the distributed generation would feed.

Cost per multiplication: two openings (2k field elements) on top of the
free linear algebra — so an arithmetic circuit with m multiplication
gates costs O(m * k) field elements of committee traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..crypto.shamir import SecretSharingError, ShamirScheme, Share


@dataclass(frozen=True)
class BeaverTriple:
    """Shares of random a, b and c = a*b, aligned on evaluation points."""

    a: Tuple[Share, ...]
    b: Tuple[Share, ...]
    c: Tuple[Share, ...]

    def __post_init__(self) -> None:
        xs = [s.x for s in self.a]
        if [s.x for s in self.b] != xs or [s.x for s in self.c] != xs:
            raise SecretSharingError(
                "triple rows must use aligned evaluation points"
            )


def generate_triple(
    scheme: ShamirScheme, rng: random.Random
) -> BeaverTriple:
    """Trusted-dealer triple: sample a, b uniformly; deal a, b and a*b."""
    fld = scheme.field
    a_value = fld.random_element(rng)
    b_value = fld.random_element(rng)
    c_value = fld.mul(a_value, b_value)
    return BeaverTriple(
        a=tuple(scheme.deal(a_value, rng)),
        b=tuple(scheme.deal(b_value, rng)),
        c=tuple(scheme.deal(c_value, rng)),
    )


def _open(scheme: ShamirScheme, shares: Sequence[Share]) -> int:
    """Reconstruct a value from its full share row (the 'opening')."""
    return scheme.reconstruct(list(shares)[: scheme.threshold])


def secure_multiply(
    x_shares: Sequence[Share],
    y_shares: Sequence[Share],
    triple: BeaverTriple,
    scheme: ShamirScheme,
) -> List[Share]:
    """Shares of x*y from shares of x and y plus one Beaver triple.

    Consumes the triple (reusing one leaks linear relations between the
    products — callers must generate a fresh triple per gate).
    """
    fld = scheme.field
    if [s.x for s in x_shares] != [s.x for s in triple.a]:
        raise SecretSharingError("x shares misaligned with triple")
    if [s.x for s in y_shares] != [s.x for s in triple.b]:
        raise SecretSharingError("y shares misaligned with triple")

    d_shares = [
        Share(x=s.x, value=fld.sub(s.value, a.value))
        for s, a in zip(x_shares, triple.a)
    ]
    e_shares = [
        Share(x=s.x, value=fld.sub(s.value, b.value))
        for s, b in zip(y_shares, triple.b)
    ]
    d = _open(scheme, d_shares)
    e = _open(scheme, e_shares)

    de = fld.mul(d, e)
    out = []
    for c, a, b in zip(triple.c, triple.a, triple.b):
        value = fld.add(c.value, fld.mul(d, b.value))
        value = fld.add(value, fld.mul(e, a.value))
        value = fld.add(value, de)
        out.append(Share(x=c.x, value=value))
    return out


def secure_inner_product(
    xs: Sequence[Sequence[Share]],
    ys: Sequence[Sequence[Share]],
    triples: Sequence[BeaverTriple],
    scheme: ShamirScheme,
) -> List[Share]:
    """Shares of sum_j x_j * y_j, one triple per term.

    The per-term products are summed locally (free), so the whole inner
    product costs len(xs) multiplications' openings and nothing more.
    """
    if len(xs) != len(ys):
        raise SecretSharingError("vectors must have equal length")
    if len(triples) < len(xs):
        raise SecretSharingError("need one triple per product term")
    fld = scheme.field
    acc: Optional[List[Share]] = None
    for x_shares, y_shares, triple in zip(xs, ys, triples):
        term = secure_multiply(x_shares, y_shares, triple, scheme)
        if acc is None:
            acc = term
        else:
            acc = [
                Share(x=a.x, value=fld.add(a.value, t.value))
                for a, t in zip(acc, term)
            ]
    assert acc is not None
    return acc
