"""Secure linear computation from Shamir's additive homomorphism.

Shamir shares of two secrets, evaluated at the same points, add to
shares of the sum: if f(0) = x and g(0) = y then (f + g)(0) = x + y and
(f + g)(i) = f(i) + g(i).  A committee can therefore compute any public
linear function of private inputs by pure local arithmetic — the only
communication is the initial dealing (one share per input per member)
and the final reveal of the *result's* shares.  Any coalition smaller
than the threshold sees only sub-threshold share sets of every
intermediate value, so it learns nothing beyond the published output.

This is the cheapest possible MPC and exactly what the paper's
committees could run: with universe reduction selecting a committee of
k = polylog(n) members, every processor deals O(k) field elements and
hears O(k) back — o(sqrt n) per processor, keeping Theorem 1's budget.

Protocol (one aggregation):

1. Each input owner deals its value to the committee (Shamir, t = k/2).
2. Each committee member locally computes sum_j w_j * share_j over the
   inputs (public weights w_j).
3. Members publish their result shares; anyone with threshold many
   reconstructs the weighted sum.  Individual inputs are never opened.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..crypto.field import PrimeField
from ..crypto.shamir import SecretSharingError, ShamirScheme, Share


class LinearMPCError(ValueError):
    """Raised on malformed aggregation inputs."""


@dataclass
class AggregationTranscript:
    """Everything observable about one secure aggregation.

    Attributes:
        result: the reconstructed linear-function value (field element).
        n_inputs: number of private inputs aggregated.
        committee_size: committee members holding shares.
        dealt_shares: total shares dealt (n_inputs x committee_size).
        revealed_shares: shares opened during reconstruction (committee
            size — only the *result* row is ever opened).
        bits_per_input_owner: field bits each owner sent.
        bits_per_committee_member: field bits each member sent.
        member_result_shares: the published result-share row, kept so
            tests can audit exactly what was made public.
    """

    result: int
    n_inputs: int
    committee_size: int
    dealt_shares: int
    revealed_shares: int
    bits_per_input_owner: int
    bits_per_committee_member: int
    member_result_shares: List[Share] = field(default_factory=list)


def _deal_all(
    inputs: Sequence[int],
    scheme: ShamirScheme,
    rng: random.Random,
) -> List[List[Share]]:
    """Per-input share rows: rows[j][i] is member i's share of input j."""
    return [scheme.deal(value, rng) for value in inputs]


def secure_weighted_sum(
    inputs: Sequence[int],
    weights: Sequence[int],
    committee_size: int,
    seed: int = 0,
    scheme: Optional[ShamirScheme] = None,
    robust: bool = False,
    tampered_shares: Optional[Dict[int, int]] = None,
) -> AggregationTranscript:
    """Compute sum_j weights[j] * inputs[j] without revealing any input.

    Args:
        inputs: private values, one per input owner.
        weights: public weights (same length as inputs).
        committee_size: number of committee members (threshold k/2 + 1).
        scheme: override the Shamir configuration (committee_size must
            match its ``n_players``).
        robust: reconstruct the result by majority vote over share
            windows (:meth:`ShamirScheme.reconstruct_majority`), so a
            sub-threshold coalition publishing tampered result shares
            cannot silently flip the output.  Costs extra interpolation
            work; plain reconstruction trusts the first threshold shares.
        tampered_shares: failure injection for tests — member index ->
            value override applied to the published result row before
            reconstruction (models Byzantine members lying at reveal).

    Returns:
        An :class:`AggregationTranscript` with the result and the cost
        accounting.
    """
    if not inputs:
        raise LinearMPCError("need at least one input")
    if len(weights) != len(inputs):
        raise LinearMPCError("weights and inputs must have equal length")
    if scheme is None:
        if committee_size < 2:
            raise LinearMPCError("committee must have at least 2 members")
        scheme = ShamirScheme(
            n_players=committee_size,
            threshold=committee_size // 2 + 1,
        )
    elif scheme.n_players != committee_size:
        raise LinearMPCError("scheme.n_players must equal committee_size")

    fld = scheme.field
    rng = random.Random(seed)
    rows = _deal_all(inputs, scheme, rng)

    # Local computation: member i combines its column of shares.
    result_shares: List[Share] = []
    for i in range(committee_size):
        x = rows[0][i].x
        acc = 0
        for j, row in enumerate(rows):
            if row[i].x != x:
                raise LinearMPCError(
                    "dealings must use aligned evaluation points"
                )
            acc = fld.add(acc, fld.mul(fld.element(weights[j]), row[i].value))
        result_shares.append(Share(x=x, value=acc))

    if tampered_shares:
        result_shares = [
            Share(x=s.x, value=tampered_shares.get(i, s.value))
            for i, s in enumerate(result_shares)
        ]
    if robust:
        result = scheme.reconstruct_majority(result_shares)
    else:
        result = scheme.reconstruct(result_shares[: scheme.threshold])
    element_bits = fld.element_bits
    return AggregationTranscript(
        result=result,
        n_inputs=len(inputs),
        committee_size=committee_size,
        dealt_shares=len(inputs) * committee_size,
        revealed_shares=committee_size,
        bits_per_input_owner=committee_size * element_bits,
        bits_per_committee_member=element_bits,
        member_result_shares=result_shares,
    )


def secure_sum(
    inputs: Sequence[int],
    committee_size: int,
    seed: int = 0,
    scheme: Optional[ShamirScheme] = None,
) -> AggregationTranscript:
    """Sum private inputs (weights all 1)."""
    return secure_weighted_sum(
        inputs, [1] * len(inputs), committee_size, seed=seed, scheme=scheme
    )


def secure_mean(
    inputs: Sequence[int],
    committee_size: int,
    seed: int = 0,
) -> Tuple[float, AggregationTranscript]:
    """Mean of private inputs: the sum is opened, then divided publicly.

    Only the *sum* is revealed (division by the public count happens in
    the clear) — standard practice, since the mean and the count
    together determine the sum anyway.
    """
    transcript = secure_sum(inputs, committee_size, seed=seed)
    return transcript.result / len(inputs), transcript


def coalition_learns_nothing_beyond_output(
    inputs: Sequence[int],
    committee_size: int,
    coalition: Sequence[int],
    seed: int = 0,
) -> bool:
    """Check the secrecy invariant for a sub-threshold coalition.

    The coalition's view is its members' columns of dealt shares plus
    the public result row.  We verify the checkable consequence of
    perfect secrecy: the view is *consistent with a different input
    vector having the same weighted sum* — i.e. the coalition's shares
    do not pin down the inputs.  Concretely, each input's shares held by
    the coalition stay below the reconstruction threshold.

    Returns True when the invariant holds (it must whenever
    ``len(coalition) < threshold``).
    """
    scheme = ShamirScheme(
        n_players=committee_size, threshold=committee_size // 2 + 1
    )
    rng = random.Random(seed)
    rows = _deal_all(inputs, scheme, rng)
    coalition_set = set(coalition)
    for row in rows:
        held = [s for s in row if s.x - 1 in coalition_set]
        if len(held) >= scheme.threshold:
            return False
        # Reconstruction from the coalition's shares alone must fail.
        try:
            scheme.reconstruct(held)
        except SecretSharingError:
            continue
        return False
    return True
