"""Secure multi-party computation on the paper's sharing substrate.

The conclusion's third open problem: "Can we use the ideas in this paper
to perform scalable, secure multi-party computation for other
functions?"  This subpackage supplies the MPC layer such an answer would
compose with the tournament:

* :mod:`repro.mpc.linear` — information-theoretic secure *linear*
  computation (sums, weighted sums, means) via Shamir's additive
  homomorphism: committee members add shares locally, so only the
  result is ever reconstructed.  No interaction beyond deal + reveal.
* :mod:`repro.mpc.beaver` — multiplication of shared values with
  Beaver triples (trusted-dealer preprocessing model, documented), which
  upgrades the linear layer to arbitrary arithmetic circuits.
* :mod:`repro.mpc.triples` — dealer-free triple generation via GRR
  degree reduction, removing the trusted-dealer assumption at
  Theta(k^2) committee traffic per triple.

Composition with the paper: universe reduction
(:mod:`repro.core.universe_reduction`) picks the committee; the
committee runs these protocols on everyone's behalf at committee-size
cost rather than n-party cost — the "scalable" in the open problem.
Example ``examples/private_aggregation.py`` runs the full composition.
"""

from .linear import (
    AggregationTranscript,
    LinearMPCError,
    coalition_learns_nothing_beyond_output,
    secure_mean,
    secure_sum,
    secure_weighted_sum,
)
from .beaver import (
    BeaverTriple,
    generate_triple,
    secure_inner_product,
    secure_multiply,
)
from .triples import (
    degree_reduce_product,
    distributed_random_sharing,
    generate_triple_distributed,
    triple_generation_bits,
    triple_scheme,
)

__all__ = [
    "AggregationTranscript",
    "LinearMPCError",
    "coalition_learns_nothing_beyond_output",
    "secure_mean",
    "secure_sum",
    "secure_weighted_sum",
    "BeaverTriple",
    "generate_triple",
    "secure_inner_product",
    "secure_multiply",
    "degree_reduce_product",
    "distributed_random_sharing",
    "generate_triple_distributed",
    "triple_generation_bits",
    "triple_scheme",
]
