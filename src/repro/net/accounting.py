"""Per-processor bit and message accounting.

Theorem 1 is a statement about the number of bits each processor *sends*;
the ledger therefore attributes cost to senders.  It also tracks received
bits (useful for flooding experiments: bad processors may send any number
of messages, and the protocol must bound what good processors *act on*,
not what arrives).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .messages import Message


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (q in [0, 100]) of raw values.

    The one percentile definition the repo uses — ledger snapshots,
    engine aggregates (re-exported by :mod:`repro.engine.aggregate`)
    and telemetry reports all interpolate identically.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


@dataclass
class LedgerSnapshot:
    """Aggregated statistics at a point in time."""

    total_bits_sent: int
    total_messages: int
    max_bits_per_processor: int
    mean_bits_per_processor: float
    rounds: int
    p50_bits_per_processor: float = 0.0
    p90_bits_per_processor: float = 0.0
    p99_bits_per_processor: float = 0.0

    def as_row(self) -> Dict[str, float]:
        """The snapshot as a flat dict (one results-table row)."""
        return {
            "total_bits_sent": self.total_bits_sent,
            "total_messages": self.total_messages,
            "max_bits_per_processor": self.max_bits_per_processor,
            "mean_bits_per_processor": self.mean_bits_per_processor,
            "p50_bits_per_processor": self.p50_bits_per_processor,
            "p90_bits_per_processor": self.p90_bits_per_processor,
            "p99_bits_per_processor": self.p99_bits_per_processor,
            "rounds": self.rounds,
        }


class BitLedger:
    """Accumulates sent/received bit counts per processor and per phase."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.sent_bits: Dict[int, int] = defaultdict(int)
        self.received_bits: Dict[int, int] = defaultdict(int)
        self.sent_messages: Dict[int, int] = defaultdict(int)
        self.phase_bits: Dict[str, int] = defaultdict(int)
        self.rounds = 0
        self._phase = "default"

    # -- recording ---------------------------------------------------------------

    def set_phase(self, phase: str) -> None:
        """Attribute subsequent traffic to a named protocol phase."""
        self._phase = phase

    def record(self, message: Message) -> None:
        """Account one message's bits to sender, recipient and phase."""
        bits = message.bits()
        self.sent_bits[message.sender] += bits
        self.received_bits[message.recipient] += bits
        self.sent_messages[message.sender] += 1
        self.phase_bits[self._phase] += bits

    def record_many(self, messages: Iterable[Message]) -> None:
        """Account a batch of messages."""
        for message in messages:
            self.record(message)

    def record_abstract(self, sender: int, recipient: int, bits: int) -> None:
        """Account traffic without materialising a Message object.

        The tournament orchestration uses this for bulk share transfers
        where building millions of Message objects would dominate runtime
        without changing the counted bits.
        """
        self.sent_bits[sender] += bits
        self.received_bits[recipient] += bits
        self.sent_messages[sender] += 1
        self.phase_bits[self._phase] += bits

    def tick_round(self) -> None:
        """Advance the round counter."""
        self.rounds += 1

    # -- queries -----------------------------------------------------------------

    def bits_sent_by(self, processor: int) -> int:
        """Total bits this processor has sent."""
        return self.sent_bits.get(processor, 0)

    def total_bits(self) -> int:
        """Total bits sent across all processors."""
        return sum(self.sent_bits.values())

    def total_messages(self) -> int:
        """Total messages sent across all processors."""
        return sum(self.sent_messages.values())

    def max_bits_per_processor(self, include: Optional[Iterable[int]] = None) -> int:
        """Largest per-processor sent-bit total (optionally over a subset)."""
        processors = range(self.n) if include is None else include
        return max((self.sent_bits.get(p, 0) for p in processors), default=0)

    def mean_bits_per_processor(
        self, include: Optional[Iterable[int]] = None
    ) -> float:
        """Mean per-processor sent-bit total (optionally over a subset)."""
        processors = list(range(self.n) if include is None else include)
        if not processors:
            return 0.0
        return sum(self.sent_bits.get(p, 0) for p in processors) / len(processors)

    def snapshot(self) -> LedgerSnapshot:
        """Freeze the current totals into a :class:`LedgerSnapshot`."""
        # Zeros included: a processor that sent nothing still counts in
        # the distribution Theorem 1 quantifies over.
        per_processor = [self.sent_bits.get(p, 0) for p in range(self.n)] or [0]
        return LedgerSnapshot(
            total_bits_sent=self.total_bits(),
            total_messages=self.total_messages(),
            max_bits_per_processor=self.max_bits_per_processor(),
            mean_bits_per_processor=self.mean_bits_per_processor(),
            rounds=self.rounds,
            p50_bits_per_processor=percentile(per_processor, 50),
            p90_bits_per_processor=percentile(per_processor, 90),
            p99_bits_per_processor=percentile(per_processor, 99),
        )

    def phase_breakdown(self) -> Dict[str, int]:
        """Bits attributed to each named protocol phase."""
        return dict(self.phase_bits)
