"""Structured execution tracing for protocol debugging and analysis.

Production distributed systems live or die by their observability; this
module gives the simulator the same: a :class:`TraceRecorder` collects
typed events (rounds, corruptions, phase transitions, decisions,
reconstruction failures) with bounded memory, and renders compact
summaries or Figure-1-style phase timelines.

Wiring is opt-in and zero-cost when absent: components accept an optional
recorder and emit through :meth:`TraceRecorder.emit`.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    Attributes:
        round_no: simulator round (0 for out-of-round events).
        kind: short event type tag ("corrupt", "phase", "decide",
            "reveal_fail", ...).
        subject: the processor/node the event concerns (stringified).
        detail: free-form payload (kept small).
    """

    round_no: int
    kind: str
    subject: str
    detail: Any = None


class TraceRecorder:
    """Bounded in-memory event log with per-kind counters.

    Args:
        capacity: maximum retained events (oldest dropped first); the
            per-kind counters remain exact regardless.
    """

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = collections.deque(
            maxlen=capacity
        )
        self.counters: Dict[str, int] = collections.defaultdict(int)
        self._round = 0

    # -- emission ----------------------------------------------------------------

    def set_round(self, round_no: int) -> None:
        """Stamp subsequent events with this round number."""
        self._round = round_no

    def emit(self, kind: str, subject: Any = "", detail: Any = None) -> None:
        """Record one event and bump its kind's counter."""
        self.counters[kind] += 1
        self._events.append(
            TraceEvent(
                round_no=self._round,
                kind=kind,
                subject=str(subject),
                detail=detail,
            )
        )

    # -- queries -----------------------------------------------------------------

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        """All events, optionally filtered to one kind."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def count(self, kind: str) -> int:
        """How many events of this kind were emitted."""
        return self.counters.get(kind, 0)

    def last(self, kind: str) -> Optional[TraceEvent]:
        """The most recent event of this kind, or None."""
        for event in reversed(self._events):
            if event.kind == kind:
                return event
        return None

    def rounds_spanned(self) -> Tuple[int, int]:
        """(first, last) round numbers carrying events."""
        if not self._events:
            return (0, 0)
        rounds = [e.round_no for e in self._events]
        return (min(rounds), max(rounds))

    # -- rendering ---------------------------------------------------------------

    def summary(self) -> str:
        """One line per event kind, ordered by frequency."""
        lines = []
        for kind, count in sorted(
            self.counters.items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"{kind:>20}: {count}")
        return "\n".join(lines)

    def timeline(self, kinds: Optional[Iterable[str]] = None) -> str:
        """Compact per-round timeline of selected event kinds."""
        wanted = set(kinds) if kinds is not None else None
        by_round: Dict[int, List[TraceEvent]] = collections.defaultdict(list)
        for event in self._events:
            if wanted is None or event.kind in wanted:
                by_round[event.round_no].append(event)
        lines = []
        for round_no in sorted(by_round):
            tags = ", ".join(
                f"{e.kind}({e.subject})" if e.subject else e.kind
                for e in by_round[round_no][:8]
            )
            extra = len(by_round[round_no]) - 8
            if extra > 0:
                tags += f", +{extra} more"
            lines.append(f"round {round_no:>4}: {tags}")
        return "\n".join(lines)


def null_emit(kind: str, subject: Any = "", detail: Any = None) -> None:
    """No-op emitter for components run without tracing."""
