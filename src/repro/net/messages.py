"""Message model and bit-size measurement.

The paper's headline results are *bit* complexities, so every payload in
the simulator has a well-defined encoded size.  Payloads are restricted to
a small recursive vocabulary (ints, bools, strings, None, and
tuples/lists of payloads) and measured by :func:`payload_bits`.

Protocol words (bin choices, coin words, shares) are ints; a share is the
size of the secret shared (Definition 1), which holds here because Shamir
shares are field elements of the same width as the secret word.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Tuple

#: Flat per-message protocol header allowance (sender identity is conveyed
#: by the channel itself in the paper's model, so headers are small).
HEADER_BITS = 16


class MessageError(ValueError):
    """Raised for malformed messages or unmeasurable payloads."""


def payload_bits(payload: Any) -> int:
    """Encoded size, in bits, of a payload.

    * ``None`` costs 1 bit (presence flag).
    * ``bool`` costs 1 bit.
    * ``int`` costs its two's-complement width (minimum 1).
    * ``str`` tags cost 8 bits per character.
    * tuples/lists cost the sum of their elements.
    """
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, payload.bit_length() + (1 if payload < 0 else 0))
    if isinstance(payload, str):
        return 8 * len(payload)
    if isinstance(payload, (tuple, list)):
        return sum(payload_bits(item) for item in payload)
    if isinstance(payload, dict):
        return sum(
            payload_bits(k) + payload_bits(v) for k, v in payload.items()
        )
    if hasattr(payload, "wire_bits"):
        return int(payload.wire_bits())
    raise MessageError(f"payload of type {type(payload)!r} is not measurable")


@dataclass(frozen=True, slots=True)
class Message:
    """One point-to-point message on a private channel.

    Slotted: a round of an n-processor protocol allocates O(n^2) of
    these, and ``__slots__`` drops the per-instance ``__dict__`` — less
    memory traffic in the simulator's inner loop for an object that is
    immutable data anyway.

    Attributes:
        sender: origin processor ID (authenticated by the channel — the
            paper: "the identity of the sender is known to the recipient").
        recipient: destination processor ID.
        tag: short protocol-phase tag used for dispatch.
        payload: measurable payload (see :func:`payload_bits`).
    """

    sender: int
    recipient: int
    tag: str
    payload: Any = None

    def bits(self) -> int:
        """Total on-wire size of this message."""
        return HEADER_BITS + payload_bits(self.tag) + payload_bits(self.payload)


def total_bits(messages: Iterable[Message]) -> int:
    """Combined bit size of a batch of messages."""
    return sum(message.bits() for message in messages)
