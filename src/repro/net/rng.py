"""Deterministic randomness derivation.

Every random choice in the library flows from a master seed through
labelled child streams, so whole protocol executions are reproducible
bit-for-bit.  Processors' *private coins* are child streams labelled by
processor ID; the adversary cannot see them (the simulator never exposes a
good processor's stream), matching the private-coin model of Section 1.1.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

Label = Union[int, str]


def derive_seed(master_seed: int, *labels: Label) -> int:
    """A 128-bit child seed from a master seed and a label path."""
    hasher = hashlib.sha256()
    hasher.update(str(master_seed).encode())
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode())
    return int.from_bytes(hasher.digest()[:16], "big")


def child_rng(master_seed: int, *labels: Label) -> random.Random:
    """An independent ``random.Random`` stream for a labelled purpose."""
    return random.Random(derive_seed(master_seed, *labels))
