"""Deterministic randomness derivation.

Every random choice in the library flows from a master seed through
labelled child streams, so whole protocol executions are reproducible
bit-for-bit.  Processors' *private coins* are child streams labelled by
processor ID; the adversary cannot see them (the simulator never exposes a
good processor's stream), matching the private-coin model of Section 1.1.

This discipline is what makes the execution engine's backends
interchangeable: :mod:`repro.engine` derives each trial's seed with
:func:`derive_seed` from the spec alone, so serial, process-pool and
batched runs are bit-identical.  Audit invariant (guarded by
``tests/test_engine.py``): no module under ``src/repro`` may call the
``random`` module's global functions (``random.random``,
``random.randrange``, …) or construct an *unseeded* ``Random`` — every
stream must be a seeded instance, preferably a
:func:`child_rng`/:func:`fork_rng` derivation.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

Label = Union[int, str]


def derive_seed(master_seed: int, *labels: Label) -> int:
    """A 128-bit child seed from a master seed and a label path."""
    hasher = hashlib.sha256()
    hasher.update(str(master_seed).encode())
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode())
    return int.from_bytes(hasher.digest()[:16], "big")


def child_rng(master_seed: int, *labels: Label) -> random.Random:
    """An independent ``random.Random`` stream for a labelled purpose."""
    return random.Random(derive_seed(master_seed, *labels))


def fork_rng(rng: random.Random, *labels: Label) -> random.Random:
    """A labelled child stream of an *existing* stream.

    Draws one 128-bit value from ``rng`` (advancing it deterministically)
    and hashes it with the labels, so sibling forks are independent and
    the whole tree of streams stays a pure function of the original seed.
    """
    return child_rng(rng.getrandbits(128), *labels)
