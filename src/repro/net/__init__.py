"""Synchronous network simulation substrate (paper Section 1.1 model)."""

from .accounting import BitLedger, LedgerSnapshot, percentile
from .messages import HEADER_BITS, Message, MessageError, payload_bits, total_bits
from .rng import child_rng, derive_seed, fork_rng
from .tracing import TraceEvent, TraceRecorder
from .simulator import (
    Adversary,
    AdversaryView,
    NullAdversary,
    ProcessorProtocol,
    RunResult,
    SimulationError,
    SyncNetwork,
)

__all__ = [
    "BitLedger",
    "LedgerSnapshot",
    "percentile",
    "HEADER_BITS",
    "Message",
    "MessageError",
    "payload_bits",
    "total_bits",
    "child_rng",
    "derive_seed",
    "fork_rng",
    "TraceEvent",
    "TraceRecorder",
    "Adversary",
    "AdversaryView",
    "NullAdversary",
    "ProcessorProtocol",
    "RunResult",
    "SimulationError",
    "SyncNetwork",
]
