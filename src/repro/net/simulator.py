"""Synchronous message-passing simulator with a rushing, adaptive adversary.

Implements the model of Section 1.1:

* Fully connected network of ``n`` processors with **private channels**:
  the adversary observes only traffic sent to (or from) processors it has
  corrupted — never the contents, or even the existence, of good-to-good
  messages.
* **Synchronous rounds**: all messages sent in round ``i`` arrive before
  round ``i+1``.
* **Rushing**: within a round the adversary receives all messages
  addressed to its processors *before* it must commit its own messages.
* **Adaptive corruption**: at the start of every round the adversary may
  take over additional processors (learning their private state), up to a
  fixed budget of ``floor((1/3 - eps) * n)``.
* **Flooding**: corrupted processors may emit any number of messages;
  the ledger records them separately so benchmarks can report good-
  processor cost (the quantity Theorem 1 bounds).

Protocol code subclasses :class:`ProcessorProtocol`; adversaries subclass
:class:`Adversary` (see :mod:`repro.adversary`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set

from .accounting import BitLedger
from .messages import Message
from .tracing import TraceRecorder


class SimulationError(RuntimeError):
    """Raised on protocol/simulator contract violations."""


class ProcessorProtocol(abc.ABC):
    """Base class for the code run by one (good) processor."""

    def __init__(self, pid: int) -> None:
        self.pid = pid

    @abc.abstractmethod
    def on_round(self, round_no: int, inbox: List[Message]) -> List[Message]:
        """Consume last round's inbox; emit this round's messages."""

    def output(self) -> Optional[Any]:
        """The processor's decision, or None while undecided."""
        return None

    def snapshot_state(self) -> Dict[str, Any]:
        """State surrendered to the adversary upon corruption."""
        return dict(self.__dict__)


@dataclass
class AdversaryView:
    """Everything the adversary legitimately sees in one round.

    ``inbound`` contains messages addressed to corrupted processors
    (delivered early — rushing).  ``outbound_metadata`` is empty by
    design: private channels hide good-to-good traffic entirely.
    """

    round_no: int
    corrupted: Set[int]
    inbound: List[Message]
    n: int


class Adversary(abc.ABC):
    """Base adversary: owns a corruption budget and the corrupted set."""

    def __init__(self, n: int, budget: int) -> None:
        if budget >= n:
            raise SimulationError("corruption budget must be < n")
        self.n = n
        self.budget = budget
        self.corrupted: Set[int] = set()
        self.captured_state: Dict[int, Dict[str, Any]] = {}

    # -- adaptive takeover ---------------------------------------------------------

    def select_corruptions(self, round_no: int) -> Set[int]:
        """Processor IDs to take over at the start of this round.

        Default: corrupt nothing.  Implementations may corrupt at any
        time, up to ``budget`` in total; the simulator enforces the cap.
        """
        return set()

    def record_capture(self, pid: int, state: Dict[str, Any]) -> None:
        self.captured_state[pid] = state

    # -- message generation ----------------------------------------------------------

    @abc.abstractmethod
    def act(self, view: AdversaryView) -> List[Message]:
        """Messages sent by corrupted processors this round (any number)."""

    def remaining_budget(self) -> int:
        """Corruption budget not yet spent."""
        return self.budget - len(self.corrupted)


class NullAdversary(Adversary):
    """Corrupts nothing and stays silent — the fault-free baseline."""

    def __init__(self, n: int) -> None:
        super().__init__(n, budget=0)

    def act(self, view: AdversaryView) -> List[Message]:
        return []


@dataclass
class RunResult:
    """Outcome of one simulated execution."""

    rounds: int
    outputs: Dict[int, Any]
    corrupted: Set[int]
    ledger: BitLedger
    halted: bool

    def good_outputs(self) -> Dict[int, Any]:
        """Outputs of uncorrupted processors."""
        return {
            pid: value
            for pid, value in self.outputs.items()
            if pid not in self.corrupted
        }

    def agreement_value(self) -> Optional[Any]:
        """The unanimous good output, or None if good processors disagree."""
        values = {v for v in self.good_outputs().values() if v is not None}
        if len(values) == 1:
            return values.pop()
        return None


class SyncNetwork:
    """Round-driven execution engine.

    Args:
        protocols: one :class:`ProcessorProtocol` per processor ID 0..n-1.
        adversary: the adversary (use :class:`NullAdversary` for none).
        ledger: optional shared ledger; a fresh one is created otherwise.
        count_adversary_traffic: if False (default) only good processors'
            sends are charged to the ledger, matching the paper's
            per-(good-)processor bit bounds; adversarial flooding is
            tracked separately in ``flood_bits``.
    """

    def __init__(
        self,
        protocols: Sequence[ProcessorProtocol],
        adversary: Adversary,
        ledger: Optional[BitLedger] = None,
        count_adversary_traffic: bool = False,
        trace: Optional["TraceRecorder"] = None,
    ) -> None:
        self.protocols = list(protocols)
        self.n = len(self.protocols)
        for pid, protocol in enumerate(self.protocols):
            if protocol.pid != pid:
                raise SimulationError(
                    f"protocol at slot {pid} claims pid {protocol.pid}"
                )
        self.adversary = adversary
        self.ledger = ledger if ledger is not None else BitLedger(self.n)
        self.count_adversary_traffic = count_adversary_traffic
        self.trace = trace
        self.flood_bits = 0
        # Double-buffered inboxes, reused round over round: protocols
        # consume their inbox within on_round (the simulator contract),
        # so the buffer handed out in round r can be cleared and
        # refilled for round r+2 instead of reallocated every round.
        self._inboxes: List[List[Message]] = [[] for _ in range(self.n)]
        self._spare_inboxes: List[List[Message]] = [
            [] for _ in range(self.n)
        ]
        # Exactly a NullAdversary (not a subclass) can neither corrupt
        # nor speak, so the per-round corruption scan, rushing view and
        # adversary dispatch are skipped wholesale.
        self._null_adversary = type(adversary) is NullAdversary

    # -- execution ---------------------------------------------------------------

    def run(self, max_rounds: int) -> RunResult:
        """Run until every good processor has an output or rounds expire."""
        halted = False
        round_no = 0
        for round_no in range(1, max_rounds + 1):
            self.step(round_no)
            if self.all_good_decided():
                halted = True
                break
        return self.collect_result(round_no, halted)

    def collect_result(self, rounds: int, halted: bool) -> RunResult:
        """Freeze the network's current state into a :class:`RunResult`.

        Shared by :meth:`run` and external drivers (the engine's batch
        backend steps many networks breadth-first and finishes each
        through this same path, so both executions stay bit-identical).
        """
        outputs = {
            pid: self.protocols[pid].output() for pid in range(self.n)
        }
        return RunResult(
            rounds=rounds,
            outputs=outputs,
            corrupted=set(self.adversary.corrupted),
            ledger=self.ledger,
            halted=halted,
        )

    def step(self, round_no: int) -> None:
        """Execute one synchronous round."""
        if self.trace is not None:
            self.trace.set_round(round_no)
        fast = self._null_adversary
        if not fast:
            self._apply_corruptions(round_no)
        corrupted = self.adversary.corrupted

        outgoing: List[Message] = []
        protocols = self.protocols
        inboxes = self._inboxes
        for pid in range(self.n):
            if corrupted and pid in corrupted:
                continue
            messages = protocols[pid].on_round(round_no, inboxes[pid])
            for message in messages:
                if message.sender != pid:
                    raise SimulationError(
                        f"processor {pid} forged sender {message.sender}"
                    )
                if not 0 <= message.recipient < self.n:
                    raise SimulationError(
                        f"message to unknown recipient {message.recipient}"
                    )
            self.ledger.record_many(messages)
            outgoing.extend(messages)

        if fast:
            adversary_messages: List[Message] = []
        else:
            # Rushing: adversary sees its inbound traffic before acting.
            view = AdversaryView(
                round_no=round_no,
                corrupted=set(corrupted),
                inbound=[m for m in outgoing if m.recipient in corrupted],
                n=self.n,
            )
            adversary_messages = self.adversary.act(view)
            for message in adversary_messages:
                if message.sender not in corrupted:
                    raise SimulationError(
                        "adversary may only send from corrupted processors"
                    )
                if not 0 <= message.recipient < self.n:
                    raise SimulationError(
                        f"adversary message to unknown recipient "
                        f"{message.recipient}"
                    )
                self.flood_bits += message.bits()
                if self.count_adversary_traffic:
                    self.ledger.record(message)

        # Swap in the spare buffers: clear-and-refill instead of a
        # fresh dict of lists every round.
        next_inboxes = self._spare_inboxes
        for box in next_inboxes:
            box.clear()
        for message in outgoing:
            next_inboxes[message.recipient].append(message)
        for message in adversary_messages:
            next_inboxes[message.recipient].append(message)
        self._spare_inboxes = inboxes
        self._inboxes = next_inboxes
        self.ledger.tick_round()

    # -- internals ---------------------------------------------------------------

    def _apply_corruptions(self, round_no: int) -> None:
        requested = self.adversary.select_corruptions(round_no)
        for pid in sorted(requested):
            if pid in self.adversary.corrupted:
                continue
            if self.adversary.remaining_budget() <= 0:
                break
            if not 0 <= pid < self.n:
                raise SimulationError(f"cannot corrupt unknown pid {pid}")
            self.adversary.corrupted.add(pid)
            self.adversary.record_capture(
                pid, self.protocols[pid].snapshot_state()
            )
            if self.trace is not None:
                self.trace.emit("corrupt", pid)

    def all_good_decided(self) -> bool:
        """Whether every uncorrupted processor has produced an output."""
        return all(
            self.protocols[pid].output() is not None
            for pid in range(self.n)
            if pid not in self.adversary.corrupted
        )
