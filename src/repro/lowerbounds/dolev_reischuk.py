"""The Dolev-Reischuk barrier, run as an executable attack.

Dolev & Reischuk (JACM 1985, the paper's [11]) proved that deterministic
Byzantine agreement requires Omega(n^2) messages.  Section 1 of King &
Saia spells out the consequence they design around:

    "any randomized algorithm which always uses no more than o(n^2)
    messages must necessarily err with positive probability, since the
    adversary can guess the random coinflips and achieve the lower bound
    if the guess is correct."

This module makes that concrete with the simplest sub-quadratic
protocol: **sampled majority**.  Each processor queries ``sample_size``
uniformly random peers for their input bit and decides the majority
answer — O(n log n) messages total, and correct w.h.p. when the
adversary cannot predict who samples whom (private channels +
oblivious corruption).

The :class:`CoinGuessingAdversary` models a correct guess of the private
coins: it is constructed with the same seed the victim's sampler uses,
recomputes the victim's sample, corrupts exactly those peers (a budget of
just ``sample_size`` out of the Theta(n) allowed), and answers every
query with the flipped bit.  The victim then decides wrongly with
probability 1 — demonstrating that the protocol's error probability,
while tiny, is necessarily positive.

King & Saia's protocol accepts the same trade: it succeeds w.h.p., not
always, and this is provably unavoidable below n^2 messages.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..net.messages import Message
from ..net.simulator import (
    Adversary,
    AdversaryView,
    NullAdversary,
    ProcessorProtocol,
    RunResult,
    SyncNetwork,
)


def default_sample_size(n: int, c: float = 3.0) -> int:
    """The c*log n peers each processor polls."""
    return max(1, min(n - 1, int(c * math.log(max(2, n)))))


def sample_peers(pid: int, n: int, sample_size: int, seed: int) -> List[int]:
    """The victim-reproducible random sample of peers ``pid`` polls.

    Deterministic in (pid, seed) so that :class:`CoinGuessingAdversary`
    can recompute it — this determinism *is* the "guessed coins".
    """
    rng = random.Random((seed << 20) | pid)
    peers = [q for q in range(n) if q != pid]
    return rng.sample(peers, sample_size)


class SampledMajorityProcessor(ProcessorProtocol):
    """Poll a random sample for input bits; decide the majority.

    Three rounds: send queries; answer queries; tally responses.
    """

    def __init__(
        self, pid: int, n: int, input_bit: int, sample_size: int, seed: int
    ) -> None:
        super().__init__(pid)
        self.n = n
        self.input_bit = int(input_bit)
        self.sample = sample_peers(pid, n, sample_size, seed)
        self._responses: Dict[int, int] = {}
        self._decided: Optional[int] = None

    def on_round(self, round_no: int, inbox: List[Message]) -> List[Message]:
        if round_no == 1:
            return [
                Message(self.pid, peer, "query") for peer in self.sample
            ]
        # A rushing adversary's answers can land a round before honest
        # ones, so absorb answers in every round after the first.
        self._absorb_answers(inbox)
        if round_no == 2:
            return [
                Message(self.pid, m.sender, "answer", self.input_bit)
                for m in inbox
                if m.tag == "query"
            ]
        if round_no == 3:
            tally = Counter(self._responses.values())
            if tally:
                self._decided = max(tally, key=lambda v: (tally[v], v))
            else:
                self._decided = self.input_bit
        return []

    def _absorb_answers(self, inbox: List[Message]) -> None:
        for m in inbox:
            if m.tag == "answer" and isinstance(m.payload, int):
                if m.sender in self.sample:
                    self._responses.setdefault(m.sender, m.payload)

    def output(self) -> Optional[int]:
        return self._decided


class ObliviousFlipAdversary(Adversary):
    """Corrupts a fixed random set at the start; answers with the flip.

    This is the adversary the sampled-majority protocol *can* beat: the
    corrupted set is chosen without knowledge of anyone's sample, so each
    sample contains a minority of corrupt peers w.h.p.
    """

    def __init__(self, n: int, budget: int, seed: int = 0) -> None:
        super().__init__(n, budget)
        rng = random.Random(seed)
        self._initial = set(rng.sample(range(n), budget)) if budget else set()
        self._inputs: Dict[int, int] = {}

    def select_corruptions(self, round_no: int) -> Set[int]:
        return self._initial if round_no == 1 else set()

    def act(self, view: AdversaryView) -> List[Message]:
        out = []
        for m in view.inbound:
            if m.tag != "query":
                continue
            truth = self.captured_state.get(m.recipient, {}).get(
                "input_bit", 0
            )
            out.append(
                Message(m.recipient, m.sender, "answer", 1 - truth)
            )
        return out


class CoinGuessingAdversary(Adversary):
    """Dolev-Reischuk in action: guess the victim's coins and surround it.

    Given the sampler seed (the "correct guess"), recompute the victim's
    sample before any message is sent, corrupt exactly those peers, and
    answer the victim's queries with the flipped bit.  The budget used is
    only ``sample_size`` — far below the (1/3 - eps)n allowance.
    """

    def __init__(
        self,
        n: int,
        budget: int,
        victim: int,
        sample_size: int,
        guessed_seed: int,
        flip_to: int,
    ) -> None:
        super().__init__(n, budget)
        self.victim = victim
        self.flip_to = int(flip_to)
        self.victim_sample = set(
            sample_peers(victim, n, sample_size, guessed_seed)
        )
        if len(self.victim_sample) > budget:
            raise ValueError(
                "budget too small to corrupt the victim's whole sample"
            )

    def select_corruptions(self, round_no: int) -> Set[int]:
        return self.victim_sample if round_no == 1 else set()

    def act(self, view: AdversaryView) -> List[Message]:
        out = []
        for m in view.inbound:
            if m.tag != "query":
                continue
            if m.sender == self.victim:
                answer = self.flip_to
            else:
                # Behave honestly toward everyone else to stay hidden.
                answer = self.captured_state.get(m.recipient, {}).get(
                    "input_bit", 0
                )
            out.append(Message(m.recipient, m.sender, "answer", answer))
        return out


def run_sampled_majority(
    n: int,
    inputs: Sequence[int],
    adversary: Optional[Adversary] = None,
    sample_size: Optional[int] = None,
    seed: int = 0,
) -> RunResult:
    """Run the 3-round sampled-majority protocol."""
    if len(inputs) != n:
        raise ValueError("inputs length must equal n")
    size = sample_size if sample_size is not None else default_sample_size(n)
    if adversary is None:
        adversary = NullAdversary(n)
    protocols = [
        SampledMajorityProcessor(pid, n, inputs[pid], size, seed)
        for pid in range(n)
    ]
    network = SyncNetwork(protocols, adversary)
    return network.run(max_rounds=3)


@dataclass
class GuessingAttackOutcome:
    """Result of one oblivious-vs-guessing comparison."""

    n: int
    sample_size: int
    total_messages: int
    oblivious_wrong: int
    guessing_victim_output: Optional[int]
    majority_input: int

    @property
    def attack_succeeded(self) -> bool:
        """Whether the guessing adversary flipped the victim's output."""
        return self.guessing_victim_output == 1 - self.majority_input


def guessing_attack_demo(
    n: int,
    corrupt_fraction: float = 0.25,
    seed: int = 0,
    victim: int = 0,
) -> GuessingAttackOutcome:
    """Run both adversaries on an all-ones input; report the contrast.

    With all-good inputs equal to 1, any good processor deciding 0 is an
    agreement/validity violation.  The oblivious adversary flips no one
    w.h.p.; the coin-guessing adversary flips the victim deterministically.
    """
    inputs = [1] * n
    size = default_sample_size(n)
    budget = max(size, int(corrupt_fraction * n))

    oblivious = run_sampled_majority(
        n, inputs,
        adversary=ObliviousFlipAdversary(n, budget, seed=seed + 1),
        sample_size=size, seed=seed,
    )
    oblivious_wrong = sum(
        1 for v in oblivious.good_outputs().values() if v == 0
    )

    guessing = run_sampled_majority(
        n, inputs,
        adversary=CoinGuessingAdversary(
            n, budget, victim=victim, sample_size=size,
            guessed_seed=seed, flip_to=0,
        ),
        sample_size=size, seed=seed,
    )
    victim_output = guessing.outputs.get(victim)

    return GuessingAttackOutcome(
        n=n,
        sample_size=size,
        total_messages=oblivious.ledger.total_messages(),
        oblivious_wrong=oblivious_wrong,
        guessing_victim_output=victim_output,
        majority_input=1,
    )
