"""Executable demonstrations of the lower bounds framing the paper.

Two impossibility results define the design space King & Saia operate
in; this subpackage turns both into running attacks:

* :mod:`repro.lowerbounds.dolev_reischuk` — Dolev & Reischuk (1985,
  the paper's [11]): deterministic BA needs Omega(n^2) messages.  The
  paper's Section 1 notes the corollary it designs around: any
  randomized protocol that *always* sends o(n^2) messages must err with
  positive probability, because an adversary that guesses the coins
  correctly can replay the deterministic bound.  We implement a cheap
  sampled-majority protocol (o(n^2) messages, correct w.h.p. against an
  oblivious adversary) and the coin-guessing adversary that defeats it.

* :mod:`repro.lowerbounds.holtby_kapron_king` — Holtby, Kapron & King
  (2008, the paper's [14]): if every processor must pre-specify the set
  of processors it listens to at the start of each round, some processor
  must send Omega(n^{1/3}) messages.  We implement a gossip protocol in
  that restricted model and the isolation adversary that surrounds a
  victim whenever its listen budget is too small — and show why the
  paper's Algorithm 3 (almost-everywhere to everywhere) sits *outside*
  the restricted model, which is exactly how it escapes the bound.

Benchmark E16 sweeps both attacks.
"""

from .dolev_reischuk import (
    CoinGuessingAdversary,
    ObliviousFlipAdversary,
    SampledMajorityProcessor,
    guessing_attack_demo,
    run_sampled_majority,
)
from .holtby_kapron_king import (
    IsolationAdversary,
    ListenerGossipProcessor,
    isolation_attack_demo,
    isolation_threshold,
    run_listener_gossip,
)

__all__ = [
    "CoinGuessingAdversary",
    "ObliviousFlipAdversary",
    "SampledMajorityProcessor",
    "guessing_attack_demo",
    "run_sampled_majority",
    "IsolationAdversary",
    "ListenerGossipProcessor",
    "isolation_attack_demo",
    "isolation_threshold",
    "run_listener_gossip",
]
