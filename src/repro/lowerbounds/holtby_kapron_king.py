"""The Holtby-Kapron-King Omega(n^{1/3}) isolation bound, as an attack.

Holtby, Kapron & King (Distributed Computing 2008, the paper's [14])
showed: even with private channels, if every processor must *pre-specify*
the set of processors it is willing to listen to at the start of each
round (the choice may depend on its coin tosses), then some processor
must send Omega(n^{1/3}) messages to solve BA with probability better
than 1/2 + 1/log n.

Section 2 of King & Saia explains how their own protocol relates to the
bound: the almost-everywhere tournament *falls inside* the restricted
model, but the almost-everywhere-to-everywhere protocol (Algorithm 3)
does not, because "the decision of whether a message is listened to (or
acted upon) depends on how many messages carrying a certain value are
received so far" — a count-based acceptance rule that cannot be
pre-specified.

This module implements:

* :class:`ListenerGossipProcessor` — a natural protocol in the
  restricted model: each gossip round, listen to ``listen_degree``
  random peers and adopt the majority bit heard; decide after
  ``gossip_rounds`` rounds.
* :class:`IsolationAdversary` — the bound's adversary: it targets one
  victim and corrupts the victim's declared listen set each round,
  feeding it only the adversary's bit.  Its total corruption need is
  ``listen_degree * gossip_rounds``; when that stays within its budget,
  the victim is completely surrounded.

The adversary observes the victim's listen-set declarations (via
:class:`_DeclarationTap`) — the restricted model's defining leak: the
processor commits to its listen set before hearing anything, and the
lower bound's adversary exploits exactly that commitment (in the proof
via a counting argument over coin outcomes; here operationally).  The
point of the demo is the *budget arithmetic*: isolation succeeds if and
only if the victim's total listening traffic stays below the corruption
budget, which is the Omega(n^{1/3}) trade-off.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from ..net.messages import Message
from ..net.simulator import (
    Adversary,
    AdversaryView,
    NullAdversary,
    ProcessorProtocol,
    RunResult,
    SyncNetwork,
)


def isolation_threshold(budget: int, gossip_rounds: int) -> int:
    """Max listen degree the adversary can fully surround every round.

    A victim listening to more than ``budget // gossip_rounds`` fresh
    peers per round exhausts the adversary's budget before the protocol
    ends — the quantitative heart of the n^{1/3} bound (with budget
    Theta(n) and rounds * degree the victim's message complexity).
    """
    if gossip_rounds <= 0:
        raise ValueError("gossip_rounds must be positive")
    return budget // gossip_rounds


class ListenerGossipProcessor(ProcessorProtocol):
    """Majority gossip in the pre-specified-listener model.

    Each gossip round spans two simulator rounds:

    * odd round 2k-1 — *declare*: tally the replies to the previous
      declaration (they arrive in this inbox), then announce gossip round
      k's listen set by sending a ``listen`` notice to each chosen peer.
    * even round 2k — *reply*: answer every ``listen`` notice received
      with the current bit.

    Bits arriving from outside the declared set are discarded unread —
    that is the restricted model.  After ``gossip_rounds`` tallies the
    processor decides its current bit.
    """

    def __init__(
        self,
        pid: int,
        n: int,
        input_bit: int,
        listen_degree: int,
        gossip_rounds: int,
        seed: int,
    ) -> None:
        super().__init__(pid)
        self.n = n
        self.bit = int(input_bit)
        self.listen_degree = min(listen_degree, n - 1)
        self.gossip_rounds = gossip_rounds
        self.rng = random.Random((seed << 20) | pid)
        self.current_listen_set: Set[int] = set()
        self._decided: Optional[int] = None

    def on_round(self, round_no: int, inbox: List[Message]) -> List[Message]:
        if self._decided is not None:
            return []
        if round_no % 2 == 1:
            completed = (round_no - 1) // 2
            if completed >= 1:
                self._tally(inbox)
            if completed >= self.gossip_rounds:
                self._decided = self.bit
                return []
            peers = [q for q in range(self.n) if q != self.pid]
            self.current_listen_set = set(
                self.rng.sample(peers, self.listen_degree)
            )
            return [
                Message(self.pid, peer, "listen")
                for peer in self.current_listen_set
            ]
        return [
            Message(self.pid, m.sender, "bit", self.bit)
            for m in inbox
            if m.tag == "listen"
        ]

    def _tally(self, inbox: List[Message]) -> None:
        heard = [
            m.payload
            for m in inbox
            if m.tag == "bit"
            and m.sender in self.current_listen_set
            and isinstance(m.payload, int)
        ]
        heard.append(self.bit)
        tally = Counter(heard)
        self.bit = max(tally, key=lambda v: (tally[v], v))

    def output(self) -> Optional[int]:
        return self._decided


class IsolationAdversary(Adversary):
    """Surround one victim: corrupt whoever it declares it will hear.

    Driven by the declaration tap: once the victim's gossip-round-k
    listen set is observed, its members are corrupted (before they can
    reply honestly) and each sends the victim ``feed_bit`` instead.
    """

    def __init__(self, n: int, budget: int, victim: int, feed_bit: int) -> None:
        super().__init__(n, budget)
        self.victim = victim
        self.feed_bit = int(feed_bit)
        self._latest_declaration: Set[int] = set()
        self.exhausted = False

    def observe_declaration(self, peers: Set[int]) -> None:
        """The restricted model's leak: declared listen sets are visible."""
        self._latest_declaration = set(peers)

    def select_corruptions(self, round_no: int) -> Set[int]:
        wanted = self._latest_declaration - self.corrupted
        if len(wanted) > self.remaining_budget():
            self.exhausted = True
            wanted = set(sorted(wanted)[: self.remaining_budget()])
        return wanted

    def act(self, view: AdversaryView) -> List[Message]:
        # Every corrupted member of the victim's current declared set
        # feeds it the adversary's bit; sent each round, but only the
        # copies landing in the victim's tally round matter.
        return [
            Message(peer, self.victim, "bit", self.feed_bit)
            for peer in sorted(self._latest_declaration & self.corrupted)
        ]


class _DeclarationTap(SyncNetwork):
    """SyncNetwork that forwards the victim's declarations to the adversary.

    Models the pre-specification leak of the restricted model: the
    adversary of [14] may choose corruptions as a function of where the
    victim has committed to listen.  The tap fires before each round, so
    a set declared in round 2k-1 is corrupted at the start of round 2k —
    before the honest replies it would have produced are sent.
    """

    def __init__(self, protocols, adversary: IsolationAdversary, victim: int):
        super().__init__(protocols, adversary)
        self.victim = victim
        self._isolation_adversary = adversary

    def step(self, round_no: int) -> None:
        protocol = self.protocols[self.victim]
        if isinstance(protocol, ListenerGossipProcessor):
            self._isolation_adversary.observe_declaration(
                protocol.current_listen_set
            )
        super().step(round_no)


def run_listener_gossip(
    n: int,
    inputs: Sequence[int],
    listen_degree: int,
    gossip_rounds: int = 3,
    adversary: Optional[Adversary] = None,
    seed: int = 0,
    victim: Optional[int] = None,
) -> RunResult:
    """Run the restricted-model gossip protocol.

    When ``adversary`` is an :class:`IsolationAdversary`, the declared-
    listen-set tap is wired up (pass ``victim`` to override its target).
    """
    if len(inputs) != n:
        raise ValueError("inputs length must equal n")
    if adversary is None:
        adversary = NullAdversary(n)
    protocols = [
        ListenerGossipProcessor(
            pid, n, inputs[pid], listen_degree, gossip_rounds, seed
        )
        for pid in range(n)
    ]
    if isinstance(adversary, IsolationAdversary):
        target = victim if victim is not None else adversary.victim
        network: SyncNetwork = _DeclarationTap(protocols, adversary, target)
    else:
        network = SyncNetwork(protocols, adversary)
    return network.run(max_rounds=2 * gossip_rounds + 1)


@dataclass
class IsolationOutcome:
    """Result of one isolation attack."""

    n: int
    listen_degree: int
    gossip_rounds: int
    budget: int
    victim_output: Optional[int]
    majority_output: Optional[int]
    corruptions_used: int
    budget_exhausted: bool

    @property
    def victim_isolated(self) -> bool:
        """Whether the victim decided differently from the majority."""
        return (
            self.victim_output is not None
            and self.majority_output is not None
            and self.victim_output != self.majority_output
        )


def isolation_attack_demo(
    n: int,
    listen_degree: int,
    gossip_rounds: int = 3,
    budget: Optional[int] = None,
    seed: int = 0,
) -> IsolationOutcome:
    """Attack an all-ones network; report whether the victim was flipped.

    The victim is flipped whenever the adversary's budget covers
    ``listen_degree * gossip_rounds`` corruptions — the message-complexity
    versus corruption-budget trade-off of the [14] bound.
    """
    inputs = [1] * n
    victim = 0
    max_budget = budget if budget is not None else max(1, n // 3 - 1)
    adversary = IsolationAdversary(n, max_budget, victim, feed_bit=0)
    result = run_listener_gossip(
        n, inputs, listen_degree, gossip_rounds,
        adversary=adversary, seed=seed, victim=victim,
    )
    non_victim = [
        v for pid, v in result.good_outputs().items() if pid != victim
    ]
    tally = Counter(v for v in non_victim if v is not None)
    majority = max(tally, key=lambda v: (tally[v], v)) if tally else None
    return IsolationOutcome(
        n=n,
        listen_degree=listen_degree,
        gossip_rounds=gossip_rounds,
        budget=max_budget,
        victim_output=result.outputs.get(victim),
        majority_output=majority,
        corruptions_used=len(adversary.corrupted),
        budget_exhausted=adversary.exhausted,
    )


def minimum_safe_degree(n: int, gossip_rounds: int, budget: int) -> int:
    """Listen degree above which isolation provably fails mid-protocol.

    Listening to more than ``budget / gossip_rounds`` fresh peers per
    round means some round's declared set cannot be fully corrupted; the
    victim then hears at least one honest bit.  For budget = Theta(n)
    and the polylog round counts of real protocols this is the
    Omega(n^{1/3})-flavoured message floor scaled to our demo's
    parameters.
    """
    return isolation_threshold(budget, gossip_rounds) + 1
