"""repro — a reproduction of King & Saia (PODC 2010).

"Breaking the O(n^2) Bit Barrier: Scalable Byzantine Agreement with an
Adaptive Adversary."

Quickstart::

    from repro import run_everywhere_ba

    result = run_everywhere_ba(n=81, inputs=[p % 2 for p in range(81)])
    print(result.bit, result.success(), result.max_bits_per_processor())

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — Algorithms 1-5 and their composition (Theorem 1).
* :mod:`repro.crypto` — iterated Shamir secret sharing (§3.1).
* :mod:`repro.samplers` — averaging samplers (§3.2.1).
* :mod:`repro.topology` — committee tree, links, sparse graphs (§3.2.2).
* :mod:`repro.net` — synchronous simulator with rushing adaptive adversary.
* :mod:`repro.adversary` — adversary strategies.
* :mod:`repro.baselines` — O(n^2)-bit comparators (Phase King, Rabin, Ben-Or).
* :mod:`repro.analysis` — closed-form cost models and concentration bounds.
* :mod:`repro.asynchrony` — asynchronous substrate (the conclusion's open
  problem 2): adversarial scheduler, Bracha broadcast, common-coin BA.
* :mod:`repro.lowerbounds` — executable Dolev-Reischuk and
  Holtby-Kapron-King attacks (the bounds of Sections 1-2).
* :mod:`repro.mpc` — secure computation on the sharing substrate (open
  problem 3): linear MPC, Beaver multiplication, dealer-free triples.
* :mod:`repro.engine` — sharded/batched Monte-Carlo execution of
  experiment specs (serial, process-pool and batch backends; ENGINE.md).
* :mod:`repro.cli` — the ``python -m repro`` command line.
"""

from .core import (
    AEBAResult,
    AEToEResult,
    EverywhereBAResult,
    GlobalCoinSubsequence,
    LeaderSchedule,
    ProtocolParameters,
    ReplicatedLogResult,
    Tournament,
    TournamentResult,
    lightest_bin_election,
    run_ae_to_everywhere,
    run_almost_everywhere_ba,
    run_everywhere_ba,
    run_leader_election,
    run_replicated_log,
    run_unreliable_coin_ba,
)
from .engine import (
    Engine,
    ExperimentResult,
    ExperimentSpec,
    TrialResult,
    run_experiment,
)

__version__ = "1.1.0"

__all__ = [
    "AEBAResult",
    "AEToEResult",
    "Engine",
    "EverywhereBAResult",
    "ExperimentResult",
    "ExperimentSpec",
    "TrialResult",
    "run_experiment",
    "GlobalCoinSubsequence",
    "LeaderSchedule",
    "ProtocolParameters",
    "ReplicatedLogResult",
    "Tournament",
    "TournamentResult",
    "lightest_bin_election",
    "run_ae_to_everywhere",
    "run_almost_everywhere_ba",
    "run_everywhere_ba",
    "run_leader_election",
    "run_replicated_log",
    "run_unreliable_coin_ba",
    "__version__",
]
