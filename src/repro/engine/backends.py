"""Execution backends: one Engine API, pluggable trial execution.

A backend's only job is to map an :class:`ExperimentSpec` to its list of
:class:`TrialResult`, ordered by trial index.  Because trial seeds are
derived from the spec alone (never from scheduling), every backend must
return *bit-identical* results for the same spec — the engine's central
correctness property, enforced by ``tests/test_engine.py``.

* :class:`SerialBackend` — trials run in-process, one after another
  (the seed repo's original behaviour).
* :class:`ProcessPoolBackend` — trials shard across ``multiprocessing``
  workers in contiguous chunks.  Specs cross the process boundary as
  plain data (runner resolved by name in the worker), results come back
  as picklable dataclasses and are re-ordered by trial index.
* :class:`BatchBackend` (see :mod:`repro.engine.batch`) — many
  independent protocol instances multiplexed over one round loop.
* :class:`HybridBackend` (see :mod:`repro.engine.hybrid`) — waves of
  asynchronous instances sharded across pool workers, each wave driven
  by a local async step loop.

The sharded backends share :func:`chunk_indices` (contiguous trial
chunks) and :func:`make_pool` (pool construction on an explicit start
method); because workers resolve scenarios by name from the registry,
both ``fork`` and ``spawn`` start methods produce identical results.

Future backends (distributed dispatch) plug in behind the same two
methods.
"""

from __future__ import annotations

import abc
import multiprocessing
import multiprocessing.pool
import os
from typing import List, Optional, Sequence, Tuple

from .registry import get_runner, resolve_cached
from .spec import EngineError, ExperimentSpec, TrialContext, TrialResult


def make_context(spec: ExperimentSpec, trial_index: int) -> TrialContext:
    """The deterministic context of one trial of a spec."""
    if not 0 <= trial_index < spec.trials:
        raise EngineError(
            f"trial index {trial_index} outside 0..{spec.trials - 1}"
        )
    return TrialContext(
        spec=spec,
        trial_index=trial_index,
        seed=spec.trial_seed(trial_index),
    )


def run_one_trial(spec: ExperimentSpec, trial_index: int) -> TrialResult:
    """Execute a single trial, converting crashes into failed results.

    Scenario resolution is memoised per process
    (:func:`~repro.engine.registry.resolve_cached`): a pool worker
    executing many chunks of one spec resolves the name once.
    """
    ctx = make_context(spec, trial_index)
    runner = resolve_cached(spec.runner)
    try:
        return runner.run_trial(ctx)
    except Exception as exc:  # protocol bugs must not kill the sweep
        return TrialResult(
            trial_index=trial_index,
            seed=ctx.seed,
            metrics=(),
            ok=False,
            failure=f"{type(exc).__name__}: {exc}",
        )


class ExecutionBackend(abc.ABC):
    """Interface every backend implements."""

    #: Human-readable backend identifier (CLI / reports).
    name: str = "abstract"

    @abc.abstractmethod
    def run_trials(self, spec: ExperimentSpec) -> List[TrialResult]:
        """All trial results of ``spec``, ordered by trial index."""

    def close(self) -> None:
        """Release any held workers (no-op by default)."""


class SerialBackend(ExecutionBackend):
    """In-process, one-trial-at-a-time execution."""

    name = "serial"

    def run_trials(self, spec: ExperimentSpec) -> List[TrialResult]:
        return [run_one_trial(spec, i) for i in range(spec.trials)]


def _worker_run_chunk(
    payload: Tuple[ExperimentSpec, Sequence[int]]
) -> List[TrialResult]:
    """Pool worker: run one contiguous chunk of trial indices."""
    spec, indices = payload
    return [run_one_trial(spec, i) for i in indices]


def default_worker_count() -> int:
    """Worker count when unspecified: every core, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


def chunk_indices(
    trials: int, chunk_size: Optional[int], workers: int
) -> List[List[int]]:
    """Contiguous chunks of ``range(trials)`` for sharded dispatch.

    ``chunk_size=None`` picks ~4 chunks per worker, balancing
    task-dispatch overhead against stragglers (trials can have very
    different durations).  Shared by every process-sharded backend so
    chunking behaviour stays uniform.
    """
    size = chunk_size
    if size is None:
        size = max(1, trials // (workers * 4))
    indices = list(range(trials))
    return [indices[i : i + size] for i in range(0, trials, size)]


def make_pool(
    workers: int, start_method: Optional[str] = None
) -> multiprocessing.pool.Pool:
    """A worker pool on an explicit ``multiprocessing`` start method.

    ``None`` uses the platform default (``fork`` on Linux).  Workers
    carry no state beyond their imports: specs arrive as plain data and
    scenarios are resolved *by name* in the worker, so ``spawn`` — which
    inherits nothing from the parent — produces results bit-identical to
    ``fork`` for every registered scenario.  (Ad-hoc scenarios
    registered at runtime in the parent are only visible under ``fork``;
    :mod:`repro.engine.scenarios` is the supported extension point.)
    """
    context = multiprocessing.get_context(start_method)
    return context.Pool(processes=workers)


class ProcessPoolBackend(ExecutionBackend):
    """Shard trials across ``multiprocessing`` workers.

    Trials are dispatched in contiguous chunks (``chunk_size`` trials per
    task) to amortise task-dispatch overhead; results are flattened back
    in trial order, so the output is indistinguishable from
    :class:`SerialBackend` — only the wall clock differs.

    ``start_method`` selects the ``multiprocessing`` start method
    (``None`` = platform default); workers resolve the scenario by name
    from the registry, so ``spawn`` works identically to ``fork``.
    """

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        self.workers = workers if workers else default_worker_count()
        if self.workers < 1:
            raise EngineError("need at least one worker")
        self.chunk_size = chunk_size
        self.start_method = start_method

    def _chunks(self, trials: int) -> List[List[int]]:
        return chunk_indices(trials, self.chunk_size, self.workers)

    def run_trials(self, spec: ExperimentSpec) -> List[TrialResult]:
        # Resolve the runner up front so unknown names fail fast in the
        # parent, and a single-worker pool degrades gracefully to serial
        # (no point paying fork + pickle for one lane).
        get_runner(spec.runner)
        if self.workers == 1 or spec.trials == 1:
            return SerialBackend().run_trials(spec)
        chunks = self._chunks(spec.trials)
        payloads = [(spec, chunk) for chunk in chunks]
        with make_pool(self.workers, self.start_method) as pool:
            nested = pool.map(_worker_run_chunk, payloads)
        results = [result for chunk in nested for result in chunk]
        results.sort(key=lambda r: r.trial_index)
        return results
