"""Execution backends: one Engine API, pluggable trial execution.

A backend's only job is to map an :class:`ExperimentSpec` to its list of
:class:`TrialResult`, ordered by trial index.  Because trial seeds are
derived from the spec alone (never from scheduling), every backend must
return *bit-identical* results for the same spec — the engine's central
correctness property, enforced by ``tests/test_engine.py``.

* :class:`SerialBackend` — trials run in-process, one after another
  (the seed repo's original behaviour).
* :class:`ProcessPoolBackend` — trials shard across ``multiprocessing``
  workers in contiguous chunks.  Specs cross the process boundary as
  plain data (runner resolved by name in the worker), results come back
  as picklable dataclasses and are re-ordered by trial index.
* :class:`BatchBackend` (see :mod:`repro.engine.batch`) — many
  independent protocol instances multiplexed over one round loop.

Future backends (async event-loop, distributed dispatch) plug in behind
the same two methods.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
from typing import List, Optional, Sequence, Tuple

from .registry import get_runner
from .spec import EngineError, ExperimentSpec, TrialContext, TrialResult


def make_context(spec: ExperimentSpec, trial_index: int) -> TrialContext:
    """The deterministic context of one trial of a spec."""
    if not 0 <= trial_index < spec.trials:
        raise EngineError(
            f"trial index {trial_index} outside 0..{spec.trials - 1}"
        )
    return TrialContext(
        spec=spec,
        trial_index=trial_index,
        seed=spec.trial_seed(trial_index),
    )


def run_one_trial(spec: ExperimentSpec, trial_index: int) -> TrialResult:
    """Execute a single trial, converting crashes into failed results."""
    ctx = make_context(spec, trial_index)
    runner = get_runner(spec.runner)
    try:
        return runner.run_trial(ctx)
    except Exception as exc:  # protocol bugs must not kill the sweep
        return TrialResult(
            trial_index=trial_index,
            seed=ctx.seed,
            metrics=(),
            ok=False,
            failure=f"{type(exc).__name__}: {exc}",
        )


class ExecutionBackend(abc.ABC):
    """Interface every backend implements."""

    #: Human-readable backend identifier (CLI / reports).
    name: str = "abstract"

    @abc.abstractmethod
    def run_trials(self, spec: ExperimentSpec) -> List[TrialResult]:
        """All trial results of ``spec``, ordered by trial index."""

    def close(self) -> None:
        """Release any held workers (no-op by default)."""


class SerialBackend(ExecutionBackend):
    """In-process, one-trial-at-a-time execution."""

    name = "serial"

    def run_trials(self, spec: ExperimentSpec) -> List[TrialResult]:
        return [run_one_trial(spec, i) for i in range(spec.trials)]


def _worker_run_chunk(
    payload: Tuple[ExperimentSpec, Sequence[int]]
) -> List[TrialResult]:
    """Pool worker: run one contiguous chunk of trial indices."""
    spec, indices = payload
    return [run_one_trial(spec, i) for i in indices]


def default_worker_count() -> int:
    """Worker count when unspecified: every core, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


class ProcessPoolBackend(ExecutionBackend):
    """Shard trials across ``multiprocessing`` workers.

    Trials are dispatched in contiguous chunks (``chunk_size`` trials per
    task) to amortise task-dispatch overhead; results are flattened back
    in trial order, so the output is indistinguishable from
    :class:`SerialBackend` — only the wall clock differs.
    """

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        self.workers = workers if workers else default_worker_count()
        if self.workers < 1:
            raise EngineError("need at least one worker")
        self.chunk_size = chunk_size

    def _chunks(self, trials: int) -> List[List[int]]:
        size = self.chunk_size
        if size is None:
            # ~4 chunks per worker balances dispatch overhead against
            # stragglers (trials can have very different durations).
            size = max(1, trials // (self.workers * 4))
        indices = list(range(trials))
        return [indices[i : i + size] for i in range(0, trials, size)]

    def run_trials(self, spec: ExperimentSpec) -> List[TrialResult]:
        # Resolve the runner up front so unknown names fail fast in the
        # parent, and a single-worker pool degrades gracefully to serial
        # (no point paying fork + pickle for one lane).
        get_runner(spec.runner)
        if self.workers == 1 or spec.trials == 1:
            return SerialBackend().run_trials(spec)
        chunks = self._chunks(spec.trials)
        payloads = [(spec, chunk) for chunk in chunks]
        with multiprocessing.Pool(processes=self.workers) as pool:
            nested = pool.map(_worker_run_chunk, payloads)
        results = [result for chunk in nested for result in chunk]
        results.sort(key=lambda r: r.trial_index)
        return results
