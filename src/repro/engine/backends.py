"""Execution backends: one Engine API, pluggable trial execution.

A backend's only job is to map an :class:`ExperimentSpec` to its list of
:class:`TrialResult`, ordered by trial index.  Because trial seeds are
derived from the spec alone (never from scheduling), every backend must
return *bit-identical* results for the same spec — the engine's central
correctness property, enforced by ``tests/test_engine.py``.

* :class:`SerialBackend` — trials run in-process, one after another
  (the seed repo's original behaviour).
* :class:`ProcessPoolBackend` — trials shard across ``multiprocessing``
  workers in contiguous chunks.  Specs cross the process boundary as
  plain data (runner resolved by name in the worker), results come back
  as picklable dataclasses and are re-ordered by trial index.
* :class:`BatchBackend` (see :mod:`repro.engine.batch`) — many
  independent protocol instances multiplexed over one round loop.
* :class:`HybridBackend` (see :mod:`repro.engine.hybrid`) — waves of
  asynchronous instances sharded across pool workers, each wave driven
  by a local async step loop.
* :class:`DistributedBackend` (see :mod:`repro.engine.distributed`) —
  the same units dispatched to ``repro worker serve`` hosts over TCP.

The sharded backends no longer carry private shard/pool/collect code:
geometry lives in :class:`~repro.engine.dispatch.DispatchPlan`, worker
mechanisms behind the :class:`~repro.engine.dispatch.Transport` seam,
and the submit/retry/merge loop in
:func:`~repro.engine.dispatch.run_units`.  A new execution substrate is
a new transport, not a new copy of the dispatch loop.

Every backend is a context manager (``with backend: ...``) and
``close()`` is idempotent, so held pools/sockets release deterministically
on error paths as well as clean exits.
"""

from __future__ import annotations

import abc
import os
from typing import List, Optional, Sequence

from .dispatch import (
    MODE_TRIALS,
    DispatchPlan,
    PoolTransport,
    make_context,
    run_grid_units,
    run_one_trial,
    run_units,
)
from .registry import get_runner
from .spec import EngineError, ExperimentSpec, TrialResult
from .telemetry import RunTelemetry, SweepMonitor

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "default_worker_count",
    "make_context",
    "run_one_trial",
]


class ExecutionBackend(abc.ABC):
    """Interface every backend implements.

    Backends are context managers: ``with get_backend(...) as backend``
    guarantees :meth:`close` runs on every exit path.  ``close`` is
    idempotent and leaves the backend *reusable* — a later
    ``run_trials`` may lazily re-acquire whatever was released.
    """

    #: Human-readable backend identifier (CLI / reports).
    name: str = "abstract"

    #: Telemetry of the most recent :meth:`run_trials` call (set at run
    #: entry; ``None`` before the first run).  ``Engine.run`` freezes it
    #: into the :class:`~repro.engine.telemetry.RunReport` it attaches
    #: to the :class:`~repro.engine.aggregate.ExperimentResult`.
    telemetry: Optional[RunTelemetry] = None

    #: Opt-in live progress sink (a
    #: :class:`~repro.engine.telemetry.SweepMonitor`) consulted by the
    #: next run's telemetry.
    monitor: Optional[SweepMonitor] = None

    @abc.abstractmethod
    def run_trials(self, spec: ExperimentSpec) -> List[TrialResult]:
        """All trial results of ``spec``, ordered by trial index."""

    def run_grid(
        self,
        specs: Sequence[ExperimentSpec],
        cost_aware: bool = True,
    ) -> List[List[TrialResult]]:
        """Run several specs; one result list per spec, in order.

        The base implementation runs the specs back to back (and
        ``cost_aware`` is moot — there is nothing to balance).  The
        pool-backed backends override this with a *fused* sweep: every
        spec's units share one transport and one collect loop, sized by
        predicted per-trial cost when every spec has a cost model
        (:mod:`repro.engine.costplan`), so mixed-size grids balance
        predicted work across lanes instead of trial counts.  Results
        are bit-identical either way; only wall-clock moves.
        """
        return [self.run_trials(spec) for spec in specs]

    def _begin_telemetry(self, spec: ExperimentSpec) -> RunTelemetry:
        """Start (and attach) this run's telemetry accumulator."""
        self.telemetry = RunTelemetry(
            backend=self.name,
            total_trials=spec.trials,
            monitor=self.monitor,
        )
        return self.telemetry

    def _adopt_telemetry(self, inner: "ExecutionBackend") -> None:
        """Take over a delegate backend's telemetry (degrade paths)."""
        self.telemetry = inner.telemetry
        if self.telemetry is not None:
            # The run is still *this* backend's from the caller's view.
            self.telemetry.backend = self.name

    def close(self) -> None:
        """Release any held workers/connections (idempotent; no-op here)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """In-process, one-trial-at-a-time execution."""

    name = "serial"

    def run_trials(self, spec: ExperimentSpec) -> List[TrialResult]:
        telemetry = self._begin_telemetry(spec)
        results = []
        for i in range(spec.trials):
            with telemetry.span(self.name, 1):
                results.append(run_one_trial(spec, i))
        telemetry.finish()
        return results


def default_worker_count() -> int:
    """Worker count when unspecified: every core, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


class ProcessPoolBackend(ExecutionBackend):
    """Shard trials across ``multiprocessing`` workers.

    Trials are dispatched in contiguous chunks (``chunk_size`` trials per
    unit, geometry from :meth:`DispatchPlan.chunked`) through the shared
    dispatch plane; results merge back in trial order, so the output is
    indistinguishable from :class:`SerialBackend` — only the wall clock
    differs.

    ``start_method`` selects the ``multiprocessing`` start method
    (``None`` = platform default); workers resolve the scenario by name
    from the registry, so ``spawn`` works identically to ``fork``.
    """

    name = "process"

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        self.workers = workers if workers else default_worker_count()
        if self.workers < 1:
            raise EngineError("need at least one worker")
        self.chunk_size = chunk_size
        self.start_method = start_method

    def plan(self, trials: int) -> DispatchPlan:
        """This backend's shard geometry for ``trials`` trials."""
        return DispatchPlan.chunked(trials, self.chunk_size, self.workers)

    def run_trials(self, spec: ExperimentSpec) -> List[TrialResult]:
        # Resolve the runner up front so unknown names fail fast in the
        # parent, and a single-worker pool degrades gracefully to serial
        # (no point paying fork + pickle for one lane).
        get_runner(spec.runner)
        if self.workers == 1 or spec.trials == 1:
            inner = SerialBackend()
            inner.monitor = self.monitor
            try:
                return inner.run_trials(spec)
            finally:
                self._adopt_telemetry(inner)
        telemetry = self._begin_telemetry(spec)
        units = self.plan(spec.trials).units(spec)
        with PoolTransport(self.workers, self.start_method) as transport:
            results = run_units(units, transport, telemetry=telemetry)
        telemetry.finish()
        return results

    def run_grid(
        self,
        specs: Sequence[ExperimentSpec],
        cost_aware: bool = True,
    ) -> List[List[TrialResult]]:
        """A fused multi-spec sweep over one shared worker pool.

        Every spec's chunks go through one collect loop; with cost
        models available (and ``cost_aware``), unit sizes come from one
        grid-wide predicted-cost target, heaviest units submitted
        first.  Falls back to per-spec uniform geometry otherwise.
        """
        from .costplan import plan_grid

        if not specs:
            return []
        for spec in specs:
            get_runner(spec.runner)
        unique = list(dict.fromkeys(specs))
        if len(unique) == 1 or self.workers == 1:
            return super().run_grid(specs, cost_aware=cost_aware)
        self.telemetry = RunTelemetry(
            backend=self.name,
            total_trials=sum(spec.trials for spec in unique),
            monitor=self.monitor,
        )
        units = plan_grid(
            unique,
            capacity=self.workers,
            modes=[MODE_TRIALS] * len(unique),
            cost_aware=cost_aware,
        )
        with PoolTransport(self.workers, self.start_method) as transport:
            pairs = run_grid_units(
                units, transport, telemetry=self.telemetry
            )
        self.telemetry.finish()
        by_spec = {spec: results for spec, results in pairs}
        return [by_spec[spec] for spec in specs]
