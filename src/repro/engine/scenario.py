"""Declarative parameter schemas for scenarios.

Every scenario (see :mod:`repro.engine.registry`) declares its
parameters once as a tuple of :class:`Param` objects: a name, a python
type, a default, and optional bounds/choices.  The schema is the single
front door for experiment parameters:

* the CLI enumerates it (``run-experiment --list``) so every scenario is
  self-documenting;
* :meth:`repro.engine.registry.Scenario.validate` coerces raw values
  (CLI strings included) to the declared types and **rejects unknown
  keys** with a did-you-mean suggestion — closing the silent-typo hole
  where a misspelled ``--param`` key was simply ignored.

Validation is deliberately value-level, not seed-level: coercing
``"0.1"`` to ``0.1`` never changes a trial seed (seeds derive from the
spec's master seed and trial index only), so a validated spec stays
bit-identical to a hand-typed one.
"""

from __future__ import annotations

import difflib
import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple, Type

from .spec import EngineError


class ScenarioError(EngineError):
    """Raised on scenario contract violations (bad parameters, schemas)."""


_TRUE_WORDS = frozenset({"1", "true", "yes", "on"})
_FALSE_WORDS = frozenset({"0", "false", "no", "off"})


def _to_bool(raw: Any) -> bool:
    if isinstance(raw, bool):
        return raw
    if isinstance(raw, int) and raw in (0, 1):
        return bool(raw)
    if isinstance(raw, str):
        word = raw.strip().lower()
        if word in _TRUE_WORDS:
            return True
        if word in _FALSE_WORDS:
            return False
    raise ValueError(f"not a boolean: {raw!r}")


def _to_int(raw: Any) -> int:
    if isinstance(raw, bool):
        raise ValueError(f"not an integer: {raw!r}")
    if isinstance(raw, int):
        return raw
    if isinstance(raw, float):
        if raw != int(raw):
            raise ValueError(f"not an integer: {raw!r}")
        return int(raw)
    return int(str(raw).strip(), 10)


def _to_float(raw: Any) -> float:
    if isinstance(raw, bool):
        raise ValueError(f"not a number: {raw!r}")
    if isinstance(raw, (int, float)):
        return float(raw)
    return float(str(raw).strip())


@dataclass(frozen=True)
class Param:
    """One declared scenario parameter.

    Attributes:
        name: the ``--param`` key.
        type: python type of the value (``int``, ``float``, ``str`` or
            ``bool``); raw values — CLI strings included — are coerced.
        default: value used when the parameter is omitted.  ``None``
            means "derived at runtime" (e.g. a degree computed from
            ``n``); it is shown as ``auto`` in listings.
        help: one-line description for ``run-experiment --list``.
        choices: closed set of admissible values, checked post-coercion.
        minimum / maximum: inclusive numeric bounds, checked
            post-coercion.
    """

    name: str
    type: Type[Any] = float
    default: Any = None
    help: str = ""
    choices: Optional[Tuple[Any, ...]] = None
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def coerce(self, raw: Any) -> Any:
        """``raw`` as a value of the declared type, or :class:`ScenarioError`."""
        try:
            if self.type is bool:
                value: Any = _to_bool(raw)
            elif self.type is int:
                value = _to_int(raw)
            elif self.type is float:
                value = _to_float(raw)
            elif self.type is str:
                value = raw if isinstance(raw, str) else str(raw)
            else:  # pragma: no cover - schemas only declare the four above
                value = self.type(raw)
        except (TypeError, ValueError, OverflowError):
            # OverflowError: int(float("inf")) — still just a bad value.
            raise ScenarioError(
                f"parameter {self.name!r} expects {self.type.__name__}, "
                f"got {raw!r}"
            ) from None
        if (
            (self.minimum is not None or self.maximum is not None)
            and isinstance(value, float)
            and math.isnan(value)
        ):
            # NaN compares False against any bound, so it would slip
            # through the checks below; a bounded parameter rejects it.
            raise ScenarioError(
                f"parameter {self.name!r} must be within its declared "
                f"bounds (got nan)"
            )
        if self.choices is not None and value not in self.choices:
            options = ", ".join(str(c) for c in self.choices)
            raise ScenarioError(
                f"parameter {self.name!r} must be one of: {options} "
                f"(got {value!r})"
            )
        if self.minimum is not None and value < self.minimum:
            raise ScenarioError(
                f"parameter {self.name!r} must be >= {self.minimum} "
                f"(got {value!r})"
            )
        if self.maximum is not None and value > self.maximum:
            raise ScenarioError(
                f"parameter {self.name!r} must be <= {self.maximum} "
                f"(got {value!r})"
            )
        return value

    def signature(self) -> str:
        """``name: type = default`` (defaults of None render as ``auto``)."""
        default = "auto" if self.default is None else repr(self.default)
        return f"{self.name}: {self.type.__name__} = {default}"


def validate_mapping(
    scenario_name: str,
    schema: Tuple[Param, ...],
    raw: Mapping[str, Any],
) -> Dict[str, Any]:
    """Coerce ``raw`` against ``schema``; reject unknown keys loudly."""
    declared = {param.name: param for param in schema}
    validated: Dict[str, Any] = {}
    for key, value in raw.items():
        param = declared.get(key)
        if param is None:
            close = difflib.get_close_matches(key, declared, n=1)
            hint = f" — did you mean {close[0]!r}?" if close else ""
            known = ", ".join(sorted(declared)) or "none"
            raise ScenarioError(
                f"unknown parameter {key!r} for scenario "
                f"{scenario_name!r}{hint} (declared parameters: {known})"
            )
        validated[key] = param.coerce(value)
    return validated


def defaults_of(schema: Tuple[Param, ...]) -> Dict[str, Any]:
    """The schema's default value per parameter name."""
    return {param.name: param.default for param in schema}
