"""The transport-agnostic dispatch plane: plan, submit, collect, retry.

Before this module existed, every sharded backend hand-rolled the same
three jobs: split a spec's trials into contiguous work units
(``ProcessPoolBackend._chunks`` / ``HybridBackend._waves``), push the
units through a worker mechanism (a private ``multiprocessing`` pool
each), and merge results back into canonical trial order.  Adding a
new execution substrate meant writing a fourth copy of that loop.  The
dispatch plane factors the pattern into three orthogonal pieces:

* :class:`DispatchPlan` — the *geometry*: how ``trials`` shard into
  :class:`WorkUnit` values (contiguous chunks for isolated trials,
  waves for async step loops).  All unit-size defaults live here (the
  PR-3 ``chunk_indices``/``make_pool`` aliases are gone as of PR 7).
* :class:`Transport` — the *mechanism*: submit a work unit to a lane
  (pool worker, TCP host, in-process loop), collect one result
  :class:`Envelope` at a time, and report lane death.  Implementations:
  :class:`InlineTransport` (reference/loopback), :class:`PoolTransport`
  (``multiprocessing``, used by the process and hybrid backends), and
  :class:`~repro.engine.distributed.SocketTransport` (remote hosts).
* :func:`run_units` — the *collect loop*: keeps every live lane fed,
  retries a failed unit on another lane with the failing lane
  excluded, refuses to lose or duplicate trials, and merges envelopes
  back in canonical trial order.

Determinism is unaffected by any of it: trial seeds derive from the
spec alone, and :func:`run_unit` — the single spawn-safe worker entry
shared by every transport — rebuilds the scenario *by name* from the
registry inside the worker, so a pool worker, a ``spawn`` child and a
remote host all execute literally the same construction.  Which
transport ran which unit, and how often a unit was retried, is
unobservable in the results.

Failure model, in two layers:

* **trial crashes** (a protocol bug raising inside a trial) are
  contained where they happen — :func:`run_one_trial` and the async
  wave driver convert them into failed :class:`TrialResult` rows, so
  every backend reports them identically to the serial path;
* **lane failures** (a worker process or host dying, a connection
  dropping, an unpicklable payload) surface as failure envelopes: the
  unit is retried on a different lane with the observed lane excluded,
  and only when every live lane has failed the unit (or the attempt
  cap is hit) does the sweep raise :class:`DispatchError` — results
  are never silently partial.
"""

from __future__ import annotations

import abc
import heapq
import multiprocessing
import multiprocessing.pool
import queue
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Deque,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .registry import resolve_cached
from .spec import (
    EngineError,
    ExperimentSpec,
    TrialContext,
    TrialResult,
    UnitStats,
    WIRE_VERSION,
    require_wire,
    spec_from_wire,
    spec_to_wire,
)


class DispatchError(EngineError):
    """Raised when the dispatch plane cannot complete a sweep."""


# -- the worker side: contexts, single trials, and the unified entry ------------------


def make_context(spec: ExperimentSpec, trial_index: int) -> TrialContext:
    """The deterministic context of one trial of a spec."""
    if not 0 <= trial_index < spec.trials:
        raise EngineError(
            f"trial index {trial_index} outside 0..{spec.trials - 1}"
        )
    return TrialContext(
        spec=spec,
        trial_index=trial_index,
        seed=spec.trial_seed(trial_index),
    )


def run_one_trial(spec: ExperimentSpec, trial_index: int) -> TrialResult:
    """Execute a single trial, converting crashes into failed results.

    Scenario resolution is memoised per process
    (:func:`~repro.engine.registry.resolve_cached`): a worker executing
    many units of one spec resolves the name once.
    """
    ctx = make_context(spec, trial_index)
    runner = resolve_cached(spec.runner)
    try:
        return runner.run_trial(ctx)
    except Exception as exc:  # protocol bugs must not kill the sweep
        return TrialResult(
            trial_index=trial_index,
            seed=ctx.seed,
            metrics=(),
            ok=False,
            failure=f"{type(exc).__name__}: {exc}",
        )


#: Work-unit execution modes.
MODE_TRIALS = "trials"  #: isolated trials, one run_one_trial call each
MODE_WAVE = "wave"  #: one local breadth-first async step loop


@dataclass(frozen=True)
class WorkUnit:
    """One dispatchable slice of a sweep: a spec plus trial indices.

    Plain picklable *and* wireable data — the same value crosses a
    ``multiprocessing`` boundary as a pickle and a host boundary as the
    JSON document of :func:`unit_to_wire`.  ``mode`` selects the worker
    path: :data:`MODE_TRIALS` runs each index through
    :func:`run_one_trial`; :data:`MODE_WAVE` drives the indices through
    one local async step loop (``max_live`` bounding resident
    instances, exactly as in the hybrid backend).
    """

    spec: ExperimentSpec
    indices: Tuple[int, ...]
    mode: str = MODE_TRIALS
    max_live: Optional[int] = None
    #: Predicted cost of this unit (cost-model units), stamped by
    #: cost-aware plans.  Advisory only: excluded from equality so a
    #: persisted unit from a fleet resume log still matches a freshly
    #: planned one, and absent on old wire documents.
    predicted_cost: Optional[float] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.mode not in (MODE_TRIALS, MODE_WAVE):
            raise EngineError(f"unknown work-unit mode {self.mode!r}")
        object.__setattr__(self, "indices", tuple(self.indices))


def run_unit(unit: WorkUnit) -> List[TrialResult]:
    """The one spawn-safe worker entry every transport executes.

    Replaces the per-backend ``_worker_run_chunk`` / ``_worker_run_wave``
    twins.  The unit's spec crosses the boundary as plain data and the
    scenario is rebuilt *by name* inside the worker, so the function is
    start-method- and host-agnostic: ``fork`` pools, ``spawn`` children
    and ``repro worker serve`` processes all run it identically.
    """
    if unit.mode == MODE_WAVE:
        # Deferred import: async_backend imports the backend base from
        # backends.py, which imports this module for the plan/transport
        # layer — resolving the wave driver at call time keeps the
        # import graph acyclic.
        from .async_backend import run_wave

        return run_wave(unit.spec, unit.indices, max_live=unit.max_live)
    return [run_one_trial(unit.spec, i) for i in unit.indices]


def run_unit_timed(unit: WorkUnit) -> Tuple[List[TrialResult], UnitStats]:
    """:func:`run_unit` plus worker-side timing.

    What every *instrumented* lane executes — pool workers, the inline
    transport, and ``repro worker serve`` hosts — so the client can
    split a unit's observed latency into compute versus queue/network.
    Results are exactly :func:`run_unit`'s; the stats ride alongside
    and never touch them.  Wave-mode units interleave their trials
    through one step loop, so only the aggregate time is stamped.
    """
    start = time.perf_counter()
    if unit.mode == MODE_WAVE:
        results = run_unit(unit)
        return results, UnitStats(
            compute_seconds=time.perf_counter() - start
        )
    results = []
    trial_seconds = []
    for i in unit.indices:
        trial_start = time.perf_counter()
        results.append(run_one_trial(unit.spec, i))
        trial_seconds.append(time.perf_counter() - trial_start)
    return results, UnitStats(
        compute_seconds=time.perf_counter() - start,
        trial_seconds=tuple(trial_seconds),
    )


def unit_to_wire(unit: WorkUnit) -> Dict[str, Any]:
    """A :class:`WorkUnit` as a version-1 wire document."""
    return {
        "version": WIRE_VERSION,
        "kind": "unit",
        "spec": spec_to_wire(unit.spec),
        "indices": list(unit.indices),
        "mode": unit.mode,
        "max_live": unit.max_live,
        "predicted_cost": unit.predicted_cost,
    }


def unit_from_wire(doc: Any) -> WorkUnit:
    """Decode a work-unit document; inverse of :func:`unit_to_wire`."""
    require_wire(doc, "unit")
    try:
        max_live = doc["max_live"]
        predicted = doc.get("predicted_cost")  # absent on old documents
        return WorkUnit(
            spec=spec_from_wire(doc["spec"]),
            indices=tuple(int(i) for i in doc["indices"]),
            mode=str(doc["mode"]),
            max_live=None if max_live is None else int(max_live),
            predicted_cost=None if predicted is None else float(predicted),
        )
    except EngineError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise EngineError(f"malformed work-unit document: {exc}") from None


# -- the plan: shard geometry in exactly one place ------------------------------------


def total_capacity(weights: Sequence[int]) -> int:
    """Sum per-lane capacity weights, validating each.

    A weight is how many units a lane keeps in flight at once (a
    4-core host behind one ``repro worker serve`` is weight 4).  The
    plan treats the fleet's total capacity as its effective worker
    count, so unit sizing scales with real capacity rather than with
    the number of addresses.
    """
    total = 0
    for weight in weights:
        if not isinstance(weight, int) or isinstance(weight, bool):
            raise EngineError(
                f"capacity weight must be an integer, got {weight!r}"
            )
        if weight < 1:
            raise EngineError(
                f"capacity weight must be >= 1, got {weight!r}"
            )
        total += weight
    if total < 1:
        raise EngineError("need at least one capacity weight")
    return total


@dataclass(frozen=True)
class DispatchPlan:
    """How one spec's trials shard into work units.

    The single home of shard geometry: the process backend's chunk
    sizing and the hybrid/distributed wave sizing are the two
    constructors, and both backends (plus the distributed one) consume
    the resulting :class:`WorkUnit` lists verbatim.  Any unit size
    produces bit-identical results; geometry only moves wall-clock.
    """

    trials: int
    unit_size: int
    mode: str = MODE_TRIALS
    max_live: Optional[int] = None
    #: Explicit index partition (cost-aware plans).  ``None`` means
    #: contiguous ``unit_size`` slices; when set, it must partition
    #: ``range(trials)`` exactly and overrides ``unit_size``.
    groups: Optional[Tuple[Tuple[int, ...], ...]] = None
    #: Per-trial predicted costs backing ``groups`` (len == trials);
    #: used to stamp ``WorkUnit.predicted_cost``.
    costs: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise EngineError("a dispatch plan needs at least one trial")
        if self.unit_size < 1:
            raise EngineError("unit_size must be >= 1")
        if self.mode not in (MODE_TRIALS, MODE_WAVE):
            raise EngineError(f"unknown dispatch mode {self.mode!r}")
        if self.groups is not None:
            groups = tuple(tuple(g) for g in self.groups)
            object.__setattr__(self, "groups", groups)
            flat = sorted(i for group in groups for i in group)
            if flat != list(range(self.trials)):
                raise EngineError(
                    "plan groups must partition the trial range exactly "
                    f"once (got {flat!r} for {self.trials} trials)"
                )
        if self.costs is not None:
            costs = tuple(float(c) for c in self.costs)
            object.__setattr__(self, "costs", costs)
            if len(costs) != self.trials:
                raise EngineError(
                    f"need one cost per trial: got {len(costs)} costs "
                    f"for {self.trials} trials"
                )
            if any(c <= 0 for c in costs):
                raise EngineError("per-trial costs must be positive")

    @classmethod
    def chunked(
        cls,
        trials: int,
        chunk_size: Optional[int],
        workers: int,
        weights: Optional[Sequence[int]] = None,
    ) -> "DispatchPlan":
        """Isolated-trial chunks (the process backend's geometry).

        ``chunk_size=None`` picks ~4 chunks per worker, balancing
        task-dispatch overhead against stragglers (trials can have very
        different durations).  ``weights`` replaces ``workers`` with the
        fleet's total capacity (:func:`total_capacity`): a weight-3 lane
        counts as three workers, so heterogeneous fleets get units
        sized for their real parallelism and the greedy collect loop
        hands heavier lanes proportionately more of them.
        """
        if weights is not None:
            workers = total_capacity(weights)
        size = chunk_size
        if size is None:
            size = max(1, trials // (max(1, workers) * 4))
        return cls(trials=trials, unit_size=size, mode=MODE_TRIALS)

    @classmethod
    def waved(
        cls,
        trials: int,
        wave_size: Optional[int],
        workers: int,
        max_live: Optional[int] = None,
        weights: Optional[Sequence[int]] = None,
    ) -> "DispatchPlan":
        """Async waves (the hybrid backend's geometry).

        ``wave_size=None`` picks ~2 waves per worker — large enough to
        amortise the per-wave step loop, small enough to rebalance
        stragglers once.  ``weights`` scales the effective worker count
        by fleet capacity exactly as in :meth:`chunked`.
        """
        if weights is not None:
            workers = total_capacity(weights)
        size = wave_size
        if size is None:
            # Ceil division so nothing is dropped.
            size = max(1, -(-trials // (max(1, workers) * 2)))
        return cls(
            trials=trials, unit_size=size, mode=MODE_WAVE, max_live=max_live
        )

    @classmethod
    def cost_chunked(
        cls,
        trials: int,
        costs: Optional[Sequence[float]],
        workers: int,
        weights: Optional[Sequence[int]] = None,
        target_unit_cost: Optional[float] = None,
    ) -> "DispatchPlan":
        """Isolated-trial chunks carrying ~equal *predicted cost*.

        ``costs`` gives the predicted cost of each trial (one entry per
        trial index).  Trials are LPT-binned — heaviest first, each into
        the currently lightest bin — over ``~4x`` the fleet capacity
        bins (``weights`` scales capacity exactly as in
        :meth:`chunked`), so a mixed-cost sweep hands every lane units
        of comparable predicted work instead of comparable trial
        counts.  ``target_unit_cost`` overrides the bin count with
        ``ceil(total_cost / target)`` — how grid planning sizes every
        spec's units against one grid-wide target.

        ``costs=None`` is the documented fallback (no cost model
        registered, sympy missing): plain uniform :meth:`chunked`
        geometry.  Either way the plan partitions ``range(trials)``
        exactly once, so results stay bit-identical to serial.
        """
        return cls._cost_binned(
            trials,
            costs,
            workers,
            weights,
            target_unit_cost,
            mode=MODE_TRIALS,
            max_live=None,
            parts_per_worker=4,
        )

    @classmethod
    def cost_waved(
        cls,
        trials: int,
        costs: Optional[Sequence[float]],
        workers: int,
        max_live: Optional[int] = None,
        weights: Optional[Sequence[int]] = None,
        target_unit_cost: Optional[float] = None,
    ) -> "DispatchPlan":
        """Async waves carrying ~equal predicted cost.

        The :meth:`cost_chunked` binning at :meth:`waved` granularity
        (~2 bins per unit of capacity); ``costs=None`` falls back to
        plain uniform :meth:`waved` geometry.
        """
        return cls._cost_binned(
            trials,
            costs,
            workers,
            weights,
            target_unit_cost,
            mode=MODE_WAVE,
            max_live=max_live,
            parts_per_worker=2,
        )

    @classmethod
    def _cost_binned(
        cls,
        trials: int,
        costs: Optional[Sequence[float]],
        workers: int,
        weights: Optional[Sequence[int]],
        target_unit_cost: Optional[float],
        mode: str,
        max_live: Optional[int],
        parts_per_worker: int,
    ) -> "DispatchPlan":
        if costs is None:
            if mode == MODE_WAVE:
                return cls.waved(
                    trials, None, workers, max_live=max_live, weights=weights
                )
            return cls.chunked(trials, None, workers, weights=weights)
        capacity = (
            total_capacity(weights) if weights is not None else max(1, workers)
        )
        cost_list = [float(c) for c in costs]
        if len(cost_list) != trials or any(c <= 0 for c in cost_list):
            # Let the plan validators produce the canonical errors.
            return cls(
                trials=trials, unit_size=1, mode=mode, max_live=max_live,
                costs=tuple(cost_list),
            )
        total_cost = sum(cost_list)
        if target_unit_cost is not None and target_unit_cost > 0:
            bins = max(1, round(total_cost / target_unit_cost))
        else:
            bins = capacity * parts_per_worker
        bins = max(1, min(bins, trials))
        spread = max(cost_list) - min(cost_list)
        if spread <= 1e-12 * max(cost_list):
            # Uniform costs: contiguous slices preserve the classic
            # geometry (and its cache locality) exactly.
            size = max(1, -(-trials // bins))
            groups = tuple(
                tuple(range(i, min(i + size, trials)))
                for i in range(0, trials, size)
            )
        else:
            # LPT: heaviest trial first, into the lightest bin.
            order = sorted(
                range(trials), key=lambda i: (-cost_list[i], i)
            )
            heap = [(0.0, b) for b in range(bins)]
            heapq.heapify(heap)
            binned: List[List[int]] = [[] for _ in range(bins)]
            for i in order:
                load, b = heapq.heappop(heap)
                binned[b].append(i)
                heapq.heappush(heap, (load + cost_list[i], b))
            groups = tuple(
                tuple(sorted(group))
                for group in sorted(
                    (g for g in binned if g), key=lambda g: min(g)
                )
            )
        return cls(
            trials=trials,
            unit_size=max(1, max(len(g) for g in groups)),
            mode=mode,
            max_live=max_live,
            groups=groups,
            costs=tuple(cost_list),
        )

    def indices(self) -> List[List[int]]:
        """Trial-index groups covering ``range(trials)`` exactly once.

        Contiguous ``unit_size`` slices, unless the plan carries an
        explicit cost-balanced partition (``groups``).
        """
        if self.groups is not None:
            return [list(group) for group in self.groups]
        all_indices = list(range(self.trials))
        return [
            all_indices[i : i + self.unit_size]
            for i in range(0, self.trials, self.unit_size)
        ]

    def units(self, spec: ExperimentSpec) -> List[WorkUnit]:
        """The plan's work units for ``spec`` (``spec.trials`` must match)."""
        if spec.trials != self.trials:
            raise EngineError(
                f"plan covers {self.trials} trials but spec has "
                f"{spec.trials}"
            )
        return [
            WorkUnit(
                spec=spec,
                indices=tuple(slice_),
                mode=self.mode,
                max_live=self.max_live,
                predicted_cost=(
                    sum(self.costs[i] for i in slice_)
                    if self.costs is not None
                    else None
                ),
            )
            for slice_ in self.indices()
        ]


# -- the transport seam ---------------------------------------------------------------


@dataclass(frozen=True)
class Envelope:
    """One collected outcome: a unit's results, or a lane failure.

    ``stats`` carries the executing side's optional
    :class:`~repro.engine.spec.UnitStats` — advisory timing that the
    telemetry plane folds into per-lane metrics.  Lanes that stamp
    nothing (old workers, custom transports) leave it ``None``.
    """

    unit_id: int
    lane: str
    results: Optional[Tuple[TrialResult, ...]] = None
    error: str = ""
    stats: Optional[UnitStats] = None

    @property
    def ok(self) -> bool:
        return self.results is not None


class Transport(abc.ABC):
    """Submit serialized work units to lanes; collect result envelopes.

    A *lane* is one execution slot with a stable identifier — a pool,
    a TCP worker, an in-process loop.  A lane may hold more than one
    unit at a time (the socket transport pipelines a ``lane_depth``
    window per connection); the collect loop neither knows nor cares —
    it just keeps offering units until every lane declines.  The
    contract :func:`run_units` relies on:

    * :meth:`try_submit` either accepts a unit onto a live lane with
      window room, not in ``exclude`` (returning ``True``), or
      declines (``False``) — without blocking on the unit's execution;
    * every accepted unit eventually yields exactly one
      :class:`Envelope` from :meth:`collect` — success or failure,
      never silence; completion order across units is arbitrary;
    * :meth:`lanes` reports the lanes still considered alive, so the
      collect loop can distinguish "busy, wait" from "hopeless, raise";
      a transport that observes a worker die stops listing its lane.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def lanes(self) -> Tuple[str, ...]:
        """Identifiers of the lanes currently alive."""

    @abc.abstractmethod
    def try_submit(
        self,
        unit_id: int,
        unit: WorkUnit,
        exclude: FrozenSet[str] = frozenset(),
    ) -> bool:
        """Offer a unit to an idle live lane outside ``exclude``."""

    @abc.abstractmethod
    def collect(self) -> Envelope:
        """Block until the next envelope (success or lane failure)."""

    def close(self) -> None:
        """Release transport resources (idempotent)."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()


class InlineTransport(Transport):
    """Reference transport: executes units synchronously, in-process.

    The degenerate lane that makes the collect loop testable (and
    benchmarkable — see the ``dispatch_overhead`` perf-gate suite)
    without pools or sockets: ``try_submit`` runs :func:`run_unit`
    immediately and queues the envelope for the next :meth:`collect`.
    """

    name = "inline"
    _LANE = "inline"

    def __init__(self) -> None:
        self._ready: Deque[Envelope] = deque()

    def lanes(self) -> Tuple[str, ...]:
        return (self._LANE,)

    def try_submit(
        self,
        unit_id: int,
        unit: WorkUnit,
        exclude: FrozenSet[str] = frozenset(),
    ) -> bool:
        if self._LANE in exclude:
            return False
        try:
            results, stats = run_unit_timed(unit)
        except Exception as exc:
            self._ready.append(
                Envelope(
                    unit_id=unit_id,
                    lane=self._LANE,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
        else:
            self._ready.append(
                Envelope(
                    unit_id=unit_id,
                    lane=self._LANE,
                    results=tuple(results),
                    stats=stats,
                )
            )
        return True

    def collect(self) -> Envelope:
        if not self._ready:
            raise DispatchError("collect() with no submitted unit")
        return self._ready.popleft()


class PoolTransport(Transport):
    """``multiprocessing`` pool as a transport (process/hybrid backends).

    Units go to the pool via ``apply_async`` on the shared
    :func:`run_unit` entry; completion callbacks feed a thread-safe
    queue that :meth:`collect` drains.  The pool is one logical lane —
    ``multiprocessing`` gives no control over *which* worker runs a
    task, so excluded-worker rebalancing is meaningless here and a
    unit that fails the pool lane (an unpicklable payload, a scenario
    unknown to a ``spawn`` worker) fails the sweep on its first retry
    pass rather than looping.  Trial-level crash containment is
    unaffected: protocol exceptions never surface as lane failures.
    """

    name = "pool"
    _LANE = "pool"

    def __init__(
        self, workers: int, start_method: Optional[str] = None
    ) -> None:
        if workers < 1:
            raise EngineError("need at least one worker")
        self._pool: Optional[multiprocessing.pool.Pool] = self.create_pool(
            workers, start_method
        )
        self._envelopes: "queue.Queue[Envelope]" = queue.Queue()

    @staticmethod
    def create_pool(
        workers: int, start_method: Optional[str] = None
    ) -> multiprocessing.pool.Pool:
        """A worker pool on an explicit ``multiprocessing`` start method.

        ``None`` uses the platform default (``fork`` on Linux).  Workers
        carry no state beyond their imports: units arrive as plain data
        and scenarios are resolved *by name* in the worker, so ``spawn``
        — which inherits nothing from the parent — produces results
        bit-identical to ``fork`` for every registered scenario.
        (Ad-hoc scenarios registered at runtime in the parent are only
        visible under ``fork``; :mod:`repro.engine.scenarios` is the
        supported extension point.)
        """
        context = multiprocessing.get_context(start_method)
        return context.Pool(processes=workers)

    def lanes(self) -> Tuple[str, ...]:
        return (self._LANE,) if self._pool is not None else ()

    def try_submit(
        self,
        unit_id: int,
        unit: WorkUnit,
        exclude: FrozenSet[str] = frozenset(),
    ) -> bool:
        if self._pool is None:
            raise DispatchError("pool transport is closed")
        if self._LANE in exclude:
            return False

        def on_done(
            outcome: Tuple[List[TrialResult], UnitStats],
            uid: int = unit_id,
        ) -> None:
            results, stats = outcome
            self._envelopes.put(
                Envelope(
                    unit_id=uid,
                    lane=self._LANE,
                    results=tuple(results),
                    stats=stats,
                )
            )

        def on_error(exc: BaseException, uid: int = unit_id) -> None:
            self._envelopes.put(
                Envelope(
                    unit_id=uid,
                    lane=self._LANE,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )

        self._pool.apply_async(
            run_unit_timed,
            (unit,),
            callback=on_done,
            error_callback=on_error,
        )
        return True

    def collect(self) -> Envelope:
        return self._envelopes.get()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


# -- the collect loop -----------------------------------------------------------------


def run_units(
    units: Sequence[WorkUnit],
    transport: Transport,
    max_attempts: Optional[int] = None,
    telemetry: Optional[Any] = None,
) -> List[TrialResult]:
    """Dispatch units over a transport; merge results in trial order.

    The transport-agnostic core every sharded backend shares:

    * keeps submitting queued units while the transport has idle lanes;
    * on a failure envelope, re-queues the unit with the failing lane
      *excluded* so the retry lands elsewhere;
    * raises :class:`DispatchError` when a unit has failed on every
      live lane, exceeded ``max_attempts`` (default: one attempt per
      initially-live lane, plus one), or no live lane remains — a
      sweep's results are complete and bit-identical, or the sweep
      raises; nothing in between;
    * verifies the merged results cover every planned trial exactly
      once before returning them in canonical trial order.

    ``telemetry`` (a :class:`~repro.engine.telemetry.RunTelemetry`, or
    any object with its submit/result hooks) records one span per unit
    attempt; ``None`` records nothing and costs nothing.
    """
    if not units:
        return []
    collected = _collect_envelopes(units, transport, max_attempts, telemetry)
    merged = sorted(
        (r for results in collected.values() for r in results),
        key=lambda r: r.trial_index,
    )
    expected = sorted(i for unit in units for i in unit.indices)
    if [r.trial_index for r in merged] != expected:
        raise DispatchError(
            "collected results do not cover the planned trials exactly "
            f"once (got {[r.trial_index for r in merged]!r}, "
            f"expected {expected!r})"
        )
    return merged


def run_grid_units(
    units: Sequence[WorkUnit],
    transport: Transport,
    max_attempts: Optional[int] = None,
    telemetry: Optional[Any] = None,
) -> List[Tuple[ExperimentSpec, List[TrialResult]]]:
    """:func:`run_units` over a *grid*: units of several specs at once.

    One shared collect loop drives every unit through the transport —
    this is what makes cost-aware grids balance globally, since a lane
    finishing a cheap spec's unit immediately picks up an expensive
    spec's one — but merging must not mix specs: trial indices are
    per-spec, so results are grouped by their unit's spec, merged into
    canonical trial order *within* each spec, and coverage-checked per
    spec.  Returns ``(spec, results)`` pairs, one per distinct spec, in
    first-appearance order of the specs in ``units`` (cost-aware plans
    reorder units, so callers match results up by spec, not position).
    """
    if not units:
        return []
    spec_order: List[ExperimentSpec] = []
    for unit in units:
        if unit.spec not in spec_order:
            spec_order.append(unit.spec)
    collected = _collect_envelopes(units, transport, max_attempts, telemetry)
    grouped: List[Tuple[ExperimentSpec, List[TrialResult]]] = []
    for spec in spec_order:
        uids = [
            uid for uid, unit in enumerate(units) if unit.spec == spec
        ]
        merged = sorted(
            (r for uid in uids for r in collected[uid]),
            key=lambda r: r.trial_index,
        )
        expected = list(range(spec.trials))
        if [r.trial_index for r in merged] != expected:
            raise DispatchError(
                f"grid results for spec {spec.runner!r} (n={spec.n}) do "
                "not cover the planned trials exactly once "
                f"(got {[r.trial_index for r in merged]!r}, "
                f"expected {expected!r})"
            )
        grouped.append((spec, merged))
    return grouped


def _collect_envelopes(
    units: Sequence[WorkUnit],
    transport: Transport,
    max_attempts: Optional[int],
    telemetry: Optional[Any],
) -> Dict[int, Tuple[TrialResult, ...]]:
    """The shared submit/retry/collect loop, keyed by unit id."""
    cap = max_attempts if max_attempts is not None else len(transport.lanes()) + 1
    if cap < 1:
        raise DispatchError("max_attempts must be >= 1")
    todo: Deque[int] = deque(range(len(units)))
    attempts: Dict[int, int] = {uid: 0 for uid in todo}
    excluded: Dict[int, set] = {uid: set() for uid in todo}
    last_error: Dict[int, str] = {}
    collected: Dict[int, Tuple[TrialResult, ...]] = {}
    inflight = 0
    while len(collected) < len(units):
        unplaced: Deque[int] = deque()
        while todo:
            uid = todo.popleft()
            # Stamp the submit time *before* the offer: the inline
            # transport executes the unit inside try_submit, and its
            # compute must land inside the span.
            if telemetry is not None:
                telemetry.note_submit(
                    uid,
                    len(units[uid].indices),
                    units[uid].mode,
                    predicted_cost=units[uid].predicted_cost,
                )
            if transport.try_submit(
                uid, units[uid], frozenset(excluded[uid])
            ):
                inflight += 1
            else:
                if telemetry is not None:
                    telemetry.cancel_submit(uid)
                live = set(transport.lanes())
                if not live:
                    raise DispatchError(
                        "every dispatch lane is dead"
                        + (
                            f" (last error: {last_error[uid]})"
                            if uid in last_error
                            else ""
                        )
                    )
                if live <= excluded[uid]:
                    raise DispatchError(
                        f"work unit {uid} failed on every live lane: "
                        f"{last_error.get(uid, 'no error recorded')}"
                    )
                unplaced.append(uid)
        todo = unplaced
        if inflight == 0:
            # Nothing running, nothing placeable, sweep incomplete:
            # a transport contract violation, not a user error.
            raise DispatchError(
                "dispatch stalled: no lane accepted work and none is busy"
            )
        envelope = transport.collect()
        inflight -= 1
        if telemetry is not None:
            telemetry.note_result(envelope)
        if envelope.ok:
            collected[envelope.unit_id] = envelope.results
            continue
        attempts[envelope.unit_id] += 1
        excluded[envelope.unit_id].add(envelope.lane)
        last_error[envelope.unit_id] = (
            f"lane {envelope.lane!r}: {envelope.error}"
        )
        if attempts[envelope.unit_id] >= cap:
            raise DispatchError(
                f"work unit {envelope.unit_id} failed {cap} time(s); "
                f"giving up ({last_error[envelope.unit_id]})"
            )
        todo.append(envelope.unit_id)
    return collected
