"""Multi-host dispatch: TCP workers behind the ExecutionBackend seam.

The distributed backend is deliberately *thin*: everything hard —
shard geometry, submit/collect/retry, canonical-order merge, the
spawn-safe worker entry — already lives in the transport-agnostic
:mod:`~repro.engine.dispatch` plane.  This module only adds the
transport (:class:`SocketTransport`) and the worker process
(:class:`WorkerServer`, served by ``repro worker serve``), making
"distributed" one more lane type rather than a fourth copy of the
dispatch loop.

Protocol — framing lives in :mod:`~repro.engine.wire`; the documents
are the usual versioned JSON either way:

* client → worker: a ``unit`` wire document
  (:func:`~repro.engine.dispatch.unit_to_wire` — versioned, carries
  the spec as data plus trial indices, mode, and ``max_live``);
* worker → client: a ``results`` document wrapping one
  :func:`~repro.engine.spec.result_to_wire` envelope per trial, or an
  ``error`` document (version mismatch, unknown scenario, malformed
  unit);
* a ``ping`` request answers ``pong`` (used to probe liveness);
* a ``hello`` request right after dial negotiates the wire codec
  (:func:`~repro.engine.spec.negotiate_codec`): a codec-aware worker
  answers ``hello-ok`` and the connection switches to binary frames;
  a legacy worker answers its usual ``unsupported request kind``
  error and the connection stays on newline-delimited JSON — byte for
  byte the pre-codec protocol.

Each lane is **pipelined**: up to ``lane_depth`` units ride the
connection concurrently (binary lanes tag requests with a unit id the
worker echoes; JSON lanes match replies by submission order, which is
exact because a worker serves one connection serially).  Completion
is out of order across lanes and feeds the same retry/rebalance
collect loop one envelope at a time.

Workers rebuild scenarios *by name* from their own registry import —
the same contract that makes ``spawn`` pool workers bit-identical to
``fork`` — so a remote host executes literally the construction the
serial backend executes, and ``distributed == hybrid == process ==
serial`` holds bit for bit, registry-wide
(``tests/test_distributed.py``, ``tests/test_scenarios.py``).

Failure containment: a worker host that dies mid-sweep surfaces as
one failure envelope per in-flight unit; the collect loop retries
each on another worker with the dead lane excluded, and the sweep
completes — still bit-identical — as long as one worker survives.
Only when every live lane has failed does the sweep raise.

Scope: the wire format authenticates nothing and encrypts nothing —
run workers on trusted networks (loopback, a private cluster fabric),
exactly like a ``multiprocessing`` listener.
"""

from __future__ import annotations

import queue
import socket
import socketserver
import threading
import time
from collections import deque
from typing import (
    Any,
    Deque,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .backends import ExecutionBackend
from .dispatch import (
    DispatchPlan,
    Envelope,
    Transport,
    WorkUnit,
    run_grid_units,
    run_unit_timed,
    run_units,
    unit_from_wire,
    unit_to_wire,
)
from .registry import get_runner
from .spec import (
    CODEC_BINARY,
    CODEC_JSON,
    EngineError,
    ExperimentSpec,
    SUPPORTED_CODECS,
    TrialResult,
    WIRE_VERSION,
    WireFormatError,
    codec_name,
    negotiate_codec,
    require_wire,
    result_from_wire,
    result_to_wire,
    stats_from_wire,
    stats_to_wire,
)
from .telemetry import RunTelemetry
from .wire import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameReader,
    decode_document,
    encode_frame,
)

#: Default TCP port of ``repro worker serve``.
DEFAULT_PORT = 7045

#: Default in-flight window per transport lane (``--lane-depth``).
#: Depth 1 reproduces the old one-exchange-at-a-time behaviour; depth
#: 2 already overlaps a unit's compute with the next unit's transfer.
DEFAULT_LANE_DEPTH = 2

HostSpec = Union[str, Tuple[str, int], Tuple[str, int, int]]


def _host_error(entry: Any, why: str) -> EngineError:
    """A parse error that always names the offending entry."""
    return EngineError(f"bad worker host {entry!r}: {why}")


def parse_hosts(hosts: Sequence[HostSpec]) -> List[Tuple[str, int, int]]:
    """Normalise host specs into ``(host, port, weight)`` triples.

    Accepted forms — strings ``host``, ``host:port`` and
    ``host:port:weight``, and tuples ``(host, port)`` /
    ``(host, port, weight)``.  A bare ``host`` gets
    :data:`DEFAULT_PORT`; the capacity ``weight`` (units the host keeps
    in flight at once — see :func:`~repro.engine.dispatch.total_capacity`)
    defaults to 1.  Malformed specs raise an :class:`EngineError`
    naming the offending entry.  (IPv6 literals need the tuple form —
    the string form splits on colons.)
    """
    parsed: List[Tuple[str, int, int]] = []
    for entry in hosts:
        if isinstance(entry, tuple):
            if len(entry) == 2:
                host, port = entry
                weight: Any = 1
            elif len(entry) == 3:
                host, port, weight = entry
            else:
                raise _host_error(
                    entry, "expected (host, port) or (host, port, weight)"
                )
            try:
                port = int(port)
                weight = int(weight)
            except (TypeError, ValueError):
                raise _host_error(
                    entry, "port and weight must be integers"
                ) from None
        else:
            text = str(entry).strip()
            if not text:
                raise _host_error(entry, "empty worker host entry")
            parts = text.split(":")
            if len(parts) > 3 or any(not p for p in parts):
                raise _host_error(
                    entry, "expected host, host:port or host:port:weight"
                )
            host = parts[0]
            try:
                port = int(parts[1]) if len(parts) > 1 else DEFAULT_PORT
            except ValueError:
                raise _host_error(
                    entry, f"port {parts[1]!r} is not an integer"
                ) from None
            try:
                weight = int(parts[2]) if len(parts) > 2 else 1
            except ValueError:
                raise _host_error(
                    entry, f"weight {parts[2]!r} is not an integer"
                ) from None
        if not 0 < port < 65536:
            raise _host_error(entry, f"port {port} outside 1..65535")
        if weight < 1:
            raise _host_error(entry, f"weight {weight} must be >= 1")
        parsed.append((str(host), port, weight))
    return parsed


# -- the worker process ---------------------------------------------------------------


class _WorkerTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    #: Set by :class:`WorkerServer` after construction.
    owner: "WorkerServer"


class _WorkerHandler(socketserver.BaseRequestHandler):
    """One client connection: serve framed requests until EOF.

    Reads through one buffered :class:`~repro.engine.wire.FrameReader`
    (codec auto-detected per frame) and answers under the connection's
    negotiated codec — JSON lines until a ``hello`` upgrades it.
    """

    def handle(self) -> None:
        server: "WorkerServer" = self.server.owner
        sock = self.request
        # Frames are small relative to TCP segments; without NODELAY the
        # Nagle/delayed-ACK interaction stalls the exchange for tens of
        # milliseconds per round trip on an otherwise idle connection.
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # non-TCP test doubles
        reader = FrameReader(sock, max_frame_bytes=server.max_frame_bytes)
        codec = CODEC_JSON

        def send(doc: dict, reply_id: Optional[int] = None) -> None:
            if reply_id is not None:
                doc["id"] = reply_id
            sock.sendall(encode_frame(doc, codec))

        def error(message: str, reply_id: Optional[int] = None) -> None:
            send(
                {"version": WIRE_VERSION, "kind": "error", "error": message},
                reply_id,
            )

        while True:
            if server.crashed:
                # Simulated (or administratively forced) death: drop the
                # connection without a reply, exactly what a killed
                # worker process looks like from the client side.
                return
            try:
                frame = reader.read_frame()
            except WireFormatError as exc:
                # Broken framing (oversized frame, bad header): the
                # stream cannot be resynchronised — answer and hang up.
                try:
                    error(str(exc))
                except OSError:
                    pass
                return
            except (ConnectionError, OSError):
                return
            if frame is None:
                return
            try:
                doc = decode_document(frame.payload)
            except WireFormatError as exc:
                # Damage inside a cleanly-delimited frame: report it and
                # keep serving, the next frame is independent.
                error(str(exc))
                continue
            kind = doc.get("kind") if isinstance(doc, dict) else None
            if kind == "ping":
                send({"version": WIRE_VERSION, "kind": "pong"})
                continue
            if kind == "hello" and server.binary:
                chosen = negotiate_codec(doc.get("codecs"))
                # The acknowledgement ships under the *old* codec; both
                # sides switch for every frame after it.
                send(
                    {
                        "version": WIRE_VERSION,
                        "kind": "hello-ok",
                        "codec": chosen,
                        "max_frame": server.max_frame_bytes,
                    }
                )
                codec = chosen
                continue
            if kind != "unit":
                # A binary=False server answers ``hello`` here too —
                # faithfully reproducing a pre-codec worker.
                error(f"unsupported request kind {kind!r}")
                continue
            reply_id = doc.get("id") if server.binary else None
            if server.note_unit_and_check_crash():
                return
            if not server.begin_unit():
                # Draining: refuse new work with an answer (an error
                # envelope keeps the lane alive client-side just long
                # enough to rebalance the unit elsewhere), then hang up.
                error("worker is draining", reply_id)
                return
            try:
                try:
                    unit = unit_from_wire(doc)
                    results, stats = run_unit_timed(unit)
                    reply = {
                        "version": WIRE_VERSION,
                        "kind": "results",
                        "results": [result_to_wire(r) for r in results],
                    }
                    # The stats field is optional and versioned on its
                    # own: clients treat an absent field (this server
                    # with stats=False — the legacy-worker shape) as
                    # "no stats".
                    if server.send_stats:
                        reply["stats"] = stats_to_wire(stats)
                    send(reply, reply_id)
                except Exception as exc:  # report, keep serving
                    error(f"{type(exc).__name__}: {exc}", reply_id)
            finally:
                # The reply (or error) is flushed before the unit is
                # released — close() may tear the socket down the
                # moment the in-flight count reaches zero.
                server.finish_unit()
            if server.draining:
                return


class WorkerServer:
    """A ``repro`` work-unit server: one TCP listener, threaded handlers.

    Usable two ways: the ``repro worker serve`` CLI constructs one and
    calls the blocking :meth:`serve_forever`; tests construct one with
    ``port=0`` (ephemeral) and call :meth:`start` to serve from a
    daemon thread in-process.

    ``binary=False`` disables codec negotiation entirely — the server
    answers ``hello`` with the generic unsupported-kind error and never
    echoes unit ids, faithfully reproducing a pre-codec worker (the
    legacy peer in the mixed-fleet interop tests and the
    ``--codec json`` CLI flag).  ``max_frame_bytes`` caps any single
    request frame; an oversized one is refused with a clean error.

    ``crash_after_units`` is the failure-injection hook behind the
    worker-kill tests: the server answers that many units normally,
    then drops every connection without replying — indistinguishable,
    from the client side, from the worker process being killed
    mid-sweep.

    :meth:`close` performs a **graceful drain**: new unit requests are
    refused, but any unit already executing finishes and its response
    is flushed before the sockets come down — a worker asked to stop
    (SIGTERM on ``repro worker serve``) never cuts an exchange
    mid-envelope.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        crash_after_units: Optional[int] = None,
        stats: bool = True,
        drain_timeout: float = 30.0,
        binary: bool = True,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._server = _WorkerTCPServer((host, port), _WorkerHandler)
        self._server.owner = self
        self.host, self.port = self._server.server_address[:2]
        self.crash_after_units = crash_after_units
        #: ``stats=False`` reproduces the pre-telemetry reply shape —
        #: the interop fixture for the legacy-worker tests.
        self.send_stats = stats
        self.binary = binary
        self.max_frame_bytes = max_frame_bytes
        self.drain_timeout = drain_timeout
        self.crashed = False
        self.draining = False
        self._units_seen = 0
        self._count_lock = threading.Lock()
        self._inflight = 0
        self._drain_cond = threading.Condition()
        self._thread: Optional[threading.Thread] = None
        self._serving = False
        self._closed = False

    @property
    def address(self) -> str:
        """The ``host:port`` string clients dial."""
        return f"{self.host}:{self.port}"

    @property
    def units_served(self) -> int:
        """How many unit requests this server has received."""
        with self._count_lock:
            return self._units_seen

    def note_unit_and_check_crash(self) -> bool:
        """Count one received unit; True when the crash budget is spent."""
        with self._count_lock:
            self._units_seen += 1
            if (
                self.crash_after_units is not None
                and self._units_seen > self.crash_after_units
            ):
                self.crashed = True
        return self.crashed

    def begin_unit(self) -> bool:
        """Claim one unit execution slot; False once draining started."""
        with self._drain_cond:
            if self.draining:
                return False
            self._inflight += 1
            return True

    def finish_unit(self) -> None:
        """Release a unit slot (its response is already flushed)."""
        with self._drain_cond:
            self._inflight -= 1
            self._drain_cond.notify_all()

    def serve_forever(self) -> None:
        """Serve until :meth:`close` (blocking; the CLI entry point)."""
        self._serving = True
        self._server.serve_forever(poll_interval=0.1)

    def start(self) -> "WorkerServer":
        """Serve from a daemon thread (the in-process/test entry point)."""
        if self._thread is not None:
            return self
        # Flag before spawning: a close() racing the thread's entry into
        # serve_forever must go through shutdown() (which BaseServer
        # handles at any point of that race) rather than closing the
        # socket under the about-to-serve thread.
        self._serving = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name=f"repro-worker-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Drain in-flight units, stop serving, release the socket.

        Idempotent.  The drain happens *first*: ``draining`` flips (new
        unit requests are refused from here on) and the call blocks —
        up to ``drain_timeout`` — until every in-flight unit has
        finished and flushed its response.  Only then do the accept
        loop and sockets come down, so a close never cuts an exchange
        mid-envelope (pinned by ``tests/test_distributed.py``).
        """
        if self._closed:
            return
        self._closed = True
        with self._drain_cond:
            self.draining = True
            self._drain_cond.wait_for(
                lambda: self._inflight == 0, timeout=self.drain_timeout
            )
        if self._serving:
            self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "WorkerServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# -- the transport --------------------------------------------------------------------


#: Outbox sentinel telling a lane's sender thread to exit.
_CLOSE = object()


class _Lane:
    """One worker connection carrying a window of in-flight units.

    ``inflight`` maps unit id → (unit, submit offset); ``order`` keeps
    submission order for matching replies that carry no id (JSON-codec
    lanes — exact, because a worker serves one connection serially).
    The sender thread owns the socket's write side and dials lazily on
    first use; the receiver thread owns the read side.
    """

    def __init__(
        self, lane_id: str, host: str, port: int, depth: int
    ) -> None:
        self.id = lane_id
        self.host = host
        self.port = port
        self.depth = depth
        self.sock: Optional[socket.socket] = None
        self.codec = CODEC_JSON
        self.dead = False
        self.lock = threading.Lock()
        self.inflight: Dict[int, Tuple[WorkUnit, float]] = {}
        self.order: Deque[int] = deque()
        self.outbox: "queue.Queue[Any]" = queue.Queue()
        self.sender: Optional[threading.Thread] = None
        self.receiver: Optional[threading.Thread] = None

    def drop_socket(self) -> None:
        sock, self.sock = self.sock, None
        if sock is not None:
            # shutdown() before close(): closing an fd does NOT wake a
            # thread blocked in recv() on it — without the shutdown the
            # receiver thread sleeps until its join timeout on every
            # transport close.
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class SocketTransport(Transport):
    """Dispatch work units to ``repro worker serve`` hosts over TCP.

    Each worker host is one lane with a persistent connection and a
    pipelined in-flight window of ``lane_depth`` units: the sender
    thread streams request frames while the receiver thread completes
    earlier units off the same connection, so a unit's network
    transfer overlaps the previous unit's remote compute.
    :meth:`try_submit` only stamps the unit into the lane's window
    (never blocking on the network) and :meth:`collect` drains the
    shared envelope queue.

    The first use of a lane dials it and — under ``codec="auto"`` —
    negotiates the wire codec with a ``hello`` exchange, falling back
    to the legacy JSON line protocol when the worker predates codecs
    (``codec="json"`` skips negotiation and *is* the legacy client,
    byte for byte).  Any socket failure — refused connect, dropped
    connection, EOF mid-reply, an oversized reply frame — marks the
    lane dead and surfaces one failure envelope per in-flight unit;
    the collect loop turns each into a retry on a surviving lane (this
    lane excluded).  A worker that *answers* with an ``error``
    document stays alive (it is reachable and sane — the unit, not the
    lane, is the problem).

    A host's capacity weight expands into that many lanes (each with
    its own connection and window), so a weight-3 machine holds
    ``3 * lane_depth`` units concurrently and the greedy collect loop
    feeds it a proportionate share of the sweep.
    """

    name = "socket"

    def __init__(
        self,
        hosts: Sequence[HostSpec],
        connect_timeout: float = 5.0,
        io_timeout: Optional[float] = None,
        lane_depth: int = DEFAULT_LANE_DEPTH,
        codec: str = "auto",
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        addresses = parse_hosts(hosts)
        if not addresses:
            raise EngineError("socket transport needs at least one host")
        if lane_depth < 1:
            raise EngineError("lane_depth must be >= 1")
        if codec not in ("auto", "json"):
            raise EngineError(
                f"unknown transport codec {codec!r} "
                "(expected 'auto' or 'json')"
            )
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self.lane_depth = lane_depth
        self.codec = codec
        self.max_frame_bytes = max_frame_bytes
        self._lanes: List[_Lane] = []
        seen: dict = {}
        for host, port, weight in addresses:
            base = f"{host}:{port}"
            for _ in range(weight):
                count = seen.get(base, 0)
                seen[base] = count + 1
                lane_id = base if count == 0 else f"{base}#{count}"
                self._lanes.append(_Lane(lane_id, host, port, lane_depth))
        self._envelopes: "queue.Queue[Envelope]" = queue.Queue()
        self._closed = False
        #: Per-run telemetry sink (set by the backend before each run;
        #: the transport outlives runs, the telemetry does not).
        self.telemetry: Optional[RunTelemetry] = None

    def lanes(self) -> Tuple[str, ...]:
        return tuple(lane.id for lane in self._lanes if not lane.dead)

    def try_submit(
        self,
        unit_id: int,
        unit: WorkUnit,
        exclude: FrozenSet[str] = frozenset(),
    ) -> bool:
        if self._closed:
            raise EngineError("socket transport is closed")
        for lane in self._lanes:
            if lane.id in exclude:
                continue
            with lane.lock:
                if lane.dead or len(lane.inflight) >= lane.depth:
                    continue
                lane.inflight[unit_id] = (unit, time.perf_counter())
                lane.order.append(unit_id)
                window = len(lane.inflight)
                if lane.sender is None:
                    lane.sender = threading.Thread(
                        target=self._lane_sender,
                        args=(lane,),
                        name=f"repro-lane-{lane.id}",
                        daemon=True,
                    )
                    lane.sender.start()
            if self.telemetry is not None:
                self.telemetry.note_inflight(lane.id, window)
            lane.outbox.put(unit_id)
            return True
        return False

    # -- lane threads ------------------------------------------------------------------

    def _dial(self, lane: _Lane) -> None:
        """Connect, negotiate the codec, start the receiver."""
        lane.sock = socket.create_connection(
            (lane.host, lane.port), timeout=self.connect_timeout
        )
        lane.sock.settimeout(self.io_timeout)
        # Request frames must leave immediately: Nagle would hold a
        # small frame until the previous one is ACKed, serialising the
        # very window the pipeline exists to keep full.
        try:
            lane.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.note_lane_event(lane.id, "dial")
        reader = FrameReader(
            lane.sock, max_frame_bytes=self.max_frame_bytes
        )
        if self.codec == "auto":
            hello = encode_frame(
                {
                    "version": WIRE_VERSION,
                    "kind": "hello",
                    "codecs": list(SUPPORTED_CODECS),
                },
                CODEC_JSON,
            )
            lane.sock.sendall(hello)
            frame = reader.read_frame()
            if frame is None:
                raise ConnectionError(
                    "worker hung up during codec negotiation"
                )
            doc = decode_document(frame.payload)
            chosen = CODEC_JSON
            if isinstance(doc, dict) and doc.get("kind") == "hello-ok":
                require_wire(doc, "hello-ok")
                offered = doc.get("codec")
                if offered in SUPPORTED_CODECS:
                    chosen = offered
            # Anything else — typically a legacy worker's "unsupported
            # request kind 'hello'" error — leaves the lane on the JSON
            # line protocol for the connection's lifetime.
            lane.codec = chosen
            if telemetry is not None:
                telemetry.note_send(lane.id, len(hello))
                telemetry.note_receive(lane.id, frame.size)
        else:
            lane.codec = CODEC_JSON
        if telemetry is not None:
            telemetry.note_lane_codec(lane.id, codec_name(lane.codec))
        lane.receiver = threading.Thread(
            target=self._lane_receiver,
            args=(lane, reader),
            name=f"repro-recv-{lane.id}",
            daemon=True,
        )
        lane.receiver.start()

    def _lane_sender(self, lane: _Lane) -> None:
        """Dial once, then stream request frames off the outbox."""
        try:
            self._dial(lane)
        except Exception as exc:
            self._fail_lane(lane, f"{type(exc).__name__}: {exc}")
            return
        while True:
            item = lane.outbox.get()
            if item is _CLOSE:
                return
            with lane.lock:
                if lane.dead:
                    return
                entry = lane.inflight.get(item)
            if entry is None:
                continue  # already failed out of the window
            doc = unit_to_wire(entry[0])
            if lane.codec == CODEC_BINARY:
                # Tag the request so the reply matches by id; JSON
                # lanes stay byte-identical to the legacy client and
                # match by submission order instead.
                doc["id"] = item
            frame = encode_frame(doc, lane.codec)
            try:
                lane.sock.sendall(frame)
            except Exception as exc:
                self._fail_lane(lane, f"{type(exc).__name__}: {exc}")
                return
            if self.telemetry is not None:
                self.telemetry.note_send(lane.id, len(frame))

    def _reply_unit_id(self, lane: _Lane, doc: Any) -> int:
        """Which in-flight unit a reply document answers."""
        if isinstance(doc, dict) and doc.get("id") is not None:
            return int(doc["id"])
        with lane.lock:
            if not lane.order:
                raise WireFormatError(
                    "worker sent a reply with no request in flight"
                )
            return lane.order[0]

    def _reply_envelope(
        self, lane: _Lane, unit_id: int, doc: Any
    ) -> Envelope:
        """A reply document as an envelope (validating its shape)."""
        if isinstance(doc, dict) and doc.get("kind") == "error":
            require_wire(doc, "error")
            return Envelope(
                unit_id=unit_id,
                lane=lane.id,
                error=f"worker error: {doc.get('error', 'unknown')}",
            )
        require_wire(doc, "results")
        results = tuple(result_from_wire(r) for r in doc["results"])
        return Envelope(
            unit_id=unit_id,
            lane=lane.id,
            results=results,
            # Absent on old workers; tolerant decode -> None.
            stats=stats_from_wire(doc.get("stats")),
        )

    def _lane_receiver(self, lane: _Lane, reader: FrameReader) -> None:
        """Complete in-flight units off the connection, out of order."""
        while True:
            try:
                frame = reader.read_frame()
            except Exception as exc:
                self._fail_lane(lane, f"{type(exc).__name__}: {exc}")
                return
            if frame is None:
                # Clean hangup at a frame boundary.  With an empty
                # window (a drained worker between units) the lane just
                # retires; in-flight units become failure envelopes.
                self._fail_lane(lane, "worker closed the connection")
                return
            try:
                doc = decode_document(frame.payload)
                unit_id = self._reply_unit_id(lane, doc)
                envelope = self._reply_envelope(lane, unit_id, doc)
            except Exception as exc:
                self._fail_lane(lane, f"{type(exc).__name__}: {exc}")
                return
            with lane.lock:
                entry = lane.inflight.pop(unit_id, None)
                try:
                    lane.order.remove(unit_id)
                except ValueError:
                    pass
            if entry is None:
                self._fail_lane(
                    lane, f"worker sent an unmatched reply for unit {unit_id}"
                )
                return
            if self.telemetry is not None:
                self.telemetry.note_receive(
                    lane.id,
                    frame.size,
                    round_trip_seconds=time.perf_counter() - entry[1],
                )
            self._envelopes.put(envelope)

    def _fail_lane(self, lane: _Lane, cause: str) -> None:
        """Kill one lane: every in-flight unit becomes a failure envelope.

        Idempotent — the first caller (sender, receiver, or close)
        wins; late callers see ``dead`` and return, so a socket error
        observed by both lane threads produces envelopes exactly once.
        """
        with lane.lock:
            if lane.dead:
                return
            lane.dead = True
            pending = list(lane.inflight.items())
            lane.inflight.clear()
            lane.order.clear()
        lane.outbox.put(_CLOSE)
        lane.drop_socket()
        if self._closed:
            return
        if self.telemetry is not None:
            self.telemetry.note_lane_event(lane.id, "dead")
        for unit_id, _entry in pending:
            self._envelopes.put(
                Envelope(unit_id=unit_id, lane=lane.id, error=cause)
            )

    def collect(self) -> Envelope:
        return self._envelopes.get()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for lane in self._lanes:
            with lane.lock:
                lane.dead = True
                lane.inflight.clear()
                lane.order.clear()
            lane.outbox.put(_CLOSE)
            lane.drop_socket()
        current = threading.current_thread()
        for lane in self._lanes:
            for thread in (lane.sender, lane.receiver):
                if thread is not None and thread is not current:
                    thread.join(timeout=1.0)


# -- the backend ----------------------------------------------------------------------


class DistributedBackend(ExecutionBackend):
    """Dispatch a spec's trials to remote worker hosts.

    Runs *every* registered scenario: asynchronous scenarios ship as
    ``wave`` units (each host drives a local breadth-first step loop,
    exactly like a hybrid pool worker), everything else as ``trials``
    units (isolated :func:`~repro.engine.dispatch.run_one_trial` calls,
    exactly like a process pool worker).  Either way the results are
    bit-identical to the serial backend, because seeds derive from the
    spec and hosts rebuild scenarios by name — the wire codec and the
    pipeline depth change framing and overlap, never content.

    Unlike the pool backends there is no single-worker serial
    degradation: asking for the distributed backend means *run it on
    the workers*, even when there is one worker or one trial.

    Parameters:
        hosts: worker addresses — ``host:port[:weight]`` strings or
            ``(host, port[, weight])`` tuples, one ``repro worker
            serve`` each; the capacity weight (default 1) gives the
            host that many concurrent lanes and scales the plan's
            effective worker count.
        unit_size: trials per dispatched unit (``None``: the dispatch
            plane's default geometry — ~2 waves/host for async
            scenarios, ~4 chunks/host otherwise, per capacity weight).
        max_live: resident-instance bound within a host's wave.
        connect_timeout / io_timeout: socket timeouts (``io_timeout``
            ``None`` waits indefinitely for a unit's results).
        lane_depth: in-flight window per lane (``--lane-depth``;
            default :data:`DEFAULT_LANE_DEPTH`; 1 = serial exchanges).
        codec: ``"auto"`` negotiates the binary codec per worker,
            ``"json"`` forces the legacy line protocol.
        max_frame_bytes: reply frames above this fail the lane cleanly.

    The TCP connections persist across :meth:`run_trials` calls;
    :meth:`close` drops them (idempotent — the next run reconnects).
    A run that observed lane deaths (or raised) drops the transport
    too, so the next run re-dials every configured host — a worker
    that restarted between sweeps rejoins instead of staying excluded
    forever.
    """

    name = "distributed"

    def __init__(
        self,
        hosts: Sequence[HostSpec],
        unit_size: Optional[int] = None,
        max_live: int = 64,
        connect_timeout: float = 5.0,
        io_timeout: Optional[float] = None,
        lane_depth: int = DEFAULT_LANE_DEPTH,
        codec: str = "auto",
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.addresses = parse_hosts(hosts)
        if not self.addresses:
            raise EngineError(
                "distributed backend needs at least one worker host"
            )
        if unit_size is not None and unit_size < 1:
            raise EngineError("unit_size must be >= 1")
        self.unit_size = unit_size
        if max_live < 1:
            raise EngineError("max_live must be >= 1")
        self.max_live = max_live
        if lane_depth < 1:
            raise EngineError("lane_depth must be >= 1")
        self.lane_depth = lane_depth
        self.codec = codec
        self.max_frame_bytes = max_frame_bytes
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self._transport: Optional[SocketTransport] = None

    def plan(self, spec: ExperimentSpec) -> DispatchPlan:
        """Wave geometry for async scenarios, chunk geometry otherwise.

        Capacity-weighted: a ``host:port:3`` worker counts as three in
        the effective worker count, so heterogeneous fleets see unit
        sizes matched to their aggregate parallelism.  (The pipeline
        window is deliberately *not* part of the geometry: depth hides
        latency within a lane, it does not add compute capacity.)
        """
        runner = get_runner(spec.runner)
        weights = [weight for _, _, weight in self.addresses]
        if runner.build_async_instance is not None:
            return DispatchPlan.waved(
                spec.trials,
                self.unit_size,
                workers=0,
                max_live=self.max_live,
                weights=weights,
            )
        return DispatchPlan.chunked(
            spec.trials, self.unit_size, workers=0, weights=weights
        )

    @property
    def total_lanes(self) -> int:
        """The fleet's capacity: one lane per unit of host weight."""
        return sum(weight for _, _, weight in self.addresses)

    def _ensure_transport(
        self, telemetry: Optional[RunTelemetry] = None
    ) -> SocketTransport:
        if self._transport is not None and len(
            self._transport.lanes()
        ) < self.total_lanes:
            # A previous sweep lost lanes.  Worker restarts are routine,
            # and a dead lane is permanent within one transport — so
            # reconnect from scratch rather than running degraded (or
            # bricked) forever on a host set that has since recovered.
            self.close()
            if telemetry is not None:
                for host, port, _ in self.addresses:
                    telemetry.note_lane_event(f"{host}:{port}", "redial")
        if self._transport is None:
            self._transport = SocketTransport(
                self.addresses,
                connect_timeout=self.connect_timeout,
                io_timeout=self.io_timeout,
                lane_depth=self.lane_depth,
                codec=self.codec,
                max_frame_bytes=self.max_frame_bytes,
            )
        self._transport.telemetry = telemetry
        return self._transport

    def run_trials(self, spec: ExperimentSpec) -> List[TrialResult]:
        # Resolve locally first: unknown scenario names should fail
        # fast at the client, not as N remote error envelopes.
        get_runner(spec.runner)
        telemetry = self._begin_telemetry(spec)
        units = self.plan(spec).units(spec)
        try:
            results = run_units(
                units,
                self._ensure_transport(telemetry),
                telemetry=telemetry,
            )
        except BaseException:
            # An aborted sweep may leave exchanges in flight whose
            # envelopes would be misattributed by a later run on the
            # same transport; drop it — the next run reconnects fresh.
            self.close()
            raise
        telemetry.finish()
        return results

    def run_grid(
        self,
        specs: Sequence[ExperimentSpec],
        cost_aware: bool = True,
    ) -> List[List[TrialResult]]:
        """A fused multi-spec sweep over the worker fleet.

        One shared collect loop over every host lane; unit sizes come
        from one grid-wide predicted-cost target scaled by the fleet's
        aggregate capacity weights (uniform geometry when any spec
        lacks a cost model).  Per-spec mode follows :meth:`plan`: waves
        where the scenario has an async builder, chunks otherwise.
        """
        from .costplan import grid_modes, plan_grid

        if not specs:
            return []
        for spec in specs:
            get_runner(spec.runner)
        unique = list(dict.fromkeys(specs))
        if len(unique) == 1:
            return super().run_grid(specs, cost_aware=cost_aware)
        telemetry = RunTelemetry(
            backend=self.name,
            total_trials=sum(spec.trials for spec in unique),
            monitor=self.monitor,
        )
        self.telemetry = telemetry
        units = plan_grid(
            unique,
            capacity=self.total_lanes,
            modes=grid_modes(unique),
            max_live=self.max_live,
            cost_aware=cost_aware,
        )
        try:
            pairs = run_grid_units(
                units,
                self._ensure_transport(telemetry),
                telemetry=telemetry,
            )
        except BaseException:
            self.close()
            raise
        telemetry.finish()
        return pairs_to_grid(pairs, specs)

    def close(self) -> None:
        if self._transport is not None:
            self._transport.close()
            self._transport = None


def pairs_to_grid(
    pairs: Sequence[Tuple[ExperimentSpec, List[TrialResult]]],
    specs: Sequence[ExperimentSpec],
) -> List[List[TrialResult]]:
    """Re-order fused grid results back into the caller's spec order."""
    by_spec = {spec: results for spec, results in pairs}
    return [by_spec[spec] for spec in specs]
