"""Multi-host dispatch: TCP workers behind the ExecutionBackend seam.

The distributed backend is deliberately *thin*: everything hard —
shard geometry, submit/collect/retry, canonical-order merge, the
spawn-safe worker entry — already lives in the transport-agnostic
:mod:`~repro.engine.dispatch` plane.  This module only adds the
transport (:class:`SocketTransport`) and the worker process
(:class:`WorkerServer`, served by ``repro worker serve``), making
"distributed" one more lane type rather than a fourth copy of the
dispatch loop.

Protocol (newline-delimited JSON over TCP, one request in flight per
connection):

* client → worker: a ``unit`` wire document
  (:func:`~repro.engine.dispatch.unit_to_wire` — versioned, carries
  the spec as data plus trial indices, mode, and ``max_live``);
* worker → client: a ``results`` document wrapping one
  :func:`~repro.engine.spec.result_to_wire` envelope per trial, or an
  ``error`` document (version mismatch, unknown scenario, malformed
  unit);
* a ``ping`` request answers ``pong`` (used to probe liveness).

Workers rebuild scenarios *by name* from their own registry import —
the same contract that makes ``spawn`` pool workers bit-identical to
``fork`` — so a remote host executes literally the construction the
serial backend executes, and ``distributed == hybrid == process ==
serial`` holds bit for bit, registry-wide
(``tests/test_distributed.py``, ``tests/test_scenarios.py``).

Failure containment: a worker host that dies mid-sweep surfaces as a
failure envelope; the collect loop retries the unit on another worker
with the dead lane excluded, and the sweep completes — still
bit-identical — as long as one worker survives.  Only when every live
lane has failed does the sweep raise.

Scope: the wire format authenticates nothing and encrypts nothing —
run workers on trusted networks (loopback, a private cluster fabric),
exactly like a ``multiprocessing`` listener.
"""

from __future__ import annotations

import queue
import socket
import socketserver
import threading
import time
from typing import (
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .backends import ExecutionBackend
from .dispatch import (
    DispatchPlan,
    Envelope,
    Transport,
    WorkUnit,
    run_grid_units,
    run_unit_timed,
    run_units,
    unit_from_wire,
    unit_to_wire,
)
from .registry import get_runner
from .spec import (
    EngineError,
    ExperimentSpec,
    TrialResult,
    WIRE_VERSION,
    WireFormatError,
    require_wire,
    result_from_wire,
    result_to_wire,
    stats_from_wire,
    stats_to_wire,
    wire_dumps,
    wire_loads,
)
from .telemetry import RunTelemetry

#: Default TCP port of ``repro worker serve``.
DEFAULT_PORT = 7045

HostSpec = Union[str, Tuple[str, int], Tuple[str, int, int]]


def _host_error(entry: Any, why: str) -> EngineError:
    """A parse error that always names the offending entry."""
    return EngineError(f"bad worker host {entry!r}: {why}")


def parse_hosts(hosts: Sequence[HostSpec]) -> List[Tuple[str, int, int]]:
    """Normalise host specs into ``(host, port, weight)`` triples.

    Accepted forms — strings ``host``, ``host:port`` and
    ``host:port:weight``, and tuples ``(host, port)`` /
    ``(host, port, weight)``.  A bare ``host`` gets
    :data:`DEFAULT_PORT`; the capacity ``weight`` (units the host keeps
    in flight at once — see :func:`~repro.engine.dispatch.total_capacity`)
    defaults to 1.  Malformed specs raise an :class:`EngineError`
    naming the offending entry.  (IPv6 literals need the tuple form —
    the string form splits on colons.)
    """
    parsed: List[Tuple[str, int, int]] = []
    for entry in hosts:
        if isinstance(entry, tuple):
            if len(entry) == 2:
                host, port = entry
                weight: Any = 1
            elif len(entry) == 3:
                host, port, weight = entry
            else:
                raise _host_error(
                    entry, "expected (host, port) or (host, port, weight)"
                )
            try:
                port = int(port)
                weight = int(weight)
            except (TypeError, ValueError):
                raise _host_error(
                    entry, "port and weight must be integers"
                ) from None
        else:
            text = str(entry).strip()
            if not text:
                raise _host_error(entry, "empty worker host entry")
            parts = text.split(":")
            if len(parts) > 3 or any(not p for p in parts):
                raise _host_error(
                    entry, "expected host, host:port or host:port:weight"
                )
            host = parts[0]
            try:
                port = int(parts[1]) if len(parts) > 1 else DEFAULT_PORT
            except ValueError:
                raise _host_error(
                    entry, f"port {parts[1]!r} is not an integer"
                ) from None
            try:
                weight = int(parts[2]) if len(parts) > 2 else 1
            except ValueError:
                raise _host_error(
                    entry, f"weight {parts[2]!r} is not an integer"
                ) from None
        if not 0 < port < 65536:
            raise _host_error(entry, f"port {port} outside 1..65535")
        if weight < 1:
            raise _host_error(entry, f"weight {weight} must be >= 1")
        parsed.append((str(host), port, weight))
    return parsed


# -- the worker process ---------------------------------------------------------------


class _WorkerTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    #: Set by :class:`WorkerServer` after construction.
    owner: "WorkerServer"


class _WorkerHandler(socketserver.StreamRequestHandler):
    """One client connection: serve unit requests until EOF."""

    def _send(self, doc: dict) -> None:
        self.wfile.write((wire_dumps(doc) + "\n").encode("utf-8"))
        self.wfile.flush()

    def _error(self, message: str) -> None:
        self._send(
            {"version": WIRE_VERSION, "kind": "error", "error": message}
        )

    def handle(self) -> None:
        server: "WorkerServer" = self.server.owner
        while True:
            if server.crashed:
                # Simulated (or administratively forced) death: drop the
                # connection without a reply, exactly what a killed
                # worker process looks like from the client side.
                return
            line = self.rfile.readline()
            if not line:
                return
            try:
                doc = wire_loads(line.decode("utf-8"))
            except WireFormatError as exc:
                self._error(str(exc))
                continue
            kind = doc.get("kind") if isinstance(doc, dict) else None
            if kind == "ping":
                self._send({"version": WIRE_VERSION, "kind": "pong"})
                continue
            if kind != "unit":
                self._error(f"unsupported request kind {kind!r}")
                continue
            if server.note_unit_and_check_crash():
                return
            if not server.begin_unit():
                # Draining: refuse new work with an answer (an error
                # envelope keeps the lane alive client-side just long
                # enough to rebalance the unit elsewhere), then hang up.
                self._error("worker is draining")
                return
            try:
                try:
                    unit = unit_from_wire(doc)
                    results, stats = run_unit_timed(unit)
                    reply = {
                        "version": WIRE_VERSION,
                        "kind": "results",
                        "results": [result_to_wire(r) for r in results],
                    }
                    # The stats field is optional and versioned on its
                    # own: clients treat an absent field (this server
                    # with stats=False — the legacy-worker shape) as
                    # "no stats".
                    if server.send_stats:
                        reply["stats"] = stats_to_wire(stats)
                    self._send(reply)
                except Exception as exc:  # report, keep serving
                    self._error(f"{type(exc).__name__}: {exc}")
            finally:
                # The reply (or error) is flushed before the unit is
                # released — close() may tear the socket down the
                # moment the in-flight count reaches zero.
                server.finish_unit()
            if server.draining:
                return


class WorkerServer:
    """A ``repro`` work-unit server: one TCP listener, threaded handlers.

    Usable two ways: the ``repro worker serve`` CLI constructs one and
    calls the blocking :meth:`serve_forever`; tests construct one with
    ``port=0`` (ephemeral) and call :meth:`start` to serve from a
    daemon thread in-process.

    ``crash_after_units`` is the failure-injection hook behind the
    worker-kill tests: the server answers that many units normally,
    then drops every connection without replying — indistinguishable,
    from the client side, from the worker process being killed
    mid-sweep.

    :meth:`close` performs a **graceful drain**: new unit requests are
    refused, but any unit already executing finishes and its response
    is flushed before the sockets come down — a worker asked to stop
    (SIGTERM on ``repro worker serve``) never cuts an exchange
    mid-envelope.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        crash_after_units: Optional[int] = None,
        stats: bool = True,
        drain_timeout: float = 30.0,
    ) -> None:
        self._server = _WorkerTCPServer((host, port), _WorkerHandler)
        self._server.owner = self
        self.host, self.port = self._server.server_address[:2]
        self.crash_after_units = crash_after_units
        #: ``stats=False`` reproduces the pre-telemetry reply shape —
        #: the interop fixture for the legacy-worker tests.
        self.send_stats = stats
        self.drain_timeout = drain_timeout
        self.crashed = False
        self.draining = False
        self._units_seen = 0
        self._count_lock = threading.Lock()
        self._inflight = 0
        self._drain_cond = threading.Condition()
        self._thread: Optional[threading.Thread] = None
        self._serving = False
        self._closed = False

    @property
    def address(self) -> str:
        """The ``host:port`` string clients dial."""
        return f"{self.host}:{self.port}"

    @property
    def units_served(self) -> int:
        """How many unit requests this server has received."""
        with self._count_lock:
            return self._units_seen

    def note_unit_and_check_crash(self) -> bool:
        """Count one received unit; True when the crash budget is spent."""
        with self._count_lock:
            self._units_seen += 1
            if (
                self.crash_after_units is not None
                and self._units_seen > self.crash_after_units
            ):
                self.crashed = True
        return self.crashed

    def begin_unit(self) -> bool:
        """Claim one unit execution slot; False once draining started."""
        with self._drain_cond:
            if self.draining:
                return False
            self._inflight += 1
            return True

    def finish_unit(self) -> None:
        """Release a unit slot (its response is already flushed)."""
        with self._drain_cond:
            self._inflight -= 1
            self._drain_cond.notify_all()

    def serve_forever(self) -> None:
        """Serve until :meth:`close` (blocking; the CLI entry point)."""
        self._serving = True
        self._server.serve_forever(poll_interval=0.1)

    def start(self) -> "WorkerServer":
        """Serve from a daemon thread (the in-process/test entry point)."""
        if self._thread is not None:
            return self
        # Flag before spawning: a close() racing the thread's entry into
        # serve_forever must go through shutdown() (which BaseServer
        # handles at any point of that race) rather than closing the
        # socket under the about-to-serve thread.
        self._serving = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name=f"repro-worker-{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Drain in-flight units, stop serving, release the socket.

        Idempotent.  The drain happens *first*: ``draining`` flips (new
        unit requests are refused from here on) and the call blocks —
        up to ``drain_timeout`` — until every in-flight unit has
        finished and flushed its response.  Only then do the accept
        loop and sockets come down, so a close never cuts an exchange
        mid-envelope (pinned by ``tests/test_distributed.py``).
        """
        if self._closed:
            return
        self._closed = True
        with self._drain_cond:
            self.draining = True
            self._drain_cond.wait_for(
                lambda: self._inflight == 0, timeout=self.drain_timeout
            )
        if self._serving:
            self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "WorkerServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# -- the transport --------------------------------------------------------------------


class _Lane:
    """One worker host: a persistent connection, one unit in flight."""

    def __init__(self, lane_id: str, host: str, port: int) -> None:
        self.id = lane_id
        self.host = host
        self.port = port
        self.sock: Optional[socket.socket] = None
        self.busy = False
        self.dead = False

    def drop(self) -> None:
        self.dead = True
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None


class SocketTransport(Transport):
    """Dispatch work units to ``repro worker serve`` hosts over TCP.

    Each worker host is one lane with a persistent connection and at
    most one unit in flight; all network I/O (connect, send, await the
    reply) happens on a short-lived exchange thread per submission, so
    :meth:`try_submit` never blocks on the network and :meth:`collect`
    simply drains the shared envelope queue.  Any socket failure —
    refused connect, dropped connection, EOF mid-reply — marks the
    lane dead and surfaces as a failure envelope, which the collect
    loop turns into a retry on a surviving lane (this lane excluded).
    A worker that *answers* with an ``error`` document stays alive
    (it is reachable and sane — the unit, not the lane, is the
    problem).

    A host's capacity weight expands into that many lanes (each with
    its own connection and in-flight unit), so a weight-3 machine
    holds three units concurrently and the greedy collect loop feeds
    it a proportionate share of the sweep.
    """

    name = "socket"

    def __init__(
        self,
        hosts: Sequence[HostSpec],
        connect_timeout: float = 5.0,
        io_timeout: Optional[float] = None,
    ) -> None:
        addresses = parse_hosts(hosts)
        if not addresses:
            raise EngineError("socket transport needs at least one host")
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self._lanes: List[_Lane] = []
        seen: dict = {}
        for host, port, weight in addresses:
            base = f"{host}:{port}"
            for _ in range(weight):
                count = seen.get(base, 0)
                seen[base] = count + 1
                lane_id = base if count == 0 else f"{base}#{count}"
                self._lanes.append(_Lane(lane_id, host, port))
        self._envelopes: "queue.Queue[Envelope]" = queue.Queue()
        self._closed = False
        #: Per-run telemetry sink (set by the backend before each run;
        #: the transport outlives runs, the telemetry does not).
        self.telemetry: Optional[RunTelemetry] = None

    def lanes(self) -> Tuple[str, ...]:
        return tuple(lane.id for lane in self._lanes if not lane.dead)

    def try_submit(
        self,
        unit_id: int,
        unit: WorkUnit,
        exclude: FrozenSet[str] = frozenset(),
    ) -> bool:
        if self._closed:
            raise EngineError("socket transport is closed")
        for lane in self._lanes:
            if lane.dead or lane.busy or lane.id in exclude:
                continue
            lane.busy = True
            threading.Thread(
                target=self._exchange,
                args=(lane, unit_id, unit),
                name=f"repro-dispatch-{lane.id}",
                daemon=True,
            ).start()
            return True
        return False

    def _exchange(self, lane: _Lane, unit_id: int, unit: WorkUnit) -> None:
        """Connect (if needed), send one unit, await one reply."""
        telemetry = self.telemetry
        started = time.perf_counter()
        frame_bytes = reply_bytes = 0
        try:
            if lane.sock is None:
                lane.sock = socket.create_connection(
                    (lane.host, lane.port), timeout=self.connect_timeout
                )
                lane.sock.settimeout(self.io_timeout)
                if telemetry is not None:
                    telemetry.note_lane_event(lane.id, "dial")
            frame = (wire_dumps(unit_to_wire(unit)) + "\n").encode("utf-8")
            frame_bytes = len(frame)
            lane.sock.sendall(frame)
            line = self._read_line(lane.sock)
            reply_bytes = len(line)
            doc = wire_loads(line.decode("utf-8"))
            if isinstance(doc, dict) and doc.get("kind") == "error":
                require_wire(doc, "error")
                envelope = Envelope(
                    unit_id=unit_id,
                    lane=lane.id,
                    error=f"worker error: {doc.get('error', 'unknown')}",
                )
            else:
                require_wire(doc, "results")
                results = tuple(
                    result_from_wire(r) for r in doc["results"]
                )
                envelope = Envelope(
                    unit_id=unit_id,
                    lane=lane.id,
                    results=results,
                    # Absent on old workers; tolerant decode -> None.
                    stats=stats_from_wire(doc.get("stats")),
                )
        except Exception as exc:
            lane.drop()
            if telemetry is not None:
                telemetry.note_lane_event(lane.id, "dead")
            envelope = Envelope(
                unit_id=unit_id,
                lane=lane.id,
                error=f"{type(exc).__name__}: {exc}",
            )
        if telemetry is not None:
            telemetry.note_exchange(
                lane.id,
                bytes_out=frame_bytes,
                bytes_in=reply_bytes,
                round_trip_seconds=time.perf_counter() - started,
            )
        lane.busy = False
        self._envelopes.put(envelope)

    @staticmethod
    def _read_line(sock: socket.socket) -> bytes:
        """One newline-terminated frame; EOF raises ``ConnectionError``."""
        chunks: List[bytes] = []
        while True:
            byte = sock.recv(4096)
            if not byte:
                raise ConnectionError(
                    "worker closed the connection mid-reply"
                )
            chunks.append(byte)
            if byte.endswith(b"\n"):
                return b"".join(chunks)

    def collect(self) -> Envelope:
        return self._envelopes.get()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for lane in self._lanes:
            lane.drop()


# -- the backend ----------------------------------------------------------------------


class DistributedBackend(ExecutionBackend):
    """Dispatch a spec's trials to remote worker hosts.

    Runs *every* registered scenario: asynchronous scenarios ship as
    ``wave`` units (each host drives a local breadth-first step loop,
    exactly like a hybrid pool worker), everything else as ``trials``
    units (isolated :func:`~repro.engine.dispatch.run_one_trial` calls,
    exactly like a process pool worker).  Either way the results are
    bit-identical to the serial backend, because seeds derive from the
    spec and hosts rebuild scenarios by name.

    Unlike the pool backends there is no single-worker serial
    degradation: asking for the distributed backend means *run it on
    the workers*, even when there is one worker or one trial.

    Parameters:
        hosts: worker addresses — ``host:port[:weight]`` strings or
            ``(host, port[, weight])`` tuples, one ``repro worker
            serve`` each; the capacity weight (default 1) gives the
            host that many concurrent lanes and scales the plan's
            effective worker count.
        unit_size: trials per dispatched unit (``None``: the dispatch
            plane's default geometry — ~2 waves/host for async
            scenarios, ~4 chunks/host otherwise, per capacity weight).
        max_live: resident-instance bound within a host's wave.
        connect_timeout / io_timeout: socket timeouts (``io_timeout``
            ``None`` waits indefinitely for a unit's results).

    The TCP connections persist across :meth:`run_trials` calls;
    :meth:`close` drops them (idempotent — the next run reconnects).
    A run that observed lane deaths (or raised) drops the transport
    too, so the next run re-dials every configured host — a worker
    that restarted between sweeps rejoins instead of staying excluded
    forever.
    """

    name = "distributed"

    def __init__(
        self,
        hosts: Sequence[HostSpec],
        unit_size: Optional[int] = None,
        max_live: int = 64,
        connect_timeout: float = 5.0,
        io_timeout: Optional[float] = None,
    ) -> None:
        self.addresses = parse_hosts(hosts)
        if not self.addresses:
            raise EngineError(
                "distributed backend needs at least one worker host"
            )
        if unit_size is not None and unit_size < 1:
            raise EngineError("unit_size must be >= 1")
        self.unit_size = unit_size
        if max_live < 1:
            raise EngineError("max_live must be >= 1")
        self.max_live = max_live
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        self._transport: Optional[SocketTransport] = None

    def plan(self, spec: ExperimentSpec) -> DispatchPlan:
        """Wave geometry for async scenarios, chunk geometry otherwise.

        Capacity-weighted: a ``host:port:3`` worker counts as three in
        the effective worker count, so heterogeneous fleets see unit
        sizes matched to their aggregate parallelism.
        """
        runner = get_runner(spec.runner)
        weights = [weight for _, _, weight in self.addresses]
        if runner.build_async_instance is not None:
            return DispatchPlan.waved(
                spec.trials,
                self.unit_size,
                workers=0,
                max_live=self.max_live,
                weights=weights,
            )
        return DispatchPlan.chunked(
            spec.trials, self.unit_size, workers=0, weights=weights
        )

    @property
    def total_lanes(self) -> int:
        """The fleet's capacity: one lane per unit of host weight."""
        return sum(weight for _, _, weight in self.addresses)

    def _ensure_transport(
        self, telemetry: Optional[RunTelemetry] = None
    ) -> SocketTransport:
        if self._transport is not None and len(
            self._transport.lanes()
        ) < self.total_lanes:
            # A previous sweep lost lanes.  Worker restarts are routine,
            # and a dead lane is permanent within one transport — so
            # reconnect from scratch rather than running degraded (or
            # bricked) forever on a host set that has since recovered.
            self.close()
            if telemetry is not None:
                for host, port, _ in self.addresses:
                    telemetry.note_lane_event(f"{host}:{port}", "redial")
        if self._transport is None:
            self._transport = SocketTransport(
                self.addresses,
                connect_timeout=self.connect_timeout,
                io_timeout=self.io_timeout,
            )
        self._transport.telemetry = telemetry
        return self._transport

    def run_trials(self, spec: ExperimentSpec) -> List[TrialResult]:
        # Resolve locally first: unknown scenario names should fail
        # fast at the client, not as N remote error envelopes.
        get_runner(spec.runner)
        telemetry = self._begin_telemetry(spec)
        units = self.plan(spec).units(spec)
        try:
            results = run_units(
                units,
                self._ensure_transport(telemetry),
                telemetry=telemetry,
            )
        except BaseException:
            # An aborted sweep may leave exchanges in flight whose
            # envelopes would be misattributed by a later run on the
            # same transport; drop it — the next run reconnects fresh.
            self.close()
            raise
        telemetry.finish()
        return results

    def run_grid(
        self,
        specs: Sequence[ExperimentSpec],
        cost_aware: bool = True,
    ) -> List[List[TrialResult]]:
        """A fused multi-spec sweep over the worker fleet.

        One shared collect loop over every host lane; unit sizes come
        from one grid-wide predicted-cost target scaled by the fleet's
        aggregate capacity weights (uniform geometry when any spec
        lacks a cost model).  Per-spec mode follows :meth:`plan`: waves
        where the scenario has an async builder, chunks otherwise.
        """
        from .costplan import grid_modes, plan_grid

        if not specs:
            return []
        for spec in specs:
            get_runner(spec.runner)
        unique = list(dict.fromkeys(specs))
        if len(unique) == 1:
            return super().run_grid(specs, cost_aware=cost_aware)
        telemetry = RunTelemetry(
            backend=self.name,
            total_trials=sum(spec.trials for spec in unique),
            monitor=self.monitor,
        )
        self.telemetry = telemetry
        units = plan_grid(
            unique,
            capacity=self.total_lanes,
            modes=grid_modes(unique),
            max_live=self.max_live,
            cost_aware=cost_aware,
        )
        try:
            pairs = run_grid_units(
                units,
                self._ensure_transport(telemetry),
                telemetry=telemetry,
            )
        except BaseException:
            self.close()
            raise
        telemetry.finish()
        by_spec = {spec: results for spec, results in pairs}
        return [by_spec[spec] for spec in specs]

    def close(self) -> None:
        if self._transport is not None:
            self._transport.close()
            self._transport = None
