"""repro.engine — sharded, parallel execution of Monte-Carlo experiments.

The engine turns every benchmark- and example-style workload into data:

    from repro.engine import Engine, ExperimentSpec

    spec = ExperimentSpec(
        runner="everywhere-ba", n=27, trials=32, seed=7,
        params={"corrupt": 0.1},
    )
    result = Engine("process").run(spec)
    print(result.to_table().to_text())

Layers (see ENGINE.md for the architecture notes):

* :mod:`repro.engine.spec` — :class:`ExperimentSpec` /
  :class:`TrialResult` and deterministic per-trial seed derivation.
* :mod:`repro.engine.registry` — named, picklable experiment runners.
* :mod:`repro.engine.backends` — :class:`SerialBackend` and
  :class:`ProcessPoolBackend` behind one :class:`ExecutionBackend` API.
* :mod:`repro.engine.batch` — :class:`BatchBackend`, multiplexing many
  independent protocol instances over one simulated round loop.
* :mod:`repro.engine.aggregate` — ledger merging, percentiles, failure
  counts, and tables for :mod:`repro.analysis.reporting`.

All backends are bit-identical for the same spec; only wall-clock and
memory profiles differ.
"""

from .aggregate import (
    ExperimentResult,
    merge_ledger_stats,
    percentile,
)
from .backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    default_worker_count,
    make_context,
    run_one_trial,
)
from .batch import BatchBackend
from .engine import BACKEND_NAMES, Engine, get_backend, run_experiment
from .registry import (
    BatchInstance,
    ExperimentRunner,
    get_runner,
    register,
    runner_names,
)
from .spec import (
    EngineError,
    ExperimentSpec,
    LedgerStats,
    TrialContext,
    TrialResult,
)

__all__ = [
    "BACKEND_NAMES",
    "BatchBackend",
    "BatchInstance",
    "Engine",
    "EngineError",
    "ExecutionBackend",
    "ExperimentResult",
    "ExperimentRunner",
    "ExperimentSpec",
    "LedgerStats",
    "ProcessPoolBackend",
    "SerialBackend",
    "TrialContext",
    "TrialResult",
    "default_worker_count",
    "get_backend",
    "get_runner",
    "make_context",
    "merge_ledger_stats",
    "percentile",
    "register",
    "run_experiment",
    "run_one_trial",
    "runner_names",
]
