"""repro.engine — declarative scenarios on sharded, parallel backends.

The engine turns every benchmark- and example-style workload into data:
a spec names a registered *scenario* (typed parameter schema + metric
contract + execution modes), and pluggable backends execute its trials:

    from repro.engine import Engine, ExperimentSpec

    spec = ExperimentSpec(
        runner="everywhere-ba", n=27, trials=32, seed=7,
        params={"corrupt": 0.1},
    )
    result = Engine("process").run(spec)
    print(result.to_table().to_text())

Layers (see ENGINE.md for the architecture notes):

* :mod:`repro.engine.spec` — :class:`ExperimentSpec` /
  :class:`TrialResult`, deterministic per-trial seed derivation, and
  the versioned JSON wire format with which specs and results cross
  process and host boundaries.
* :mod:`repro.engine.scenario` — :class:`Param` schemas: typed,
  validated, self-documenting experiment parameters.
* :mod:`repro.engine.registry` — named, picklable :class:`Scenario`
  objects; built-ins register from :mod:`repro.engine.scenarios`.
* :mod:`repro.engine.dispatch` — the transport-agnostic dispatch
  plane: :class:`DispatchPlan` shard geometry, the :class:`Transport`
  seam, the submit/retry/merge collect loop, and the one spawn-safe
  worker entry (:func:`run_unit`).
* :mod:`repro.engine.costplan` — the cost-aware planning bridge:
  per-spec predicted trial costs (:func:`spec_trial_cost`, from
  :mod:`repro.analysis.costmodel`) sized into multi-spec unit plans
  (:func:`plan_grid`) so mixed-size grids balance predicted work.
* :mod:`repro.engine.backends` — :class:`SerialBackend` and
  :class:`ProcessPoolBackend` behind one :class:`ExecutionBackend` API.
* :mod:`repro.engine.batch` — :class:`BatchBackend`, multiplexing many
  independent sync protocol instances over one round loop.
* :mod:`repro.engine.async_backend` — :class:`AsyncBackend`, the same
  idea over the asynchronous scheduler's delivery steps.
* :mod:`repro.engine.hybrid` — :class:`HybridBackend`, waves of async
  instances sharded across pool workers (async × process).
* :mod:`repro.engine.distributed` — :class:`DistributedBackend` /
  :class:`SocketTransport` / :class:`WorkerServer`, the same waves
  dispatched to ``repro worker serve`` hosts over TCP.
* :mod:`repro.engine.aggregate` — ledger merging, percentiles, failure
  counts, and tables for :mod:`repro.analysis.reporting`.

All backends are bit-identical for the same spec; only wall-clock and
memory profiles differ.
"""

from .aggregate import (
    ExperimentResult,
    merge_ledger_stats,
    percentile,
)
from .async_backend import AsyncBackend, run_wave
from .backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    default_worker_count,
    make_context,
    run_one_trial,
)
from .batch import BatchBackend
from .costplan import (
    grid_modes,
    plan_grid,
    spec_trial_cost,
)
from .dispatch import (
    DispatchError,
    DispatchPlan,
    Envelope,
    InlineTransport,
    PoolTransport,
    Transport,
    WorkUnit,
    run_grid_units,
    run_unit,
    run_unit_timed,
    run_units,
    total_capacity,
)
from .distributed import (
    DistributedBackend,
    SocketTransport,
    WorkerServer,
    parse_hosts,
)
from .hybrid import HybridBackend
from .engine import BACKEND_NAMES, Engine, get_backend, run_experiment
from .registry import (
    AsyncInstance,
    BatchInstance,
    ExperimentRunner,
    Scenario,
    drive_async_instance,
    drive_instance,
    get_runner,
    get_scenario,
    load_builtin_scenarios,
    register,
    runner_names,
    scenario_names,
)
from .scenario import Param, ScenarioError
from .spec import (
    EngineError,
    ExperimentSpec,
    LedgerStats,
    STATS_VERSION,
    TrialContext,
    TrialResult,
    UnitStats,
    WIRE_VERSION,
    WireFormatError,
    result_from_wire,
    result_to_wire,
    spec_from_wire,
    spec_to_wire,
    stats_from_wire,
    stats_to_wire,
)
from .telemetry import (
    LaneReport,
    RunReport,
    RunTelemetry,
    SweepMonitor,
    UnitRecord,
    load_report,
    report_from_wire,
    report_to_wire,
    write_report,
)

__all__ = [
    "BACKEND_NAMES",
    "STATS_VERSION",
    "WIRE_VERSION",
    "AsyncBackend",
    "AsyncInstance",
    "BatchBackend",
    "BatchInstance",
    "DispatchError",
    "DispatchPlan",
    "DistributedBackend",
    "Engine",
    "EngineError",
    "Envelope",
    "ExecutionBackend",
    "ExperimentResult",
    "ExperimentRunner",
    "ExperimentSpec",
    "HybridBackend",
    "InlineTransport",
    "LaneReport",
    "LedgerStats",
    "Param",
    "PoolTransport",
    "ProcessPoolBackend",
    "RunReport",
    "RunTelemetry",
    "Scenario",
    "ScenarioError",
    "SerialBackend",
    "SocketTransport",
    "SweepMonitor",
    "Transport",
    "TrialContext",
    "TrialResult",
    "UnitRecord",
    "UnitStats",
    "WireFormatError",
    "WorkUnit",
    "WorkerServer",
    "default_worker_count",
    "drive_async_instance",
    "drive_instance",
    "get_backend",
    "get_runner",
    "get_scenario",
    "grid_modes",
    "load_builtin_scenarios",
    "load_report",
    "make_context",
    "merge_ledger_stats",
    "parse_hosts",
    "percentile",
    "plan_grid",
    "register",
    "report_from_wire",
    "report_to_wire",
    "result_from_wire",
    "result_to_wire",
    "run_experiment",
    "run_grid_units",
    "run_one_trial",
    "run_unit",
    "run_unit_timed",
    "run_units",
    "run_wave",
    "runner_names",
    "scenario_names",
    "spec_from_wire",
    "spec_trial_cost",
    "spec_to_wire",
    "stats_from_wire",
    "stats_to_wire",
    "total_capacity",
    "write_report",
]
