"""repro.engine — declarative scenarios on sharded, parallel backends.

The engine turns every benchmark- and example-style workload into data:
a spec names a registered *scenario* (typed parameter schema + metric
contract + execution modes), and pluggable backends execute its trials:

    from repro.engine import Engine, ExperimentSpec

    spec = ExperimentSpec(
        runner="everywhere-ba", n=27, trials=32, seed=7,
        params={"corrupt": 0.1},
    )
    result = Engine("process").run(spec)
    print(result.to_table().to_text())

Layers (see ENGINE.md for the architecture notes):

* :mod:`repro.engine.spec` — :class:`ExperimentSpec` /
  :class:`TrialResult` and deterministic per-trial seed derivation.
* :mod:`repro.engine.scenario` — :class:`Param` schemas: typed,
  validated, self-documenting experiment parameters.
* :mod:`repro.engine.registry` — named, picklable :class:`Scenario`
  objects; built-ins register from :mod:`repro.engine.scenarios`.
* :mod:`repro.engine.backends` — :class:`SerialBackend` and
  :class:`ProcessPoolBackend` behind one :class:`ExecutionBackend` API.
* :mod:`repro.engine.batch` — :class:`BatchBackend`, multiplexing many
  independent sync protocol instances over one round loop.
* :mod:`repro.engine.async_backend` — :class:`AsyncBackend`, the same
  idea over the asynchronous scheduler's delivery steps.
* :mod:`repro.engine.hybrid` — :class:`HybridBackend`, waves of async
  instances sharded across pool workers (async × process).
* :mod:`repro.engine.aggregate` — ledger merging, percentiles, failure
  counts, and tables for :mod:`repro.analysis.reporting`.

All backends are bit-identical for the same spec; only wall-clock and
memory profiles differ.
"""

from .aggregate import (
    ExperimentResult,
    merge_ledger_stats,
    percentile,
)
from .async_backend import AsyncBackend, run_wave
from .backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    chunk_indices,
    default_worker_count,
    make_context,
    make_pool,
    run_one_trial,
)
from .batch import BatchBackend
from .hybrid import HybridBackend
from .engine import BACKEND_NAMES, Engine, get_backend, run_experiment
from .registry import (
    AsyncInstance,
    BatchInstance,
    ExperimentRunner,
    Scenario,
    drive_async_instance,
    drive_instance,
    get_runner,
    get_scenario,
    load_builtin_scenarios,
    register,
    runner_names,
    scenario_names,
)
from .scenario import Param, ScenarioError
from .spec import (
    EngineError,
    ExperimentSpec,
    LedgerStats,
    TrialContext,
    TrialResult,
)

__all__ = [
    "BACKEND_NAMES",
    "AsyncBackend",
    "AsyncInstance",
    "BatchBackend",
    "BatchInstance",
    "Engine",
    "EngineError",
    "ExecutionBackend",
    "ExperimentResult",
    "ExperimentRunner",
    "ExperimentSpec",
    "HybridBackend",
    "LedgerStats",
    "Param",
    "ProcessPoolBackend",
    "Scenario",
    "ScenarioError",
    "SerialBackend",
    "TrialContext",
    "TrialResult",
    "chunk_indices",
    "default_worker_count",
    "drive_async_instance",
    "drive_instance",
    "get_backend",
    "get_runner",
    "get_scenario",
    "load_builtin_scenarios",
    "make_context",
    "make_pool",
    "merge_ledger_stats",
    "percentile",
    "register",
    "run_experiment",
    "run_one_trial",
    "run_wave",
    "runner_names",
    "scenario_names",
]
