"""The fast data plane: length-prefixed binary frames over TCP.

The distributed path's documents (:func:`~repro.engine.dispatch.unit_to_wire`
requests, ``results``/``error`` replies) are versioned JSON either way —
this module only changes how they are *framed* on the byte stream:

* **Codec 1 (json)** — the original protocol: one compact JSON document
  per line, ``\\n``-terminated.  :func:`encode_frame` with
  :data:`~repro.engine.spec.CODEC_JSON` emits exactly
  ``wire_dumps(doc) + "\\n"`` — bit-identical to the pre-codec client,
  which is what keeps legacy ``repro worker serve`` peers
  interoperable (pinned by the golden-frame tests).
* **Codec 2 (binary)** — a struct-packed 8-byte header followed by the
  UTF-8 JSON payload, optionally zlib-compressed when that actually
  shrinks it::

      offset  size  field
      0       1     magic (0xC5 — never the first byte of a JSON line)
      1       1     frame-header version (FRAME_VERSION)
      2       1     flags (bit 0: payload is zlib-compressed)
      3       1     reserved (0)
      4       4     payload length, big-endian unsigned
      8       N     payload (UTF-8 JSON, possibly compressed)

Because the magic byte can never begin a JSON document, one
:class:`FrameReader` serves both codecs on the same connection,
per-frame: it buffers raw ``recv`` chunks, scans the *accumulated*
buffer for a frame boundary (fixing the latent per-chunk
``endswith(b"\\n")`` bug — a delimiter landing mid-chunk, or two
frames coalescing into one TCP segment, no longer corrupts the
stream), and preserves trailing bytes for the next frame — the
property pipelined lanes depend on.

Which codec a connection uses is negotiated once, right after dial,
with a plain JSON ``hello`` request (see
:func:`~repro.engine.spec.negotiate_codec`): a codec-aware worker
answers ``hello-ok`` naming its pick; a legacy worker answers its
usual ``unsupported request kind`` error and the client stays on
codec 1 for the life of the connection.

Every read path enforces :data:`DEFAULT_MAX_FRAME_BYTES` (or the
configured cap): an oversized frame — binary length prefix or an
unterminated JSON line — raises a :class:`~repro.engine.spec.WireFormatError`
naming the cap instead of growing the buffer without bound.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, NamedTuple, Optional

from .spec import (
    CODEC_BINARY,
    CODEC_JSON,
    WireFormatError,
    wire_dumps,
    wire_loads,
)

__all__ = [
    "COMPRESS_MIN_BYTES",
    "DEFAULT_MAX_FRAME_BYTES",
    "FRAME_MAGIC",
    "FRAME_VERSION",
    "FrameReader",
    "RawFrame",
    "decode_document",
    "encode_frame",
]

#: First byte of every binary frame.  Chosen outside ASCII so it can
#: never collide with the first byte of a JSON line (``{`` = 0x7B),
#: letting one reader serve both codecs frame by frame.
FRAME_MAGIC = 0xC5

#: Version byte of the binary frame *header* (negotiated layout).
#: Independent of both WIRE_VERSION (document schema) and the codec id.
FRAME_VERSION = 1

#: Header flag: the payload is zlib-compressed.
FLAG_ZLIB = 0x01

#: magic, frame version, flags, reserved, payload length (big-endian).
_HEADER = struct.Struct(">BBBBI")
HEADER_BYTES = _HEADER.size

#: Reply/request frames larger than this are refused (a clean error
#: naming the lane and the cap, not unbounded memory growth).
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Payloads below this size skip the compression attempt — zlib on a
#: tiny ping/ack costs CPU and usually *grows* the frame.
COMPRESS_MIN_BYTES = 512

_RECV_CHUNK = 65536


class RawFrame(NamedTuple):
    """One frame off the stream: undecoded payload plus accounting."""

    #: The document's UTF-8 JSON bytes (already decompressed).
    payload: bytes
    #: Which codec carried it (:data:`CODEC_JSON` / :data:`CODEC_BINARY`).
    codec: int
    #: Bytes consumed off the socket, header/delimiter included — what
    #: lane telemetry counts as ``bytes_in``.
    size: int


def encode_frame(
    doc: Any,
    codec: int = CODEC_JSON,
    compress_min: Optional[int] = COMPRESS_MIN_BYTES,
) -> bytes:
    """One wire document as bytes under the given codec.

    Codec 1 output is byte-for-byte the legacy line protocol
    (``wire_dumps(doc) + "\\n"``); codec 2 wraps the same JSON in the
    binary header, compressing the payload only when the deflate
    actually comes out smaller (``compress_min=None`` disables the
    attempt entirely).
    """
    text = wire_dumps(doc)
    if codec == CODEC_JSON:
        return (text + "\n").encode("utf-8")
    if codec != CODEC_BINARY:
        raise WireFormatError(f"unknown wire codec {codec!r}")
    payload = text.encode("utf-8")
    flags = 0
    if compress_min is not None and len(payload) >= compress_min:
        packed = zlib.compress(payload, 6)
        if len(packed) < len(payload):
            payload = packed
            flags |= FLAG_ZLIB
    return (
        _HEADER.pack(FRAME_MAGIC, FRAME_VERSION, flags, 0, len(payload))
        + payload
    )


def decode_document(payload: bytes) -> Any:
    """Parse a frame's payload bytes into a wire document."""
    try:
        text = payload.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireFormatError(f"frame payload is not UTF-8: {exc}") from None
    return wire_loads(text)


class FrameReader:
    """Buffered, delimiter-safe reader for both wire codecs.

    Wraps one socket-like object (anything with ``recv``) and yields
    one frame at a time, auto-detecting the codec per frame from the
    first buffered byte.  Bytes past a frame boundary stay in the
    buffer for the next call, so coalesced frames — the normal case on
    a pipelined lane — decode cleanly.

    Raises:
        ConnectionError: EOF mid-frame (peer died mid-reply).
        WireFormatError: frame over ``max_frame_bytes``, unsupported
            binary header, or corrupt compressed payload.

    A clean EOF *at* a frame boundary returns ``None`` — the peer hung
    up between requests, which is a lifecycle event, not an error.
    """

    def __init__(
        self,
        sock: Any,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        if max_frame_bytes < HEADER_BYTES + 1:
            raise WireFormatError(
                f"max_frame_bytes {max_frame_bytes} is smaller than one "
                f"frame header ({HEADER_BYTES + 1} bytes minimum)"
            )
        self._sock = sock
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    def _fill(self) -> bool:
        """Pull one chunk into the buffer; False on EOF."""
        chunk = self._sock.recv(_RECV_CHUNK)
        if not chunk:
            return False
        self._buffer.extend(chunk)
        return True

    def _need(self, count: int) -> None:
        """Block until ``count`` bytes are buffered; EOF mid-frame raises."""
        while len(self._buffer) < count:
            if not self._fill():
                raise ConnectionError(
                    "peer closed the connection mid-frame"
                )

    def read_frame(self) -> Optional[RawFrame]:
        """The next frame, or ``None`` on clean EOF at a boundary."""
        while not self._buffer:
            if not self._fill():
                return None
        if self._buffer[0] == FRAME_MAGIC:
            return self._read_binary()
        return self._read_json_line()

    def _read_binary(self) -> RawFrame:
        self._need(HEADER_BYTES)
        magic, version, flags, _, length = _HEADER.unpack(
            bytes(self._buffer[:HEADER_BYTES])
        )
        if version != FRAME_VERSION:
            raise WireFormatError(
                f"unsupported binary frame version {version} "
                f"(this engine speaks frame version {FRAME_VERSION})"
            )
        total = HEADER_BYTES + length
        if total > self.max_frame_bytes:
            raise WireFormatError(
                f"binary frame of {total} bytes exceeds the "
                f"{self.max_frame_bytes}-byte frame cap"
            )
        self._need(total)
        payload = bytes(self._buffer[HEADER_BYTES:total])
        del self._buffer[:total]
        if flags & FLAG_ZLIB:
            try:
                payload = zlib.decompress(payload)
            except zlib.error as exc:
                raise WireFormatError(
                    f"corrupt compressed frame payload: {exc}"
                ) from None
            if len(payload) > self.max_frame_bytes:
                raise WireFormatError(
                    f"frame payload of {len(payload)} bytes (decompressed) "
                    f"exceeds the {self.max_frame_bytes}-byte frame cap"
                )
        return RawFrame(payload=payload, codec=CODEC_BINARY, size=total)

    def _read_json_line(self) -> RawFrame:
        scanned = 0
        while True:
            index = self._buffer.find(b"\n", scanned)
            if index >= 0:
                break
            scanned = len(self._buffer)
            if scanned > self.max_frame_bytes:
                raise WireFormatError(
                    f"JSON line frame exceeds the "
                    f"{self.max_frame_bytes}-byte frame cap without a "
                    "newline"
                )
            if not self._fill():
                raise ConnectionError(
                    "peer closed the connection mid-frame"
                )
        if index + 1 > self.max_frame_bytes:
            raise WireFormatError(
                f"JSON line frame of {index + 1} bytes exceeds the "
                f"{self.max_frame_bytes}-byte frame cap"
            )
        payload = bytes(self._buffer[:index])
        del self._buffer[: index + 1]
        return RawFrame(payload=payload, codec=CODEC_JSON, size=index + 1)
