"""Bridge from the symbolic cost models to dispatch geometry.

The cost plane has two halves: :mod:`repro.analysis.costmodel` predicts
what one trial of a resolved spec costs, and
:class:`~repro.engine.dispatch.DispatchPlan` turns per-trial costs into
work units.  This module is the seam between them — the only place that
asks "what does this *spec* cost?" — so backends, the fleet coordinator
and the CLI all price work identically.

Fallback semantics (load-bearing, tested): every function here answers
``None`` / uniform geometry when the scenario has no registered cost
model or sympy is unavailable, and cost-aware planning engages only
when **every** spec in a grid is priceable — a grid half-priced by
models would balance the priced half against guesses for the rest.
Either way the resulting units partition each spec's trial range
exactly once, so results stay bit-identical to serial.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .dispatch import MODE_TRIALS, MODE_WAVE, DispatchPlan, WorkUnit
from .spec import EngineError, ExperimentSpec

#: Units per worker for cost-sized grids — the classic ``chunked``
#: granularity (enough pieces that the greedy collect loop can
#: rebalance, few enough to amortise dispatch overhead).
GRID_PARTS_PER_WORKER = 4


def spec_trial_cost(spec: ExperimentSpec) -> Optional[float]:
    """Predicted cost of one trial of ``spec``, or None (no model).

    Resolves the scenario's cost model and prices the spec's declared
    params (the model applies the same auto-derivations the scenario
    builder does).  Any model failure — unknown scenario, missing
    sympy, a param the resolver chokes on, a non-positive prediction —
    degrades to ``None``: cost-awareness must never make a runnable
    sweep unrunnable.
    """
    from ..analysis.costmodel import get_cost_model

    model = get_cost_model(spec.runner)
    if model is None:
        return None
    try:
        cost = model.trial_cost(spec.n, spec.param_dict())
    except Exception:
        return None
    if not cost or cost <= 0:
        return None
    return float(cost)


def grid_modes(specs: Sequence[ExperimentSpec]) -> List[str]:
    """Per-spec unit mode: waves where the scenario supports them."""
    from .registry import get_runner

    return [
        MODE_WAVE
        if get_runner(spec.runner).build_async_instance is not None
        else MODE_TRIALS
        for spec in specs
    ]


def plan_grid(
    specs: Sequence[ExperimentSpec],
    capacity: int,
    modes: Optional[Sequence[str]] = None,
    max_live: Optional[int] = None,
    cost_aware: bool = True,
) -> List[WorkUnit]:
    """Work units for a multi-spec grid sharing one collect loop.

    Cost-aware path (every spec priceable): one grid-wide target unit
    cost — total predicted grid cost over ``capacity x
    GRID_PARTS_PER_WORKER`` units — sizes every spec's units, so a
    cheap small-n spec gets many trials per unit while an expensive
    big-n spec gets few (often one), and the submit order is heaviest
    unit first so stragglers start early.  Fallback path: one uniform
    trials-per-unit figure across the whole grid, in spec order — the
    trial-count geometry this plane exists to beat.
    """
    if not specs:
        return []
    if modes is None:
        modes = grid_modes(specs)
    if len(modes) != len(specs):
        raise EngineError(
            f"need one mode per spec: {len(modes)} modes, {len(specs)} specs"
        )
    costs = [spec_trial_cost(spec) for spec in specs]
    units: List[WorkUnit] = []
    if cost_aware and all(cost is not None for cost in costs):
        total = sum(
            cost * spec.trials for cost, spec in zip(costs, specs)
        )
        target = total / max(1, capacity * GRID_PARTS_PER_WORKER)
        for spec, mode, cost in zip(specs, modes, costs):
            per_trial = [cost] * spec.trials
            if mode == MODE_WAVE:
                plan = DispatchPlan.cost_waved(
                    spec.trials,
                    per_trial,
                    capacity,
                    max_live=max_live,
                    target_unit_cost=target,
                )
            else:
                plan = DispatchPlan.cost_chunked(
                    spec.trials,
                    per_trial,
                    capacity,
                    target_unit_cost=target,
                )
            units.extend(plan.units(spec))
        # Heaviest first: the greedy collect loop then approximates LPT
        # across lanes, which is where the makespan win comes from.
        units.sort(
            key=lambda u: -(u.predicted_cost or 0.0)
        )
        return units
    # Uniform fallback: same trials-per-unit everywhere, spec order.
    total_trials = sum(spec.trials for spec in specs)
    unit_size = max(
        1, total_trials // max(1, capacity * GRID_PARTS_PER_WORKER)
    )
    for spec, mode in zip(specs, modes):
        size = min(unit_size, spec.trials)
        if mode == MODE_WAVE:
            plan = DispatchPlan(
                trials=spec.trials,
                unit_size=size,
                mode=MODE_WAVE,
                max_live=max_live,
            )
        else:
            plan = DispatchPlan(trials=spec.trials, unit_size=size)
        units.extend(plan.units(spec))
    return units


def cost_sized_unit_size(
    spec: ExperimentSpec, target_unit_cost: float
) -> Optional[int]:
    """Trials per unit so one unit of ``spec`` costs ~``target_unit_cost``.

    The fleet coordinator's integer handle on cost-aware geometry: the
    chosen size is persisted into the job envelope so a crash-resumed
    job re-plans the exact same units.  ``None`` when the spec has no
    model or the target is degenerate (callers keep uniform sizing).
    """
    cost = spec_trial_cost(spec)
    if cost is None or target_unit_cost <= 0:
        return None
    return max(1, min(spec.trials, round(target_unit_cost / cost)))
