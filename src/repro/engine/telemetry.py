"""The engine telemetry plane: spans, lane metrics, reports, monitor.

Every backend's dispatch path is observable through one small object
graph, always on and cheap enough to leave on (the ``telemetry_overhead``
perf-gate suite pins the cost):

* :class:`UnitRecord` — one span per work-unit *attempt*: submit and
  collect offsets on the run's monotonic clock, the lane that answered,
  the attempt number, the retry cause, and (when the worker stamped
  one) the remote compute time.
* :class:`RunTelemetry` — the mutable, thread-safe accumulator a
  backend attaches to itself for the duration of one ``run_trials``
  call.  The dispatch plane's collect loop feeds it submit/collect
  events; in-process backends record spans directly; the socket
  transport adds per-lane wire counters (bytes, round trips, dial /
  redial / dead events).
* :class:`RunReport` / :class:`LaneReport` — the frozen, **mergeable**
  summary :meth:`RunTelemetry.report` produces: wall clock, per-lane
  throughput and latency percentiles, retry/rebalance counts,
  straggler ratio, plus the protocol-level bridge (merged
  :class:`~repro.engine.spec.LedgerStats`, per-trial bit totals, and
  :class:`~repro.net.tracing.TraceRecorder` counters).  ``merge`` is
  associative — raw samples concatenate, integers add, wall clocks
  max — so reports of arbitrary shards fold to the same artifact.
* :func:`report_to_wire` / :func:`report_from_wire` — the report as a
  versioned wire document under the engine's usual conventions
  (``wire_dumps``, NaN rejection), written by ``repro run-experiment
  --telemetry out.json`` and rendered by ``repro report out.json``.
* :class:`SweepMonitor` — the opt-in live stderr progress line
  (units done/total, per-lane rates, ETA) that degrades to nothing
  when stderr is not a tty.

Telemetry must never perturb results: nothing here touches seeds,
trial ordering, or scheduling — it only watches.  The registry-wide
parity tests re-assert bit-identical results with telemetry enabled.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..analysis.reporting import Table
from ..net.accounting import percentile
from .spec import (
    LedgerStats,
    TrialResult,
    WIRE_VERSION,
    WireFormatError,
    _ledger_from_wire,
    _ledger_to_wire,
    _require_finite,
    require_wire,
    wire_dumps,
    wire_loads,
)

__all__ = [
    "LaneReport",
    "RunReport",
    "RunTelemetry",
    "SweepMonitor",
    "UnitRecord",
    "load_report",
    "report_from_wire",
    "report_to_wire",
    "write_report",
]


def _pct(values: Sequence[float], q: float) -> float:
    """Percentile that reads 0.0 on an empty sample set."""
    if not values:
        return 0.0
    return percentile(values, q)


def _merge_codec(mine: str, theirs: str) -> str:
    """Fold two shards' codec labels: agree, inherit, or "mixed"."""
    if not mine:
        return theirs
    if not theirs or theirs == mine:
        return mine
    return "mixed"


# -- spans -----------------------------------------------------------------------------


@dataclass(frozen=True)
class UnitRecord:
    """One work-unit attempt, as observed from the dispatching side.

    Offsets are seconds on the run's monotonic clock (zero at
    ``run_trials`` entry), so records order and subtract cleanly within
    one run but are meaningless across runs.
    """

    unit_id: int
    lane: str
    attempt: int
    mode: str
    trials: int
    submit_seconds: float
    collect_seconds: float
    ok: bool = True
    cause: str = ""
    #: Worker-stamped compute time (None when the lane sent no stats).
    compute_seconds: Optional[float] = None
    #: Cost-model prediction stamped on the unit at plan time (None
    #: when the plan was not cost-aware).
    predicted_cost: Optional[float] = None

    @property
    def latency_seconds(self) -> float:
        """Observed submit-to-collect latency of this attempt."""
        return self.collect_seconds - self.submit_seconds


# -- the mergeable report --------------------------------------------------------------


@dataclass(frozen=True)
class LaneReport:
    """Per-lane metrics: units, trials, latency samples, wire counters.

    Raw latency samples are kept (not pre-aggregated) so ``merge`` is
    exactly associative and percentiles stay honest after any fold.
    """

    lane: str
    units_ok: int = 0
    units_failed: int = 0
    trials: int = 0
    #: Client-observed latency per successful unit.
    unit_seconds: Tuple[float, ...] = ()
    #: Worker-stamped compute time per unit that carried stats.
    compute_seconds: Tuple[float, ...] = ()
    #: Socket-level round trip per exchange (distributed lanes only).
    round_trip_seconds: Tuple[float, ...] = ()
    #: Plan-time predicted cost per successful unit that carried one
    #: (cost-aware plans only; parallel to nothing — raw samples).
    predicted_costs: Tuple[float, ...] = ()
    bytes_out: int = 0
    bytes_in: int = 0
    #: Reply frames received off the lane's connection (hello-ok and
    #: pong included — it counts wire traffic, not unit completions).
    frames: int = 0
    #: High-water mark of the lane's pipelined in-flight window.
    inflight_peak: int = 0
    #: Negotiated wire codec ("json"/"binary"; "" when the lane never
    #: dialled, "mixed" when merged shards disagree).
    codec: str = ""
    dials: int = 0
    redials: int = 0
    dead_events: int = 0

    def merge(self, other: "LaneReport") -> "LaneReport":
        """Fold two shards' views of the same lane (associative)."""
        if other.lane != self.lane:
            raise ValueError(
                f"cannot merge lane {other.lane!r} into {self.lane!r}"
            )
        return LaneReport(
            lane=self.lane,
            units_ok=self.units_ok + other.units_ok,
            units_failed=self.units_failed + other.units_failed,
            trials=self.trials + other.trials,
            unit_seconds=self.unit_seconds + other.unit_seconds,
            compute_seconds=self.compute_seconds + other.compute_seconds,
            round_trip_seconds=(
                self.round_trip_seconds + other.round_trip_seconds
            ),
            predicted_costs=self.predicted_costs + other.predicted_costs,
            bytes_out=self.bytes_out + other.bytes_out,
            bytes_in=self.bytes_in + other.bytes_in,
            frames=self.frames + other.frames,
            inflight_peak=max(self.inflight_peak, other.inflight_peak),
            codec=_merge_codec(self.codec, other.codec),
            dials=self.dials + other.dials,
            redials=self.redials + other.redials,
            dead_events=self.dead_events + other.dead_events,
        )

    def queue_wait_seconds(self) -> float:
        """Observed latency minus worker compute: queueing + network.

        Only meaningful when the lane's workers stamped stats; reads
        0.0 otherwise (never negative — clock skew between the two
        measurements is clamped).
        """
        if not self.compute_seconds:
            return 0.0
        return max(
            0.0, sum(self.unit_seconds) - sum(self.compute_seconds)
        )

    def cost_skew(self, run_seconds_per_cost: float) -> Optional[float]:
        """Measured vs predicted cost of this lane's work, normalised.

        The lane's measured seconds per predicted cost unit over the
        run-wide rate: 1.0 means the cost model priced this lane's
        units proportionally; >1 means its units ran slower than the
        model predicted (the model under-prices what this lane drew).
        ``None`` when the lane carried no cost-stamped units or the
        run-wide rate is degenerate.  Measured time prefers worker
        compute stats, falling back to observed unit latency.
        """
        if not self.predicted_costs or run_seconds_per_cost <= 0:
            return None
        measured = (
            sum(self.compute_seconds)
            if self.compute_seconds
            else sum(self.unit_seconds)
        )
        predicted = sum(self.predicted_costs)
        if predicted <= 0:
            return None
        return (measured / predicted) / run_seconds_per_cost

    def measured_seconds(self) -> float:
        """Worker compute time when stamped, else observed latency."""
        return (
            sum(self.compute_seconds)
            if self.compute_seconds
            else sum(self.unit_seconds)
        )


@dataclass(frozen=True)
class RunReport:
    """The frozen, mergeable summary of one (or many merged) runs.

    ``merge`` is associative: sample tuples concatenate, counters add,
    wall clocks take the max (shards that ran concurrently), and the
    ledger bridge reuses :meth:`LedgerStats.merge`.  Percentiles and
    ratios are computed at read time from the raw samples, so they
    survive any merge order unchanged.
    """

    backend: str = ""
    trials: int = 0
    failures: int = 0
    wall_seconds: float = 0.0
    unit_attempts: int = 0
    retries: int = 0
    rebalances: int = 0
    #: Observed latency of every successful unit attempt, run-wide.
    unit_seconds: Tuple[float, ...] = ()
    lanes: Tuple[LaneReport, ...] = ()
    #: Protocol-level bridge: all trials' ledgers merged ...
    ledger: LedgerStats = LedgerStats()
    #: ... and each trial's total sent bits, for percentiles.
    trial_bits: Tuple[int, ...] = ()
    #: TraceRecorder per-kind counters (empty unless a trace was fed).
    trace_counters: Tuple[Tuple[str, int], ...] = ()

    # -- derived metrics ---------------------------------------------------------------

    def lane_map(self) -> Dict[str, LaneReport]:
        """The lanes keyed by id."""
        return {lane.lane: lane for lane in self.lanes}

    def unit_latency(self, q: float) -> float:
        """One percentile of successful-unit latency (0.0 if no units)."""
        return _pct(self.unit_seconds, q)

    def trial_bits_percentile(self, q: float) -> float:
        """One percentile of per-trial total sent bits."""
        return _pct(self.trial_bits, q)

    def straggler_ratio(self) -> float:
        """Slowest successful unit over the median one (1.0 = uniform)."""
        if not self.unit_seconds:
            return 0.0
        median = _pct(self.unit_seconds, 50)
        if median <= 0:
            return 0.0
        return max(self.unit_seconds) / median

    def trials_per_second(self) -> float:
        """Run-wide throughput (0.0 when the wall clock is unknown)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.trials / self.wall_seconds

    # -- folding -----------------------------------------------------------------------

    def merge(self, other: "RunReport") -> "RunReport":
        """Fold another shard's report into this one (associative)."""
        if not self.backend:
            backend = other.backend
        elif not other.backend or other.backend == self.backend:
            backend = self.backend
        else:
            backend = "mixed"
        lanes: Dict[str, LaneReport] = self.lane_map()
        for lane in other.lanes:
            if lane.lane in lanes:
                lanes[lane.lane] = lanes[lane.lane].merge(lane)
            else:
                lanes[lane.lane] = lane
        counters: Dict[str, int] = dict(self.trace_counters)
        for kind, count in other.trace_counters:
            counters[kind] = counters.get(kind, 0) + count
        return RunReport(
            backend=backend,
            trials=self.trials + other.trials,
            failures=self.failures + other.failures,
            wall_seconds=max(self.wall_seconds, other.wall_seconds),
            unit_attempts=self.unit_attempts + other.unit_attempts,
            retries=self.retries + other.retries,
            rebalances=self.rebalances + other.rebalances,
            unit_seconds=self.unit_seconds + other.unit_seconds,
            lanes=tuple(
                lanes[lane_id] for lane_id in sorted(lanes)
            ),
            ledger=self.ledger.merge(other.ledger),
            trial_bits=self.trial_bits + other.trial_bits,
            trace_counters=tuple(sorted(counters.items())),
        )

    # -- rendering ---------------------------------------------------------------------

    def to_tables(self) -> List[Table]:
        """The report as plain-text tables (no new dependencies)."""
        summary = Table(
            title=f"run summary [{self.backend or 'unknown backend'}]",
            headers=["metric", "value"],
        )
        summary.add_row("trials", f"{self.trials}")
        summary.add_row("failures", f"{self.failures}")
        summary.add_row("wall seconds", f"{self.wall_seconds:.3f}")
        summary.add_row(
            "throughput (trials/s)", f"{self.trials_per_second():.2f}"
        )
        summary.add_row("unit attempts", f"{self.unit_attempts}")
        summary.add_row("retries", f"{self.retries}")
        summary.add_row("rebalances", f"{self.rebalances}")
        summary.add_row(
            "unit latency p50/p90/p99 (s)",
            "/".join(
                f"{self.unit_latency(q):.4f}" for q in (50, 90, 99)
            ),
        )
        summary.add_row(
            "straggler ratio", f"{self.straggler_ratio():.2f}"
        )
        tables = [summary]

        if self.lanes:
            # Run-wide measured seconds per predicted cost unit: the
            # normaliser for the per-lane skew column.
            total_predicted = sum(
                sum(lane.predicted_costs) for lane in self.lanes
            )
            total_measured = sum(
                lane.measured_seconds()
                for lane in self.lanes
                if lane.predicted_costs
            )
            rate = (
                total_measured / total_predicted if total_predicted else 0.0
            )
            lanes = Table(
                title="lanes",
                headers=[
                    "lane", "units", "fail", "trials", "p50 s",
                    "p90 s", "p99 s", "compute s", "queue+net s",
                    "skew", "codec", "frames",
                    "KiB out", "KiB in", "dials", "redials", "dead",
                ],
                note=(
                    "compute/queue+net need worker stats; blank "
                    "columns mean the lane sent none; skew is measured "
                    "vs predicted unit cost (1.00 = model calibrated); "
                    "codec/frames are socket-lane wire counters"
                ),
            )
            for lane in self.lanes:
                has_stats = bool(lane.compute_seconds)
                skew = lane.cost_skew(rate)
                lanes.add_row(
                    lane.lane,
                    f"{lane.units_ok}",
                    f"{lane.units_failed}",
                    f"{lane.trials}",
                    f"{_pct(lane.unit_seconds, 50):.4f}",
                    f"{_pct(lane.unit_seconds, 90):.4f}",
                    f"{_pct(lane.unit_seconds, 99):.4f}",
                    f"{sum(lane.compute_seconds):.4f}" if has_stats else "",
                    f"{lane.queue_wait_seconds():.4f}" if has_stats else "",
                    f"{skew:.2f}" if skew is not None else "",
                    lane.codec,
                    f"{lane.frames}" if lane.frames else "",
                    f"{lane.bytes_out / 1024:.1f}" if lane.bytes_out else "",
                    f"{lane.bytes_in / 1024:.1f}" if lane.bytes_in else "",
                    f"{lane.dials}",
                    f"{lane.redials}",
                    f"{lane.dead_events}",
                )
            tables.append(lanes)

        if self.ledger.total_bits or self.trial_bits or self.trace_counters:
            protocol = Table(
                title="protocol bridge (ledger + trace)",
                headers=["metric", "value"],
                note="per-trial ledger summaries merged run-wide",
            )
            protocol.add_row(
                "total bits sent", f"{self.ledger.total_bits:,}"
            )
            protocol.add_row(
                "total messages", f"{self.ledger.total_messages:,}"
            )
            protocol.add_row(
                "max bits/processor",
                f"{self.ledger.max_bits_per_processor:,}",
            )
            protocol.add_row("rounds (total)", f"{self.ledger.rounds:,}")
            protocol.add_row(
                "per-trial bits p50/p90/p99",
                "/".join(
                    f"{self.trial_bits_percentile(q):,.0f}"
                    for q in (50, 90, 99)
                ),
            )
            for phase, bits in self.ledger.phase_bits:
                protocol.add_row(f"phase[{phase}] bits", f"{bits:,}")
            for kind, count in self.trace_counters:
                protocol.add_row(f"trace[{kind}]", f"{count:,}")
            tables.append(protocol)
        return tables

    def render(self) -> str:
        """The report as one plain-text document."""
        return "\n\n".join(table.to_text() for table in self.to_tables())


# -- wire format -----------------------------------------------------------------------


def _lane_to_wire(lane: LaneReport) -> Dict[str, Any]:
    for value in lane.unit_seconds + lane.compute_seconds + (
        lane.round_trip_seconds + lane.predicted_costs
    ):
        _require_finite(value, f"lane {lane.lane!r} samples")
    return {
        "lane": lane.lane,
        "units_ok": lane.units_ok,
        "units_failed": lane.units_failed,
        "trials": lane.trials,
        "unit_seconds": list(lane.unit_seconds),
        "compute_seconds": list(lane.compute_seconds),
        "round_trip_seconds": list(lane.round_trip_seconds),
        "predicted_costs": list(lane.predicted_costs),
        "bytes_out": lane.bytes_out,
        "bytes_in": lane.bytes_in,
        "frames": lane.frames,
        "inflight_peak": lane.inflight_peak,
        "codec": lane.codec,
        "dials": lane.dials,
        "redials": lane.redials,
        "dead_events": lane.dead_events,
    }


def _lane_from_wire(doc: Mapping[str, Any]) -> LaneReport:
    return LaneReport(
        lane=str(doc["lane"]),
        units_ok=int(doc["units_ok"]),
        units_failed=int(doc["units_failed"]),
        trials=int(doc["trials"]),
        unit_seconds=tuple(float(v) for v in doc["unit_seconds"]),
        compute_seconds=tuple(float(v) for v in doc["compute_seconds"]),
        round_trip_seconds=tuple(
            float(v) for v in doc["round_trip_seconds"]
        ),
        # Tolerant: reports written before the cost plane lack the key.
        predicted_costs=tuple(
            float(v) for v in doc.get("predicted_costs", ())
        ),
        bytes_out=int(doc["bytes_out"]),
        bytes_in=int(doc["bytes_in"]),
        # Tolerant: reports written before the wire codec lack these.
        frames=int(doc.get("frames", 0)),
        inflight_peak=int(doc.get("inflight_peak", 0)),
        codec=str(doc.get("codec", "")),
        dials=int(doc["dials"]),
        redials=int(doc["redials"]),
        dead_events=int(doc["dead_events"]),
    )


def report_to_wire(report: RunReport) -> Dict[str, Any]:
    """A :class:`RunReport` as a version-1 wire document."""
    _require_finite(report.wall_seconds, "wall_seconds")
    for value in report.unit_seconds:
        _require_finite(value, "unit_seconds")
    return {
        "version": WIRE_VERSION,
        "kind": "report",
        "backend": report.backend,
        "trials": report.trials,
        "failures": report.failures,
        "wall_seconds": report.wall_seconds,
        "unit_attempts": report.unit_attempts,
        "retries": report.retries,
        "rebalances": report.rebalances,
        "unit_seconds": list(report.unit_seconds),
        "lanes": [_lane_to_wire(lane) for lane in report.lanes],
        "ledger": _ledger_to_wire(report.ledger),
        "trial_bits": list(report.trial_bits),
        "trace_counters": [
            [kind, count] for kind, count in report.trace_counters
        ],
    }


def report_from_wire(doc: Any) -> RunReport:
    """Decode a report document; inverse of :func:`report_to_wire`."""
    require_wire(doc, "report")
    try:
        return RunReport(
            backend=str(doc["backend"]),
            trials=int(doc["trials"]),
            failures=int(doc["failures"]),
            wall_seconds=float(doc["wall_seconds"]),
            unit_attempts=int(doc["unit_attempts"]),
            retries=int(doc["retries"]),
            rebalances=int(doc["rebalances"]),
            unit_seconds=tuple(float(v) for v in doc["unit_seconds"]),
            lanes=tuple(_lane_from_wire(d) for d in doc["lanes"]),
            ledger=_ledger_from_wire(doc["ledger"]),
            trial_bits=tuple(int(v) for v in doc["trial_bits"]),
            trace_counters=tuple(
                (str(kind), int(count))
                for kind, count in doc["trace_counters"]
            ),
        )
    except WireFormatError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise WireFormatError(f"malformed report document: {exc}") from None


def write_report(report: RunReport, path: str) -> None:
    """Serialise one report to ``path`` as a single JSON line."""
    with open(path, "w") as handle:
        handle.write(wire_dumps(report_to_wire(report)) + "\n")


def load_report(path: str) -> RunReport:
    """Read a report written by :func:`write_report` (or merged peers)."""
    with open(path) as handle:
        return report_from_wire(wire_loads(handle.read()))


# -- the live monitor ------------------------------------------------------------------


class SweepMonitor:
    """Opt-in live progress line on stderr during a sweep.

    Renders ``done/total`` trials, the aggregate rate, an ETA and
    per-lane rates, redrawing in place (``\\r``).  When the stream is
    not a tty — CI logs, redirected output — it degrades to nothing:
    no escape codes, no output at all.
    """

    def __init__(
        self,
        stream: Any = None,
        min_interval: float = 0.2,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        isatty = getattr(self.stream, "isatty", None)
        self.enabled = bool(isatty and isatty())
        self.min_interval = min_interval
        self._last_draw = 0.0
        self._last_width = 0
        self._wrote = False

    def update(
        self,
        done: int,
        total: int,
        elapsed: float,
        lane_rates: Mapping[str, float],
    ) -> None:
        """Redraw the progress line (throttled to ``min_interval``)."""
        if not self.enabled:
            return
        now = time.monotonic()
        if done < total and now - self._last_draw < self.min_interval:
            return
        self._last_draw = now
        rate = done / elapsed if elapsed > 0 else 0.0
        if rate > 0 and total > done:
            eta = f"eta {(total - done) / rate:.0f}s"
        else:
            eta = "eta --"
        lanes = "  ".join(
            f"{lane}:{lane_rate:.1f}/s"
            for lane, lane_rate in sorted(lane_rates.items())
        )
        line = (
            f"[sweep] {done}/{total} trials  {rate:.1f}/s  {eta}"
            + (f"  |  {lanes}" if lanes else "")
        )
        padding = " " * max(0, self._last_width - len(line))
        self._last_width = len(line)
        self.stream.write("\r" + line + padding)
        self.stream.flush()
        self._wrote = True

    def finish(self) -> None:
        """End the progress line (newline) if anything was drawn."""
        if self._wrote:
            self.stream.write("\n")
            self.stream.flush()
            self._wrote = False


# -- the accumulator -------------------------------------------------------------------


class _Span:
    """Context manager recording one in-process unit span."""

    def __init__(
        self, telemetry: "RunTelemetry", lane: str, trials: int, mode: str
    ) -> None:
        self._telemetry = telemetry
        self._lane = lane
        self._trials = trials
        self._mode = mode
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = self._telemetry.elapsed()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self._telemetry.note_span(
            lane=self._lane,
            trials=self._trials,
            mode=self._mode,
            start=self._start,
            ok=exc_type is None,
            cause="" if exc_type is None else f"{exc_type.__name__}: {exc}",
        )


class RunTelemetry:
    """Mutable, thread-safe accumulator for one ``run_trials`` call.

    A backend creates one at run entry (``self.telemetry``), the
    dispatch layer feeds it events, and :meth:`report` freezes it into
    a mergeable :class:`RunReport` afterwards.  All methods take the
    lock, so pool callbacks and socket exchange threads can report
    concurrently with the collect loop.
    """

    def __init__(
        self,
        backend: str = "",
        total_trials: int = 0,
        monitor: Optional[SweepMonitor] = None,
    ) -> None:
        self.backend = backend
        self.total_trials = total_trials
        self.monitor = monitor
        self._lock = threading.Lock()
        self._t0 = time.monotonic()
        self.wall_seconds: Optional[float] = None
        self.records: List[UnitRecord] = []
        #: unit_id -> (submit offset, attempt, trials, mode)
        self._pending: Dict[
            int, Tuple[float, int, int, str, Optional[float]]
        ] = {}
        self._attempts: Dict[int, int] = {}
        self._next_span_id = -1  # in-process spans count down from -1
        self._done_trials = 0
        self._lane_trials: Dict[str, int] = {}
        #: lane id -> wire counters the records cannot carry
        self._lane_net: Dict[str, Dict[str, Any]] = {}

    def elapsed(self) -> float:
        """Seconds since the run started (monotonic)."""
        return time.monotonic() - self._t0

    # -- dispatch-plane events ---------------------------------------------------------

    def note_submit(
        self,
        unit_id: int,
        trials: int,
        mode: str,
        predicted_cost: Optional[float] = None,
    ) -> None:
        """A unit was offered to the transport (lane unknown yet)."""
        with self._lock:
            attempt = self._attempts.get(unit_id, 0) + 1
            self._attempts[unit_id] = attempt
            self._pending[unit_id] = (
                self.elapsed(), attempt, trials, mode, predicted_cost
            )

    def cancel_submit(self, unit_id: int) -> None:
        """The transport declined the offer: forget the pending span."""
        with self._lock:
            self._pending.pop(unit_id, None)
            if unit_id in self._attempts:
                self._attempts[unit_id] -= 1

    def note_result(self, envelope: Any) -> None:
        """One collected envelope closes its pending span."""
        with self._lock:
            pending = self._pending.pop(envelope.unit_id, None)
            if pending is None:
                return  # collect without submit: nothing to anchor to
            submitted, attempt, trials, mode, predicted = pending
            stats = getattr(envelope, "stats", None)
            record = UnitRecord(
                unit_id=envelope.unit_id,
                lane=envelope.lane,
                attempt=attempt,
                mode=mode,
                trials=trials,
                submit_seconds=submitted,
                collect_seconds=self.elapsed(),
                ok=envelope.ok,
                cause=envelope.error,
                compute_seconds=(
                    stats.compute_seconds if stats is not None else None
                ),
                predicted_cost=predicted,
            )
            self.records.append(record)
            if record.ok:
                self._done_trials += trials
                self._lane_trials[record.lane] = (
                    self._lane_trials.get(record.lane, 0) + trials
                )
        self._tick_monitor()

    # -- in-process spans --------------------------------------------------------------

    def span(self, lane: str, trials: int, mode: str = "trials") -> _Span:
        """Context manager timing one in-process unit of work."""
        return _Span(self, lane, trials, mode)

    def note_span(
        self,
        lane: str,
        trials: int,
        mode: str,
        start: float,
        ok: bool = True,
        cause: str = "",
        compute_seconds: Optional[float] = None,
    ) -> None:
        """Record a directly-observed span (serial/batch/async lanes)."""
        with self._lock:
            end = self.elapsed()
            self.records.append(
                UnitRecord(
                    unit_id=self._next_span_id,
                    lane=lane,
                    attempt=1,
                    mode=mode,
                    trials=trials,
                    submit_seconds=start,
                    collect_seconds=end,
                    ok=ok,
                    cause=cause,
                    # An in-process lane *is* the worker: its observed
                    # latency is all compute unless told otherwise.
                    compute_seconds=(
                        compute_seconds
                        if compute_seconds is not None
                        else end - start
                    ),
                )
            )
            self._next_span_id -= 1
            if ok:
                self._done_trials += trials
                self._lane_trials[lane] = (
                    self._lane_trials.get(lane, 0) + trials
                )
        self._tick_monitor()

    # -- transport wire events ---------------------------------------------------------

    def _lane_counters(self, lane: str) -> Dict[str, Any]:
        return self._lane_net.setdefault(
            lane,
            {
                "bytes_out": 0,
                "bytes_in": 0,
                "frames": 0,
                "inflight_peak": 0,
                "codec": "",
                "dials": 0,
                "redials": 0,
                "dead_events": 0,
                "round_trips": [],  # type: ignore[dict-item]
            },
        )

    def note_exchange(
        self,
        lane: str,
        bytes_out: int,
        bytes_in: int,
        round_trip_seconds: float,
    ) -> None:
        """One whole request/reply exchange (kept for custom transports;
        the pipelined socket transport reports the two directions
        separately via :meth:`note_send` / :meth:`note_receive`)."""
        with self._lock:
            counters = self._lane_counters(lane)
            counters["bytes_out"] += bytes_out
            counters["bytes_in"] += bytes_in
            counters["round_trips"].append(round_trip_seconds)

    def note_send(self, lane: str, nbytes: int) -> None:
        """One request frame went out on a lane's connection."""
        with self._lock:
            self._lane_counters(lane)["bytes_out"] += nbytes

    def note_receive(
        self,
        lane: str,
        nbytes: int,
        round_trip_seconds: Optional[float] = None,
    ) -> None:
        """One reply frame arrived (``round_trip_seconds`` is the
        submit-to-reply latency for unit replies; negotiation frames
        carry none)."""
        with self._lock:
            counters = self._lane_counters(lane)
            counters["bytes_in"] += nbytes
            counters["frames"] += 1
            if round_trip_seconds is not None:
                counters["round_trips"].append(round_trip_seconds)

    def note_inflight(self, lane: str, inflight: int) -> None:
        """Track the high-water mark of a lane's pipeline window."""
        with self._lock:
            counters = self._lane_counters(lane)
            if inflight > counters["inflight_peak"]:
                counters["inflight_peak"] = inflight

    def note_lane_codec(self, lane: str, codec: str) -> None:
        """Stamp the codec a lane negotiated at dial time."""
        with self._lock:
            self._lane_counters(lane)["codec"] = codec

    def note_lane_event(self, lane: str, kind: str) -> None:
        """A lane lifecycle event: ``dial``, ``redial`` or ``dead``."""
        key = {
            "dial": "dials", "redial": "redials", "dead": "dead_events"
        }.get(kind)
        if key is None:
            raise ValueError(f"unknown lane event {kind!r}")
        with self._lock:
            self._lane_counters(lane)[key] += 1

    # -- lifecycle ---------------------------------------------------------------------

    def _tick_monitor(self) -> None:
        if self.monitor is None:
            return
        elapsed = self.elapsed()
        with self._lock:
            done = self._done_trials
            rates = {
                lane: trials / elapsed if elapsed > 0 else 0.0
                for lane, trials in self._lane_trials.items()
            }
        self.monitor.update(
            done=done,
            total=self.total_trials,
            elapsed=elapsed,
            lane_rates=rates,
        )

    def finish(self) -> None:
        """Stamp the wall clock and close the monitor line."""
        if self.wall_seconds is None:
            self.wall_seconds = self.elapsed()
        if self.monitor is not None:
            self.monitor.finish()

    # -- freezing ----------------------------------------------------------------------

    def report(
        self,
        results: Optional[Sequence[TrialResult]] = None,
        trace: Any = None,
    ) -> RunReport:
        """Freeze the accumulated events into a :class:`RunReport`.

        ``results`` feeds the protocol bridge (failure count, merged
        ledger stats, per-trial bit totals); ``trace`` may be a
        :class:`~repro.net.tracing.TraceRecorder` (its ``counters``
        attribute is read) or a plain mapping of per-kind counters.
        """
        if self.wall_seconds is None:
            self.finish()
        with self._lock:
            records = list(self.records)
            lane_net = {
                lane: dict(counters)
                for lane, counters in self._lane_net.items()
            }
        lanes: Dict[str, LaneReport] = {}
        for lane_id in sorted(
            {r.lane for r in records} | set(lane_net)
        ):
            lane_records = [r for r in records if r.lane == lane_id]
            ok_records = [r for r in lane_records if r.ok]
            net = lane_net.get(lane_id, {})
            lanes[lane_id] = LaneReport(
                lane=lane_id,
                units_ok=len(ok_records),
                units_failed=len(lane_records) - len(ok_records),
                trials=sum(r.trials for r in ok_records),
                unit_seconds=tuple(
                    r.latency_seconds for r in ok_records
                ),
                compute_seconds=tuple(
                    r.compute_seconds
                    for r in ok_records
                    if r.compute_seconds is not None
                ),
                round_trip_seconds=tuple(net.get("round_trips", ())),
                predicted_costs=tuple(
                    r.predicted_cost
                    for r in ok_records
                    if r.predicted_cost is not None
                ),
                bytes_out=int(net.get("bytes_out", 0)),
                bytes_in=int(net.get("bytes_in", 0)),
                frames=int(net.get("frames", 0)),
                inflight_peak=int(net.get("inflight_peak", 0)),
                codec=str(net.get("codec", "")),
                dials=int(net.get("dials", 0)),
                redials=int(net.get("redials", 0)),
                dead_events=int(net.get("dead_events", 0)),
            )
        ok_records = [r for r in records if r.ok]
        trials = (
            len(results)
            if results is not None
            else sum(r.trials for r in ok_records)
        )
        failures = (
            sum(1 for t in results if not t.ok) if results is not None else 0
        )
        ledger = LedgerStats()
        trial_bits: Tuple[int, ...] = ()
        if results is not None:
            for t in results:
                ledger = ledger.merge(t.ledger)
            trial_bits = tuple(t.ledger.total_bits for t in results)
        counters: Dict[str, int] = {}
        if trace is not None:
            raw = getattr(trace, "counters", trace)
            for kind, count in dict(raw).items():
                counters[str(kind)] = counters.get(str(kind), 0) + int(count)
        return RunReport(
            backend=self.backend,
            trials=trials,
            failures=failures,
            wall_seconds=self.wall_seconds or 0.0,
            unit_attempts=len(records),
            retries=sum(1 for r in records if not r.ok),
            rebalances=sum(1 for r in ok_records if r.attempt > 1),
            unit_seconds=tuple(r.latency_seconds for r in ok_records),
            lanes=tuple(lanes[lane_id] for lane_id in sorted(lanes)),
            ledger=ledger,
            trial_bits=trial_bits,
            trace_counters=tuple(sorted(counters.items())),
        )
