"""Named experiment runners — the data half of `experiments as data`.

A runner turns one :class:`~repro.engine.spec.TrialContext` into one
:class:`~repro.engine.spec.TrialResult`.  Specs reference runners by
name so they stay picklable; worker processes resolve the name against
this module after import.

Two runner flavours exist:

* every runner has ``run_trial`` — an isolated, self-contained trial,
  usable by the serial and process-pool backends;
* *batchable* runners additionally provide ``build_instance``, which
  returns a :class:`BatchInstance` (a ready
  :class:`~repro.net.simulator.SyncNetwork` plus a collector).  The
  batch backend multiplexes many such instances over one round loop;
  for these runners ``run_trial`` is derived from the same builder, so
  all three backends execute literally the same construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..net.simulator import (
    Adversary,
    NullAdversary,
    RunResult,
    SyncNetwork,
)
from .spec import EngineError, LedgerStats, TrialContext, TrialResult


@dataclass(frozen=True)
class BatchInstance:
    """One trial prepared as a steppable network plus result collector."""

    network: SyncNetwork
    max_rounds: int
    collect: Callable[[RunResult, TrialContext], TrialResult]
    ctx: TrialContext


@dataclass(frozen=True)
class ExperimentRunner:
    """A named experiment: trial function and optional batch builder."""

    name: str
    run_trial: Callable[[TrialContext], TrialResult]
    build_instance: Optional[Callable[[TrialContext], BatchInstance]] = None
    description: str = ""

    @property
    def batchable(self) -> bool:
        """Whether the batch backend can multiplex this runner."""
        return self.build_instance is not None


_REGISTRY: Dict[str, ExperimentRunner] = {}


def register(runner: ExperimentRunner) -> ExperimentRunner:
    """Add a runner to the registry (idempotent on identical names)."""
    _REGISTRY[runner.name] = runner
    return runner


def get_runner(name: str) -> ExperimentRunner:
    """Look up a runner; raises :class:`EngineError` on unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise EngineError(
            f"unknown experiment runner {name!r} (known: {known})"
        ) from None


def runner_names() -> List[str]:
    """All registered runner names, sorted."""
    return sorted(_REGISTRY)


def drive_instance(instance: BatchInstance) -> TrialResult:
    """Run one prepared instance to completion (the serial path).

    Mirrors :meth:`SyncNetwork.run`, so a batched execution — which
    steps the same network through the same rounds, merely interleaved
    with other instances — produces the identical result.
    """
    result = instance.network.run(max_rounds=instance.max_rounds)
    return instance.collect(result, instance.ctx)


def _run_trial_from_builder(
    builder: Callable[[TrialContext], BatchInstance]
) -> Callable[[TrialContext], TrialResult]:
    def run_trial(ctx: TrialContext) -> TrialResult:
        return drive_instance(builder(ctx))

    return run_trial


# --------------------------------------------------------------------------
# Built-in runner: everywhere-ba (Theorem 1 pipeline, benchmark E1's unit)
# --------------------------------------------------------------------------


def _input_bits(pattern: str, n: int) -> List[int]:
    if pattern == "split":
        return [p % 2 for p in range(n)]
    if pattern == "thirds":
        return [1 if p % 3 else 0 for p in range(n)]
    if pattern == "ones":
        return [1] * n
    if pattern == "zeros":
        return [0] * n
    raise EngineError(f"unknown input pattern {pattern!r}")


def _everywhere_ba_trial(ctx: TrialContext) -> TrialResult:
    from ..adversary.adaptive import BinStuffingAdversary, TournamentAdversary
    from ..core.byzantine_agreement import run_everywhere_ba

    n = ctx.n
    inputs = _input_bits(ctx.param("inputs", "split"), n)
    corrupt = float(ctx.param("corrupt", 0.0))
    adversary = None
    if corrupt > 0:
        budget = max(1, int(corrupt * n))
        kind = ctx.param("adversary", "bin-stuffing")
        if kind == "bin-stuffing":
            adversary = BinStuffingAdversary(n, budget=budget, seed=ctx.seed)
        elif kind == "tournament":
            adversary = TournamentAdversary(n, budget=budget, seed=ctx.seed)
        else:
            raise EngineError(f"unknown adversary kind {kind!r}")

    result = run_everywhere_ba(
        n, inputs, tournament_adversary=adversary, seed=ctx.seed
    )
    good = [p for p in range(n) if p not in result.corrupted]
    decided = [result.ae2e_result.decided.get(p) for p in good]
    agree = sum(1 for v in decided if v == result.bit) / max(1, len(good))
    good_bits = [result.bits_per_processor[p] for p in good]
    ledger = LedgerStats(
        total_bits=sum(good_bits),
        total_messages=result.ae_result.ledger.total_messages(),
        max_bits_per_processor=max(good_bits, default=0),
        rounds=result.total_rounds(),
    )
    return TrialResult.make(
        ctx,
        metrics={
            "bit": result.bit,
            "agreement": agree,
            "valid": float(result.is_valid()),
            "rounds": result.total_rounds(),
            "max_bits_per_processor": result.max_bits_per_processor(),
        },
        ledger=ledger,
        ok=result.success() and result.is_valid(),
    )


register(
    ExperimentRunner(
        name="everywhere-ba",
        run_trial=_everywhere_ba_trial,
        description=(
            "Theorem 1 end to end: tournament + coin subsequence + "
            "almost-everywhere-to-everywhere push"
        ),
    )
)


# --------------------------------------------------------------------------
# Built-in runner: unreliable-coin-ba (Algorithm 5 on a sparse graph, E11's
# coalescence unit) — batchable.
# --------------------------------------------------------------------------


def _aeba_instance(ctx: TrialContext) -> BatchInstance:
    from ..core.coins import perfect_coin_source
    from ..core.unreliable_coin_ba import (
        SparseAEBAProcessor,
        vote_threshold,
    )
    from ..topology.sparse_graph import random_regular_graph, theorem5_degree

    n = ctx.n
    num_rounds = int(ctx.param("num_rounds", 1))
    degree = ctx.param("degree")
    if degree is None:
        degree = theorem5_degree(n)
    graph = random_regular_graph(n, int(degree), ctx.rng("graph"))
    source = perfect_coin_source(n, num_rounds, ctx.rng("coins"))
    threshold = vote_threshold(
        float(ctx.param("epsilon", 1 / 12)),
        float(ctx.param("epsilon0", 0.05)),
    )
    inputs = _input_bits(ctx.param("inputs", "split"), n)
    protocols = [
        SparseAEBAProcessor(
            pid=p,
            input_bit=inputs[p],
            neighbors=sorted(graph[p]),
            coin_view=lambda idx, p=p: source.view(idx, p),
            num_rounds=num_rounds,
            threshold=threshold,
        )
        for p in range(n)
    ]
    network = SyncNetwork(protocols, NullAdversary(n))

    def collect(result: RunResult, ctx: TrialContext) -> TrialResult:
        from collections import Counter
        import math

        votes = Counter(
            protocols[p].vote
            for p in range(ctx.n)
            if p not in result.corrupted
        )
        top = max(votes.values()) / max(1, sum(votes.values()))
        coalesced = top >= 1 - 1 / math.log2(max(4, ctx.n))
        return TrialResult.make(
            ctx,
            metrics={
                "top_fraction": top,
                "coalesced": float(coalesced),
                "rounds": result.rounds,
                "max_bits_per_processor": (
                    result.ledger.max_bits_per_processor()
                ),
            },
            ledger=LedgerStats.from_ledger(result.ledger),
            ok=True,
        )

    return BatchInstance(
        network=network,
        max_rounds=num_rounds + 2,
        collect=collect,
        ctx=ctx,
    )


register(
    ExperimentRunner(
        name="unreliable-coin-ba",
        run_trial=_run_trial_from_builder(_aeba_instance),
        build_instance=_aeba_instance,
        description=(
            "Algorithm 5 sparse-graph BA with perfect global coins "
            "(Lemma 13 coalescence unit)"
        ),
    )
)


# --------------------------------------------------------------------------
# Built-in runner: vss-coin (the on-demand committee coin of E19) —
# batchable.
# --------------------------------------------------------------------------


class _CrashFromStart(Adversary):
    """t members crash in round 1 and stay silent."""

    def __init__(self, k: int, t: int) -> None:
        super().__init__(k, budget=t)

    def select_corruptions(self, round_no: int):
        return set(range(self.budget)) if round_no == 1 else set()

    def act(self, view):
        return []


class _WithholdReveals(Adversary):
    """t members go silent exactly at the reveal round."""

    def __init__(self, k: int, t: int) -> None:
        super().__init__(k, budget=t)

    def select_corruptions(self, round_no: int):
        return set(range(self.budget)) if round_no == 4 else set()

    def act(self, view):
        return []


def _vss_coin_instance(ctx: TrialContext) -> BatchInstance:
    from ..core.vss_coin import VSSCoinMember, vss_coin_fault_bound

    k = int(ctx.param("k", ctx.n))
    t = vss_coin_fault_bound(k)
    kind = ctx.param("adversary", "none")
    if kind == "none":
        adversary: Adversary = NullAdversary(k)
    elif kind == "crash":
        adversary = _CrashFromStart(k, t)
    elif kind == "withhold":
        adversary = _WithholdReveals(k, t)
    else:
        raise EngineError(f"unknown vss-coin adversary {kind!r}")
    members = [VSSCoinMember(pid, k, seed=ctx.seed) for pid in range(k)]
    network = SyncNetwork(members, adversary)

    def collect(result: RunResult, ctx: TrialContext) -> TrialResult:
        # None outputs (an honest member that never decided) count as
        # disagreement — matching E19's original strict check.
        coins = set(result.good_outputs().values())
        agreed = len(coins) == 1 and next(iter(coins)) in (0, 1)
        return TrialResult.make(
            ctx,
            metrics={
                "agreed": float(agreed),
                "coin": float(coins.pop()) if agreed else -1.0,
                "corrupted": len(result.corrupted),
            },
            ledger=LedgerStats.from_ledger(result.ledger),
            ok=agreed,
        )

    return BatchInstance(
        network=network, max_rounds=5, collect=collect, ctx=ctx
    )


register(
    ExperimentRunner(
        name="vss-coin",
        run_trial=_run_trial_from_builder(_vss_coin_instance),
        build_instance=_vss_coin_instance,
        description=(
            "on-demand Canetti-Rabin-style committee coin (E19's "
            "per-coin alternative to the tournament)"
        ),
    )
)


# --------------------------------------------------------------------------
# Built-in runner: sampler-quality (Lemma 2 measurement, E8's unit)
# --------------------------------------------------------------------------


def _sampler_quality_trial(ctx: TrialContext) -> TrialResult:
    from ..samplers.quality import (
        adversarial_bad_set,
        estimate_failure_fraction,
        fraction_of_bad_committees,
        measure_against_bad_set,
    )
    from ..samplers.sampler import Sampler

    r = int(ctx.param("r", 100))
    s = int(ctx.param("s", 300))
    degree = int(ctx.param("degree", 16))
    theta = float(ctx.param("theta", 0.15))
    bad_fraction = float(ctx.param("bad_fraction", 0.25))
    inner_trials = int(ctx.param("inner_trials", 15))

    sampler = Sampler.random(r, s, degree, ctx.rng("sampler"))
    bad_size = int(bad_fraction * s)
    random_delta = estimate_failure_fraction(
        sampler, bad_size, theta, trials=inner_trials, rng=ctx.rng("bad-sets")
    )
    greedy = adversarial_bad_set(sampler, bad_size)
    greedy_delta = measure_against_bad_set(
        sampler, greedy, theta
    ).delta_measured
    bad_committees = fraction_of_bad_committees(
        sampler, greedy, good_threshold=2 / 3
    )
    return TrialResult.make(
        ctx,
        metrics={
            "delta_random": random_delta,
            "delta_greedy": greedy_delta,
            "bad_committees": bad_committees,
        },
        ok=True,
    )


register(
    ExperimentRunner(
        name="sampler-quality",
        run_trial=_sampler_quality_trial,
        description=(
            "Lemma 2 averaging-sampler failure fractions vs degree, "
            "random and greedy-adversarial bad sets"
        ),
    )
)
