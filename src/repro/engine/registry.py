"""The scenario registry — the data half of `experiments as data`.

A :class:`Scenario` is one named, registered experiment: a typed
parameter schema (:class:`~repro.engine.scenario.Param`), a metric
contract, and one or more *execution modes*:

* ``run_trial`` — an isolated, self-contained trial, usable by the
  serial and process-pool backends (every scenario has one, declared or
  derived);
* ``build_instance`` — for *sync batchable* scenarios: returns a
  :class:`BatchInstance` (a ready
  :class:`~repro.net.simulator.SyncNetwork` plus a collector) that the
  batch backend multiplexes over one round loop;
* ``build_async_instance`` — for scheduler-driven protocols: returns an
  :class:`AsyncInstance` (a ready
  :class:`~repro.asynchrony.scheduler.AsyncNetwork` plus a collector)
  that the async backend multiplexes over delivery steps.

When only a builder is declared, ``run_trial`` is derived from it, so
every backend executes literally the same construction — the engine's
bit-identical-backends property by construction.

Specs reference scenarios *by name* so they stay picklable; worker
processes resolve the name against this module after import.  Built-in
scenarios live in :mod:`repro.engine.scenarios` and are loaded lazily on
first lookup, so ad-hoc test scenarios can register without importing
the whole protocol stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..asynchrony.scheduler import AsyncNetwork, AsyncRunResult
from ..net.simulator import RunResult, SyncNetwork
from .scenario import Param, ScenarioError, defaults_of, validate_mapping
from .spec import EngineError, TrialContext, TrialResult


@dataclass(frozen=True)
class BatchInstance:
    """One trial prepared as a steppable sync network plus collector."""

    network: SyncNetwork
    max_rounds: int
    collect: Callable[[RunResult, TrialContext], TrialResult]
    ctx: TrialContext


@dataclass(frozen=True)
class AsyncInstance:
    """One trial prepared as a steppable async network plus collector."""

    network: AsyncNetwork
    max_steps: int
    collect: Callable[[AsyncRunResult, TrialContext], TrialResult]
    ctx: TrialContext


def drive_instance(instance: BatchInstance) -> TrialResult:
    """Run one prepared sync instance to completion (the serial path).

    Mirrors :meth:`SyncNetwork.run`, so a batched execution — which
    steps the same network through the same rounds, merely interleaved
    with other instances — produces the identical result.
    """
    result = instance.network.run(max_rounds=instance.max_rounds)
    return instance.collect(result, instance.ctx)


def drive_async_instance(instance: AsyncInstance) -> TrialResult:
    """Run one prepared async instance to completion (the serial path).

    Mirrors :meth:`AsyncNetwork.run` step for step, so the async
    backend's delivery-interleaved execution produces the identical
    result.
    """
    result = instance.network.run(max_steps=instance.max_steps)
    return instance.collect(result, instance.ctx)


def _run_trial_from_builder(
    builder: Callable[[TrialContext], BatchInstance]
) -> Callable[[TrialContext], TrialResult]:
    def run_trial(ctx: TrialContext) -> TrialResult:
        return drive_instance(builder(ctx))

    return run_trial


def _run_trial_from_async_builder(
    builder: Callable[[TrialContext], AsyncInstance]
) -> Callable[[TrialContext], TrialResult]:
    def run_trial(ctx: TrialContext) -> TrialResult:
        return drive_async_instance(builder(ctx))

    return run_trial


@dataclass(frozen=True)
class Scenario:
    """A named experiment: schema, metric contract, execution modes.

    ``params=None`` marks an *undeclared* schema (ad-hoc test scenarios):
    validation passes everything through, and the scenario is excluded
    from schema-driven surfaces (``--list`` details, ``--smoke``,
    registry-wide parity tests).  Built-in scenarios always declare a
    schema, even an empty one.

    ``check`` is the *cross-field* validation hook: per-``Param``
    schemas validate types, choices and bounds of one value at a time,
    but relations between fields — ``degree < n``, a corruption budget
    below the protocol's fault bound — need the network size and the
    whole parameter mapping at once.  ``check(n, params)`` receives the
    coerced parameters merged over the schema defaults and returns an
    error message (or ``None`` when fine); :meth:`validate` raises it
    as a :class:`~repro.engine.scenario.ScenarioError`, so violations
    fail at the schema front door instead of deep inside a builder.
    """

    name: str
    run_trial: Optional[Callable[[TrialContext], TrialResult]] = None
    build_instance: Optional[
        Callable[[TrialContext], BatchInstance]
    ] = None
    build_async_instance: Optional[
        Callable[[TrialContext], AsyncInstance]
    ] = None
    description: str = ""
    params: Optional[Tuple[Param, ...]] = None
    metrics: Tuple[str, ...] = ()
    #: Network size / parameters for one cheap smoke trial (CI's
    #: ``run-experiment --smoke`` runs every declared scenario with
    #: these, so a broken registration fails the build).
    smoke_n: int = 7
    smoke_params: Tuple[Tuple[str, Any], ...] = ()
    #: Cross-field constraint hook: ``check(n, params) -> error or None``.
    check: Optional[
        Callable[[int, Dict[str, Any]], Optional[str]]
    ] = None
    #: Wave-bulk hook: the batch/async backends call it with every
    #: instance of a wave (trial-index order) after construction and
    #: before the first step, so a scenario can run batched preparation
    #: — bulk dealing, shared precomputation — across the whole wave.
    #: Must be a pure accelerant: results stay bit-identical to the
    #: serial path (guarded by the registry-wide parity suite).  An
    #: exception fails the entire wave.
    prepare_wave: Optional[Callable[[List[Any]], None]] = None

    def __post_init__(self) -> None:
        if self.run_trial is None:
            if self.build_instance is not None:
                object.__setattr__(
                    self,
                    "run_trial",
                    _run_trial_from_builder(self.build_instance),
                )
            elif self.build_async_instance is not None:
                object.__setattr__(
                    self,
                    "run_trial",
                    _run_trial_from_async_builder(self.build_async_instance),
                )
            else:
                raise ScenarioError(
                    f"scenario {self.name!r} declares no execution mode"
                )
        if self.params is not None:
            object.__setattr__(self, "params", tuple(self.params))
        object.__setattr__(self, "metrics", tuple(self.metrics))
        object.__setattr__(
            self, "smoke_params", tuple(sorted(tuple(self.smoke_params)))
        )

    @property
    def batchable(self) -> bool:
        """Whether the batch backend can multiplex this scenario."""
        return self.build_instance is not None

    @property
    def asynchronous(self) -> bool:
        """Whether the async backend can multiplex this scenario."""
        return self.build_async_instance is not None

    @property
    def declared(self) -> bool:
        """Whether this scenario carries a parameter schema."""
        return self.params is not None

    @property
    def capabilities(self) -> Tuple[str, ...]:
        """Backend names that execute this scenario *natively*.

        Every scenario runs on ``serial``, ``process`` and
        ``distributed`` (the distributed backend ships async scenarios
        as waves and everything else as isolated-trial chunks); a sync
        builder adds ``batch``; an async builder adds ``async`` and
        ``hybrid``.  The batch and async backends additionally fall
        back to serial for unsupported scenarios; the hybrid backend
        does not (it raises, naming this tuple).
        """
        caps = ["serial", "process"]
        if self.batchable:
            caps.append("batch")
        if self.asynchronous:
            caps.extend(("async", "hybrid"))
        caps.append("distributed")
        return tuple(caps)

    def supports(self, backend_name: str) -> bool:
        """Whether ``backend_name`` runs this scenario natively."""
        return backend_name in self.capabilities

    def validate(
        self, raw: Mapping[str, Any], n: Optional[int] = None
    ) -> Dict[str, Any]:
        """Coerce ``raw`` parameters against the schema.

        Unknown keys raise :class:`ScenarioError` with a did-you-mean
        hint; ill-typed values raise with the expected type.  Scenarios
        without a declared schema pass everything through unchanged.

        When the network size ``n`` is given (the engine and CLI pass
        it), the scenario's cross-field ``check`` hook also runs, over
        the coerced values merged onto the schema defaults — so
        relational violations (``degree >= n``, an over-budget
        corruption fraction) raise here rather than deep in the
        builder.  Without ``n`` validation stays value-level only.
        """
        if self.params is None:
            return dict(raw)
        validated = validate_mapping(self.name, self.params, raw)
        if n is not None and self.check is not None:
            effective = defaults_of(self.params)
            effective.update(validated)
            problem = self.check(n, effective)
            if problem:
                raise ScenarioError(
                    f"invalid parameters for scenario {self.name!r}: "
                    f"{problem}"
                )
        return validated


#: Legacy name from the first engine iteration; same object.
ExperimentRunner = Scenario


_REGISTRY: Dict[str, Scenario] = {}
_BUILTINS_LOADED = False


def load_builtin_scenarios() -> None:
    """Import :mod:`repro.engine.scenarios`, registering the built-ins.

    The loaded flag is only set on success, so an import error during
    development surfaces on every lookup instead of being cached into a
    misleading ``unknown runner`` error.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    from . import scenarios  # noqa: F401  (import side effect: register)

    _BUILTINS_LOADED = True


def register(runner: Scenario) -> Scenario:
    """Add a scenario to the registry (idempotent on identical names)."""
    _REGISTRY[runner.name] = runner
    # Latest registration wins everywhere: drop any memoised resolution.
    _RESOLVED.pop(runner.name, None)
    return runner


def get_runner(name: str) -> Scenario:
    """Look up a scenario; raises :class:`EngineError` on unknown names."""
    if name not in _REGISTRY:
        load_builtin_scenarios()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise EngineError(
            f"unknown experiment runner {name!r} (known: {known})"
        ) from None


#: Per-process memo over :func:`get_runner`.  Pool workers execute many
#: waves/chunks of the same spec; resolving the scenario name once per
#: worker process (instead of once per wave, each paying the registry
#: lookup plus the lazy-builtins guard) is the cheap half of the
#: worker-rebuild contract.  Invalidated by :func:`register`, so ad-hoc
#: re-registrations still win.
_RESOLVED: Dict[str, Scenario] = {}


def resolve_cached(name: str) -> Scenario:
    """Memoised scenario resolution for hot per-trial/per-wave paths."""
    runner = _RESOLVED.get(name)
    if runner is None:
        runner = get_runner(name)
        _RESOLVED[name] = runner
    return runner


def runner_names() -> List[str]:
    """All registered scenario names, sorted."""
    load_builtin_scenarios()
    return sorted(_REGISTRY)


#: Scenario-flavoured aliases (the runner vocabulary is the legacy name).
get_scenario = get_runner


def scenario_names(declared_only: bool = False) -> List[str]:
    """Registered scenario names; optionally only schema-declared ones."""
    return [
        name
        for name in runner_names()
        if not declared_only or _REGISTRY[name].declared
    ]
