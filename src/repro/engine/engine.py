"""The Engine: run a spec on a backend, get an aggregated result.

Thin by design — the spec layer owns determinism, backends own
execution, the aggregate layer owns statistics.  The engine wires them
together, keeps the timing honest, and guarantees that a backend's
held resources (pools, sockets) are released when a run dies on an
error path.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional, Sequence, Union

from .aggregate import ExperimentResult
from .async_backend import AsyncBackend
from .backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
)
from .batch import BatchBackend
from .distributed import DistributedBackend
from .hybrid import HybridBackend
from .registry import get_runner
from .spec import EngineError, ExperimentSpec

#: Names accepted by :func:`get_backend` (and the CLI / conftest flags).
BACKEND_NAMES = (
    "serial",
    "process",
    "batch",
    "async",
    "hybrid",
    "distributed",
)


def get_backend(
    name: str,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    wave_size: Optional[int] = None,
    hosts: Optional[Sequence[str]] = None,
    lane_depth: Optional[int] = None,
) -> ExecutionBackend:
    """Construct a backend from its CLI name.

    ``lane_depth`` is the distributed transport's pipelined in-flight
    window per lane (``--lane-depth``); other backends ignore it.
    """
    if name == "serial":
        return SerialBackend()
    if name == "process":
        return ProcessPoolBackend(workers=workers, chunk_size=chunk_size)
    if name == "batch":
        return BatchBackend()
    if name == "async":
        return AsyncBackend()
    if name == "hybrid":
        return HybridBackend(workers=workers, wave_size=wave_size)
    if name == "distributed":
        if not hosts:
            raise EngineError(
                "distributed backend needs worker hosts "
                "(--hosts host:port[,host:port...])"
            )
        kwargs = {} if lane_depth is None else {"lane_depth": lane_depth}
        return DistributedBackend(
            hosts=hosts,
            unit_size=wave_size if wave_size is not None else chunk_size,
            **kwargs,
        )
    raise EngineError(
        f"unknown backend {name!r} (choose from {', '.join(BACKEND_NAMES)})"
    )


class Engine:
    """Runs experiment specs on a pluggable backend.

    Also a context manager: ``with Engine("distributed", ...) as eng``
    closes the backend (idempotently) on exit, releasing pools and
    sockets deterministically.
    """

    def __init__(
        self, backend: Union[str, ExecutionBackend, None] = None
    ) -> None:
        if backend is None:
            backend = SerialBackend()
        elif isinstance(backend, str):
            backend = get_backend(backend)
        self.backend = backend

    def run(self, spec: ExperimentSpec) -> ExperimentResult:
        """Execute every trial of ``spec`` and aggregate the results.

        The spec's parameters are validated against the scenario's
        declared schema before anything runs: unknown keys, ill-typed
        values and cross-field violations (the scenario's ``check``
        hook, run against the spec's ``n``) raise
        :class:`~repro.engine.scenario.ScenarioError` (coercion never
        touches trial seeds, which derive from the master seed and
        trial index alone).

        If the backend raises mid-run, its resources are released
        (``backend.close()``, idempotent) before the error propagates —
        no orphaned pools or half-open worker sockets on error paths.
        """
        runner = get_runner(spec.runner)
        validated = runner.validate(spec.param_dict(), n=spec.n)
        if validated != spec.param_dict():
            spec = dataclasses.replace(spec, params=validated)
        start = time.perf_counter()
        try:
            trials = self.backend.run_trials(spec)
        except BaseException:
            self.backend.close()
            raise
        elapsed = time.perf_counter() - start
        # Freeze the backend's telemetry (if it kept any) into the
        # result's mergeable report; custom backends without the
        # attribute simply yield report=None.
        telemetry = getattr(self.backend, "telemetry", None)
        report = telemetry.report(trials) if telemetry is not None else None
        return ExperimentResult(
            spec=spec,
            backend=self.backend.name,
            trials=trials,
            elapsed_seconds=elapsed,
            report=report,
        )

    def run_grid(
        self,
        specs: Sequence[ExperimentSpec],
        cost_aware: bool = True,
    ) -> List[ExperimentResult]:
        """Execute several specs as one sweep; one result per spec.

        Validation is exactly :meth:`run`'s, per spec.  Execution goes
        through the backend's ``run_grid`` — for the pool-backed
        backends a *fused* sweep in which every spec's units share one
        transport, sized by predicted per-trial cost when every spec
        has a cost model and ``cost_aware`` holds (uniform geometry
        otherwise).  Results are bit-identical to running the specs
        one at a time; ``elapsed_seconds`` and the telemetry report
        are whole-grid figures, repeated on each result, because the
        fused sweep has no per-spec clock.
        """
        validated_specs: List[ExperimentSpec] = []
        for spec in specs:
            runner = get_runner(spec.runner)
            validated = runner.validate(spec.param_dict(), n=spec.n)
            if validated != spec.param_dict():
                spec = dataclasses.replace(spec, params=validated)
            validated_specs.append(spec)
        start = time.perf_counter()
        try:
            per_spec = self.backend.run_grid(
                validated_specs, cost_aware=cost_aware
            )
        except BaseException:
            self.backend.close()
            raise
        elapsed = time.perf_counter() - start
        telemetry = getattr(self.backend, "telemetry", None)
        merged = [r for trials in per_spec for r in trials]
        report = (
            telemetry.report(merged) if telemetry is not None else None
        )
        return [
            ExperimentResult(
                spec=spec,
                backend=self.backend.name,
                trials=trials,
                elapsed_seconds=elapsed,
                report=report,
            )
            for spec, trials in zip(validated_specs, per_spec)
        ]

    def close(self) -> None:
        """Release the backend's resources (idempotent)."""
        self.backend.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def run_experiment(
    spec: ExperimentSpec,
    backend: Union[str, ExecutionBackend, None] = None,
) -> ExperimentResult:
    """One-call convenience: ``Engine(backend).run(spec)``."""
    return Engine(backend).run(spec)
