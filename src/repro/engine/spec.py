"""Experiment descriptions: specs, per-trial contexts, and trial results.

The engine's contract is that a Monte-Carlo experiment is *data*: an
:class:`ExperimentSpec` names a registered runner, a network size, a
trial count and a master seed.  Everything else — which backend executes
the trials, in which process, in what order — is an execution detail
that must not change the results.  Two invariants make that hold:

* **Deterministic seed derivation.**  Trial ``i`` of a spec always runs
  with ``trial_seed(spec, i)``, a SHA-256 child seed of the spec's
  master seed and the trial index (via :func:`repro.net.rng.derive_seed`).
  No backend state, scheduling order or worker identity enters the
  derivation, so serial, process-pool and batched executions of the same
  spec are bit-identical.
* **Picklable specs.**  A spec references its runner *by name*; the
  worker process resolves the name against :mod:`repro.engine.registry`
  after import.  Specs therefore cross process boundaries as plain data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from ..net.accounting import BitLedger
from ..net.rng import child_rng, derive_seed


class EngineError(RuntimeError):
    """Raised on engine contract violations (bad specs, unknown runners)."""


@dataclass(frozen=True)
class ExperimentSpec:
    """One Monte-Carlo experiment, expressed as data.

    Attributes:
        runner: name of a registered experiment runner
            (see :mod:`repro.engine.registry`).
        n: network size handed to the runner.
        trials: number of independent trials.
        seed: master seed; every trial seed is derived from it.
        params: runner-specific keyword parameters.  Values must be
            picklable for the process-pool backend (plain scalars and
            strings in practice).
    """

    runner: str
    n: int
    trials: int
    seed: int = 0
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise EngineError("spec needs at least one trial")
        if self.n < 1:
            raise EngineError("spec needs n >= 1")
        # Normalise mapping-style params into a sorted, hashable tuple so
        # specs are order-insensitive value objects.
        if isinstance(self.params, Mapping):
            object.__setattr__(
                self, "params", tuple(sorted(self.params.items()))
            )
        else:
            object.__setattr__(
                self, "params", tuple(sorted(tuple(self.params)))
            )

    def param_dict(self) -> Dict[str, Any]:
        """The runner parameters as a plain dict."""
        return dict(self.params)

    def trial_seed(self, trial_index: int) -> int:
        """The deterministic seed of one trial (backend-independent)."""
        return derive_seed(self.seed, "engine", self.runner, trial_index)

    def describe(self) -> str:
        """A one-line human-readable summary."""
        params = ", ".join(f"{k}={v}" for k, v in self.params)
        suffix = f", {params}" if params else ""
        return (
            f"{self.runner}(n={self.n}, trials={self.trials}, "
            f"seed={self.seed}{suffix})"
        )


@dataclass(frozen=True)
class TrialContext:
    """Everything a runner sees for one trial."""

    spec: ExperimentSpec
    trial_index: int
    seed: int

    @property
    def n(self) -> int:
        """Network size from the spec."""
        return self.spec.n

    def param(self, name: str, default: Any = None) -> Any:
        """One runner parameter, with a default."""
        return self.spec.param_dict().get(name, default)

    def rng(self, *labels: Any):
        """A labelled child RNG rooted at this trial's seed."""
        return child_rng(self.seed, *labels)


@dataclass(frozen=True)
class LedgerStats:
    """A mergeable, picklable summary of a :class:`BitLedger`.

    Full ledgers hold per-processor dicts; across thousands of trials we
    only need the aggregates, and they must merge associatively so any
    sharding of trials over workers produces the same totals.
    """

    total_bits: int = 0
    total_messages: int = 0
    max_bits_per_processor: int = 0
    rounds: int = 0
    phase_bits: Tuple[Tuple[str, int], ...] = ()

    @classmethod
    def from_ledger(
        cls, ledger: BitLedger, include: Optional[Any] = None
    ) -> "LedgerStats":
        """Summarise one trial's ledger (optionally over a processor subset)."""
        return cls(
            total_bits=(
                ledger.total_bits()
                if include is None
                else sum(ledger.sent_bits.get(p, 0) for p in include)
            ),
            total_messages=ledger.total_messages(),
            max_bits_per_processor=ledger.max_bits_per_processor(include),
            rounds=ledger.rounds,
            phase_bits=tuple(sorted(ledger.phase_breakdown().items())),
        )

    def merge(self, other: "LedgerStats") -> "LedgerStats":
        """Combine two trials' stats (associative and commutative).

        Bits, messages and rounds add; the per-processor maximum is the
        max over trials (the quantity Theorem 1 bounds per execution).
        """
        phases: Dict[str, int] = dict(self.phase_bits)
        for phase, bits in other.phase_bits:
            phases[phase] = phases.get(phase, 0) + bits
        return LedgerStats(
            total_bits=self.total_bits + other.total_bits,
            total_messages=self.total_messages + other.total_messages,
            max_bits_per_processor=max(
                self.max_bits_per_processor, other.max_bits_per_processor
            ),
            rounds=self.rounds + other.rounds,
            phase_bits=tuple(sorted(phases.items())),
        )


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one trial — the unit every backend must reproduce.

    ``metrics`` holds the runner's named numeric results; ``ok`` is the
    trial's success flag (protocol-level failure, not a crash); a crashed
    trial carries the exception text in ``failure`` with ``ok=False``.
    """

    trial_index: int
    seed: int
    metrics: Tuple[Tuple[str, float], ...]
    ledger: LedgerStats = LedgerStats()
    ok: bool = True
    failure: str = ""

    def metric_dict(self) -> Dict[str, float]:
        """The metrics as a plain dict."""
        return dict(self.metrics)

    @classmethod
    def make(
        cls,
        ctx: TrialContext,
        metrics: Mapping[str, float],
        ledger: Optional[LedgerStats] = None,
        ok: bool = True,
        failure: str = "",
    ) -> "TrialResult":
        """Build a result from a runner's raw outputs."""
        return cls(
            trial_index=ctx.trial_index,
            seed=ctx.seed,
            metrics=tuple(
                sorted((k, float(v)) for k, v in metrics.items())
            ),
            ledger=ledger if ledger is not None else LedgerStats(),
            ok=ok,
            failure=failure,
        )
