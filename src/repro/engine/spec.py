"""Experiment descriptions: specs, per-trial contexts, and trial results.

The engine's contract is that a Monte-Carlo experiment is *data*: an
:class:`ExperimentSpec` names a registered runner, a network size, a
trial count and a master seed.  Everything else — which backend executes
the trials, in which process, in what order — is an execution detail
that must not change the results.  Two invariants make that hold:

* **Deterministic seed derivation.**  Trial ``i`` of a spec always runs
  with ``trial_seed(spec, i)``, a SHA-256 child seed of the spec's
  master seed and the trial index (via :func:`repro.net.rng.derive_seed`).
  No backend state, scheduling order or worker identity enters the
  derivation, so serial, process-pool and batched executions of the same
  spec are bit-identical.
* **Picklable specs.**  A spec references its runner *by name*; the
  worker process resolves the name against :mod:`repro.engine.registry`
  after import.  Specs therefore cross process boundaries as plain data.

For boundaries where pickling is wrong (remote hosts, mixed library
versions), this module also defines the engine's **versioned JSON wire
format**: :func:`spec_to_wire` / :func:`spec_from_wire` for
:class:`ExperimentSpec` work units and :func:`result_to_wire` /
:func:`result_from_wire` for :class:`TrialResult` envelopes.  Every
document carries ``version`` and ``kind`` header fields; decoding
rejects unknown versions (:class:`WireFormatError`) instead of
guessing, and non-finite floats are refused in both directions — NaN
does not round-trip through JSON and must never be smuggled into a
bit-identical result stream.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from ..net.accounting import BitLedger
from ..net.rng import child_rng, derive_seed


class EngineError(RuntimeError):
    """Raised on engine contract violations (bad specs, unknown runners)."""


class WireFormatError(EngineError):
    """Raised when a wire document is malformed or version-mismatched."""


@dataclass(frozen=True)
class ExperimentSpec:
    """One Monte-Carlo experiment, expressed as data.

    Attributes:
        runner: name of a registered experiment runner
            (see :mod:`repro.engine.registry`).
        n: network size handed to the runner.
        trials: number of independent trials.
        seed: master seed; every trial seed is derived from it.
        params: runner-specific keyword parameters.  Values must be
            picklable for the process-pool backend (plain scalars and
            strings in practice).
    """

    runner: str
    n: int
    trials: int
    seed: int = 0
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise EngineError("spec needs at least one trial")
        if self.n < 1:
            raise EngineError("spec needs n >= 1")
        # Normalise mapping-style params into a sorted, hashable tuple so
        # specs are order-insensitive value objects.
        if isinstance(self.params, Mapping):
            object.__setattr__(
                self, "params", tuple(sorted(self.params.items()))
            )
        else:
            object.__setattr__(
                self, "params", tuple(sorted(tuple(self.params)))
            )

    def param_dict(self) -> Dict[str, Any]:
        """The runner parameters as a plain dict."""
        return dict(self.params)

    def trial_seed(self, trial_index: int) -> int:
        """The deterministic seed of one trial (backend-independent)."""
        return derive_seed(self.seed, "engine", self.runner, trial_index)

    def describe(self) -> str:
        """A one-line human-readable summary."""
        params = ", ".join(f"{k}={v}" for k, v in self.params)
        suffix = f", {params}" if params else ""
        return (
            f"{self.runner}(n={self.n}, trials={self.trials}, "
            f"seed={self.seed}{suffix})"
        )


@dataclass(frozen=True)
class TrialContext:
    """Everything a runner sees for one trial."""

    spec: ExperimentSpec
    trial_index: int
    seed: int

    @property
    def n(self) -> int:
        """Network size from the spec."""
        return self.spec.n

    def param(self, name: str, default: Any = None) -> Any:
        """One runner parameter, with a default."""
        return self.spec.param_dict().get(name, default)

    def rng(self, *labels: Any):
        """A labelled child RNG rooted at this trial's seed."""
        return child_rng(self.seed, *labels)


@dataclass(frozen=True)
class LedgerStats:
    """A mergeable, picklable summary of a :class:`BitLedger`.

    Full ledgers hold per-processor dicts; across thousands of trials we
    only need the aggregates, and they must merge associatively so any
    sharding of trials over workers produces the same totals.
    """

    total_bits: int = 0
    total_messages: int = 0
    max_bits_per_processor: int = 0
    rounds: int = 0
    phase_bits: Tuple[Tuple[str, int], ...] = ()

    @classmethod
    def from_ledger(
        cls, ledger: BitLedger, include: Optional[Any] = None
    ) -> "LedgerStats":
        """Summarise one trial's ledger (optionally over a processor subset)."""
        return cls(
            total_bits=(
                ledger.total_bits()
                if include is None
                else sum(ledger.sent_bits.get(p, 0) for p in include)
            ),
            total_messages=ledger.total_messages(),
            max_bits_per_processor=ledger.max_bits_per_processor(include),
            rounds=ledger.rounds,
            phase_bits=tuple(sorted(ledger.phase_breakdown().items())),
        )

    def merge(self, other: "LedgerStats") -> "LedgerStats":
        """Combine two trials' stats (associative and commutative).

        Bits, messages and rounds add; the per-processor maximum is the
        max over trials (the quantity Theorem 1 bounds per execution).
        """
        phases: Dict[str, int] = dict(self.phase_bits)
        for phase, bits in other.phase_bits:
            phases[phase] = phases.get(phase, 0) + bits
        return LedgerStats(
            total_bits=self.total_bits + other.total_bits,
            total_messages=self.total_messages + other.total_messages,
            max_bits_per_processor=max(
                self.max_bits_per_processor, other.max_bits_per_processor
            ),
            rounds=self.rounds + other.rounds,
            phase_bits=tuple(sorted(phases.items())),
        )


@dataclass(frozen=True)
class UnitStats:
    """Worker-side timing of one executed work unit.

    Stamped by whatever ran the unit — a pool worker, an in-process
    lane, or a remote ``repro worker serve`` host — and carried back on
    the result envelope so the client can split a unit's observed
    latency into *compute* (this) versus *queue + network* (the rest).

    ``trial_seconds`` holds per-trial wall times for ``trials``-mode
    units; wave-mode units interleave their trials through one step
    loop, so only the aggregate ``compute_seconds`` is meaningful and
    ``trial_seconds`` stays empty.
    """

    compute_seconds: float = 0.0
    trial_seconds: Tuple[float, ...] = ()


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one trial — the unit every backend must reproduce.

    ``metrics`` holds the runner's named numeric results; ``ok`` is the
    trial's success flag (protocol-level failure, not a crash); a crashed
    trial carries the exception text in ``failure`` with ``ok=False``.
    """

    trial_index: int
    seed: int
    metrics: Tuple[Tuple[str, float], ...]
    ledger: LedgerStats = LedgerStats()
    ok: bool = True
    failure: str = ""

    def metric_dict(self) -> Dict[str, float]:
        """The metrics as a plain dict."""
        return dict(self.metrics)

    @classmethod
    def make(
        cls,
        ctx: TrialContext,
        metrics: Mapping[str, float],
        ledger: Optional[LedgerStats] = None,
        ok: bool = True,
        failure: str = "",
    ) -> "TrialResult":
        """Build a result from a runner's raw outputs."""
        return cls(
            trial_index=ctx.trial_index,
            seed=ctx.seed,
            metrics=tuple(
                sorted((k, float(v)) for k, v in metrics.items())
            ),
            ledger=ledger if ledger is not None else LedgerStats(),
            ok=ok,
            failure=failure,
        )


# -- versioned JSON wire format --------------------------------------------------------

#: Wire format version.  Bump on any incompatible change to the
#: documents below; decoders reject everything but their own version.
WIRE_VERSION = 1

#: Wire **codecs** — how version-1 documents are framed on a byte
#: stream.  Orthogonal to :data:`WIRE_VERSION` (which versions the
#: documents themselves): codec 1 is the original newline-delimited
#: JSON lines, codec 2 wraps the *same* JSON documents in
#: length-prefixed binary frames with an optional zlib-compressed
#: payload (:mod:`repro.engine.wire`).  A peer that never negotiates
#: gets codec 1, bit-identical to the pre-codec protocol.
CODEC_JSON = 1
CODEC_BINARY = 2

#: Codecs this engine speaks, in preference order (used both to build
#: a ``hello`` offer and to pick from one).
SUPPORTED_CODECS = (CODEC_BINARY, CODEC_JSON)


def negotiate_codec(offered: Any) -> int:
    """Pick the preferred mutually-supported codec from a ``hello`` offer.

    Tolerant by design, mirroring :func:`stats_from_wire`: the offer is
    advisory, so a missing, malformed or disjoint ``codecs`` list
    degrades to :data:`CODEC_JSON` (the codec every peer speaks)
    instead of failing the connection.
    """
    if not isinstance(offered, (list, tuple)):
        return CODEC_JSON
    known = {
        codec
        for codec in offered
        if isinstance(codec, int) and not isinstance(codec, bool)
    }
    for codec in SUPPORTED_CODECS:
        if codec in known:
            return codec
    return CODEC_JSON


def codec_name(codec: int) -> str:
    """The telemetry/report label of one wire codec."""
    if codec == CODEC_JSON:
        return "json"
    if codec == CODEC_BINARY:
        return "binary"
    return f"codec{codec}"


def require_wire(doc: Any, kind: str) -> Mapping[str, Any]:
    """Validate a wire document's ``version``/``kind`` header.

    Shared by every decoder (specs, results, work units, the socket
    transport's frames), so a host running a different engine version
    fails with one clear :class:`WireFormatError` instead of a shape
    error deep inside a field-by-field parse.
    """
    if not isinstance(doc, Mapping):
        raise WireFormatError(
            f"wire document must be a JSON object, got "
            f"{type(doc).__name__}"
        )
    version = doc.get("version")
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"wire version {version!r} is not supported "
            f"(this engine speaks version {WIRE_VERSION})"
        )
    if doc.get("kind") != kind:
        raise WireFormatError(
            f"expected wire kind {kind!r}, got {doc.get('kind')!r}"
        )
    return doc


def _require_finite(value: Any, where: str) -> None:
    if isinstance(value, float) and not math.isfinite(value):
        raise WireFormatError(
            f"non-finite float in {where}: {value!r} (NaN/inf do not "
            "survive a JSON round trip)"
        )


def wire_dumps(doc: Mapping[str, Any]) -> str:
    """One wire document as a single JSON line (newline-free).

    ``allow_nan=False`` is the backstop behind the explicit finiteness
    checks: a NaN that slips past them still fails at encode time
    rather than emitting non-standard JSON.
    """
    try:
        return json.dumps(
            doc, allow_nan=False, separators=(",", ":"), sort_keys=True
        )
    except (TypeError, ValueError) as exc:
        raise WireFormatError(f"cannot encode wire document: {exc}") from None


def wire_loads(text: str) -> Any:
    """Parse one wire line; malformed JSON raises :class:`WireFormatError`."""
    try:
        return json.loads(text)
    except ValueError as exc:
        raise WireFormatError(f"malformed wire document: {exc}") from None


#: Parameter value types the wire format carries.  Exactly the types the
#: Param schema layer coerces to, so every validated spec is wireable.
_WIRE_PARAM_TYPES = (bool, int, float, str, type(None))


def spec_to_wire(spec: ExperimentSpec) -> Dict[str, Any]:
    """An :class:`ExperimentSpec` as a version-1 wire document."""
    params = []
    for key, value in spec.params:
        if not isinstance(key, str):
            raise WireFormatError(
                f"param keys must be strings, got {key!r}"
            )
        if not isinstance(value, _WIRE_PARAM_TYPES):
            raise WireFormatError(
                f"param {key!r} has unwireable type "
                f"{type(value).__name__} (scalars and strings only)"
            )
        _require_finite(value, f"param {key!r}")
        params.append([key, value])
    return {
        "version": WIRE_VERSION,
        "kind": "spec",
        "runner": spec.runner,
        "n": spec.n,
        "trials": spec.trials,
        "seed": spec.seed,
        "params": params,
    }


def spec_from_wire(doc: Any) -> ExperimentSpec:
    """Decode a spec document; inverse of :func:`spec_to_wire`."""
    require_wire(doc, "spec")
    try:
        raw_params = doc["params"]
        params = []
        for pair in raw_params:
            key, value = pair
            if not isinstance(key, str) or not isinstance(
                value, _WIRE_PARAM_TYPES
            ):
                raise WireFormatError(
                    f"malformed wire param entry: {pair!r}"
                )
            _require_finite(value, f"param {key!r}")
            params.append((key, value))
        return ExperimentSpec(
            runner=str(doc["runner"]),
            n=int(doc["n"]),
            trials=int(doc["trials"]),
            seed=int(doc["seed"]),
            params=tuple(params),
        )
    except WireFormatError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise WireFormatError(f"malformed spec document: {exc}") from None


def _ledger_to_wire(ledger: LedgerStats) -> Dict[str, Any]:
    return {
        "total_bits": ledger.total_bits,
        "total_messages": ledger.total_messages,
        "max_bits_per_processor": ledger.max_bits_per_processor,
        "rounds": ledger.rounds,
        "phase_bits": [[phase, bits] for phase, bits in ledger.phase_bits],
    }


def _ledger_from_wire(doc: Mapping[str, Any]) -> LedgerStats:
    return LedgerStats(
        total_bits=int(doc["total_bits"]),
        total_messages=int(doc["total_messages"]),
        max_bits_per_processor=int(doc["max_bits_per_processor"]),
        rounds=int(doc["rounds"]),
        phase_bits=tuple(
            (str(phase), int(bits)) for phase, bits in doc["phase_bits"]
        ),
    )


def result_to_wire(result: TrialResult) -> Dict[str, Any]:
    """A :class:`TrialResult` envelope as a version-1 wire document."""
    metrics = []
    for key, value in result.metrics:
        _require_finite(value, f"metric {key!r}")
        metrics.append([key, value])
    return {
        "version": WIRE_VERSION,
        "kind": "result",
        "trial_index": result.trial_index,
        "seed": result.seed,
        "metrics": metrics,
        "ledger": _ledger_to_wire(result.ledger),
        "ok": result.ok,
        "failure": result.failure,
    }


#: Version of the optional ``stats`` envelope field.  Independent of
#: :data:`WIRE_VERSION`: the field is *advisory*, so an unknown stats
#: version degrades to "no stats" instead of failing the envelope.
STATS_VERSION = 1


def stats_to_wire(stats: UnitStats) -> Dict[str, Any]:
    """A :class:`UnitStats` as the optional ``stats`` envelope field."""
    _require_finite(stats.compute_seconds, "stats.compute_seconds")
    for value in stats.trial_seconds:
        _require_finite(value, "stats.trial_seconds")
    return {
        "stats_version": STATS_VERSION,
        "compute_seconds": stats.compute_seconds,
        "trial_seconds": list(stats.trial_seconds),
    }


def stats_from_wire(doc: Any) -> Optional[UnitStats]:
    """Decode the optional ``stats`` field; tolerant by design.

    Interop rule, pinned by ``tests/test_telemetry.py``: a missing
    field (an old worker), an unknown ``stats_version`` (a newer
    worker) or a malformed document all decode to ``None`` — timing is
    advisory and must never fail a result envelope that decodes fine.
    """
    if not isinstance(doc, Mapping):
        return None
    if doc.get("stats_version") != STATS_VERSION:
        return None
    try:
        compute = float(doc["compute_seconds"])
        trial_seconds = tuple(float(v) for v in doc["trial_seconds"])
    except (KeyError, TypeError, ValueError):
        return None
    if not math.isfinite(compute) or not all(
        math.isfinite(v) for v in trial_seconds
    ):
        return None
    return UnitStats(compute_seconds=compute, trial_seconds=trial_seconds)


def result_from_wire(doc: Any) -> TrialResult:
    """Decode a result envelope; inverse of :func:`result_to_wire`."""
    require_wire(doc, "result")
    try:
        metrics = []
        for key, value in doc["metrics"]:
            _require_finite(value, f"metric {key!r}")
            metrics.append((str(key), float(value)))
        return TrialResult(
            trial_index=int(doc["trial_index"]),
            seed=int(doc["seed"]),
            metrics=tuple(metrics),
            ledger=_ledger_from_wire(doc["ledger"]),
            ok=bool(doc["ok"]),
            failure=str(doc["failure"]),
        )
    except WireFormatError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise WireFormatError(f"malformed result document: {exc}") from None
