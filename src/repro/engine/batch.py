"""Batch backend: many protocol instances over one simulated round loop.

Monte-Carlo trials of the simulator-backed protocols are dominated by
per-round Python overhead (inbox rebuilds, adversary views, ledger
ticks) rather than by per-message arithmetic.  The batch backend builds
every trial's :class:`~repro.net.simulator.SyncNetwork` up front and
drives them *breadth-first*: round 1 of every live instance, then round
2, and so on — one shared loop instead of ``trials`` nested ones.  This
is the sharding/batching seam from the ROADMAP: the same breadth-first
schedule is what an async or vectorised backend would consume, with the
per-round barrier already explicit.

Isolation is structural: each instance owns its protocols, its
adversary, and its ledger, so corruption or flooding in one trial cannot
leak into another's accounting (guarded by ``tests/test_engine.py``).

Because instances are mutually independent, interleaving their rounds
cannot change any instance's state sequence — each instance sees exactly
the step sequence :meth:`SyncNetwork.run` would have given it, so batch
results are bit-identical to serial ones.
"""

from __future__ import annotations

from typing import Dict, List

from .backends import ExecutionBackend, make_context, run_one_trial
from .registry import BatchInstance, get_runner
from .spec import ExperimentSpec, TrialResult


def _failed_result(
    spec: ExperimentSpec, trial_index: int, exc: Exception
) -> TrialResult:
    """The same crash containment :func:`run_one_trial` applies."""
    return TrialResult(
        trial_index=trial_index,
        seed=spec.trial_seed(trial_index),
        metrics=(),
        ok=False,
        failure=f"{type(exc).__name__}: {exc}",
    )


def _prepare_wave(runner, spec: ExperimentSpec, instances, results):
    """Run the scenario's wave-bulk hook over one wave's instances.

    Shared by the batch and async backends: the hook sees the wave's
    instances in trial-index order, after construction and before the
    first step.  A hook exception fails the whole wave (the hook may
    have mutated any instance, so none can be trusted to step).
    """
    if runner.prepare_wave is None or not instances:
        return instances
    try:
        runner.prepare_wave(
            [instances[i] for i in sorted(instances)]
        )
    except Exception as exc:
        for i in sorted(instances):
            results.append(_failed_result(spec, i, exc))
        return {}
    return instances


class BatchBackend(ExecutionBackend):
    """Multiplex independent trials of a batchable runner.

    ``max_live`` bounds how many instances are resident at once (memory
    control for large sweeps); runners without a batch builder fall back
    to serial execution trial by trial.
    """

    name = "batch"

    def __init__(self, max_live: int = 64) -> None:
        if max_live < 1:
            raise ValueError("max_live must be >= 1")
        self.max_live = max_live

    def run_trials(self, spec: ExperimentSpec) -> List[TrialResult]:
        runner = get_runner(spec.runner)
        telemetry = self._begin_telemetry(spec)
        results: List[TrialResult] = []
        if not runner.batchable:
            for i in range(spec.trials):
                with telemetry.span(self.name, 1):
                    results.append(run_one_trial(spec, i))
            telemetry.finish()
            return results
        for start in range(0, spec.trials, self.max_live):
            window = range(
                start, min(start + self.max_live, spec.trials)
            )
            with telemetry.span(self.name, len(window), mode="wave"):
                instances: Dict[int, BatchInstance] = {}
                for i in window:
                    # Same crash containment as run_one_trial: one
                    # trial's broken construction must not kill the
                    # sweep (or skew its wave-mates, which hold
                    # independent networks).
                    try:
                        instances[i] = runner.build_instance(
                            make_context(spec, i)
                        )
                    except Exception as exc:
                        results.append(_failed_result(spec, i, exc))
                instances = _prepare_wave(
                    runner, spec, instances, results
                )
                results.extend(self._drive_wave(spec, instances))
        results.sort(key=lambda r: r.trial_index)
        telemetry.finish()
        return results

    def _drive_wave(
        self, spec: ExperimentSpec, instances: Dict[int, BatchInstance]
    ) -> List[TrialResult]:
        """Breadth-first round loop over one wave of live instances."""
        live = dict(instances)
        rounds_done = {index: 0 for index in live}
        finished: Dict[int, TrialResult] = {}
        while live:
            done: List[int] = []
            for index in sorted(live):
                instance = live[index]
                network = instance.network
                round_no = rounds_done[index] + 1
                try:
                    network.step(round_no)
                    rounds_done[index] = round_no
                    halted = network.all_good_decided()
                    if halted or round_no >= instance.max_rounds:
                        finished[index] = instance.collect(
                            network.collect_result(round_no, halted),
                            instance.ctx,
                        )
                        done.append(index)
                except Exception as exc:
                    finished[index] = _failed_result(spec, index, exc)
                    done.append(index)
            for index in done:
                del live[index]
        return [finished[index] for index in sorted(finished)]
