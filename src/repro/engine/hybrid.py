"""Hybrid backend: waves of async instances sharded across processes.

The :class:`~repro.engine.async_backend.AsyncBackend` multiplexes
adversarial delivery schedules breadth-first, but only in-process — a
large asynchronous sweep leaves every core but one idle.  The
:class:`~repro.engine.backends.ProcessPoolBackend` uses every core, but
runs each trial's delivery loop in isolation, paying the per-step
Python overhead once per trial.  :class:`HybridBackend` composes the
two moves: the trial list shards into contiguous *waves*
(:meth:`DispatchPlan.waved`), each wave is dispatched through the
shared :mod:`~repro.engine.dispatch` plane to a ``multiprocessing``
pool worker, and the worker drives a full async step loop over its
wave locally (the :data:`~repro.engine.dispatch.MODE_WAVE` branch of
:func:`~repro.engine.dispatch.run_unit`).  Results merge back in
canonical trial order.

Determinism is inherited twice over:

* per-trial seeds derive from the spec exactly as
  :class:`~repro.engine.backends.SerialBackend` derives them — no wave
  identity, worker identity or scheduling order enters the derivation;
* each worker rebuilds the scenario *by name* from the registry
  (spawn-safe: nothing but the picklable work unit crosses the process
  boundary), so every wave executes literally the same construction the
  serial and async backends execute.

Hence hybrid results are bit-identical to serial and async results —
the invariant ``tests/test_scenarios.py`` pins registry-wide, odd wave
sizes included.

Unlike the batch and async backends, the hybrid backend does *not*
fall back to serial execution for scenarios without an async builder:
sharding a synchronous scenario's trials is exactly what the process
backend already does, so a silent fallback would only mask a
misconfiguration.  It raises a clear error naming the scenario's
actual capabilities instead.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .async_backend import AsyncBackend
from .backends import ExecutionBackend, default_worker_count
from .dispatch import (
    MODE_WAVE,
    DispatchPlan,
    PoolTransport,
    run_grid_units,
    run_units,
)
from .registry import get_runner
from .spec import EngineError, ExperimentSpec, TrialResult
from .telemetry import RunTelemetry


class HybridBackend(ExecutionBackend):
    """Shard waves of asynchronous trials across a process pool.

    Parameters:
        workers: pool size (default: every core, capped at 8).
        wave_size: trials per dispatched wave.  ``None`` picks ~2 waves
            per worker — large enough to amortise the per-wave step
            loop, small enough to rebalance stragglers once.  Any wave
            size produces bit-identical results; only wall-clock moves.
        max_live: bound on instances resident at once *within* a
            worker's wave (memory control, as in the async backend).
        start_method: ``multiprocessing`` start method (``None`` =
            platform default).  Workers resolve scenarios by name, so
            ``spawn`` is fully supported.
    """

    name = "hybrid"

    def __init__(
        self,
        workers: Optional[int] = None,
        wave_size: Optional[int] = None,
        max_live: int = 64,
        start_method: Optional[str] = None,
    ) -> None:
        self.workers = workers if workers else default_worker_count()
        if self.workers < 1:
            raise EngineError("need at least one worker")
        if wave_size is not None and wave_size < 1:
            raise EngineError("wave_size must be >= 1")
        self.wave_size = wave_size
        if max_live < 1:
            raise EngineError("max_live must be >= 1")
        self.max_live = max_live
        self.start_method = start_method

    def plan(self, trials: int) -> DispatchPlan:
        """This backend's wave geometry for ``trials`` trials."""
        return DispatchPlan.waved(
            trials, self.wave_size, self.workers, max_live=self.max_live
        )

    def run_trials(self, spec: ExperimentSpec) -> List[TrialResult]:
        # Resolve the runner in the parent so unknown names and missing
        # capabilities fail fast, before any worker is paid for.
        runner = get_runner(spec.runner)
        if runner.build_async_instance is None:
            raise EngineError(
                f"scenario {spec.runner!r} does not support the hybrid "
                "backend (no async builder); its backends are: "
                f"{', '.join(runner.capabilities)}"
            )
        if self.workers == 1 or spec.trials == 1:
            # One lane: skip pool + pickle, keep the async step loop.
            inner = AsyncBackend(max_live=self.max_live)
            inner.monitor = self.monitor
            try:
                return inner.run_trials(spec)
            finally:
                self._adopt_telemetry(inner)
        telemetry = self._begin_telemetry(spec)
        units = self.plan(spec.trials).units(spec)
        with PoolTransport(self.workers, self.start_method) as transport:
            results = run_units(units, transport, telemetry=telemetry)
        telemetry.finish()
        return results

    def run_grid(
        self,
        specs: Sequence[ExperimentSpec],
        cost_aware: bool = True,
    ) -> List[List[TrialResult]]:
        """A fused multi-spec wave sweep over one shared pool.

        Cost-aware wave sizing from one grid-wide predicted-cost
        target when every spec has a cost model; uniform waves
        otherwise.  Every spec must support the async path, exactly as
        in :meth:`run_trials`.
        """
        from .costplan import plan_grid

        if not specs:
            return []
        for spec in specs:
            runner = get_runner(spec.runner)
            if runner.build_async_instance is None:
                raise EngineError(
                    f"scenario {spec.runner!r} does not support the "
                    "hybrid backend (no async builder); its backends "
                    f"are: {', '.join(runner.capabilities)}"
                )
        unique = list(dict.fromkeys(specs))
        if len(unique) == 1 or self.workers == 1:
            return super().run_grid(specs, cost_aware=cost_aware)
        self.telemetry = RunTelemetry(
            backend=self.name,
            total_trials=sum(spec.trials for spec in unique),
            monitor=self.monitor,
        )
        units = plan_grid(
            unique,
            capacity=self.workers,
            modes=[MODE_WAVE] * len(unique),
            max_live=self.max_live,
            cost_aware=cost_aware,
        )
        with PoolTransport(self.workers, self.start_method) as transport:
            pairs = run_grid_units(
                units, transport, telemetry=self.telemetry
            )
        self.telemetry.finish()
        by_spec = {spec: results for spec, results in pairs}
        return [by_spec[spec] for spec in specs]
