"""Built-in scenario registrations.

Importing this package registers every built-in scenario with
:mod:`repro.engine.registry`; the registry imports it lazily on first
lookup (see :func:`repro.engine.registry.load_builtin_scenarios`), so
specs resolve by name in parent and worker processes alike.

Modules mirror the library's layers:

* :mod:`~repro.engine.scenarios.core` — the paper's own protocols
  (Theorem 1 end to end, Algorithm 5, the VSS committee coin, the
  Lemma 2 sampler measurement).
* :mod:`~repro.engine.scenarios.baselines` — the six quadratic-cost
  baselines the paper is measured against.
* :mod:`~repro.engine.scenarios.asynchrony` — the asynchronous stack
  (Bracha, Ben-Or, common-coin BA, sparse AEBA over the synchronizer),
  all exposing ``build_async_instance`` for the async backend.
"""

from . import asynchrony, baselines, core  # noqa: F401

__all__ = ["asynchrony", "baselines", "core"]
