"""Shared helpers for scenario modules.

Small, deterministic building blocks: input-bit patterns, the standard
crash-fault adversary wiring behind a ``corrupt`` fraction, and
scheduler construction for asynchronous scenarios.  Everything derives
its randomness from the trial context, never from global state.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ...adversary.behaviors import behavior_by_name
from ...adversary.static import StaticByzantineAdversary, random_target_set
from ...asynchrony.scheduler import (
    FIFOScheduler,
    RandomScheduler,
    Scheduler,
)
from ...net.rng import derive_seed
from ...net.simulator import Adversary, NullAdversary
from ..scenario import Param, ScenarioError, defaults_of
from ..spec import TrialContext


def param_reader(schema):
    """A ``get(ctx, name)`` reader whose defaults come from the schema.

    Scenario builders read every parameter through this, so the declared
    :class:`Param` defaults are the single source of truth — what
    ``--list`` advertises is what runs.
    """
    defaults = defaults_of(tuple(schema))

    def get(ctx: TrialContext, name: str):
        return ctx.param(name, defaults[name])

    return get

#: The ``inputs`` parameter every agreement scenario shares.
INPUT_PATTERNS = ("split", "thirds", "ones", "zeros")

INPUTS_PARAM = Param(
    "inputs", str, "split",
    help="input-bit pattern per processor",
    choices=INPUT_PATTERNS,
)

SCHEDULER_PARAM = Param(
    "scheduler", str, "random",
    help="asynchronous delivery order",
    choices=("fifo", "random"),
)


def input_bits(pattern: str, n: int) -> List[int]:
    """The input bit of every processor under a named pattern."""
    if pattern == "split":
        return [p % 2 for p in range(n)]
    if pattern == "thirds":
        return [1 if p % 3 else 0 for p in range(n)]
    if pattern == "ones":
        return [1] * n
    if pattern == "zeros":
        return [0] * n
    raise ScenarioError(f"unknown input pattern {pattern!r}")


def static_adversary(
    ctx: TrialContext,
    n: int,
    corrupt: float,
    behavior: str,
    recipients_of: Optional[Dict[int, Sequence[int]]] = None,
    vote_tag: str = "vote",
) -> Adversary:
    """The standard static adversary behind a ``corrupt`` fraction.

    Picks ``floor(corrupt * n)`` targets from the trial's own seed tree
    and wires a named :mod:`~repro.adversary.behaviors` vote behavior —
    silent (crash) by default in the scenarios that use it.  A zero
    fraction yields :class:`NullAdversary`, keeping fault-free specs
    bit-identical to the pre-schema engine.
    """
    if corrupt <= 0:
        return NullAdversary(n)
    targets = random_target_set(n, corrupt, ctx.rng("adversary-targets"))
    if not targets:
        return NullAdversary(n)
    return StaticByzantineAdversary(
        n,
        targets,
        behavior_by_name(behavior),
        recipients_of=recipients_of,
        vote_tag=vote_tag,
        seed=derive_seed(ctx.seed, "adversary"),
    )


def make_scheduler(ctx: TrialContext, name: str) -> Scheduler:
    """A per-trial scheduler: FIFO, or seed-forked random delivery."""
    if name == "fifo":
        return FIFOScheduler()
    if name == "random":
        return RandomScheduler(derive_seed(ctx.seed, "scheduler"))
    raise ScenarioError(f"unknown scheduler {name!r}")


def sparse_degree_problem(n: int, params: Dict) -> Optional[str]:
    """Cross-field check shared by the sparse-graph scenarios.

    An explicit ``degree`` must leave ``random_regular_graph``
    constructible (``degree < n``); ``None`` means auto-derived from
    ``n`` and is always legal.
    """
    degree = params.get("degree")
    if degree is not None and int(degree) >= n:
        return (
            f"degree {degree} must be < n = {n} "
            "(the sparse graph needs room for every edge)"
        )
    return None
