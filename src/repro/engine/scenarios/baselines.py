"""Scenarios for the quadratic-cost baselines (benchmark E12's cast).

The four full-mesh agreement baselines (Ben-Or, EIG, Phase King, Rabin)
are **batchable**: each builder returns the same
:class:`~repro.net.simulator.SyncNetwork` construction its
``repro.baselines.run_*`` counterpart drives, so the batch backend
multiplexes their round loops.  All four share one metric contract
(``agreed``/``value``/``decided_fraction``/``rounds``) and a ``corrupt``
fraction wiring the standard static adversary.

The two broadcast-flavoured baselines (CPA on a sparse graph, the
DISC'09 almost-everywhere-to-everywhere amplifier) build their own
networks internally and register as isolated-trial scenarios.

Each scenario declares its :class:`Param` schema once, above the
builder, and the builder reads every parameter through
:func:`~repro.engine.scenarios.common.param_reader` — the declaration
is the single source of defaults.
"""

from __future__ import annotations

import random

from ...net.rng import derive_seed
from ...net.simulator import RunResult, SyncNetwork
from ..registry import BatchInstance, Scenario, register
from ..scenario import Param
from ..spec import LedgerStats, TrialContext, TrialResult
from .common import INPUTS_PARAM, input_bits, param_reader, static_adversary

_CORRUPT_PARAM = Param(
    "corrupt", float, 0.0,
    help="statically corrupted fraction of n",
    minimum=0.0, maximum=0.5,
)

_BEHAVIOR_PARAM = Param(
    "behavior", str, "silent",
    help="corrupted processors' behavior (silent = crash faults)",
    choices=(
        "silent", "fixed0", "fixed1", "random", "equivocate",
        "anti_majority", "keep_split",
    ),
)

#: The agreement metric contract every full-mesh baseline shares.
_AGREEMENT_METRICS = ("agreed", "decided_fraction", "rounds", "value")


def _collect_agreement(
    result: RunResult, ctx: TrialContext
) -> TrialResult:
    """Fold a binary-agreement run into the shared metric contract."""
    good = result.good_outputs()
    decided = [v for v in good.values() if v is not None]
    value = result.agreement_value()
    agreed = value is not None and len(decided) == len(good)
    return TrialResult.make(
        ctx,
        metrics={
            "agreed": float(agreed),
            "value": float(value) if value is not None else -1.0,
            "decided_fraction": (
                len(decided) / len(good) if good else 0.0
            ),
            "rounds": result.rounds,
        },
        ledger=LedgerStats.from_ledger(result.ledger),
        ok=agreed,
    )


# --------------------------------------------------------------------------
# benor — randomized agreement with local coins (t < n/5).
# --------------------------------------------------------------------------

_BENOR_PARAMS = (
    INPUTS_PARAM,
    Param("max_phases", int, 64, help="phase cap", minimum=1),
    _CORRUPT_PARAM,
    _BEHAVIOR_PARAM,
)
_benor = param_reader(_BENOR_PARAMS)


def _benor_instance(ctx: TrialContext) -> BatchInstance:
    from ...baselines.benor import BenOrProcessor

    n = ctx.n
    inputs = input_bits(_benor(ctx, "inputs"), n)
    max_phases = int(_benor(ctx, "max_phases"))
    protocols = [
        BenOrProcessor(
            pid, n, inputs[pid],
            rng=random.Random(derive_seed(ctx.seed, "process", pid)),
            max_phases=max_phases,
        )
        for pid in range(n)
    ]
    adversary = static_adversary(
        ctx, n, float(_benor(ctx, "corrupt")),
        str(_benor(ctx, "behavior")), vote_tag="propose",
    )
    network = SyncNetwork(protocols, adversary)
    return BatchInstance(
        network=network,
        max_rounds=2 * max_phases + 2,
        collect=_collect_agreement,
        ctx=ctx,
    )


register(
    Scenario(
        name="benor",
        build_instance=_benor_instance,
        description=(
            "Ben-Or randomized agreement with local coins only "
            "(what a global coin buys, E12)"
        ),
        params=_BENOR_PARAMS,
        metrics=_AGREEMENT_METRICS,
        smoke_n=8,
    )
)


# --------------------------------------------------------------------------
# eig — deterministic exponential-information-gathering (t < n/3).
# --------------------------------------------------------------------------

_EIG_PARAMS = (
    INPUTS_PARAM,
    Param("t", int, None,
          help="fault bound (auto: floor((n-1)/3))", minimum=0),
    _CORRUPT_PARAM,
    _BEHAVIOR_PARAM,
)
_eig = param_reader(_EIG_PARAMS)


def _eig_instance(ctx: TrialContext) -> BatchInstance:
    from ...baselines.eig import EIGProcessor, eig_fault_bound

    n = ctx.n
    inputs = input_bits(_eig(ctx, "inputs"), n)
    t = _eig(ctx, "t")
    if t is None:
        t = eig_fault_bound(n)
    t = int(t)
    protocols = [
        EIGProcessor(pid, n, inputs[pid], t) for pid in range(n)
    ]
    adversary = static_adversary(
        ctx, n, float(_eig(ctx, "corrupt")),
        str(_eig(ctx, "behavior")),
    )
    network = SyncNetwork(protocols, adversary)
    return BatchInstance(
        network=network,
        max_rounds=t + 2,
        collect=_collect_agreement,
        ctx=ctx,
    )


register(
    Scenario(
        name="eig",
        build_instance=_eig_instance,
        description=(
            "exponential information gathering: deterministic BA in "
            "t+1 rounds, exponential tree state (E12)"
        ),
        params=_EIG_PARAMS,
        metrics=_AGREEMENT_METRICS,
        smoke_n=7,
    )
)


# --------------------------------------------------------------------------
# phase-king — deterministic O(n*f) bits per processor (t < n/4).
# --------------------------------------------------------------------------

_PHASE_KING_PARAMS = (
    INPUTS_PARAM,
    Param("num_phases", int, None,
          help="phases to run (auto: fault bound + 1)", minimum=1),
    _CORRUPT_PARAM,
    _BEHAVIOR_PARAM,
)
_pk = param_reader(_PHASE_KING_PARAMS)


def _phase_king_instance(ctx: TrialContext) -> BatchInstance:
    from ...baselines.phase_king import (
        PhaseKingProcessor,
        phase_king_fault_bound,
    )

    n = ctx.n
    inputs = input_bits(_pk(ctx, "inputs"), n)
    num_phases = _pk(ctx, "num_phases")
    if num_phases is None:
        num_phases = phase_king_fault_bound(n) + 1
    num_phases = int(num_phases)
    protocols = [
        PhaseKingProcessor(pid, n, inputs[pid], num_phases)
        for pid in range(n)
    ]
    adversary = static_adversary(
        ctx, n, float(_pk(ctx, "corrupt")),
        str(_pk(ctx, "behavior")), vote_tag="value",
    )
    network = SyncNetwork(protocols, adversary)
    return BatchInstance(
        network=network,
        max_rounds=2 * num_phases + 1,
        collect=_collect_agreement,
        ctx=ctx,
    )


register(
    Scenario(
        name="phase-king",
        build_instance=_phase_king_instance,
        description=(
            "Phase King deterministic agreement, the O(n*f)-bits "
            "baseline of the cost-model comparison (E12)"
        ),
        params=_PHASE_KING_PARAMS,
        metrics=_AGREEMENT_METRICS,
        smoke_n=9,
    )
)


# --------------------------------------------------------------------------
# rabin — randomized agreement with a trusted shared coin.
# --------------------------------------------------------------------------

_RABIN_PARAMS = (
    INPUTS_PARAM,
    Param("max_rounds", int, 64, help="round cap", minimum=1),
    _CORRUPT_PARAM,
    _BEHAVIOR_PARAM,
)
_rabin = param_reader(_RABIN_PARAMS)


def _rabin_instance(ctx: TrialContext) -> BatchInstance:
    from ...baselines.rabin import RabinProcessor

    n = ctx.n
    inputs = input_bits(_rabin(ctx, "inputs"), n)
    max_rounds = int(_rabin(ctx, "max_rounds"))
    coin_rng = ctx.rng("coins")
    coins = [coin_rng.randrange(2) for _ in range(max_rounds + 1)]
    protocols = [
        RabinProcessor(
            pid, n, inputs[pid],
            coin_of_round=lambda r: coins[r % len(coins)],
            max_rounds=max_rounds,
        )
        for pid in range(n)
    ]
    adversary = static_adversary(
        ctx, n, float(_rabin(ctx, "corrupt")),
        str(_rabin(ctx, "behavior")),
    )
    network = SyncNetwork(protocols, adversary)
    return BatchInstance(
        network=network,
        max_rounds=max_rounds + 2,
        collect=_collect_agreement,
        ctx=ctx,
    )


register(
    Scenario(
        name="rabin",
        build_instance=_rabin_instance,
        description=(
            "Rabin randomized agreement with a trusted shared coin "
            "(O(1) expected rounds, E12)"
        ),
        params=_RABIN_PARAMS,
        metrics=_AGREEMENT_METRICS,
        smoke_n=9,
    )
)


# --------------------------------------------------------------------------
# cpa — certified propagation broadcast on a sparse random graph.
# --------------------------------------------------------------------------

_CPA_PARAMS = (
    Param("dealer", int, 0, help="broadcasting processor", minimum=0),
    Param("value", int, 1, help="broadcast value"),
    Param("degree", int, None,
          help="graph degree (auto: Theorem 5's k log n)"),
    Param("rounds", int, None,
          help="propagation rounds (auto: 3n)", minimum=1),
)
_cpa = param_reader(_CPA_PARAMS)


def _cpa_trial(ctx: TrialContext) -> TrialResult:
    from ...baselines.cpa import run_cpa

    n = ctx.n
    degree = _cpa(ctx, "degree")
    rounds = _cpa(ctx, "rounds")
    outcome = run_cpa(
        n,
        dealer=int(_cpa(ctx, "dealer")),
        value=int(_cpa(ctx, "value")),
        degree=int(degree) if degree is not None else None,
        seed=ctx.seed,
        rounds=int(rounds) if rounds is not None else None,
    )
    return TrialResult.make(
        ctx,
        metrics={
            "reached_fraction": outcome.reached_fraction,
            "accepted_wrong": float(outcome.accepted_wrong),
            "unreached": float(outcome.unreached),
            "degree": float(outcome.degree),
        },
        ok=outcome.accepted_wrong == 0 and outcome.reached_fraction > 0,
    )


register(
    Scenario(
        name="cpa",
        run_trial=_cpa_trial,
        description=(
            "certified-propagation broadcast on a random regular "
            "graph (sparse-broadcast baseline, E20)"
        ),
        params=_CPA_PARAMS,
        metrics=(
            "accepted_wrong", "degree", "reached_fraction", "unreached",
        ),
        smoke_n=16,
    )
)


# --------------------------------------------------------------------------
# disc09-ae2e — the DISC'09 almost-everywhere-to-everywhere amplifier.
# --------------------------------------------------------------------------

_DISC09_PARAMS = (
    Param("knowledgeable", float, 0.7,
          help="fraction of processors that start knowing",
          minimum=0.0, maximum=1.0),
    Param("message", int, 1, help="the value being spread"),
    Param("a", float, 6.0, help="fanout constant (a * log n)"),
)
_disc09 = param_reader(_DISC09_PARAMS)


def _disc09_trial(ctx: TrialContext) -> TrialResult:
    from ...baselines.disc09_ae2e import run_disc09_ae2e

    n = ctx.n
    fraction = float(_disc09(ctx, "knowledgeable"))
    count = max(1, min(n, int(fraction * n)))
    message = int(_disc09(ctx, "message"))
    result = run_disc09_ae2e(
        n,
        knowledgeable=set(range(count)),
        message=message,
        seed=ctx.seed,
        a=float(_disc09(ctx, "a")),
    )
    good = result.good_outputs()
    reached = sum(1 for v in good.values() if v == message)
    return TrialResult.make(
        ctx,
        metrics={
            "reached_fraction": reached / len(good) if good else 0.0,
            "rounds": result.rounds,
        },
        ledger=LedgerStats.from_ledger(result.ledger),
        ok=bool(good) and reached == len(good),
    )


register(
    Scenario(
        name="disc09-ae2e",
        run_trial=_disc09_trial,
        description=(
            "DISC'09 push amplifier: spread an almost-everywhere "
            "message to everyone (the predecessor's final hop)"
        ),
        params=_DISC09_PARAMS,
        metrics=("reached_fraction", "rounds"),
        smoke_n=40,
    )
)
