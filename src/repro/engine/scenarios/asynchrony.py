"""Scenarios for the asynchronous stack (the paper's open problem).

Every scenario here declares ``build_async_instance``: the builder
returns a ready :class:`~repro.asynchrony.scheduler.AsyncNetwork` plus
collector, which the engine's async backend multiplexes breadth-first
over delivery steps — and from which the serial ``run_trial`` is
derived, so all backends execute the same construction.

Per-trial determinism is seed forking all the way down: the delivery
scheduler, each process's private coins, and the common-coin oracle
each draw from a labelled child of the trial seed.

Each scenario declares its :class:`Param` schema once, above the
builder, and the builder reads every parameter through
:func:`~repro.engine.scenarios.common.param_reader` — the declaration
is the single source of defaults.
"""

from __future__ import annotations

import random
from typing import Optional

from ...asynchrony.scheduler import NullAsyncAdversary
from ...net.rng import derive_seed
from ..registry import AsyncInstance, Scenario, register
from ..scenario import Param
from ..spec import LedgerStats, TrialContext, TrialResult
from .common import (
    INPUTS_PARAM,
    SCHEDULER_PARAM,
    input_bits,
    make_scheduler,
    param_reader,
    sparse_degree_problem,
)


def _collect_async_agreement(result, ctx: TrialContext) -> TrialResult:
    """Fold an async binary-agreement run into a shared metric contract."""
    good = result.good_outputs()
    decided = [v for v in good.values() if v is not None]
    value = result.agreement_value()
    agreed = value is not None and len(decided) == len(good)
    return TrialResult.make(
        ctx,
        metrics={
            "agreed": float(agreed),
            "value": float(value) if value is not None else -1.0,
            "decided_fraction": result.decided_fraction(),
            "steps": float(result.steps),
        },
        ledger=LedgerStats.from_ledger(result.ledger),
        ok=agreed,
    )


# --------------------------------------------------------------------------
# async-benor — Ben-Or with local coins on the asynchronous scheduler.
# --------------------------------------------------------------------------

_ASYNC_BENOR_PARAMS = (
    INPUTS_PARAM,
    Param("max_phases", int, 64, help="phase cap", minimum=1),
    SCHEDULER_PARAM,
)
_abenor = param_reader(_ASYNC_BENOR_PARAMS)


def _async_benor_instance(ctx: TrialContext) -> AsyncInstance:
    from ...asynchrony.benor_async import AsyncBenOrProcess
    from ...asynchrony.scheduler import AsyncNetwork

    n = ctx.n
    inputs = input_bits(_abenor(ctx, "inputs"), n)
    max_phases = int(_abenor(ctx, "max_phases"))
    processes = [
        AsyncBenOrProcess(
            pid, n, inputs[pid],
            rng=random.Random(derive_seed(ctx.seed, "process", pid)),
            max_phases=max_phases,
        )
        for pid in range(n)
    ]
    network = AsyncNetwork(
        processes,
        NullAsyncAdversary(n),
        scheduler=make_scheduler(ctx, _abenor(ctx, "scheduler")),
    )
    return AsyncInstance(
        network=network,
        max_steps=50 * n * n * max_phases,
        collect=_collect_async_agreement,
        ctx=ctx,
    )


register(
    Scenario(
        name="async-benor",
        build_async_instance=_async_benor_instance,
        description=(
            "asynchronous Ben-Or with local coins (t < n/5, "
            "exponential expected phases — E15's slow lane)"
        ),
        params=_ASYNC_BENOR_PARAMS,
        metrics=("agreed", "decided_fraction", "steps", "value"),
        smoke_n=5,
    )
)


# --------------------------------------------------------------------------
# common-coin-ba — the same skeleton driven by a common coin oracle.
# --------------------------------------------------------------------------

_COMMON_COIN_PARAMS = (
    INPUTS_PARAM,
    Param("max_phases", int, 64, help="phase cap", minimum=1),
    SCHEDULER_PARAM,
)
_ccoin = param_reader(_COMMON_COIN_PARAMS)


def _common_coin_instance(ctx: TrialContext) -> AsyncInstance:
    from ...asynchrony.common_coin import CoinBAProcess, SeededCoinOracle
    from ...asynchrony.scheduler import AsyncNetwork

    n = ctx.n
    inputs = input_bits(_ccoin(ctx, "inputs"), n)
    max_phases = int(_ccoin(ctx, "max_phases"))
    oracle = SeededCoinOracle(derive_seed(ctx.seed, "oracle"))
    processes = [
        CoinBAProcess(pid, n, inputs[pid], oracle, max_phases=max_phases)
        for pid in range(n)
    ]
    network = AsyncNetwork(
        processes,
        NullAsyncAdversary(n),
        scheduler=make_scheduler(ctx, _ccoin(ctx, "scheduler")),
    )
    return AsyncInstance(
        network=network,
        max_steps=50 * n * n * max_phases,
        collect=_collect_async_agreement,
        ctx=ctx,
    )


register(
    Scenario(
        name="common-coin-ba",
        build_async_instance=_common_coin_instance,
        description=(
            "asynchronous BA on a common coin oracle — expected O(1) "
            "phases, the async analogue of the paper's coin (E15)"
        ),
        params=_COMMON_COIN_PARAMS,
        metrics=("agreed", "decided_fraction", "steps", "value"),
        smoke_n=6,
    )
)


# --------------------------------------------------------------------------
# bracha-broadcast — reliable broadcast, the standard async primitive.
# --------------------------------------------------------------------------

_BRACHA_PARAMS = (
    Param("dealer", int, 0, help="broadcasting processor", minimum=0),
    Param("value", int, 42, help="broadcast value"),
    SCHEDULER_PARAM,
)
_bracha = param_reader(_BRACHA_PARAMS)


def _bracha_check(n, params):
    """The dealer must be one of the ``n`` processors."""
    dealer = int(params.get("dealer") or 0)
    if dealer >= n:
        return f"dealer {dealer} out of range for n = {n} processors"
    return None


def _bracha_instance(ctx: TrialContext) -> AsyncInstance:
    from ...asynchrony.bracha import BrachaBroadcaster
    from ...asynchrony.scheduler import AsyncNetwork

    n = ctx.n
    dealer = int(_bracha(ctx, "dealer"))
    value = int(_bracha(ctx, "value"))
    processes = [
        BrachaBroadcaster(pid, n, dealer, value if pid == dealer else None)
        for pid in range(n)
    ]
    network = AsyncNetwork(
        processes,
        NullAsyncAdversary(n),
        scheduler=make_scheduler(ctx, _bracha(ctx, "scheduler")),
    )

    def collect(result, ctx: TrialContext) -> TrialResult:
        good = result.good_outputs()
        accepted = sum(1 for v in good.values() if v == value)
        return TrialResult.make(
            ctx,
            metrics={
                "accepted_fraction": (
                    accepted / len(good) if good else 0.0
                ),
                "steps": float(result.steps),
                "messages": float(result.ledger.total_messages()),
            },
            ledger=LedgerStats.from_ledger(result.ledger),
            ok=bool(good) and accepted == len(good),
        )

    return AsyncInstance(
        network=network,
        max_steps=10 * n * n,
        collect=collect,
        ctx=ctx,
    )


register(
    Scenario(
        name="bracha-broadcast",
        build_async_instance=_bracha_instance,
        description=(
            "Bracha reliable broadcast (t < n/3) — the Theta(n^2) "
            "async building block (E15)"
        ),
        params=_BRACHA_PARAMS,
        metrics=("accepted_fraction", "messages", "steps"),
        smoke_n=7,
        check=_bracha_check,
    )
)


# --------------------------------------------------------------------------
# async-sparse-aeba — Algorithm 5 over the sparse synchronizer.
# --------------------------------------------------------------------------

_SPARSE_AEBA_PARAMS = (
    INPUTS_PARAM,
    Param("num_rounds", int, None,
          help="algorithm rounds (auto: max(8, degree/2))", minimum=1),
    Param("degree", int, None,
          help="graph degree (auto: Theorem 5's k log n)"),
    Param("epsilon", float, 1 / 12, help="protocol epsilon"),
    Param("epsilon0", float, 0.05, help="coin unreliability"),
    Param(
        "scheduler", str, "fifo",
        help="asynchronous delivery order",
        choices=("fifo", "random"),
    ),
)
_saeba = param_reader(_SPARSE_AEBA_PARAMS)


def _saeba_check(n, params):
    """Explicit degrees must leave the sparse graph constructible."""
    return sparse_degree_problem(n, params)


def _async_sparse_aeba_instance(ctx: TrialContext) -> AsyncInstance:
    from ...asynchrony.scheduler import AsyncNetwork
    from ...asynchrony.sparse_aeba import OracleCoinView
    from ...asynchrony.synchronizer import SynchronizedProcess
    from ...core.unreliable_coin_ba import (
        SparseAEBAProcessor,
        vote_threshold,
    )
    from ...topology.sparse_graph import (
        random_regular_graph,
        theorem5_degree,
    )

    n = ctx.n
    degree = _saeba(ctx, "degree")
    if degree is None:
        degree = theorem5_degree(n)
    degree = int(degree)
    num_rounds = _saeba(ctx, "num_rounds")
    if num_rounds is None:
        num_rounds = max(8, degree // 2)
    num_rounds = int(num_rounds)
    adjacency = random_regular_graph(n, degree, ctx.rng("graph"))
    coin = OracleCoinView(derive_seed(ctx.seed, "coins"))
    threshold = vote_threshold(
        float(_saeba(ctx, "epsilon")),
        float(_saeba(ctx, "epsilon0")),
    )
    inputs = input_bits(_saeba(ctx, "inputs"), n)
    max_rounds = num_rounds + 2
    protocols = [
        SparseAEBAProcessor(
            pid,
            inputs[pid],
            sorted(adjacency[pid]),
            coin_view=lambda r, p=0: coin.view(r, p),
            num_rounds=num_rounds,
            threshold=threshold,
        )
        for pid in range(n)
    ]
    processes = [
        SynchronizedProcess(
            pid, n, protocols[pid], max_rounds,
            fault_bound=0,
            peers=sorted(adjacency[pid]),
        )
        for pid in range(n)
    ]
    network = AsyncNetwork(
        processes,
        NullAsyncAdversary(n),
        scheduler=make_scheduler(ctx, _saeba(ctx, "scheduler")),
    )

    def collect(result, ctx: TrialContext) -> TrialResult:
        good = result.good_outputs()
        decided = [v for v in good.values() if v is not None]
        agreed_bit: Optional[int] = None
        agreement_fraction = 0.0
        if decided:
            ones = sum(decided)
            agreed_bit = 1 if ones * 2 >= len(decided) else 0
            agreement_fraction = (
                decided.count(agreed_bit) / len(good) if good else 0.0
            )
        return TrialResult.make(
            ctx,
            metrics={
                "agreement_fraction": agreement_fraction,
                "agreed_bit": (
                    float(agreed_bit) if agreed_bit is not None else -1.0
                ),
                "steps": float(result.steps),
                "rounds_simulated": float(
                    max(p.rounds_simulated for p in processes)
                ),
            },
            ledger=LedgerStats.from_ledger(result.ledger),
            ok=agreement_fraction >= 0.9,
        )

    return AsyncInstance(
        network=network,
        max_steps=20 * n * n * max_rounds,
        collect=collect,
        ctx=ctx,
    )


register(
    Scenario(
        name="async-sparse-aeba",
        build_async_instance=_async_sparse_aeba_instance,
        description=(
            "Algorithm 5 on a sparse graph over the envelope "
            "synchronizer — the async almost-everywhere experiment"
        ),
        params=_SPARSE_AEBA_PARAMS,
        metrics=(
            "agreed_bit", "agreement_fraction", "rounds_simulated",
            "steps",
        ),
        smoke_n=16,
        smoke_params=(("num_rounds", 2),),
        check=_saeba_check,
    )
)
