"""Scenarios for the paper's own protocols.

* ``everywhere-ba`` — Theorem 1 end to end, **batchable**: the
  phase-stepped execution of :mod:`repro.core.tournament_net` gives the
  orchestrated tournament a ``SyncNetwork`` round interface, so the
  batch backend multiplexes full Theorem 1 runs.
* ``unreliable-coin-ba`` — Algorithm 5 on a sparse graph (Lemma 13's
  coalescence unit), batchable; its ``corrupt`` fraction now wires a
  real static adversary on the graph's own edges.
* ``vss-coin`` — the on-demand committee coin of E19, batchable.
* ``sampler-quality`` — the Lemma 2 averaging-sampler measurement.

Each scenario declares its :class:`Param` schema once, above the
builder, and the builder reads every parameter through
:func:`~repro.engine.scenarios.common.param_reader` — the declaration
is the single source of defaults.
"""

from __future__ import annotations

from ...net.simulator import (
    Adversary,
    NullAdversary,
    RunResult,
    SyncNetwork,
)
from ..registry import BatchInstance, Scenario, register
from ..scenario import Param, ScenarioError
from ..spec import LedgerStats, TrialContext, TrialResult
from .common import (
    INPUTS_PARAM,
    input_bits,
    param_reader,
    sparse_degree_problem,
    static_adversary,
)

#: Round cap for phase-stepped everywhere-ba instances; the wrapper
#: halts itself when the execution completes, so this is a backstop.
_EVERYWHERE_BA_ROUND_CAP = 100_000


# --------------------------------------------------------------------------
# everywhere-ba (Theorem 1 pipeline, benchmark E1's unit) — batchable via
# the phase-stepped tournament network.
# --------------------------------------------------------------------------

_EVERYWHERE_BA_PARAMS = (
    INPUTS_PARAM,
    Param(
        "corrupt", float, 0.0,
        help="adaptive corruption fraction of n",
        minimum=0.0, maximum=1 / 3,
    ),
    Param(
        "adversary", str, "bin-stuffing",
        help="tournament-phase adversary when corrupt > 0",
        choices=("bin-stuffing", "tournament"),
    ),
)
_eba = param_reader(_EVERYWHERE_BA_PARAMS)


def _everywhere_ba_instance(ctx: TrialContext) -> BatchInstance:
    from ...adversary.adaptive import (
        BinStuffingAdversary,
        TournamentAdversary,
    )
    from ...core.tournament_net import build_everywhere_ba_network

    n = ctx.n
    inputs = input_bits(_eba(ctx, "inputs"), n)
    corrupt = float(_eba(ctx, "corrupt"))
    adversary = None
    if corrupt > 0:
        budget = max(1, int(corrupt * n))
        kind = _eba(ctx, "adversary")
        if kind == "bin-stuffing":
            adversary = BinStuffingAdversary(n, budget=budget, seed=ctx.seed)
        elif kind == "tournament":
            adversary = TournamentAdversary(n, budget=budget, seed=ctx.seed)
        else:
            raise ScenarioError(f"unknown adversary kind {kind!r}")

    network, execution = build_everywhere_ba_network(
        n, inputs, tournament_adversary=adversary, seed=ctx.seed
    )

    def collect(_: RunResult, ctx: TrialContext) -> TrialResult:
        result = execution.result
        assert result is not None, "network halted before the execution"
        good = [p for p in range(ctx.n) if p not in result.corrupted]
        decided = [result.ae2e_result.decided.get(p) for p in good]
        agree = sum(1 for v in decided if v == result.bit) / max(
            1, len(good)
        )
        good_bits = [result.bits_per_processor[p] for p in good]
        ledger = LedgerStats(
            total_bits=sum(good_bits),
            total_messages=result.ae_result.ledger.total_messages(),
            max_bits_per_processor=max(good_bits, default=0),
            rounds=result.total_rounds(),
        )
        return TrialResult.make(
            ctx,
            metrics={
                "bit": result.bit,
                "agreement": agree,
                "valid": float(result.is_valid()),
                "rounds": result.total_rounds(),
                "max_bits_per_processor": result.max_bits_per_processor(),
            },
            ledger=ledger,
            ok=result.success() and result.is_valid(),
        )

    return BatchInstance(
        network=network,
        max_rounds=_EVERYWHERE_BA_ROUND_CAP,
        collect=collect,
        ctx=ctx,
    )


register(
    Scenario(
        name="everywhere-ba",
        build_instance=_everywhere_ba_instance,
        description=(
            "Theorem 1 end to end: tournament + coin subsequence + "
            "almost-everywhere-to-everywhere push"
        ),
        params=_EVERYWHERE_BA_PARAMS,
        metrics=(
            "agreement", "bit", "max_bits_per_processor", "rounds",
            "valid",
        ),
        smoke_n=27,
    )
)


# --------------------------------------------------------------------------
# unreliable-coin-ba (Algorithm 5 on a sparse graph, E11's coalescence
# unit) — batchable; `corrupt` wires a real adversary on the graph edges.
# --------------------------------------------------------------------------

_AEBA_PARAMS = (
    INPUTS_PARAM,
    Param("num_rounds", int, 1, help="algorithm rounds", minimum=1),
    Param("degree", int, None,
          help="graph degree (auto: Theorem 5's k log n)"),
    Param("epsilon", float, 1 / 12, help="protocol epsilon"),
    Param("epsilon0", float, 0.05, help="coin unreliability"),
    Param(
        "corrupt", float, 0.0,
        help="statically corrupted fraction of n",
        minimum=0.0, maximum=0.5,
    ),
    Param(
        "behavior", str, "anti_majority",
        help="corrupted processors' vote behavior",
        choices=(
            "silent", "fixed0", "fixed1", "random",
            "equivocate", "anti_majority", "keep_split",
        ),
    ),
)
_aeba = param_reader(_AEBA_PARAMS)


def _aeba_check(n, params):
    """Cross-field constraints Algorithm 5's builder would hit late."""
    problem = sparse_degree_problem(n, params)
    if problem:
        return problem
    corrupted = int(float(params.get("corrupt") or 0.0) * n)
    bound = (n - 1) // 3
    if corrupted > bound:
        return (
            f"corrupt fraction {params['corrupt']} corrupts {corrupted} "
            f"of n = {n}, above the fault bound b(n) = {bound}"
        )
    return None


def _aeba_instance(ctx: TrialContext) -> BatchInstance:
    from ...core.coins import perfect_coin_source
    from ...core.unreliable_coin_ba import (
        SparseAEBAProcessor,
        vote_threshold,
    )
    from ...topology.sparse_graph import (
        random_regular_graph,
        theorem5_degree,
    )

    n = ctx.n
    num_rounds = int(_aeba(ctx, "num_rounds"))
    degree = _aeba(ctx, "degree")
    if degree is None:
        degree = theorem5_degree(n)
    graph = random_regular_graph(n, int(degree), ctx.rng("graph"))
    source = perfect_coin_source(n, num_rounds, ctx.rng("coins"))
    threshold = vote_threshold(
        float(_aeba(ctx, "epsilon")),
        float(_aeba(ctx, "epsilon0")),
    )
    inputs = input_bits(_aeba(ctx, "inputs"), n)
    protocols = [
        SparseAEBAProcessor(
            pid=p,
            input_bit=inputs[p],
            neighbors=sorted(graph[p]),
            coin_view=lambda idx, p=p: source.view(idx, p),
            num_rounds=num_rounds,
            threshold=threshold,
        )
        for p in range(n)
    ]
    # The `corrupt` fraction wires a real adversary speaking on the
    # sparse graph's own edges (a corrupted processor can only be heard
    # where the protocol listens).
    adversary = static_adversary(
        ctx,
        n,
        float(_aeba(ctx, "corrupt")),
        str(_aeba(ctx, "behavior")),
        recipients_of={p: sorted(graph[p]) for p in range(n)},
    )
    network = SyncNetwork(protocols, adversary)

    def collect(result: RunResult, ctx: TrialContext) -> TrialResult:
        from collections import Counter
        import math

        votes = Counter(
            protocols[p].vote
            for p in range(ctx.n)
            if p not in result.corrupted
        )
        top = max(votes.values()) / max(1, sum(votes.values()))
        coalesced = top >= 1 - 1 / math.log2(max(4, ctx.n))
        return TrialResult.make(
            ctx,
            metrics={
                "top_fraction": top,
                "coalesced": float(coalesced),
                "corrupted": float(len(result.corrupted)),
                "rounds": result.rounds,
                "max_bits_per_processor": (
                    result.ledger.max_bits_per_processor()
                ),
            },
            ledger=LedgerStats.from_ledger(result.ledger),
            ok=True,
        )

    return BatchInstance(
        network=network,
        max_rounds=num_rounds + 2,
        collect=collect,
        ctx=ctx,
    )


register(
    Scenario(
        name="unreliable-coin-ba",
        build_instance=_aeba_instance,
        description=(
            "Algorithm 5 sparse-graph BA with perfect global coins "
            "(Lemma 13 coalescence unit)"
        ),
        params=_AEBA_PARAMS,
        metrics=(
            "coalesced", "corrupted", "max_bits_per_processor",
            "rounds", "top_fraction",
        ),
        smoke_n=24,
        smoke_params=(("num_rounds", 1),),
        check=_aeba_check,
    )
)


# --------------------------------------------------------------------------
# vss-coin (the on-demand committee coin of E19) — batchable.
# --------------------------------------------------------------------------


class _CrashFromStart(Adversary):
    """t members crash in round 1 and stay silent."""

    def __init__(self, k: int, t: int) -> None:
        super().__init__(k, budget=t)

    def select_corruptions(self, round_no: int):
        return set(range(self.budget)) if round_no == 1 else set()

    def act(self, view):
        return []


class _WithholdReveals(Adversary):
    """t members go silent exactly at the reveal round."""

    def __init__(self, k: int, t: int) -> None:
        super().__init__(k, budget=t)

    def select_corruptions(self, round_no: int):
        return set(range(self.budget)) if round_no == 4 else set()

    def act(self, view):
        return []


_VSS_COIN_PARAMS = (
    Param("k", int, None,
          help="committee size (auto: the spec's n)", minimum=1),
    Param(
        "adversary", str, "none",
        help="committee adversary",
        choices=("none", "crash", "withhold"),
    ),
)
_vss = param_reader(_VSS_COIN_PARAMS)


def _vss_check(n, params):
    """The committee is drawn from the network: ``k`` cannot exceed n."""
    k = params.get("k")
    if k is not None and int(k) > n:
        return f"committee size k = {k} exceeds the network size n = {n}"
    return None


def _vss_coin_instance(ctx: TrialContext) -> BatchInstance:
    from ...core.vss_coin import VSSCoinMember, vss_coin_fault_bound

    k = _vss(ctx, "k")
    k = ctx.n if k is None else int(k)
    t = vss_coin_fault_bound(k)
    kind = _vss(ctx, "adversary")
    if kind == "none":
        adversary: Adversary = NullAdversary(k)
    elif kind == "crash":
        adversary = _CrashFromStart(k, t)
    elif kind == "withhold":
        adversary = _WithholdReveals(k, t)
    else:
        raise ScenarioError(f"unknown vss-coin adversary {kind!r}")
    members = [VSSCoinMember(pid, k, seed=ctx.seed) for pid in range(k)]
    network = SyncNetwork(members, adversary)

    def collect(result: RunResult, ctx: TrialContext) -> TrialResult:
        # None outputs (an honest member that never decided) count as
        # disagreement — matching E19's original strict check.
        coins = set(result.good_outputs().values())
        agreed = len(coins) == 1 and next(iter(coins)) in (0, 1)
        return TrialResult.make(
            ctx,
            metrics={
                "agreed": float(agreed),
                "coin": float(coins.pop()) if agreed else -1.0,
                "corrupted": len(result.corrupted),
            },
            ledger=LedgerStats.from_ledger(result.ledger),
            ok=agreed,
        )

    return BatchInstance(
        network=network, max_rounds=5, collect=collect, ctx=ctx
    )


def _vss_coin_prepare_wave(instances) -> None:
    """Bulk-deal every committee member across the whole wave.

    Each trial's round 1 has every member deal a symmetric bivariate
    sharing; staging all of them through one batched kernel pass
    (:func:`~repro.core.vss_coin.bulk_predeal`) consumes exactly the
    randomness the lazy per-member dealings would, so results stay
    bit-identical to the serial path.
    """
    from ...core.vss_coin import VSSCoinMember, bulk_predeal

    members = [
        protocol
        for instance in instances
        for protocol in instance.network.protocols
        if isinstance(protocol, VSSCoinMember)
    ]
    bulk_predeal(members)


register(
    Scenario(
        name="vss-coin",
        build_instance=_vss_coin_instance,
        prepare_wave=_vss_coin_prepare_wave,
        description=(
            "on-demand Canetti-Rabin-style committee coin (E19's "
            "per-coin alternative to the tournament)"
        ),
        params=_VSS_COIN_PARAMS,
        metrics=("agreed", "coin", "corrupted"),
        smoke_n=7,
        check=_vss_check,
    )
)


# --------------------------------------------------------------------------
# sampler-quality (Lemma 2 measurement, E8's unit)
# --------------------------------------------------------------------------

_SAMPLER_PARAMS = (
    Param("r", int, 100, help="committees sampled", minimum=1),
    Param("s", int, 300, help="universe size", minimum=1),
    Param("degree", int, 16, help="sampler degree", minimum=1),
    Param("theta", float, 0.15, help="bad-fraction threshold"),
    Param("bad_fraction", float, 0.25,
          help="fraction of the universe marked bad"),
    Param("inner_trials", int, 15,
          help="random bad sets per trial", minimum=1),
)
_sampler = param_reader(_SAMPLER_PARAMS)


def _sampler_quality_trial(ctx: TrialContext) -> TrialResult:
    from ...samplers.quality import (
        adversarial_bad_set,
        estimate_failure_fraction,
        fraction_of_bad_committees,
        measure_against_bad_set,
    )
    from ...samplers.sampler import Sampler

    r = int(_sampler(ctx, "r"))
    s = int(_sampler(ctx, "s"))
    degree = int(_sampler(ctx, "degree"))
    theta = float(_sampler(ctx, "theta"))
    bad_fraction = float(_sampler(ctx, "bad_fraction"))
    inner_trials = int(_sampler(ctx, "inner_trials"))

    sampler = Sampler.random(r, s, degree, ctx.rng("sampler"))
    bad_size = int(bad_fraction * s)
    random_delta = estimate_failure_fraction(
        sampler, bad_size, theta, trials=inner_trials,
        rng=ctx.rng("bad-sets"),
    )
    greedy = adversarial_bad_set(sampler, bad_size)
    greedy_delta = measure_against_bad_set(
        sampler, greedy, theta
    ).delta_measured
    bad_committees = fraction_of_bad_committees(
        sampler, greedy, good_threshold=2 / 3
    )
    return TrialResult.make(
        ctx,
        metrics={
            "delta_random": random_delta,
            "delta_greedy": greedy_delta,
            "bad_committees": bad_committees,
        },
        ok=True,
    )


register(
    Scenario(
        name="sampler-quality",
        run_trial=_sampler_quality_trial,
        description=(
            "Lemma 2 averaging-sampler failure fractions vs degree, "
            "random and greedy-adversarial bad sets"
        ),
        params=_SAMPLER_PARAMS,
        metrics=("bad_committees", "delta_greedy", "delta_random"),
        smoke_n=60,
        smoke_params=(
            ("r", 20), ("s", 60), ("degree", 8), ("inner_trials", 4),
        ),
    )
)
