"""Result aggregation: trial lists -> summaries, percentiles, tables.

Backends return ordered :class:`TrialResult` lists; this module folds
them into an :class:`ExperimentResult` — merged ledger totals (via the
associative :meth:`LedgerStats.merge`), per-metric summaries reusing
:func:`repro.analysis.sweep.summarise`, percentiles, and failure counts
— and renders them through :mod:`repro.analysis.reporting` so CLI
output, benchmarks and Markdown reports all share one table model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.reporting import Table
from ..analysis.sweep import MetricSummary, summarise

# The one percentile definition the repo uses now lives next to the
# ledger (the telemetry bridge shares it); re-exported here so
# ``from repro.engine import percentile`` keeps working.
from ..net.accounting import percentile
from .spec import ExperimentSpec, LedgerStats, TrialResult
from .telemetry import RunReport


def merge_ledger_stats(stats: Sequence[LedgerStats]) -> LedgerStats:
    """Fold many trials' ledger summaries into one (order-insensitive)."""
    merged = LedgerStats()
    for s in stats:
        merged = merged.merge(s)
    return merged


@dataclass
class ExperimentResult:
    """Aggregated outcome of one spec under one backend."""

    spec: ExperimentSpec
    backend: str
    trials: List[TrialResult]
    elapsed_seconds: float = 0.0
    #: The run's telemetry report (None for backends without telemetry).
    report: Optional[RunReport] = None

    # -- scalar aggregates ---------------------------------------------------------

    @property
    def failures(self) -> List[TrialResult]:
        """Trials that failed (protocol-level or crashed)."""
        return [t for t in self.trials if not t.ok]

    @property
    def failure_count(self) -> int:
        """Number of failed trials."""
        return len(self.failures)

    def success_rate(self) -> float:
        """Fraction of trials that succeeded."""
        if not self.trials:
            return 0.0
        return 1 - self.failure_count / len(self.trials)

    def merged_ledger(self) -> LedgerStats:
        """All trials' ledger summaries merged."""
        return merge_ledger_stats([t.ledger for t in self.trials])

    # -- per-metric aggregates --------------------------------------------------------

    def metric_names(self) -> List[str]:
        """Every metric name observed across trials, sorted."""
        names = set()
        for t in self.trials:
            names.update(t.metric_dict())
        return sorted(names)

    def metric_values(self, name: str) -> List[float]:
        """Raw per-trial values of one metric (trial order)."""
        return [
            t.metric_dict()[name]
            for t in self.trials
            if name in t.metric_dict()
        ]

    def summary(self, name: str) -> MetricSummary:
        """Mean/min/max/stdev of one metric across trials."""
        return summarise(name, self.metric_values(name))

    def metric_percentile(self, name: str, q: float) -> float:
        """One percentile of one metric across trials."""
        return percentile(self.metric_values(name), q)

    def summaries(self) -> Dict[str, MetricSummary]:
        """All metric summaries keyed by name."""
        return {name: self.summary(name) for name in self.metric_names()}

    # -- rendering ---------------------------------------------------------------

    def to_table(self, title: Optional[str] = None) -> Table:
        """The aggregate as a :mod:`repro.analysis.reporting` table."""
        table = Table(
            title=title or f"{self.spec.describe()} [{self.backend}]",
            headers=["metric", "mean", "min", "p50", "p90", "max"],
            note=(
                f"{len(self.trials)} trials, "
                f"{self.failure_count} failures, "
                f"{self.elapsed_seconds:.2f}s on {self.backend} backend"
            ),
        )
        for name in self.metric_names():
            s = self.summary(name)
            table.add_row(
                name,
                f"{s.mean:.4g}",
                f"{s.minimum:.4g}",
                f"{self.metric_percentile(name, 50):.4g}",
                f"{self.metric_percentile(name, 90):.4g}",
                f"{s.maximum:.4g}",
            )
        ledger = self.merged_ledger()
        if ledger.total_bits or ledger.total_messages:
            table.add_row(
                "ledger.total_bits", f"{ledger.total_bits:,}", "", "", "", ""
            )
            table.add_row(
                "ledger.max_bits_per_processor",
                f"{ledger.max_bits_per_processor:,}",
                "", "", "", "",
            )
            table.add_row(
                "ledger.rounds(total)", f"{ledger.rounds:,}", "", "", "", ""
            )
        return table
